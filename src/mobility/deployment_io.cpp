#include "mobility/deployment_io.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace spider::mob {

void write_sites_csv(std::ostream& os, const std::vector<ApSite>& sites) {
  // Full precision so write/read round-trips are lossless.
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "x,y,channel,backhaul_bps,connected\n";
  for (const auto& s : sites) {
    os << s.position.x << ',' << s.position.y << ',' << s.channel << ','
       << s.backhaul.bps << ',' << (s.internet_connected ? 1 : 0) << '\n';
  }
}

bool write_sites_csv(const std::string& path, const std::vector<ApSite>& sites) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  write_sites_csv(f, sites);
  return static_cast<bool>(f);
}

std::vector<ApSite> read_sites_csv(std::istream& is) {
  std::vector<ApSite> sites;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.rfind("x,", 0) == 0) continue;  // header

    std::istringstream row(line);
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(row, cell, ',')) cells.push_back(cell);
    if (cells.size() != 5) {
      throw std::runtime_error("deployment csv line " + std::to_string(line_no) +
                               ": expected 5 columns, got " +
                               std::to_string(cells.size()));
    }
    try {
      ApSite site;
      site.position = {std::stod(cells[0]), std::stod(cells[1])};
      site.channel = std::stoi(cells[2]);
      site.backhaul = bps(std::stod(cells[3]));
      site.internet_connected = std::stoi(cells[4]) != 0;
      sites.push_back(site);
    } catch (const std::exception&) {
      throw std::runtime_error("deployment csv line " + std::to_string(line_no) +
                               ": malformed value");
    }
  }
  return sites;
}

std::vector<ApSite> read_sites_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("cannot open deployment csv: " + path);
  }
  return read_sites_csv(f);
}

}  // namespace spider::mob
