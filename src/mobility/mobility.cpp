#include "mobility/mobility.hpp"

#include <cassert>
#include <cmath>

namespace spider::mob {

LinearRoad::LinearRoad(Position start, Position direction, double speed_mps)
    : start_(start), speed_(speed_mps) {
  const double norm = std::sqrt(direction.x * direction.x + direction.y * direction.y);
  assert(norm > 0.0);
  dir_ = Position{direction.x / norm, direction.y / norm};
}

Position LinearRoad::position_at(Time t) const {
  const double d = speed_ * to_seconds(t);
  return Position{start_.x + dir_.x * d, start_.y + dir_.y * d};
}

BackAndForthRoad::BackAndForthRoad(double length_m, double speed_mps,
                                   double lane_y)
    : length_(length_m), speed_(speed_mps), lane_y_(lane_y) {
  assert(length_m > 0.0);
}

Position BackAndForthRoad::position_at(Time t) const {
  const double d = std::fmod(speed_ * to_seconds(t), 2.0 * length_);
  const double x = d <= length_ ? d : 2.0 * length_ - d;  // triangle wave
  return Position{x, lane_y_};
}

WaypointLoop::WaypointLoop(std::vector<Position> waypoints, double speed_mps)
    : points_(std::move(waypoints)), speed_(speed_mps) {
  assert(points_.size() >= 2);
  cumulative_.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    cumulative_.push_back(total_);
    const Position& a = points_[i];
    const Position& b = points_[(i + 1) % points_.size()];
    total_ += distance(a, b);
  }
  assert(total_ > 0.0);
}

Position WaypointLoop::position_at(Time t) const {
  double d = std::fmod(speed_ * to_seconds(t), total_);
  // Find the segment containing distance d.
  std::size_t i = points_.size() - 1;
  for (std::size_t k = 1; k < points_.size(); ++k) {
    if (cumulative_[k] > d) {
      i = k - 1;
      break;
    }
  }
  const Position& a = points_[i];
  const Position& b = points_[(i + 1) % points_.size()];
  const double seg_len = distance(a, b);
  const double frac = seg_len <= 0.0 ? 0.0 : (d - cumulative_[i]) / seg_len;
  return Position{a.x + (b.x - a.x) * frac, a.y + (b.y - a.y) * frac};
}

}  // namespace spider::mob
