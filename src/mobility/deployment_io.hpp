#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "mobility/deployment.hpp"

namespace spider::mob {

/// CSV persistence for AP deployments, so a measured town (a wardriving
/// trace, say) can be replayed instead of a generated one. Columns:
///
///   x,y,channel,backhaul_bps,connected
///
/// Writers emit a header; readers accept files with or without one and
/// throw std::runtime_error on malformed rows.

void write_sites_csv(std::ostream& os, const std::vector<ApSite>& sites);
bool write_sites_csv(const std::string& path, const std::vector<ApSite>& sites);

std::vector<ApSite> read_sites_csv(std::istream& is);
std::vector<ApSite> read_sites_csv_file(const std::string& path);

}  // namespace spider::mob
