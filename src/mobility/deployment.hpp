#pragma once

#include <vector>

#include "util/random.hpp"
#include "util/units.hpp"
#include "wire/frame.hpp"

namespace spider::mob {

/// Statistical description of a town's open-AP population, matching the
/// measurements in §4.1: "almost all APs were on channels 1 (28%), 6 (33%),
/// or 11 (34%)", sparse density (the client is associated with a single AP
/// ~85% of the time), and residential backhauls well below the wireless
/// rate.
struct DeploymentConfig {
  double road_length_m = 2000.0;
  double aps_per_km = 6.0;
  /// Perpendicular offset of AP buildings from the driving lane.
  double lateral_min_m = 20.0;
  double lateral_max_m = 75.0;
  /// Downtown APs cluster by block rather than spreading uniformly: with
  /// clustering on (> 0), AP x-positions concentrate around cluster
  /// centres, so a covered block typically offers APs on several channels
  /// at once — the situation in the paper's town, where single-channel
  /// connectivity (35.5%) was not far below three-channel (44.6%). Zero
  /// clusters_per_km reverts to uniform placement.
  double clusters_per_km = 1.6;
  double cluster_radius_m = 80.0;
  /// Channel mix; weights need not sum to 1 (they are normalised).
  std::vector<std::pair<wire::Channel, double>> channel_weights = {
      {1, 0.28}, {6, 0.33}, {11, 0.34}, {3, 0.03}, {9, 0.02}};
  /// Residential backhaul rates (uniform between bounds). Open APs of the
  /// paper's era sat on 1-6 Mbps DSL/cable lines — well under the 11 Mbps
  /// wireless rate, which is what makes aggregation pay.
  BitRate backhaul_min = mbps(1);
  BitRate backhaul_max = mbps(6);
  /// Fraction of open APs that associate and hand out leases but have no
  /// working Internet path (captive portals, broken uplinks). This is why
  /// Spider's join pipeline ends with an end-to-end connectivity test and
  /// why its utility weighs vc above vb.
  double dead_backhaul_fraction = 0.0;
};

/// One generated AP site.
struct ApSite {
  Position position;
  wire::Channel channel = 6;
  BitRate backhaul;
  bool internet_connected = true;
};

/// Draws a deployment along the road [0, road_length] on the x-axis. AP x
/// positions are uniform; y alternates road side. Deterministic per Rng
/// state.
std::vector<ApSite> generate_deployment(const DeploymentConfig& config, Rng& rng);

/// Samples a channel from an explicit weight table (weights need not sum
/// to 1; they are normalised). The table must be non-empty.
wire::Channel sample_channel(
    const std::vector<std::pair<wire::Channel, double>>& weights, Rng& rng);

/// Samples a channel from the configured mix.
wire::Channel sample_channel(const DeploymentConfig& config, Rng& rng);

/// A 2-D city: a rectangular [0,width]x[0,height] area crossed by a
/// Manhattan mesh of streets every `block_m` metres. APs sit in the
/// buildings lining the streets (a small lateral offset from a street
/// line), at a surveyed areal density. This is the city-scale counterpart
/// of DeploymentConfig's single road, used by bench/ext_citywide to stress
/// the medium's spatial grid at thousands of APs.
struct CityGridConfig {
  double width_m = 2000.0;
  double height_m = 2000.0;
  /// Street spacing; streets run at x,y = 0, block_m, 2*block_m, ...
  double block_m = 250.0;
  double aps_per_km2 = 50.0;
  /// Perpendicular offset of AP buildings from their street line.
  double lateral_min_m = 5.0;
  double lateral_max_m = 40.0;
  /// §4.1's measured mix: channels 1/6/11 at 28/33/34%.
  std::vector<std::pair<wire::Channel, double>> channel_weights = {
      {1, 0.28}, {6, 0.33}, {11, 0.34}, {3, 0.03}, {9, 0.02}};
  BitRate backhaul_min = mbps(1);
  BitRate backhaul_max = mbps(6);
  double dead_backhaul_fraction = 0.0;
};

/// Draws a city deployment: each AP picks a street (horizontal or
/// vertical), a point along it, and a lateral building offset, clamped to
/// the city bounds. Deterministic per Rng state.
std::vector<ApSite> generate_city_deployment(const CityGridConfig& config,
                                             Rng& rng);

/// Draws a rectangular driving loop on the street mesh: two distinct
/// vertical and two distinct horizontal streets, corners in loop order,
/// ready for mob::WaypointLoop. Deterministic per Rng state.
std::vector<Position> city_route_waypoints(const CityGridConfig& config,
                                           Rng& rng);

}  // namespace spider::mob
