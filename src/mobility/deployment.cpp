#include "mobility/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spider::mob {

namespace {

/// Streets run at x (or y) = 0, block, 2*block, ... while inside the city.
std::int64_t street_count(double extent_m, double block_m) {
  if (block_m <= 0.0) throw std::invalid_argument("CityGridConfig: block_m must be positive");
  return static_cast<std::int64_t>(std::floor(extent_m / block_m)) + 1;
}

}  // namespace

wire::Channel sample_channel(
    const std::vector<std::pair<wire::Channel, double>>& weights, Rng& rng) {
  double total = 0.0;
  for (const auto& [ch, w] : weights) total += w;
  double draw = rng.uniform(0.0, total);
  for (const auto& [ch, w] : weights) {
    draw -= w;
    if (draw <= 0.0) return ch;
  }
  return weights.back().first;
}

wire::Channel sample_channel(const DeploymentConfig& config, Rng& rng) {
  return sample_channel(config.channel_weights, rng);
}

std::vector<ApSite> generate_deployment(const DeploymentConfig& config,
                                        Rng& rng) {
  const auto count = static_cast<std::size_t>(
      std::llround(config.road_length_m / 1000.0 * config.aps_per_km));
  const auto cluster_count = static_cast<std::size_t>(
      std::llround(config.road_length_m / 1000.0 * config.clusters_per_km));
  std::vector<double> cluster_centres;
  for (std::size_t c = 0; c < cluster_count; ++c) {
    cluster_centres.push_back(rng.uniform(0.0, config.road_length_m));
  }

  std::vector<ApSite> sites;
  sites.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ApSite site;
    double x;
    if (cluster_centres.empty()) {
      x = rng.uniform(0.0, config.road_length_m);
    } else {
      const auto c = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cluster_centres.size()) - 1));
      x = std::clamp(cluster_centres[c] + rng.uniform(-config.cluster_radius_m,
                                                      config.cluster_radius_m),
                     0.0, config.road_length_m);
    }
    const double y = rng.uniform(config.lateral_min_m, config.lateral_max_m) *
                     (rng.chance(0.5) ? 1.0 : -1.0);
    site.position = Position{x, y};
    site.channel = sample_channel(config, rng);
    site.backhaul =
        bps(rng.uniform(config.backhaul_min.bps, config.backhaul_max.bps));
    site.internet_connected = !rng.chance(config.dead_backhaul_fraction);
    sites.push_back(site);
  }
  return sites;
}

std::vector<ApSite> generate_city_deployment(const CityGridConfig& config,
                                             Rng& rng) {
  const double area_km2 = config.width_m * config.height_m / 1e6;
  const auto count =
      static_cast<std::size_t>(std::llround(area_km2 * config.aps_per_km2));
  const std::int64_t v_streets = street_count(config.width_m, config.block_m);
  const std::int64_t h_streets = street_count(config.height_m, config.block_m);

  std::vector<ApSite> sites;
  sites.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ApSite site;
    // Buildings line the streets: pick a street, a point along it, and a
    // lateral setback on a random side. The setback can push a site past a
    // boundary street, so clamp back into the city rectangle.
    const bool along_horizontal = rng.chance(0.5);
    const double lateral =
        rng.uniform(config.lateral_min_m, config.lateral_max_m) *
        (rng.chance(0.5) ? 1.0 : -1.0);
    double x, y;
    if (along_horizontal) {
      const auto street = rng.uniform_int(0, h_streets - 1);
      x = rng.uniform(0.0, config.width_m);
      y = static_cast<double>(street) * config.block_m + lateral;
    } else {
      const auto street = rng.uniform_int(0, v_streets - 1);
      x = static_cast<double>(street) * config.block_m + lateral;
      y = rng.uniform(0.0, config.height_m);
    }
    site.position = Position{std::clamp(x, 0.0, config.width_m),
                             std::clamp(y, 0.0, config.height_m)};
    site.channel = sample_channel(config.channel_weights, rng);
    site.backhaul =
        bps(rng.uniform(config.backhaul_min.bps, config.backhaul_max.bps));
    site.internet_connected = !rng.chance(config.dead_backhaul_fraction);
    sites.push_back(site);
  }
  return sites;
}

std::vector<Position> city_route_waypoints(const CityGridConfig& config,
                                           Rng& rng) {
  const std::int64_t v_streets = street_count(config.width_m, config.block_m);
  const std::int64_t h_streets = street_count(config.height_m, config.block_m);
  if (v_streets < 2 || h_streets < 2) {
    throw std::invalid_argument(
        "city_route_waypoints: need at least two streets per axis "
        "(block_m too large for the city extent)");
  }
  // Two distinct streets per axis bound a rectangular block tour.
  const auto lo_v = rng.uniform_int(0, v_streets - 2);
  const auto hi_v = rng.uniform_int(lo_v + 1, v_streets - 1);
  const auto lo_h = rng.uniform_int(0, h_streets - 2);
  const auto hi_h = rng.uniform_int(lo_h + 1, h_streets - 1);
  const double x0 = static_cast<double>(lo_v) * config.block_m;
  const double x1 = static_cast<double>(hi_v) * config.block_m;
  const double y0 = static_cast<double>(lo_h) * config.block_m;
  const double y1 = static_cast<double>(hi_h) * config.block_m;
  // Corners in driving order; WaypointLoop closes the final leg back to
  // the first corner.
  return {Position{x0, y0}, Position{x1, y0}, Position{x1, y1},
          Position{x0, y1}};
}

}  // namespace spider::mob
