#include "mobility/deployment.hpp"

#include <algorithm>
#include <cmath>

namespace spider::mob {

wire::Channel sample_channel(const DeploymentConfig& config, Rng& rng) {
  double total = 0.0;
  for (const auto& [ch, w] : config.channel_weights) total += w;
  double draw = rng.uniform(0.0, total);
  for (const auto& [ch, w] : config.channel_weights) {
    draw -= w;
    if (draw <= 0.0) return ch;
  }
  return config.channel_weights.back().first;
}

std::vector<ApSite> generate_deployment(const DeploymentConfig& config,
                                        Rng& rng) {
  const auto count = static_cast<std::size_t>(
      std::llround(config.road_length_m / 1000.0 * config.aps_per_km));
  const auto cluster_count = static_cast<std::size_t>(
      std::llround(config.road_length_m / 1000.0 * config.clusters_per_km));
  std::vector<double> cluster_centres;
  for (std::size_t c = 0; c < cluster_count; ++c) {
    cluster_centres.push_back(rng.uniform(0.0, config.road_length_m));
  }

  std::vector<ApSite> sites;
  sites.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ApSite site;
    double x;
    if (cluster_centres.empty()) {
      x = rng.uniform(0.0, config.road_length_m);
    } else {
      const auto c = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cluster_centres.size()) - 1));
      x = std::clamp(cluster_centres[c] + rng.uniform(-config.cluster_radius_m,
                                                      config.cluster_radius_m),
                     0.0, config.road_length_m);
    }
    const double y = rng.uniform(config.lateral_min_m, config.lateral_max_m) *
                     (rng.chance(0.5) ? 1.0 : -1.0);
    site.position = Position{x, y};
    site.channel = sample_channel(config, rng);
    site.backhaul =
        bps(rng.uniform(config.backhaul_min.bps, config.backhaul_max.bps));
    site.internet_connected = !rng.chance(config.dead_backhaul_fraction);
    sites.push_back(site);
  }
  return sites;
}

}  // namespace spider::mob
