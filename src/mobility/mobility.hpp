#pragma once

#include <memory>
#include <vector>

#include "util/time.hpp"
#include "util/units.hpp"

namespace spider::mob {

/// A deterministic motion plan: position as a pure function of time, so a
/// radio can sample it lazily via its position callback. All models report
/// a nominal speed for use by adaptive scheduling policies.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Position position_at(Time t) const = 0;
  virtual double speed_mps() const = 0;
};

/// Fixed position (the paper's indoor TCP experiments, APs, servers).
class Stationary final : public MobilityModel {
 public:
  explicit Stationary(Position pos) : pos_(pos) {}
  Position position_at(Time) const override { return pos_; }
  double speed_mps() const override { return 0.0; }

 private:
  Position pos_;
};

/// Straight-line motion from `start` along a unit direction at `speed`.
/// Used for single-encounter experiments (drive past one AP).
class LinearRoad final : public MobilityModel {
 public:
  LinearRoad(Position start, Position direction, double speed_mps);
  Position position_at(Time t) const override;
  double speed_mps() const override { return speed_; }

 private:
  Position start_;
  Position dir_;  ///< normalised
  double speed_;
};

/// Drives back and forth along the x-axis segment [0, length] at constant
/// speed — "the mobile node following the same route multiple times"
/// (§4.1). The turn-arounds are instantaneous.
class BackAndForthRoad final : public MobilityModel {
 public:
  BackAndForthRoad(double length_m, double speed_mps, double lane_y = 0.0);
  Position position_at(Time t) const override;
  double speed_mps() const override { return speed_; }
  double length() const { return length_; }

 private:
  double length_;
  double speed_;
  double lane_y_;
};

/// Piecewise-linear route through waypoints at constant speed, looping
/// back to the first waypoint — models circulating through a downtown.
class WaypointLoop final : public MobilityModel {
 public:
  WaypointLoop(std::vector<Position> waypoints, double speed_mps);
  Position position_at(Time t) const override;
  double speed_mps() const override { return speed_; }
  double lap_length() const { return total_; }

 private:
  std::vector<Position> points_;
  std::vector<double> cumulative_;  ///< distance up to each segment start
  double total_ = 0.0;
  double speed_;
};

}  // namespace spider::mob
