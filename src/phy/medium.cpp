#include "phy/medium.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/tracer.hpp"
#include "phy/radio.hpp"
#include "phy/shard_link.hpp"

namespace spider::phy {

namespace {
/// 802.11b long-preamble PLCP overhead.
constexpr Time kPlcpOverhead = usec(192);

/// Safety margin subtracted from the distance-to-boundary before a motion
/// horizon is derived from it. One millimetre dwarfs both the fp rounding
/// of the mobility models' position arithmetic (~1e-10 m over any plausible
/// run) and the distance covered during the one truncated tick of sec()
/// (1e-4 m even at 100 m/s).
constexpr double kMotionGuardM = 1e-3;

/// splitmix64 finalizer: one multiply-xorshift round per half. Packed cells
/// of adjacent coordinates differ in low bits of either word; this spreads
/// them across the whole table so linear probe runs stay short.
inline std::uint64_t mix_cell(std::uint64_t key) {
  key += 0x9E3779B97F4A7C15ull;
  key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ull;
  key = (key ^ (key >> 27)) * 0x94D049BB133111EBull;
  return key ^ (key >> 31);
}

}  // namespace

// --- CellSoA: attach_seq-sorted per-cell lanes -------------------------

void Medium::CellSoA::insert_sorted(std::vector<Slot>& registry,
                                    std::uint32_t slot, std::uint64_t seq) {
  const auto it = std::lower_bound(seqs.begin(), seqs.end(), seq);
  const auto i = static_cast<std::size_t>(it - seqs.begin());
  seqs.insert(it, seq);
  slots.insert(slots.begin() + static_cast<std::ptrdiff_t>(i), slot);
  for (std::size_t j = i; j < slots.size(); ++j) {
    registry[slots[j]].lane_idx = static_cast<std::uint32_t>(j);
  }
}

void Medium::CellSoA::erase_at(std::vector<Slot>& registry, std::size_t i) {
  const auto d = static_cast<std::ptrdiff_t>(i);
  seqs.erase(seqs.begin() + d);
  slots.erase(slots.begin() + d);
  for (std::size_t j = i; j < slots.size(); ++j) {
    registry[slots[j]].lane_idx = static_cast<std::uint32_t>(j);
  }
}

// --- ChannelGrid: flat cell table + occupancy bitmap -------------------

std::uint32_t Medium::ChannelGrid::find(std::uint64_t key) const {
  if (bucket_mask == 0) return kNoCell;
  std::size_t i = mix_cell(key) & bucket_mask;
  while (vals[i] != kNoCell) {
    if (keys[i] == key) return vals[i];
    i = (i + 1) & bucket_mask;
  }
  return kNoCell;
}

std::uint32_t Medium::ChannelGrid::find_occupied(std::uint64_t key) const {
  if (bucket_mask == 0) return kNoCell;
  const std::size_t h = mix_cell(key) & bucket_mask;
  // The bitmap bit covers every *non-empty* cell whose home bucket is h, so
  // a clear bit proves the probed cell is absent or empty — the common case
  // for a sparse deployment's neighborhood, answered without touching the
  // table arrays at all.
  if ((occ_bits[h >> 6] & (1ull << (h & 63))) == 0) return kNoCell;
  std::size_t i = h;
  while (vals[i] != kNoCell) {
    if (keys[i] == key) {
      const std::uint32_t ci = vals[i];
      return cells[ci].empty() ? kNoCell : ci;
    }
    i = (i + 1) & bucket_mask;
  }
  return kNoCell;
}

std::uint32_t Medium::ChannelGrid::find_or_create(std::uint64_t key) {
  // Cells are never erased, so load is cells.size() / capacity; growing at
  // 50% keeps probe runs O(1).
  if (bucket_mask == 0) {
    rehash(64);
  } else if ((cells.size() + 1) * 2 > bucket_mask + 1) {
    rehash((bucket_mask + 1) * 2);
  }
  std::size_t i = mix_cell(key) & bucket_mask;
  while (vals[i] != kNoCell) {
    if (keys[i] == key) return vals[i];
    i = (i + 1) & bucket_mask;
  }
  const auto ci = static_cast<std::uint32_t>(cells.size());
  cells.emplace_back();
  cells.back().key = key;
  keys[i] = key;
  vals[i] = ci;
  return ci;
}

void Medium::ChannelGrid::occ_add(std::uint64_t key) {
  const std::size_t h = mix_cell(key) & bucket_mask;
  if (occ_refs[h]++ == 0) occ_bits[h >> 6] |= 1ull << (h & 63);
  ++nonempty_cells;
}

void Medium::ChannelGrid::occ_sub(std::uint64_t key) {
  const std::size_t h = mix_cell(key) & bucket_mask;
  if (--occ_refs[h] == 0) occ_bits[h >> 6] &= ~(1ull << (h & 63));
  --nonempty_cells;
}

void Medium::ChannelGrid::rehash(std::size_t capacity) {
  bucket_mask = capacity - 1;
  keys.assign(capacity, 0);
  vals.assign(capacity, kNoCell);
  occ_bits.assign(capacity / 64, 0);
  occ_refs.assign(capacity, 0);
  for (std::uint32_t ci = 0; ci < cells.size(); ++ci) {
    std::size_t i = mix_cell(cells[ci].key) & bucket_mask;
    while (vals[i] != kNoCell) i = (i + 1) & bucket_mask;
    keys[i] = cells[ci].key;
    vals[i] = ci;
    if (!cells[ci].empty()) {
      const std::size_t h = mix_cell(cells[ci].key) & bucket_mask;
      if (occ_refs[h]++ == 0) occ_bits[h >> 6] |= 1ull << (h & 63);
    }
  }
}

// --- Medium ------------------------------------------------------------

Medium::Medium(sim::Simulator& simulator, Propagation propagation, Rng rng,
               MediumConfig config)
    : sim_(simulator),
      propagation_(propagation),
      rng_(rng),
      config_(config),
      // Correctness of the 3x3 neighborhood needs cell >= range (a radio at
      // exactly range_m must land no further than one cell away); clamp
      // explicit overrides up, and keep a floor for degenerate zero-range
      // propagation configs so cell_coord never divides by zero.
      cell_m_(std::max({config.grid_cell_m, propagation_.config().range_m,
                        1e-3})) {
  last_refresh_.fill(Time{-1});
}

Medium::Medium(sim::Simulator& simulator, Propagation propagation, Rng rng,
               int retry_limit)
    : Medium(simulator, propagation, rng,
             MediumConfig{.retry_limit = retry_limit}) {}

void Medium::set_channel_impairment(wire::Channel channel, double extra_loss) {
  const double clamped = std::clamp(extra_loss, 0.0, 1.0);
  if (flat_channel(channel)) {
    impairment_flat_[static_cast<std::size_t>(channel)] = clamped;
  } else {
    impairments_other_[channel] = clamped;
  }
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kImpairmentSet,
               .channel = static_cast<std::int16_t>(channel),
               .track = obs::track::channel(channel), .value = clamped);
}

void Medium::clear_channel_impairment(wire::Channel channel) {
  if (flat_channel(channel)) {
    impairment_flat_[static_cast<std::size_t>(channel)] = 0.0;
  } else {
    impairments_other_.erase(channel);
  }
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kImpairmentClear,
               .channel = static_cast<std::int16_t>(channel),
               .track = obs::track::channel(channel));
}

double Medium::channel_impairment(wire::Channel channel) const {
  if (flat_channel(channel)) {
    return impairment_flat_[static_cast<std::size_t>(channel)];
  }
  auto it = impairments_other_.find(channel);
  return it == impairments_other_.end() ? 0.0 : it->second;
}

std::vector<std::uint32_t>& Medium::cohort(wire::Channel channel) {
  if (flat_channel(channel)) {
    return cohorts_[static_cast<std::size_t>(channel)];
  }
  return cohorts_other_[channel];
}

void Medium::cohort_insert(wire::Channel channel, std::uint32_t slot) {
  auto& v = cohort(channel);
  const std::uint64_t seq = slots_[slot].attach_seq;
  // Keep the cohort sorted by attach order so the transmit loop visits
  // same-channel radios in the exact sequence the old whole-table scan
  // would have (a retuned radio re-enters at its original rank, not at the
  // back). Cohorts are small (radios per channel), so the shift is cheap.
  auto it = std::lower_bound(
      v.begin(), v.end(), seq, [this](std::uint32_t s, std::uint64_t q) {
        return slots_[s].attach_seq < q;
      });
  v.insert(it, slot);
}

void Medium::cohort_remove(wire::Channel channel, std::uint32_t slot) {
  auto& v = cohort(channel);
  v.erase(std::remove(v.begin(), v.end(), slot), v.end());
}

std::int32_t Medium::cell_coord(double meters) const {
  return static_cast<std::int32_t>(std::floor(meters / cell_m_));
}

Medium::ChannelGrid& Medium::grid(wire::Channel channel) {
  if (flat_channel(channel)) {
    return grids_[static_cast<std::size_t>(channel)];
  }
  return grids_other_[channel];
}

std::vector<std::uint32_t>& Medium::mobiles(wire::Channel channel) {
  if (flat_channel(channel)) {
    return mobile_slots_[static_cast<std::size_t>(channel)];
  }
  return mobile_other_[channel];
}

Time& Medium::last_refresh(wire::Channel channel) {
  if (flat_channel(channel)) {
    return last_refresh_[static_cast<std::size_t>(channel)];
  }
  return last_refresh_other_.try_emplace(channel, Time{-1}).first->second;
}

void Medium::grid_fatal(const char* what) {
  std::fprintf(stderr, "spider::phy::Medium: grid invariant violated: %s\n",
               what);
  std::abort();
}

Time Medium::motion_horizon(const Slot& s, const Position& pos) const {
  const double d = std::min(std::min(pos.x - s.qx0, s.qx1 - pos.x),
                            std::min(pos.y - s.qy0, s.qy1 - pos.y)) -
                   kMotionGuardM;
  if (d <= 0.0) return sim_.now();  // boundary-adjacent: no skippable window
  return sim_.now() + sec(d / s.max_speed);
}

void Medium::grid_insert(wire::Channel channel, std::uint32_t slot,
                         const Position& pos) {
  Slot& s = slots_[slot];
  const std::int32_t cx = cell_coord(pos.x);
  const std::int32_t cy = cell_coord(pos.y);
  s.cell = pack_cell(cx, cy);
  // Shrunken quick-accept box for the mobile sweep (see the Slot doc).
  const double eps = cell_m_ * 1e-6;
  s.qx0 = static_cast<double>(cx) * cell_m_ + eps;
  s.qx1 = static_cast<double>(cx + 1) * cell_m_ - eps;
  s.qy0 = static_cast<double>(cy) * cell_m_ + eps;
  s.qy1 = static_cast<double>(cy + 1) * cell_m_ - eps;
  pos_x_[slot] = pos.x;
  pos_y_[slot] = pos.y;
  s.pos_stamp = sim_.now();
  if (s.max_speed > 0.0) s.safe_until = motion_horizon(s, pos);
  ChannelGrid& g = grid(channel);
  const std::uint32_t ci = g.find_or_create(s.cell);
  CellSoA& cell = g.cells[ci];
  if (cell.empty()) g.occ_add(s.cell);
  s.cell_idx = ci;
  cell.insert_sorted(slots_, slot, s.attach_seq);
}

void Medium::grid_remove(wire::Channel channel, std::uint32_t slot) {
  ChannelGrid& g = grid(channel);
  const Slot& s = slots_[slot];
  if (s.cell_idx >= g.cells.size() || g.cells[s.cell_idx].key != s.cell) {
    grid_fatal("grid_remove: slot's recorded cell is absent from its grid");
  }
  CellSoA& cell = g.cells[s.cell_idx];
  if (s.lane_idx >= cell.size() || cell.slots[s.lane_idx] != slot) {
    grid_fatal("grid_remove: slot missing from its recorded cell");
  }
  cell.erase_at(slots_, s.lane_idx);
  if (cell.empty()) g.occ_sub(s.cell);
}

void Medium::refresh_mobile_buckets(wire::Channel channel) {
  const Time now = sim_.now();
  Time& last = last_refresh(channel);
  if (now == last) return;
  last = now;
  ChannelGrid& g = grid(channel);
  for (const std::uint32_t slot : mobiles(channel)) {
    Slot& s = slots_[slot];
    // Motion-bound amortisation: a radio with a declared speed ceiling
    // provably cannot have reached its cell boundary before safe_until, so
    // its bucket is still its true cell and the position() call is skipped
    // entirely. Its lanes go stale; the transmit loop re-samples it lazily
    // iff it actually turns up as a candidate.
    if (now < s.safe_until) continue;
    const Position pos = slot_position(s);
    s.pos_stamp = now;
    if (pos.x >= s.qx0 && pos.x < s.qx1 && pos.y >= s.qy0 && pos.y < s.qy1) {
      // Strictly inside the shrunken cell box — same cell, proven without
      // a divide. This is the overwhelmingly common case (rebucketing only
      // happens on a boundary crossing), and the sweep's whole per-mobile
      // cost beyond the position callback: two contiguous stores.
      pos_x_[slot] = pos.x;
      pos_y_[slot] = pos.y;
      if (s.max_speed > 0.0) s.safe_until = motion_horizon(s, pos);
      continue;
    }
    // Near or across a cell boundary: settle it with the exact binning.
    const std::uint64_t key = cell_of(pos);
    if (key == s.cell) {
      pos_x_[slot] = pos.x;
      pos_y_[slot] = pos.y;
      if (s.max_speed > 0.0) s.safe_until = motion_horizon(s, pos);
      continue;
    }
    if (s.cell_idx >= g.cells.size() || g.cells[s.cell_idx].key != s.cell) {
      grid_fatal("refresh: mobile slot's cell is absent from its grid");
    }
    if (s.lane_idx >= g.cells[s.cell_idx].size() ||
        g.cells[s.cell_idx].slots[s.lane_idx] != slot) {
      grid_fatal("refresh: mobile slot missing from its recorded cell");
    }
    grid_remove(channel, slot);
    grid_insert(channel, slot, pos);
    ++grid_rebuckets_;
  }
}

void Medium::gather_neighborhood(wire::Channel channel, const Position& pos) {
  scratch_slots_.clear();
  ChannelGrid& g = grid(channel);
  const std::int32_t cx = cell_coord(pos.x);
  const std::int32_t cy = cell_coord(pos.y);
  // Occupied cells among the 9 probes; the bitmap answers empty/absent ones
  // without a table walk. Only occupied probes count toward
  // grid_cells_scanned_ (the cost metric of the merge below).
  const CellSoA* lists[9];
  std::size_t heads[9];
  int n = 0;
  std::size_t total = 0;
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const std::uint32_t ci = g.find_occupied(pack_cell(cx + dx, cy + dy));
      if (ci == ChannelGrid::kNoCell) continue;
      lists[n] = &g.cells[ci];
      heads[n] = 0;
      total += lists[n]->size();
      ++n;
    }
  }
  grid_cells_scanned_ += static_cast<std::uint64_t>(n);
  if (n == 0) return;
  if (n == 1) {
    const CellSoA& c = *lists[0];
    scratch_slots_.assign(c.slots.begin(), c.slots.end());
    return;
  }
  // Order-preservation rule (DESIGN.md §10): the RNG-consuming loss draws
  // in transmit must replay the brute-force scan's visit order exactly, so
  // the merged neighborhood is emitted in ascending attach_seq — the order
  // every per-cell lane already keeps. A 9-way sorted merge replaces the
  // old gather-then-sort.
  scratch_slots_.reserve(total);
  while (n > 1) {
    int best = 0;
    std::uint64_t best_seq = lists[0]->seqs[heads[0]];
    for (int j = 1; j < n; ++j) {
      const std::uint64_t seq = lists[j]->seqs[heads[j]];
      if (seq < best_seq) {
        best = j;
        best_seq = seq;
      }
    }
    const CellSoA& c = *lists[best];
    scratch_slots_.push_back(c.slots[heads[best]]);
    if (++heads[best] == c.size()) {
      --n;
      lists[best] = lists[n];
      heads[best] = heads[n];
    }
  }
  // Bulk-append the lone survivor's tail.
  const CellSoA& c = *lists[0];
  scratch_slots_.insert(scratch_slots_.end(), c.slots.begin() + heads[0],
                        c.slots.end());
}

bool Medium::auto_prefers_grid(wire::Channel channel) {
  if (cohort(channel).size() < kAutoMinCohort) return false;
  return grid(channel).nonempty_cells >= kAutoMinOccupiedCells;
}

std::uint32_t Medium::allocate_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  if (pos_x_.size() < slots_.size()) {
    pos_x_.resize(slots_.size());
    pos_y_.resize(slots_.size());
  }
  ++slots_[slot].generation;
  return slot;
}

Position Medium::slot_position(const Slot& s) const {
  return s.proxy != nullptr ? s.proxy->pos_at(sim_.now())
                            : s.radio->position();
}

void Medium::attach(Radio& radio) {
  const std::uint32_t slot = allocate_slot();
  Slot& s = slots_[slot];
  s.radio = &radio;
  s.attach_seq = next_attach_seq_++;
  radio.medium_slot_ = slot;
  if (shard_link_ != nullptr && shard_link_->is_shadow(radio.mac())) {
    // Client radio in a sharded formation: registered here (liveness,
    // teardown) but its phy presence — cohort and grid membership — lives
    // as a proxy slot on whichever shard owns its channel stripe.
    s.shadow = true;
    shard_link_->on_shadow_attach(radio);
    return;
  }
  cohort_insert(radio.channel(), slot);
  if (grid_enabled()) {
    s.max_speed = radio.config().max_speed_mps;
    s.safe_until = Time{0};
    grid_insert(radio.channel(), slot, radio.position());
    s.mobile = radio.config().mobile;
    if (s.mobile) mobiles(radio.channel()).push_back(slot);
  }
}

void Medium::detach(Radio& radio) {
  const std::uint32_t slot = radio.medium_slot_;
  assert(slot < slots_.size() && slots_[slot].radio == &radio);
  Slot& s = slots_[slot];
  if (s.shadow) {
    if (shard_link_ != nullptr) shard_link_->on_shadow_detach(radio);
    s.shadow = false;
    s.radio = nullptr;
    ++s.generation;
    free_slots_.push_back(slot);
    return;
  }
  cohort_remove(radio.channel(), slot);
  if (grid_enabled()) {
    grid_remove(radio.channel(), slot);
    if (s.mobile) {
      auto& m = mobiles(radio.channel());
      m.erase(std::remove(m.begin(), m.end(), slot), m.end());
      s.mobile = false;
    }
  }
  s.radio = nullptr;
  // Bump on detach too: in-flight deliveries stamped with the old
  // generation die immediately, before the slot is ever reused.
  ++s.generation;
  free_slots_.push_back(slot);
}

void Medium::proxy_attach(const ShardProxyDesc& desc) {
  auto info = std::make_unique<ProxyInfo>();
  info->gid = desc.gid;
  info->channel = desc.channel;
  info->addr_lo = desc.addr_lo;
  info->addr_hi = desc.addr_hi;
  info->pos_at = desc.pos_at;
  const std::uint32_t slot = allocate_slot();
  info->slot = slot;
  Slot& s = slots_[slot];
  s.proxy = info.get();
  s.attach_seq = next_attach_seq_++;
  cohort_insert(desc.channel, slot);
  if (grid_enabled()) {
    s.max_speed = desc.max_speed_mps;
    s.safe_until = Time{0};
    grid_insert(desc.channel, slot, info->pos_at(sim_.now()));
    s.mobile = true;  // clients tour routes; their proxies move with them
    mobiles(desc.channel).push_back(slot);
  }
  proxies_[desc.gid] = std::move(info);
}

void Medium::proxy_detach(std::uint64_t gid) {
  const auto it = proxies_.find(gid);
  if (it == proxies_.end()) return;  // depart raced a teardown: no-op
  const ProxyInfo& info = *it->second;
  const std::uint32_t slot = info.slot;
  Slot& s = slots_[slot];
  cohort_remove(info.channel, slot);
  if (grid_enabled()) {
    grid_remove(info.channel, slot);
    if (s.mobile) {
      auto& m = mobiles(info.channel);
      m.erase(std::remove(m.begin(), m.end(), slot), m.end());
      s.mobile = false;
    }
  }
  s.proxy = nullptr;
  // In-flight deliveries aimed at the departed proxy die on the stamp
  // check, exactly like deliveries to a detached radio.
  ++s.generation;
  free_slots_.push_back(slot);
  proxies_.erase(it);
}

void Medium::retune(Radio& radio, wire::Channel old_channel) {
  if (slots_[radio.medium_slot_].shadow) {
    shard_link_->on_shadow_retune(radio, old_channel);
    return;
  }
  cohort_remove(old_channel, radio.medium_slot_);
  cohort_insert(radio.channel(), radio.medium_slot_);
  if (grid_enabled()) {
    // Re-sampling the position here freshens a mobile radio's bucket and
    // position lanes for free; for static radios it is the same cell it
    // attached with.
    grid_remove(old_channel, radio.medium_slot_);
    grid_insert(radio.channel(), radio.medium_slot_, radio.position());
    if (slots_[radio.medium_slot_].mobile) {
      auto& m = mobiles(old_channel);
      m.erase(std::remove(m.begin(), m.end(), radio.medium_slot_), m.end());
      mobiles(radio.channel()).push_back(radio.medium_slot_);
    }
  }
}

Time Medium::airtime(std::size_t bytes, BitRate rate) {
  return kPlcpOverhead + rate.time_for_bytes(static_cast<double>(bytes));
}

void Medium::transmit(Radio& sender, wire::Frame frame) {
  ++frames_sent_;
  frame.channel = sender.channel();
  const Position tx_pos = sender.position();
  if (shard_link_ != nullptr) {
    if (slots_[sender.medium_slot_].shadow) {
      // Client radio in a sharded formation: the fan-out happens on the
      // shard(s) owning its channel stripe, via mailbox. The transmit is
      // counted here, where the radio lives, so frames_tx stays an exact
      // sum across the formation.
      shard_link_->on_shadow_transmit(sender, frame, tx_pos,
                                      sender.config().phy_rate);
      return;
    }
    // Native transmit near a stripe cut: mirror to adjacent-stripe shards
    // (no-op sends when this shard owns the whole channel).
    shard_link_->on_native_transmit(frame.channel, tx_pos, frame,
                                    sender.config().phy_rate,
                                    sender.mac().raw());
  }
  fanout(frame.channel, tx_pos, sim_.now(), sender.config().phy_rate,
         std::move(frame), sender.medium_slot_, 0);
}

void Medium::inject_shard_fanout(wire::Channel channel, const Position& tx_pos,
                                 Time t0, BitRate rate, wire::Frame frame,
                                 std::uint64_t exclude_gid) {
  frame.channel = channel;
  fanout(channel, tx_pos, t0, rate, std::move(frame), kNoSenderSlot,
         exclude_gid);
}

void Medium::fanout(wire::Channel channel, const Position& tx_pos, Time t0,
                    BitRate rate, wire::Frame&& frame,
                    std::uint32_t sender_slot, std::uint64_t exclude_gid) {
  bool use_grid = grid_enabled();
  if (config_.neighbor_index == NeighborIndex::kAuto) {
    use_grid = auto_prefers_grid(channel);
    ++(use_grid ? auto_grid_tx_ : auto_brute_tx_);
  }
  std::size_t count;
  if (use_grid) {
    // Bring this channel's mobile buckets and position lanes up to this
    // timestamp first, so the 3x3 neighborhood below cannot miss a receiver
    // that drifted across a cell boundary since the last transmit. The
    // sender itself is always in the center cell afterwards (mobile: just
    // refreshed; static: bucketed at its fixed attach position).
    refresh_mobile_buckets(channel);
    gather_neighborhood(channel, tx_pos);
    count = scratch_slots_.size();
  } else {
    count = cohort(channel).size();
  }
  // A local sender is always a member of its own candidate set (a remote
  // injection has no local sender); checking before the subtraction keeps
  // the examined counter exact and guards the empty set (size - 1 would
  // wrap to ~2^64).
  const std::size_t self = sender_slot != kNoSenderSlot ? 1 : 0;
  if (count < self + 1) return;  // nobody else in earshot
  candidates_examined_ += count - self;

  const Time arrival = airtime(frame.size_bytes, rate);
  const double impairment = channel_impairment(channel);

  // One pooled body cell for every receiver; reception-time fields (rssi)
  // are patched per delivery just before the upcall. Each scheduled
  // delivery carries only the cell index plus a POD reception record —
  // trivially copyable, so it takes the event queue's memcpy fast path and
  // allocates nothing.
  std::uint32_t body_idx;
  if (!free_bodies_.empty()) {
    body_idx = free_bodies_.back();
    free_bodies_.pop_back();
    bodies_[body_idx].frame = std::move(frame);
  } else {
    body_idx = static_cast<std::uint32_t>(bodies_.size());
    bodies_.push_back(BodyCell{std::move(frame), 0});
  }
  const wire::Frame& body = bodies_[body_idx].frame;

  // Shared per-candidate tail: range gate, loss draws, delivery schedule.
  // `generation` comes from the caller's lane so the grid loop never
  // touches the slot registry for candidates it rejects on range.
  const auto consider = [&](std::uint32_t rx_slot, double rx_x, double rx_y,
                            std::uint32_t generation) {
    // One sqrt per candidate: range check, loss, and RSSI all reuse it.
    const double dist = distance(tx_pos, Position{rx_x, rx_y});
    if (!propagation_.in_range_at(dist)) return;
    // Interference (fault injection) is independent of the distance loss.
    const double p_prop = propagation_.loss_probability_at(dist);
    const double p_loss = 1.0 - (1.0 - p_prop) * (1.0 - impairment);

    // Unicast frames to their addressee enjoy link-layer ARQ; everyone
    // else (and all broadcast traffic) gets a single shot. A proxy owns
    // exactly its client's MAC block (the address filter of the real
    // radio programs only addresses from that block).
    const Slot& rs = slots_[rx_slot];
    bool arq = false;
    if (!body.dst.is_broadcast()) {
      arq = rs.proxy != nullptr
                ? body.dst.raw() >= rs.proxy->addr_lo &&
                      body.dst.raw() < rs.proxy->addr_hi
                : rs.radio->owns_address(body.dst);
    }
    const int attempts_allowed = arq ? 1 + config_.retry_limit : 1;
    int attempt = 1;
    while (attempt <= attempts_allowed && rng_.chance(p_loss)) ++attempt;
    if (attempt > attempts_allowed) return;  // lost despite retries

    const double rssi = propagation_.rssi_dbm_at(dist);
    ++bodies_[body_idx].refs;
    ++fanout_scheduled_;
    // Each retry costs roughly one more airtime before the frame lands,
    // measured from the *decision* time t0 — for a local transmit that is
    // now, for a remote injection the sender's original timestamp, so the
    // two schedules agree on absolute delivery times. The lookahead
    // window guarantees t0 + airtime lands after the current drain point;
    // the max() is a deterministic safety valve, never taken in practice.
    // The receiver must still exist (radios detach from their destructor —
    // an AP can be torn down with frames in flight), be tuned and listening
    // when the frame ends; the (slot, generation) stamp checks that in O(1)
    // and cannot be fooled by a new radio at the old radio's address.
    sim_.post_at(std::max(t0 + arrival * attempt, sim_.now()),
                 [this, rx_slot, generation, body_idx, rssi] {
      const Slot& s = slots_[rx_slot];
      BodyCell& cell = bodies_[body_idx];
      if (s.generation != generation ||
          (s.radio == nullptr && s.proxy == nullptr)) {
        ++frames_dropped_at_rx_;
      } else if (s.proxy != nullptr) {
        // The loss draw happened here, where the cohort lives; the
        // listening/channel gate and the delivered/dropped count happen at
        // home, where the radio's true state lives.
        cell.frame.rssi_dbm = rssi;
        shard_link_->on_proxy_delivery(s.proxy->gid, cell.frame, rssi);
      } else if (!s.radio->listening() ||
                 s.radio->channel() != cell.frame.channel) {
        ++frames_dropped_at_rx_;
      } else {
        cell.frame.rssi_dbm = rssi;
        ++frames_delivered_;
        s.radio->deliver(cell.frame);
      }
      // Re-index: the deliver() upcall may have transmitted (growing the
      // pool); deque references stay valid but be explicit anyway.
      if (--bodies_[body_idx].refs == 0) free_bodies_.push_back(body_idx);
    });
  };

  // Skips a remote sender's own proxy: a radio must not hear itself via
  // its stand-in (cost-free in serial runs, where exclude_gid is 0).
  const auto is_excluded = [&](const Slot& s) {
    return exclude_gid != 0 && s.proxy != nullptr &&
           s.proxy->gid == exclude_gid;
  };

  if (use_grid) {
    // Candidate positions come from the central per-slot lanes — fresh as
    // of this timestamp's sweep and bit-identical to position() — so an
    // out-of-range candidate costs a few loads and no callback into Radio.
    // The exception is a mobile the sweep skipped on its motion-bound
    // horizon: its lanes are stale, so it is re-sampled here, on the few
    // slots that actually surface as candidates instead of the whole
    // channel roster.
    const Time now = sim_.now();
    const std::size_t m = scratch_slots_.size();
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint32_t rx_slot = scratch_slots_[i];
      if (rx_slot == sender_slot) continue;
      Slot& s = slots_[rx_slot];
      if (is_excluded(s)) continue;
      if (s.mobile && s.pos_stamp != now) {
        const Position rx_pos = slot_position(s);
        pos_x_[rx_slot] = rx_pos.x;
        pos_y_[rx_slot] = rx_pos.y;
        s.pos_stamp = now;
        if (s.max_speed > 0.0) s.safe_until = motion_horizon(s, rx_pos);
      }
      consider(rx_slot, pos_x_[rx_slot], pos_y_[rx_slot], s.generation);
    }
  } else {
    for (const std::uint32_t rx_slot : cohort(channel)) {
      if (rx_slot == sender_slot) continue;
      const Slot& s = slots_[rx_slot];
      if (is_excluded(s)) continue;
      const Position rx_pos = slot_position(s);
      consider(rx_slot, rx_pos.x, rx_pos.y, s.generation);
    }
  }
  // Everyone missed the loss draw: recycle the cell right away.
  if (bodies_[body_idx].refs == 0) free_bodies_.push_back(body_idx);
}

}  // namespace spider::phy
