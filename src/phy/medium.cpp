#include "phy/medium.hpp"

#include <algorithm>

#include "phy/radio.hpp"

namespace spider::phy {

namespace {
/// 802.11b long-preamble PLCP overhead.
constexpr Time kPlcpOverhead = usec(192);
}  // namespace

Medium::Medium(sim::Simulator& simulator, Propagation propagation, Rng rng)
    : sim_(simulator), propagation_(propagation), rng_(rng) {}

void Medium::attach(Radio& radio) { radios_.push_back(&radio); }

void Medium::detach(Radio& radio) {
  radios_.erase(std::remove(radios_.begin(), radios_.end(), &radio), radios_.end());
}

Time Medium::airtime(std::size_t bytes, BitRate rate) {
  return kPlcpOverhead + rate.time_for_bytes(static_cast<double>(bytes));
}

void Medium::transmit(Radio& sender, wire::Frame frame) {
  ++frames_sent_;
  frame.channel = sender.channel();
  const Position tx_pos = sender.position();
  const Time arrival = airtime(frame.size_bytes, sender.config().phy_rate);

  for (Radio* rx : radios_) {
    if (rx == &sender) continue;
    if (rx->channel() != frame.channel) continue;  // early filter; recheck on arrival
    const Position rx_pos = rx->position();
    if (!propagation_.in_range(tx_pos, rx_pos)) continue;
    const double p_loss = propagation_.loss_probability(tx_pos, rx_pos);

    // Unicast frames to their addressee enjoy link-layer ARQ; everyone
    // else (and all broadcast traffic) gets a single shot.
    const bool arq = !frame.dst.is_broadcast() && rx->owns_address(frame.dst);
    const int attempts_allowed = arq ? 1 + kRetryLimit : 1;
    int attempt = 1;
    while (attempt <= attempts_allowed && rng_.chance(p_loss)) ++attempt;
    if (attempt > attempts_allowed) continue;  // lost despite retries

    wire::Frame delivered = frame;
    delivered.rssi_dbm = propagation_.rssi_dbm(tx_pos, rx_pos);
    ++frames_delivered_;
    // Each retry costs roughly one more airtime before the frame lands.
    // The receiver must still be tuned and listening when the frame ends.
    sim_.schedule(arrival * attempt, [rx, delivered = std::move(delivered)] {
      if (rx->listening() && rx->channel() == delivered.channel) {
        rx->deliver(delivered);
      }
    });
  }
}

}  // namespace spider::phy
