#include "phy/medium.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/tracer.hpp"
#include "phy/radio.hpp"

namespace spider::phy {

namespace {
/// 802.11b long-preamble PLCP overhead.
constexpr Time kPlcpOverhead = usec(192);
}  // namespace

Medium::Medium(sim::Simulator& simulator, Propagation propagation, Rng rng,
               MediumConfig config)
    : sim_(simulator),
      propagation_(propagation),
      rng_(rng),
      config_(config),
      // Correctness of the 3x3 neighborhood needs cell >= range (a radio at
      // exactly range_m must land no further than one cell away); clamp
      // explicit overrides up, and keep a floor for degenerate zero-range
      // propagation configs so cell_coord never divides by zero.
      cell_m_(std::max({config.grid_cell_m, propagation_.config().range_m,
                        1e-3})) {}

Medium::Medium(sim::Simulator& simulator, Propagation propagation, Rng rng,
               int retry_limit)
    : Medium(simulator, propagation, rng,
             MediumConfig{.retry_limit = retry_limit}) {}

void Medium::set_channel_impairment(wire::Channel channel, double extra_loss) {
  const double clamped = std::clamp(extra_loss, 0.0, 1.0);
  if (flat_channel(channel)) {
    impairment_flat_[static_cast<std::size_t>(channel)] = clamped;
  } else {
    impairments_other_[channel] = clamped;
  }
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kImpairmentSet,
               .channel = static_cast<std::int16_t>(channel),
               .track = obs::track::channel(channel), .value = clamped);
}

void Medium::clear_channel_impairment(wire::Channel channel) {
  if (flat_channel(channel)) {
    impairment_flat_[static_cast<std::size_t>(channel)] = 0.0;
  } else {
    impairments_other_.erase(channel);
  }
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kImpairmentClear,
               .channel = static_cast<std::int16_t>(channel),
               .track = obs::track::channel(channel));
}

double Medium::channel_impairment(wire::Channel channel) const {
  if (flat_channel(channel)) {
    return impairment_flat_[static_cast<std::size_t>(channel)];
  }
  auto it = impairments_other_.find(channel);
  return it == impairments_other_.end() ? 0.0 : it->second;
}

std::vector<std::uint32_t>& Medium::cohort(wire::Channel channel) {
  if (flat_channel(channel)) {
    return cohorts_[static_cast<std::size_t>(channel)];
  }
  return cohorts_other_[channel];
}

void Medium::cohort_insert(wire::Channel channel, std::uint32_t slot) {
  auto& v = cohort(channel);
  const std::uint64_t seq = slots_[slot].attach_seq;
  // Keep the cohort sorted by attach order so the transmit loop visits
  // same-channel radios in the exact sequence the old whole-table scan
  // would have (a retuned radio re-enters at its original rank, not at the
  // back). Cohorts are small (radios per channel), so the shift is cheap.
  auto it = std::lower_bound(
      v.begin(), v.end(), seq, [this](std::uint32_t s, std::uint64_t q) {
        return slots_[s].attach_seq < q;
      });
  v.insert(it, slot);
}

void Medium::cohort_remove(wire::Channel channel, std::uint32_t slot) {
  auto& v = cohort(channel);
  v.erase(std::remove(v.begin(), v.end(), slot), v.end());
}

std::int32_t Medium::cell_coord(double meters) const {
  return static_cast<std::int32_t>(std::floor(meters / cell_m_));
}

Medium::CellMap& Medium::grid(wire::Channel channel) {
  if (flat_channel(channel)) {
    return grids_[static_cast<std::size_t>(channel)];
  }
  return grids_other_[channel];
}

void Medium::grid_insert(wire::Channel channel, std::uint32_t slot,
                         const Position& pos) {
  Slot& s = slots_[slot];
  s.cell = cell_of(pos);
  grid(channel)[s.cell].push_back(slot);
}

void Medium::grid_remove(wire::Channel channel, std::uint32_t slot) {
  CellMap& g = grid(channel);
  auto it = g.find(slots_[slot].cell);
  assert(it != g.end());
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), slot), v.end());
  if (v.empty()) g.erase(it);
}

void Medium::refresh_mobile_buckets() {
  const Time now = sim_.now();
  if (now == last_refresh_) return;
  last_refresh_ = now;
  for (const std::uint32_t slot : mobile_slots_) {
    Slot& s = slots_[slot];
    const std::uint64_t cell = cell_of(s.radio->position());
    if (cell == s.cell) continue;
    const wire::Channel channel = s.radio->channel();
    CellMap& g = grid(channel);
    auto it = g.find(s.cell);
    assert(it != g.end());
    auto& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), slot), v.end());
    if (v.empty()) g.erase(it);
    s.cell = cell;
    g[cell].push_back(slot);
    ++grid_rebuckets_;
  }
}

void Medium::gather_neighborhood(wire::Channel channel, const Position& pos) {
  scratch_.clear();
  CellMap& g = grid(channel);
  const std::int32_t cx = cell_coord(pos.x);
  const std::int32_t cy = cell_coord(pos.y);
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      ++grid_cells_scanned_;
      const auto it = g.find(pack_cell(cx + dx, cy + dy));
      if (it == g.end()) continue;
      scratch_.insert(scratch_.end(), it->second.begin(), it->second.end());
    }
  }
  // Order-preservation rule (DESIGN.md §10): the RNG-consuming loss draws
  // below must replay the brute-force scan's visit order exactly, so the
  // merged neighborhood is sorted by attach_seq — the order the per-channel
  // cohort keeps. Cell membership order is irrelevant after this.
  std::sort(scratch_.begin(), scratch_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return slots_[a].attach_seq < slots_[b].attach_seq;
            });
}

void Medium::attach(Radio& radio) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.radio = &radio;
  ++s.generation;
  s.attach_seq = next_attach_seq_++;
  radio.medium_slot_ = slot;
  cohort_insert(radio.channel(), slot);
  if (grid_enabled()) {
    grid_insert(radio.channel(), slot, radio.position());
    s.mobile = radio.config().mobile;
    if (s.mobile) mobile_slots_.push_back(slot);
  }
}

void Medium::detach(Radio& radio) {
  const std::uint32_t slot = radio.medium_slot_;
  assert(slot < slots_.size() && slots_[slot].radio == &radio);
  cohort_remove(radio.channel(), slot);
  Slot& s = slots_[slot];
  if (grid_enabled()) {
    grid_remove(radio.channel(), slot);
    if (s.mobile) {
      mobile_slots_.erase(
          std::remove(mobile_slots_.begin(), mobile_slots_.end(), slot),
          mobile_slots_.end());
      s.mobile = false;
    }
  }
  s.radio = nullptr;
  // Bump on detach too: in-flight deliveries stamped with the old
  // generation die immediately, before the slot is ever reused.
  ++s.generation;
  free_slots_.push_back(slot);
}

void Medium::retune(Radio& radio, wire::Channel old_channel) {
  cohort_remove(old_channel, radio.medium_slot_);
  cohort_insert(radio.channel(), radio.medium_slot_);
  if (grid_enabled()) {
    // Re-sampling the position here freshens a mobile radio's bucket for
    // free; for static radios it is the same cell it attached with.
    grid_remove(old_channel, radio.medium_slot_);
    grid_insert(radio.channel(), radio.medium_slot_, radio.position());
  }
}

Time Medium::airtime(std::size_t bytes, BitRate rate) {
  return kPlcpOverhead + rate.time_for_bytes(static_cast<double>(bytes));
}

void Medium::transmit(Radio& sender, wire::Frame frame) {
  ++frames_sent_;
  frame.channel = sender.channel();
  const Position tx_pos = sender.position();
  const std::vector<std::uint32_t>* candidates;
  if (grid_enabled()) {
    // Bring every mobile radio's bucket up to this timestamp first, so the
    // 3x3 neighborhood below cannot miss a receiver that drifted across a
    // cell boundary since the last transmit. The sender itself is always in
    // the center cell afterwards (mobile: just refreshed; static: bucketed
    // at its fixed attach position).
    refresh_mobile_buckets();
    gather_neighborhood(frame.channel, tx_pos);
    candidates = &scratch_;
  } else {
    candidates = &cohort(frame.channel);
  }
  // The sender is always a member of its own candidate set.
  candidates_examined_ += candidates->size() - 1;
  if (candidates->size() < 2) return;  // nobody else in earshot

  const Time arrival = airtime(frame.size_bytes, sender.config().phy_rate);
  const double impairment = channel_impairment(frame.channel);

  // One pooled body cell for every receiver; reception-time fields (rssi)
  // are patched per delivery just before the upcall. Each scheduled
  // delivery carries only the cell index plus a POD reception record —
  // trivially copyable, so it takes the event queue's memcpy fast path and
  // allocates nothing.
  std::uint32_t body_idx;
  if (!free_bodies_.empty()) {
    body_idx = free_bodies_.back();
    free_bodies_.pop_back();
    bodies_[body_idx].frame = std::move(frame);
  } else {
    body_idx = static_cast<std::uint32_t>(bodies_.size());
    bodies_.push_back(BodyCell{std::move(frame), 0});
  }
  const wire::Frame& body = bodies_[body_idx].frame;

  for (const std::uint32_t rx_slot : *candidates) {
    Radio* rx = slots_[rx_slot].radio;
    if (rx == &sender) continue;
    const Position rx_pos = rx->position();
    // One sqrt per candidate: range check, loss, and RSSI all reuse it.
    const double dist = distance(tx_pos, rx_pos);
    if (!propagation_.in_range_at(dist)) continue;
    // Interference (fault injection) is independent of the distance loss.
    const double p_prop = propagation_.loss_probability_at(dist);
    const double p_loss = 1.0 - (1.0 - p_prop) * (1.0 - impairment);

    // Unicast frames to their addressee enjoy link-layer ARQ; everyone
    // else (and all broadcast traffic) gets a single shot.
    const bool arq = !body.dst.is_broadcast() && rx->owns_address(body.dst);
    const int attempts_allowed = arq ? 1 + config_.retry_limit : 1;
    int attempt = 1;
    while (attempt <= attempts_allowed && rng_.chance(p_loss)) ++attempt;
    if (attempt > attempts_allowed) continue;  // lost despite retries

    const double rssi = propagation_.rssi_dbm_at(dist);
    const std::uint32_t generation = slots_[rx_slot].generation;
    ++bodies_[body_idx].refs;
    ++fanout_scheduled_;
    // Each retry costs roughly one more airtime before the frame lands.
    // The receiver must still exist (radios detach from their destructor —
    // an AP can be torn down with frames in flight), be tuned and listening
    // when the frame ends; the (slot, generation) stamp checks that in O(1)
    // and cannot be fooled by a new radio at the old radio's address.
    sim_.post(arrival * attempt, [this, rx_slot, generation, body_idx, rssi] {
      const Slot& s = slots_[rx_slot];
      BodyCell& cell = bodies_[body_idx];
      if (s.radio == nullptr || s.generation != generation ||
          !s.radio->listening() || s.radio->channel() != cell.frame.channel) {
        ++frames_dropped_at_rx_;
      } else {
        cell.frame.rssi_dbm = rssi;
        ++frames_delivered_;
        s.radio->deliver(cell.frame);
      }
      // Re-index: the deliver() upcall may have transmitted (growing the
      // pool); deque references stay valid but be explicit anyway.
      if (--bodies_[body_idx].refs == 0) free_bodies_.push_back(body_idx);
    });
  }
  // Everyone missed the loss draw: recycle the cell right away.
  if (bodies_[body_idx].refs == 0) free_bodies_.push_back(body_idx);
}

}  // namespace spider::phy
