#include "phy/medium.hpp"

#include <algorithm>

#include "phy/radio.hpp"

namespace spider::phy {

namespace {
/// 802.11b long-preamble PLCP overhead.
constexpr Time kPlcpOverhead = usec(192);
}  // namespace

Medium::Medium(sim::Simulator& simulator, Propagation propagation, Rng rng,
               int retry_limit)
    : sim_(simulator),
      propagation_(propagation),
      rng_(rng),
      retry_limit_(retry_limit) {}

void Medium::set_channel_impairment(wire::Channel channel, double extra_loss) {
  impairments_[channel] = std::clamp(extra_loss, 0.0, 1.0);
}

void Medium::clear_channel_impairment(wire::Channel channel) {
  impairments_.erase(channel);
}

double Medium::channel_impairment(wire::Channel channel) const {
  auto it = impairments_.find(channel);
  return it == impairments_.end() ? 0.0 : it->second;
}

void Medium::attach(Radio& radio) { radios_.push_back(&radio); }

void Medium::detach(Radio& radio) {
  radios_.erase(std::remove(radios_.begin(), radios_.end(), &radio), radios_.end());
}

Time Medium::airtime(std::size_t bytes, BitRate rate) {
  return kPlcpOverhead + rate.time_for_bytes(static_cast<double>(bytes));
}

void Medium::transmit(Radio& sender, wire::Frame frame) {
  ++frames_sent_;
  frame.channel = sender.channel();
  const Position tx_pos = sender.position();
  const Time arrival = airtime(frame.size_bytes, sender.config().phy_rate);
  const double impairment = channel_impairment(frame.channel);

  for (Radio* rx : radios_) {
    if (rx == &sender) continue;
    if (rx->channel() != frame.channel) continue;  // early filter; recheck on arrival
    const Position rx_pos = rx->position();
    if (!propagation_.in_range(tx_pos, rx_pos)) continue;
    // Interference (fault injection) is independent of the distance loss.
    const double p_prop = propagation_.loss_probability(tx_pos, rx_pos);
    const double p_loss = 1.0 - (1.0 - p_prop) * (1.0 - impairment);

    // Unicast frames to their addressee enjoy link-layer ARQ; everyone
    // else (and all broadcast traffic) gets a single shot.
    const bool arq = !frame.dst.is_broadcast() && rx->owns_address(frame.dst);
    const int attempts_allowed = arq ? 1 + retry_limit_ : 1;
    int attempt = 1;
    while (attempt <= attempts_allowed && rng_.chance(p_loss)) ++attempt;
    if (attempt > attempts_allowed) continue;  // lost despite retries

    wire::Frame delivered = frame;
    delivered.rssi_dbm = propagation_.rssi_dbm(tx_pos, rx_pos);
    ++frames_delivered_;
    // Each retry costs roughly one more airtime before the frame lands.
    // The receiver must still exist (radios detach from their destructor —
    // an AP can be torn down with frames in flight), be tuned and listening
    // when the frame ends.
    sim_.schedule(arrival * attempt, [this, rx, delivered = std::move(delivered)] {
      if (std::find(radios_.begin(), radios_.end(), rx) == radios_.end()) {
        return;
      }
      if (rx->listening() && rx->channel() == delivered.channel) {
        rx->deliver(delivered);
      }
    });
  }
}

}  // namespace spider::phy
