#pragma once

#include <algorithm>
#include <cmath>

#include "util/units.hpp"

namespace spider::phy {

/// Radio propagation model.
///
/// The paper does not model propagation analytically; it assumes a
/// practical Wi-Fi range of 100 m and an aggregate frame loss rate h
/// (10% in the model validation). We use a disc model with a loss floor
/// that ramps toward 1 at the cell edge: inside `good_radius` the loss is
/// `base_loss`; between `good_radius` and `range` it rises linearly to 1.
/// This reproduces the "gray zone" that makes edge-of-cell joins flaky
/// without requiring a full fading simulator.
struct PropagationConfig {
  double range_m = 100.0;      ///< beyond this nothing is received
  double good_radius_m = 80.0; ///< loss stays at base_loss up to here
  double base_loss = 0.10;     ///< h in the paper's model
  double tx_power_dbm = 20.0;
  double path_loss_exponent = 3.0;
};

class Propagation {
 public:
  explicit Propagation(PropagationConfig config = {});

  const PropagationConfig& config() const { return config_; }

  bool in_range(const Position& a, const Position& b) const;

  /// Per-frame loss probability at the given separation (1.0 out of range).
  double loss_probability(const Position& a, const Position& b) const;

  /// Log-distance RSSI estimate in dBm; used for AP-selection tiebreaks.
  double rssi_dbm(const Position& a, const Position& b) const;

  // Distance-based variants for callers that already computed the
  // separation (the medium's transmit loop needs all three answers for one
  // candidate; recomputing sqrt three times showed up in profiles). Inline:
  // they run once per same-channel candidate on every transmit.
  bool in_range_at(double distance_m) const {
    return distance_m <= config_.range_m;
  }
  double loss_probability_at(double d) const {
    if (d > config_.range_m) return 1.0;
    if (d <= config_.good_radius_m) return config_.base_loss;
    const double edge_span = config_.range_m - config_.good_radius_m;
    const double frac =
        edge_span <= 0.0 ? 1.0 : (d - config_.good_radius_m) / edge_span;
    return std::clamp(config_.base_loss + frac * (1.0 - config_.base_loss),
                      0.0, 1.0);
  }
  double rssi_dbm_at(double distance_m) const {
    const double d = std::max(1.0, distance_m);
    return config_.tx_power_dbm - 40.0 -
           10.0 * config_.path_loss_exponent * std::log10(d);
  }

 private:
  PropagationConfig config_;
};

}  // namespace spider::phy
