#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "phy/propagation.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "util/units.hpp"
#include "wire/frame.hpp"

namespace spider::phy {

class Radio;

/// The shared wireless medium.
///
/// Radios register themselves and transmit frames; the medium decides who
/// hears what. Delivery requires (a) same channel, (b) receiver not mid
/// channel-switch, (c) within propagation range, and (d) surviving an
/// independent Bernoulli loss draw from the propagation model. Frames
/// arrive after their serialisation airtime.
///
/// 802.11 link-layer ARQ is modelled statistically: a unicast frame is
/// retransmitted up to `retry_limit` times, so its delivery probability to
/// its addressee is 1 - p^(retries+1) with each extra attempt adding one
/// airtime of latency. Broadcast frames (beacons, probe requests) get a
/// single attempt, as on real hardware — which is exactly why the paper's
/// join model sees a flat per-message loss h on the handshake while bulk
/// TCP rides an almost-lossless link inside the cell.
///
/// Deliberate simplification: there is no CSMA/collision model. The paper's
/// effects come from scheduling, handshake timeouts and backhaul limits, not
/// from MAC contention (its outdoor cells are sparse); modelling loss as a
/// distance-dependent Bernoulli process keeps runs deterministic per seed
/// and is consistent with the paper's own analytical treatment (flat h).
///
/// Hot-path engineering (see DESIGN.md §8): radios are held in a
/// generation-stamped slot registry and indexed per channel, so transmit
/// touches only same-channel radios and in-flight deliveries validate the
/// receiver in O(1) (immune to a new radio reusing a detached radio's
/// address). The frame body is moved once into a refcounted pooled cell;
/// each scheduled delivery carries only {cell index, slot, generation,
/// rssi} — a trivially copyable reception record that rides the event
/// queue's inline buffer via its memcpy fast path, so the whole fan-out
/// performs zero heap allocations in steady state.
class Medium {
 public:
  /// Default max retransmissions of a unicast frame. Stock drivers use ~7;
  /// the conservative default of 4 reflects the short-retry behaviour under
  /// mobility. Sweeps (fault-resilience, ARQ ablations) pass their own
  /// limit to the constructor. The sender's occupancy for retries is not
  /// modelled.
  static constexpr int kDefaultRetryLimit = 4;

  Medium(sim::Simulator& simulator, Propagation propagation, Rng rng,
         int retry_limit = kDefaultRetryLimit);

  /// Radios self-register from their constructor/destructor.
  void attach(Radio& radio);
  void detach(Radio& radio);

  /// Broadcasts `frame` from `sender` on the sender's current channel.
  /// Called by Radio once the frame reaches the head of its TX queue.
  void transmit(Radio& sender, wire::Frame frame);

  const Propagation& propagation() const { return propagation_; }
  sim::Simulator& simulator() { return sim_; }
  int retry_limit() const { return retry_limit_; }

  /// Fault-injection hook: adds `extra_loss` (in [0,1]) to every frame on
  /// `channel`, combined independently with the propagation loss. One
  /// impairment per channel; setting again overwrites, clearing removes.
  void set_channel_impairment(wire::Channel channel, double extra_loss);
  void clear_channel_impairment(wire::Channel channel);
  /// Current extra loss on `channel` (0 when unimpaired).
  double channel_impairment(wire::Channel channel) const;

  /// Airtime of a frame of `bytes` at `rate` (PLCP preamble + payload).
  static Time airtime(std::size_t bytes, BitRate rate);

  std::uint64_t frames_sent() const { return frames_sent_; }
  /// Frames that actually reached a receiver's upcall (counted at delivery
  /// time, not when scheduled — a receiver that detaches or retunes while
  /// the frame is in the air is a drop, not a delivery).
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  /// In-flight frames that missed because the receiver detached, retuned,
  /// or was mid-reset when the frame arrived.
  std::uint64_t frames_dropped_at_rx() const { return frames_dropped_at_rx_; }
  /// Per-receiver deliveries scheduled (fan-out actually put on the wire).
  std::uint64_t fanout_scheduled() const { return fanout_scheduled_; }
  /// Same-channel candidate radios examined across all transmits.
  std::uint64_t candidates_examined() const { return candidates_examined_; }

  /// Folds the medium's fan-out counters into engine perf counters.
  void add_perf(sim::PerfCounters& perf) const {
    perf.frames_fanout += fanout_scheduled_;
    perf.radio_candidates += candidates_examined_;
  }

 private:
  friend class Radio;

  /// Slot registry entry. `generation` bumps on every attach *and* detach,
  /// so an in-flight delivery stamped with (slot, generation) can tell a
  /// still-attached receiver from any later tenant of the same slot — even
  /// one allocated at the detached radio's exact address.
  struct Slot {
    Radio* radio = nullptr;
    std::uint32_t generation = 0;
    std::uint64_t attach_seq = 0;  ///< global attach order, for RNG stability
  };

  /// Channels below this bound (the whole 2.4 GHz band; the paper sweeps
  /// {1,6,11}) use flat arrays for the per-channel radio cohort and the
  /// impairment lookup — no hashing on the transmit path. Anything else
  /// falls back to maps.
  static constexpr int kFlatChannels = 15;
  static bool flat_channel(wire::Channel c) {
    return c >= 0 && c < kFlatChannels;
  }

  std::vector<std::uint32_t>& cohort(wire::Channel channel);
  void cohort_insert(wire::Channel channel, std::uint32_t slot);
  void cohort_remove(wire::Channel channel, std::uint32_t slot);
  /// Called by Radio when its tuned channel actually changes.
  void retune(Radio& radio, wire::Channel old_channel);

  sim::Simulator& sim_;
  Propagation propagation_;
  Rng rng_;
  int retry_limit_;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_attach_seq_ = 0;
  /// Per-channel cohorts of slot ids, ordered by attach_seq so transmit
  /// examines same-channel radios in exactly the order the old full-table
  /// scan did (RNG draw order is part of the determinism contract).
  std::array<std::vector<std::uint32_t>, kFlatChannels> cohorts_;
  std::unordered_map<wire::Channel, std::vector<std::uint32_t>> cohorts_other_;

  std::array<double, kFlatChannels> impairment_flat_{};
  std::unordered_map<wire::Channel, double> impairments_other_;

  /// One transmitted frame body shared by its whole fan-out. `refs` counts
  /// scheduled deliveries still in flight (non-atomic: the medium lives on
  /// one simulation thread); cells are recycled through free_bodies_, so
  /// steady-state transmits reuse storage instead of allocating. A deque
  /// keeps cell references stable while a deliver() upcall reentrantly
  /// transmits (which may grow the pool).
  struct BodyCell {
    wire::Frame frame;
    std::uint32_t refs = 0;
  };
  std::deque<BodyCell> bodies_;
  std::vector<std::uint32_t> free_bodies_;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_dropped_at_rx_ = 0;
  std::uint64_t fanout_scheduled_ = 0;
  std::uint64_t candidates_examined_ = 0;
};

}  // namespace spider::phy
