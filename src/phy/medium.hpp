#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "phy/propagation.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "util/units.hpp"
#include "wire/frame.hpp"

namespace spider::phy {

class Radio;
class ShardLink;
struct MediumTestPeer;
struct ShardProxyDesc;

/// How Medium::transmit finds candidate receivers on the sender's channel.
enum class NeighborIndex {
  /// Linear scan of the whole per-channel cohort. O(radios-on-channel) per
  /// transmission; kept as the differential-test oracle and the perf
  /// baseline for the grid.
  kBruteForce,
  /// Uniform spatial hash: radios bucket into range-sized cells, transmit
  /// visits only the 3x3 cell neighborhood of the transmitter. Sub-linear
  /// in deployment size and byte-identical to the brute-force scan (see
  /// DESIGN.md §10 for the order-preservation argument).
  kGrid,
  /// Per-channel adaptive choice: each transmit picks grid or brute force
  /// from the channel's measured cohort density (cohort size and occupied
  /// cell count — see DESIGN.md §10). Both paths are byte-identical by the
  /// order-preservation rule, so the pick is a pure cost decision; grid
  /// membership is maintained either way.
  kAuto,
};

/// Default max retransmissions of a unicast frame. Stock drivers use ~7;
/// the conservative default of 4 reflects the short-retry behaviour under
/// mobility. The sender's occupancy for retries is not modelled.
inline constexpr int kMediumDefaultRetryLimit = 4;

/// Construction-time knobs of the medium. The neighbor index is fixed for
/// the medium's lifetime — differential tests build one medium per mode.
struct MediumConfig {
  NeighborIndex neighbor_index = NeighborIndex::kGrid;
  /// Grid cell edge in meters. 0 derives it from the propagation range;
  /// explicit values below the range are clamped up to it (correctness of
  /// the 3x3 neighborhood requires cell >= range, DESIGN.md §10).
  double grid_cell_m = 0.0;
  /// 802.11 ARQ retry budget for unicast frames to their addressee.
  int retry_limit = kMediumDefaultRetryLimit;
};

/// The shared wireless medium.
///
/// Radios register themselves and transmit frames; the medium decides who
/// hears what. Delivery requires (a) same channel, (b) receiver not mid
/// channel-switch, (c) within propagation range, and (d) surviving an
/// independent Bernoulli loss draw from the propagation model. Frames
/// arrive after their serialisation airtime.
///
/// 802.11 link-layer ARQ is modelled statistically: a unicast frame is
/// retransmitted up to `retry_limit` times, so its delivery probability to
/// its addressee is 1 - p^(retries+1) with each extra attempt adding one
/// airtime of latency. Broadcast frames (beacons, probe requests) get a
/// single attempt, as on real hardware — which is exactly why the paper's
/// join model sees a flat per-message loss h on the handshake while bulk
/// TCP rides an almost-lossless link inside the cell.
///
/// Deliberate simplification: there is no CSMA/collision model. The paper's
/// effects come from scheduling, handshake timeouts and backhaul limits, not
/// from MAC contention (its outdoor cells are sparse); modelling loss as a
/// distance-dependent Bernoulli process keeps runs deterministic per seed
/// and is consistent with the paper's own analytical treatment (flat h).
///
/// Hot-path engineering (see DESIGN.md §8): radios are held in a
/// generation-stamped slot registry and indexed per channel, so transmit
/// touches only same-channel radios and in-flight deliveries validate the
/// receiver in O(1) (immune to a new radio reusing a detached radio's
/// address). At city scale even the per-channel cohort is too big to scan
/// per frame, so radios additionally bucket into a uniform spatial hash
/// grid (DESIGN.md §10): transmit visits only the 3x3 range-sized cell
/// neighborhood of the transmitter, with candidate order — and therefore
/// every RNG draw and delivered-frame set — byte-identical to the
/// brute-force scan, which stays available via MediumConfig as the
/// differential-test oracle. Cells are flat SoA lanes (slot / attach_seq /
/// position / generation in parallel contiguous arrays, attach_seq-sorted)
/// behind an open-addressed cell table with a per-channel occupancy bitmap,
/// so the 9-cell probe skips empty cells on one bit test and the
/// neighborhood is a 9-way sorted merge that streams lanes — no hashing
/// chains, no per-transmit sort, no per-candidate position() calls. The
/// frame body is moved once into a refcounted pooled cell; each scheduled
/// delivery carries only {cell index, slot, generation, rssi} — a trivially
/// copyable reception record that rides the event queue's inline buffer via
/// its memcpy fast path, so the whole fan-out performs zero heap
/// allocations in steady state.
class Medium {
 public:
  /// Back-compat alias for the ARQ default (see kMediumDefaultRetryLimit).
  /// Sweeps (fault-resilience, ARQ ablations) pass their own limit via
  /// MediumConfig or the retry-limit constructor.
  static constexpr int kDefaultRetryLimit = kMediumDefaultRetryLimit;

  Medium(sim::Simulator& simulator, Propagation propagation, Rng rng,
         MediumConfig config = {});
  /// Convenience for callers that only tweak the ARQ budget.
  Medium(sim::Simulator& simulator, Propagation propagation, Rng rng,
         int retry_limit);

  /// Radios self-register from their constructor/destructor.
  void attach(Radio& radio);
  void detach(Radio& radio);

  /// Broadcasts `frame` from `sender` on the sender's current channel.
  /// Called by Radio once the frame reaches the head of its TX queue.
  void transmit(Radio& sender, wire::Frame frame);

  const Propagation& propagation() const { return propagation_; }
  sim::Simulator& simulator() { return sim_; }
  int retry_limit() const { return config_.retry_limit; }
  const MediumConfig& config() const { return config_; }
  /// Grid cell edge actually in use (propagation range unless overridden).
  double grid_cell_m() const { return cell_m_; }

  /// Fault-injection hook: adds `extra_loss` (in [0,1]) to every frame on
  /// `channel`, combined independently with the propagation loss. One
  /// impairment per channel; setting again overwrites, clearing removes.
  void set_channel_impairment(wire::Channel channel, double extra_loss);
  void clear_channel_impairment(wire::Channel channel);
  /// Current extra loss on `channel` (0 when unimpaired).
  double channel_impairment(wire::Channel channel) const;

  /// Airtime of a frame of `bytes` at `rate` (PLCP preamble + payload).
  static Time airtime(std::size_t bytes, BitRate rate);

  std::uint64_t frames_sent() const { return frames_sent_; }
  /// Frames that actually reached a receiver's upcall (counted at delivery
  /// time, not when scheduled — a receiver that detaches or retunes while
  /// the frame is in the air is a drop, not a delivery).
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  /// In-flight frames that missed because the receiver detached, retuned,
  /// or was mid-reset when the frame arrived.
  std::uint64_t frames_dropped_at_rx() const { return frames_dropped_at_rx_; }
  /// Per-receiver deliveries scheduled (fan-out actually put on the wire).
  std::uint64_t fanout_scheduled() const { return fanout_scheduled_; }
  /// Same-channel candidate radios examined across all transmits.
  std::uint64_t candidates_examined() const { return candidates_examined_; }
  /// *Occupied* grid cells probed by neighborhood queries (at most 9 per
  /// grid-mode transmit; empty cells are skipped by the occupancy bitmap
  /// and no longer counted; 0 under brute force).
  std::uint64_t grid_cells_scanned() const { return grid_cells_scanned_; }
  /// Mobile radios moved between grid cells by the position-epoch sweep
  /// (stationary radios never contribute).
  std::uint64_t grid_rebuckets() const { return grid_rebuckets_; }
  /// kAuto transmits that picked the grid path / the brute-force path.
  /// Both zero unless neighbor_index == kAuto.
  std::uint64_t neighbor_auto_grid_tx() const { return auto_grid_tx_; }
  std::uint64_t neighbor_auto_brute_tx() const { return auto_brute_tx_; }

  /// Folds the medium's fan-out counters into engine perf counters.
  void add_perf(sim::PerfCounters& perf) const {
    perf.frames_tx += frames_sent_;
    perf.frames_fanout += fanout_scheduled_;
    perf.radio_candidates += candidates_examined_;
    perf.grid_cells_scanned += grid_cells_scanned_;
    perf.grid_rebuckets += grid_rebuckets_;
  }

  // --- sharded formations (DESIGN.md §12) ------------------------------
  // With a ShardLink installed this medium is one shard of a partitioned
  // city: client radios homed here become "shadows" (registered but absent
  // from cohorts and grid — their phy presence lives on the shard owning
  // their channel stripe), remote clients appear as proxy slots, and
  // native transmissions near stripe cuts are mirrored to neighbours.
  // With no link (every serial run) all of these paths are dead and the
  // medium is byte-identical to the pre-shard engine.

  /// Installs the formation adapter (not owned; null detaches). Must be
  /// called before any radio attaches.
  void set_shard_link(ShardLink* link) { shard_link_ = link; }
  ShardLink* shard_link() const { return shard_link_; }

  /// Materialises / tears down a remote client's proxy slot on this shard.
  /// Called via mailbox thunks on this medium's shard thread.
  void proxy_attach(const ShardProxyDesc& desc);
  void proxy_detach(std::uint64_t gid);

  /// Remote fan-out: replays the local transmit tail (range gate, loss
  /// draws, delivery scheduling) for a frame transmitted on another shard
  /// at decision time `t0` from `tx_pos`. `exclude_gid` skips the sender's
  /// own proxy, mirroring the local loop's sender skip.
  void inject_shard_fanout(wire::Channel channel, const Position& tx_pos,
                           Time t0, BitRate rate, wire::Frame frame,
                           std::uint64_t exclude_gid);

  /// Home-side bookkeeping for a delivery forwarded from a proxy: the
  /// owning shard drew the loss, this (home) shard applied the radio's
  /// listening/channel state. Keeps delivered/dropped exact sums across
  /// the formation.
  void note_forwarded_delivery(bool delivered) {
    ++(delivered ? frames_delivered_ : frames_dropped_at_rx_);
  }

 private:
  friend class Radio;
  /// Test-only backdoor (tests/test_spatial_index.cpp): corrupts private
  /// grid state to pin the checked-fatal invariant paths and the empty
  /// candidate-set counter guard.
  friend struct MediumTestPeer;

  /// A remote client's standing on this shard: enough state to stand in
  /// for the real radio in the transmit loop (position, ARQ address range)
  /// and to forward survivors home. Owned by proxies_; slots point here.
  struct ProxyInfo {
    std::uint64_t gid = 0;
    wire::Channel channel = 1;
    std::uint64_t addr_lo = 0, addr_hi = 0;  ///< unicast ownership [lo, hi)
    std::function<Position(Time)> pos_at;
    std::uint32_t slot = 0;
  };

  /// Slot registry entry. `generation` bumps on every attach *and* detach,
  /// so an in-flight delivery stamped with (slot, generation) can tell a
  /// still-attached receiver from any later tenant of the same slot — even
  /// one allocated at the detached radio's exact address.
  struct Slot {
    Radio* radio = nullptr;
    /// Remote client stand-in (sharded formations only; see ProxyInfo).
    /// Mutually exclusive with `radio`.
    ProxyInfo* proxy = nullptr;
    /// Client radio homed on this shard whose phy presence lives on the
    /// channel-owning shard: registered (liveness, id) but in no cohort.
    bool shadow = false;
    std::uint32_t generation = 0;
    std::uint64_t attach_seq = 0;  ///< global attach order, for RNG stability
    std::uint64_t cell = 0;        ///< packed grid cell currently bucketed in
    /// Cached grid location: index of `cell` in the channel grid's SoA pool
    /// and this slot's rank in that cell's lanes. Lets grid_remove and the
    /// rebucket path reach the member with no hash find and no lower_bound.
    /// Pool indices survive rehashes (cells are never moved or erased);
    /// lane ranks are maintained by insert_sorted/erase_at on the rare
    /// shifts (attach, detach, rebucket).
    std::uint32_t cell_idx = 0;
    std::uint32_t lane_idx = 0;
    /// Quick same-cell acceptance box: `cell`'s bounds shrunk by
    /// eps = cell_m * 1e-6 on each side. A position strictly inside is in
    /// `cell` under exact floor(x / cell_m) binning — the shrink exceeds
    /// every rounding error of the k*cell_m products and the division by
    /// >1000x for any cell coordinate representable in an int32 — so the
    /// sweep's hot path is four compares, no divides. Boundary-adjacent
    /// positions fail the box and fall back to cell_of(); binning semantics
    /// are exactly unchanged.
    double qx0 = 1.0, qx1 = 0.0;  ///< empty box until grid_insert fills it
    double qy0 = 1.0, qy1 = 0.0;
    /// Copy of RadioConfig::max_speed_mps (0 = no motion bound declared).
    double max_speed = 0.0;
    /// Motion-bound horizon: with a declared speed ceiling, the earliest
    /// sim time at which this radio could reach its cell boundary. The
    /// mobile sweep skips the slot (no position() call, no lane refresh)
    /// while now < safe_until — its bucket is provably still its true
    /// cell. Time{0} (no ceiling, or boundary-adjacent) disables the skip.
    Time safe_until{0};
    /// Sim time the position lanes were last written. A transmit's grid
    /// loop re-samples a mobile candidate whose lanes are stale (skipped by
    /// the horizon above), so examined candidates always see positions
    /// bit-identical to position() at the current timestamp.
    Time pos_stamp{-1};
    bool mobile = false;  ///< member of the position-epoch sweep
  };

  /// Channels below this bound (the whole 2.4 GHz band; the paper sweeps
  /// {1,6,11}) use flat arrays for the per-channel radio cohort and the
  /// impairment lookup — no hashing on the transmit path. Anything else
  /// falls back to maps.
  static constexpr int kFlatChannels = 15;
  static bool flat_channel(wire::Channel c) {
    return c >= 0 && c < kFlatChannels;
  }

  std::vector<std::uint32_t>& cohort(wire::Channel channel);
  void cohort_insert(wire::Channel channel, std::uint32_t slot);
  void cohort_remove(wire::Channel channel, std::uint32_t slot);
  /// Called by Radio when its tuned channel actually changes.
  void retune(Radio& radio, wire::Channel old_channel);

  /// Allocates (or recycles) a registry slot and bumps its generation.
  std::uint32_t allocate_slot();
  /// Candidate position regardless of kind: real radios sample their
  /// position callback, proxies their time-parameterised stand-in.
  Position slot_position(const Slot& s) const;
  /// The shared transmit tail: candidate walk, range gate, loss draws,
  /// delivery scheduling. Local transmits pass their own slot (skipped
  /// without being counted, exactly the historical accounting) and t0 ==
  /// now; remote injections pass kNoSenderSlot, the sender's gid (so its
  /// own proxy is skipped) and the original decision time, preserved so a
  /// forwarded fan-out schedules deliveries at the same absolute
  /// timestamps the sender's shard would have.
  static constexpr std::uint32_t kNoSenderSlot = 0xFFFFFFFFu;
  void fanout(wire::Channel channel, const Position& tx_pos, Time t0,
              BitRate rate, wire::Frame&& frame, std::uint32_t sender_slot,
              std::uint64_t exclude_gid);

  // --- spatial grid (neighbor_index != kBruteForce) --------------------

  /// Flat SoA storage for one grid cell: member slots and their attach
  /// seqs, kept sorted by attach_seq so the 3x3 gather is a 9-way sorted
  /// merge (no per-transmit sort). Positions are NOT stored here — they
  /// live in the medium's central pos_x_/pos_y_ lanes, so the mobile sweep
  /// refreshes a position with two contiguous stores instead of chasing
  /// into the member's cell.
  struct CellSoA {
    std::uint64_t key = 0;  ///< packed (cx, cy), for table rebuilds
    std::vector<std::uint32_t> slots;
    std::vector<std::uint64_t> seqs;  ///< attach_seq, ascending
    bool empty() const { return slots.empty(); }
    std::size_t size() const { return slots.size(); }
    /// Sorted insert at the attach_seq rank, updating the registry's cached
    /// lane ranks for the inserted slot and everything it shifted. New
    /// attaches carry the largest seq yet issued, so the common case is an
    /// append that touches one registry entry.
    void insert_sorted(std::vector<Slot>& registry, std::uint32_t slot,
                       std::uint64_t seq);
    /// Erase lane `i` and re-rank the members shifted down.
    void erase_at(std::vector<Slot>& registry, std::size_t i);
  };

  /// One channel's spatial hash: an open-addressed (linear probing) table
  /// from packed cell to an index into a pool of SoA cells, plus an
  /// occupancy bitmap over home buckets so probing an empty or absent cell
  /// costs one L1-resident bit test — no hash-chain walk, no node
  /// dereference. Cells are never erased from the table (a cell that
  /// empties keeps its storage and drops out of the bitmap), so the pool is
  /// bounded by the distinct cells ever occupied and linear probing needs
  /// no tombstones.
  struct ChannelGrid {
    static constexpr std::uint32_t kNoCell = 0xFFFFFFFFu;

    std::vector<std::uint64_t> keys;      ///< table: packed cell per bucket
    std::vector<std::uint32_t> vals;      ///< table: cell index or kNoCell
    std::vector<std::uint64_t> occ_bits;  ///< bit per bucket: non-empty home
    std::vector<std::uint32_t> occ_refs;  ///< non-empty cells homed at bucket
    std::vector<CellSoA> cells;           ///< SoA pool; indices are stable
    std::size_t bucket_mask = 0;          ///< capacity - 1 (0: unallocated)
    std::size_t nonempty_cells = 0;       ///< currently occupied cells

    /// Table lookup, bitmap-gated: kNoCell when the cell is absent *or*
    /// currently empty — exactly the cells a neighborhood probe skips.
    std::uint32_t find_occupied(std::uint64_t key) const;
    /// Table lookup without the bitmap gate (empty cells are found too).
    std::uint32_t find(std::uint64_t key) const;
    /// Lookup-or-insert; grows and rehashes at 50% load.
    std::uint32_t find_or_create(std::uint64_t key);
    /// Occupancy transitions (cell went 0 -> 1 / 1 -> 0 members).
    void occ_add(std::uint64_t key);
    void occ_sub(std::uint64_t key);
    void rehash(std::size_t capacity);
  };

  bool grid_enabled() const {
    return config_.neighbor_index != NeighborIndex::kBruteForce;
  }
  /// kAuto per-transmit pick: the grid pays off once the cohort is big
  /// enough to amortise the probe/merge/sweep overhead *and* spread over
  /// enough cells that the 3x3 neighborhood prunes most of it (expected
  /// visited fraction ~ 9 / occupied-cells). Below either bound the
  /// brute-force cohort scan is the cheaper loop.
  static constexpr std::size_t kAutoMinCohort = 32;
  static constexpr std::size_t kAutoMinOccupiedCells = 16;
  bool auto_prefers_grid(wire::Channel channel);

  static std::uint64_t pack_cell(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  std::int32_t cell_coord(double meters) const;
  std::uint64_t cell_of(const Position& pos) const {
    return pack_cell(cell_coord(pos.x), cell_coord(pos.y));
  }
  ChannelGrid& grid(wire::Channel channel);
  void grid_insert(wire::Channel channel, std::uint32_t slot,
                   const Position& pos);
  void grid_remove(wire::Channel channel, std::uint32_t slot);
  /// Invariant breach on the grid hot path (a slot absent from its recorded
  /// cell): prints and aborts in every build flavour. Release builds used
  /// to ride an assert straight into UB on the dangling lookup.
  [[noreturn]] static void grid_fatal(const char* what);
  /// Per-channel position-epoch sweep: once per distinct sim timestamp
  /// *per channel*, re-sample that channel's mobile radios, refresh their
  /// position lanes, and move the ones that crossed a cell boundary.
  /// Stationary radios and other channels' mobiles are never touched, and
  /// mobiles with a declared speed ceiling are skipped outright while
  /// their motion-bound horizon (Slot::safe_until) proves they cannot have
  /// left their cell — the amortisation that keeps the sweep sub-linear in
  /// mobiles per timestamp.
  void refresh_mobile_buckets(wire::Channel channel);
  /// Earliest sim time at which a speed-bounded slot at `pos` could reach
  /// its cell boundary (requires s.max_speed > 0). Measured against the
  /// shrunken quick box minus a 1 mm guard, with sec() truncating — every
  /// error source under-estimates the horizon, never over.
  Time motion_horizon(const Slot& s, const Position& pos) const;
  /// Fills scratch_slots_ with the 3x3 neighborhood of `pos` on `channel`
  /// via a 9-way merge of attach_seq-sorted cell lanes (the brute-force
  /// visit order). Candidate positions and generations are read from the
  /// central per-slot lanes, fresh as of refresh_mobile_buckets.
  void gather_neighborhood(wire::Channel channel, const Position& pos);

  std::vector<std::uint32_t>& mobiles(wire::Channel channel);
  Time& last_refresh(wire::Channel channel);

  sim::Simulator& sim_;
  Propagation propagation_;
  Rng rng_;
  MediumConfig config_;
  double cell_m_ = 0.0;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_attach_seq_ = 0;
  /// Per-channel cohorts of slot ids, ordered by attach_seq so transmit
  /// examines same-channel radios in exactly the order the old full-table
  /// scan did (RNG draw order is part of the determinism contract).
  std::array<std::vector<std::uint32_t>, kFlatChannels> cohorts_;
  std::unordered_map<wire::Channel, std::vector<std::uint32_t>> cohorts_other_;

  std::array<ChannelGrid, kFlatChannels> grids_;
  std::unordered_map<wire::Channel, ChannelGrid> grids_other_;
  /// Per-channel rosters of mobile slots (position-epoch sweep membership),
  /// so a transmit sweeps only its own channel's mobiles. Order is
  /// irrelevant for determinism — rebucketing consumes no RNG — but kept
  /// stable anyway.
  std::array<std::vector<std::uint32_t>, kFlatChannels> mobile_slots_;
  std::unordered_map<wire::Channel, std::vector<std::uint32_t>> mobile_other_;
  /// Sim timestamp of the last mobile sweep per channel; positions are pure
  /// functions of sim time, so a channel's buckets refreshed at `now` stay
  /// exact until the clock advances.
  std::array<Time, kFlatChannels> last_refresh_;
  std::unordered_map<wire::Channel, Time> last_refresh_other_;
  /// Central per-slot position lanes (indexed by slot id). For static
  /// radios they are sampled once at grid_insert; for mobiles the
  /// position-epoch sweep rewrites them each distinct timestamp, so at
  /// transmit time pos_x_[slot] is bit-identical to what
  /// slots_[slot].radio->position() would return (positions are pure
  /// functions of sim time — the MobilityModel contract).
  std::vector<double> pos_x_;
  std::vector<double> pos_y_;
  /// Reused candidate scratch for grid queries (cleared per transmit; no
  /// steady-state allocation once its capacity plateaus).
  std::vector<std::uint32_t> scratch_slots_;

  std::array<double, kFlatChannels> impairment_flat_{};
  std::unordered_map<wire::Channel, double> impairments_other_;

  /// Sharded formations only (null in every serial run).
  ShardLink* shard_link_ = nullptr;
  std::unordered_map<std::uint64_t, std::unique_ptr<ProxyInfo>> proxies_;

  /// One transmitted frame body shared by its whole fan-out. `refs` counts
  /// scheduled deliveries still in flight (non-atomic: the medium lives on
  /// one simulation thread); cells are recycled through free_bodies_, so
  /// steady-state transmits reuse storage instead of allocating. A deque
  /// keeps cell references stable while a deliver() upcall reentrantly
  /// transmits (which may grow the pool).
  struct BodyCell {
    wire::Frame frame;
    std::uint32_t refs = 0;
  };
  std::deque<BodyCell> bodies_;
  std::vector<std::uint32_t> free_bodies_;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_dropped_at_rx_ = 0;
  std::uint64_t fanout_scheduled_ = 0;
  std::uint64_t candidates_examined_ = 0;
  std::uint64_t grid_cells_scanned_ = 0;
  std::uint64_t grid_rebuckets_ = 0;
  std::uint64_t auto_grid_tx_ = 0;
  std::uint64_t auto_brute_tx_ = 0;
};

}  // namespace spider::phy
