#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "phy/propagation.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "util/units.hpp"
#include "wire/frame.hpp"

namespace spider::phy {

class Radio;

/// How Medium::transmit finds candidate receivers on the sender's channel.
enum class NeighborIndex {
  /// Linear scan of the whole per-channel cohort. O(radios-on-channel) per
  /// transmission; kept as the differential-test oracle and the perf
  /// baseline for the grid.
  kBruteForce,
  /// Uniform spatial hash: radios bucket into range-sized cells, transmit
  /// visits only the 3x3 cell neighborhood of the transmitter. Sub-linear
  /// in deployment size and byte-identical to the brute-force scan (see
  /// DESIGN.md §10 for the order-preservation argument).
  kGrid,
};

/// Default max retransmissions of a unicast frame. Stock drivers use ~7;
/// the conservative default of 4 reflects the short-retry behaviour under
/// mobility. The sender's occupancy for retries is not modelled.
inline constexpr int kMediumDefaultRetryLimit = 4;

/// Construction-time knobs of the medium. The neighbor index is fixed for
/// the medium's lifetime — differential tests build one medium per mode.
struct MediumConfig {
  NeighborIndex neighbor_index = NeighborIndex::kGrid;
  /// Grid cell edge in meters. 0 derives it from the propagation range;
  /// explicit values below the range are clamped up to it (correctness of
  /// the 3x3 neighborhood requires cell >= range, DESIGN.md §10).
  double grid_cell_m = 0.0;
  /// 802.11 ARQ retry budget for unicast frames to their addressee.
  int retry_limit = kMediumDefaultRetryLimit;
};

/// The shared wireless medium.
///
/// Radios register themselves and transmit frames; the medium decides who
/// hears what. Delivery requires (a) same channel, (b) receiver not mid
/// channel-switch, (c) within propagation range, and (d) surviving an
/// independent Bernoulli loss draw from the propagation model. Frames
/// arrive after their serialisation airtime.
///
/// 802.11 link-layer ARQ is modelled statistically: a unicast frame is
/// retransmitted up to `retry_limit` times, so its delivery probability to
/// its addressee is 1 - p^(retries+1) with each extra attempt adding one
/// airtime of latency. Broadcast frames (beacons, probe requests) get a
/// single attempt, as on real hardware — which is exactly why the paper's
/// join model sees a flat per-message loss h on the handshake while bulk
/// TCP rides an almost-lossless link inside the cell.
///
/// Deliberate simplification: there is no CSMA/collision model. The paper's
/// effects come from scheduling, handshake timeouts and backhaul limits, not
/// from MAC contention (its outdoor cells are sparse); modelling loss as a
/// distance-dependent Bernoulli process keeps runs deterministic per seed
/// and is consistent with the paper's own analytical treatment (flat h).
///
/// Hot-path engineering (see DESIGN.md §8): radios are held in a
/// generation-stamped slot registry and indexed per channel, so transmit
/// touches only same-channel radios and in-flight deliveries validate the
/// receiver in O(1) (immune to a new radio reusing a detached radio's
/// address). At city scale even the per-channel cohort is too big to scan
/// per frame, so radios additionally bucket into a uniform spatial hash
/// grid (DESIGN.md §10): transmit visits only the 3x3 range-sized cell
/// neighborhood of the transmitter, with candidate order — and therefore
/// every RNG draw and delivered-frame set — byte-identical to the
/// brute-force scan, which stays available via MediumConfig as the
/// differential-test oracle. The frame body is moved once into a
/// refcounted pooled cell;
/// each scheduled delivery carries only {cell index, slot, generation,
/// rssi} — a trivially copyable reception record that rides the event
/// queue's inline buffer via its memcpy fast path, so the whole fan-out
/// performs zero heap allocations in steady state.
class Medium {
 public:
  /// Back-compat alias for the ARQ default (see kMediumDefaultRetryLimit).
  /// Sweeps (fault-resilience, ARQ ablations) pass their own limit via
  /// MediumConfig or the retry-limit constructor.
  static constexpr int kDefaultRetryLimit = kMediumDefaultRetryLimit;

  Medium(sim::Simulator& simulator, Propagation propagation, Rng rng,
         MediumConfig config = {});
  /// Convenience for callers that only tweak the ARQ budget.
  Medium(sim::Simulator& simulator, Propagation propagation, Rng rng,
         int retry_limit);

  /// Radios self-register from their constructor/destructor.
  void attach(Radio& radio);
  void detach(Radio& radio);

  /// Broadcasts `frame` from `sender` on the sender's current channel.
  /// Called by Radio once the frame reaches the head of its TX queue.
  void transmit(Radio& sender, wire::Frame frame);

  const Propagation& propagation() const { return propagation_; }
  sim::Simulator& simulator() { return sim_; }
  int retry_limit() const { return config_.retry_limit; }
  const MediumConfig& config() const { return config_; }
  /// Grid cell edge actually in use (propagation range unless overridden).
  double grid_cell_m() const { return cell_m_; }

  /// Fault-injection hook: adds `extra_loss` (in [0,1]) to every frame on
  /// `channel`, combined independently with the propagation loss. One
  /// impairment per channel; setting again overwrites, clearing removes.
  void set_channel_impairment(wire::Channel channel, double extra_loss);
  void clear_channel_impairment(wire::Channel channel);
  /// Current extra loss on `channel` (0 when unimpaired).
  double channel_impairment(wire::Channel channel) const;

  /// Airtime of a frame of `bytes` at `rate` (PLCP preamble + payload).
  static Time airtime(std::size_t bytes, BitRate rate);

  std::uint64_t frames_sent() const { return frames_sent_; }
  /// Frames that actually reached a receiver's upcall (counted at delivery
  /// time, not when scheduled — a receiver that detaches or retunes while
  /// the frame is in the air is a drop, not a delivery).
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  /// In-flight frames that missed because the receiver detached, retuned,
  /// or was mid-reset when the frame arrived.
  std::uint64_t frames_dropped_at_rx() const { return frames_dropped_at_rx_; }
  /// Per-receiver deliveries scheduled (fan-out actually put on the wire).
  std::uint64_t fanout_scheduled() const { return fanout_scheduled_; }
  /// Same-channel candidate radios examined across all transmits.
  std::uint64_t candidates_examined() const { return candidates_examined_; }
  /// Grid cells probed by neighborhood queries (9 per grid-mode transmit;
  /// 0 under brute force).
  std::uint64_t grid_cells_scanned() const { return grid_cells_scanned_; }
  /// Mobile radios moved between grid cells by the position-epoch sweep
  /// (stationary radios never contribute).
  std::uint64_t grid_rebuckets() const { return grid_rebuckets_; }

  /// Folds the medium's fan-out counters into engine perf counters.
  void add_perf(sim::PerfCounters& perf) const {
    perf.frames_tx += frames_sent_;
    perf.frames_fanout += fanout_scheduled_;
    perf.radio_candidates += candidates_examined_;
    perf.grid_cells_scanned += grid_cells_scanned_;
    perf.grid_rebuckets += grid_rebuckets_;
  }

 private:
  friend class Radio;

  /// Slot registry entry. `generation` bumps on every attach *and* detach,
  /// so an in-flight delivery stamped with (slot, generation) can tell a
  /// still-attached receiver from any later tenant of the same slot — even
  /// one allocated at the detached radio's exact address.
  struct Slot {
    Radio* radio = nullptr;
    std::uint32_t generation = 0;
    std::uint64_t attach_seq = 0;  ///< global attach order, for RNG stability
    std::uint64_t cell = 0;        ///< packed grid cell currently bucketed in
    bool mobile = false;           ///< member of the position-epoch sweep
  };

  /// Channels below this bound (the whole 2.4 GHz band; the paper sweeps
  /// {1,6,11}) use flat arrays for the per-channel radio cohort and the
  /// impairment lookup — no hashing on the transmit path. Anything else
  /// falls back to maps.
  static constexpr int kFlatChannels = 15;
  static bool flat_channel(wire::Channel c) {
    return c >= 0 && c < kFlatChannels;
  }

  std::vector<std::uint32_t>& cohort(wire::Channel channel);
  void cohort_insert(wire::Channel channel, std::uint32_t slot);
  void cohort_remove(wire::Channel channel, std::uint32_t slot);
  /// Called by Radio when its tuned channel actually changes.
  void retune(Radio& radio, wire::Channel old_channel);

  // --- spatial grid (neighbor_index == kGrid) --------------------------
  /// One hash grid per channel: packed (cx, cy) cell -> slot ids. Cell
  /// membership is maintained eagerly for static radios (attach / detach /
  /// retune) and lazily for mobile ones (refresh_mobile_buckets).
  using CellMap = std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>;

  bool grid_enabled() const {
    return config_.neighbor_index == NeighborIndex::kGrid;
  }
  static std::uint64_t pack_cell(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  std::int32_t cell_coord(double meters) const;
  std::uint64_t cell_of(const Position& pos) const {
    return pack_cell(cell_coord(pos.x), cell_coord(pos.y));
  }
  CellMap& grid(wire::Channel channel);
  void grid_insert(wire::Channel channel, std::uint32_t slot,
                   const Position& pos);
  void grid_remove(wire::Channel channel, std::uint32_t slot);
  /// Position-epoch sweep: once per distinct sim timestamp, re-sample every
  /// mobile radio and move the ones that crossed a cell boundary.
  /// Stationary radios are never touched.
  void refresh_mobile_buckets();
  /// Fills scratch_ with the 3x3 neighborhood of `pos` on `channel`,
  /// sorted by attach_seq (the brute-force visit order).
  void gather_neighborhood(wire::Channel channel, const Position& pos);

  sim::Simulator& sim_;
  Propagation propagation_;
  Rng rng_;
  MediumConfig config_;
  double cell_m_ = 0.0;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_attach_seq_ = 0;
  /// Per-channel cohorts of slot ids, ordered by attach_seq so transmit
  /// examines same-channel radios in exactly the order the old full-table
  /// scan did (RNG draw order is part of the determinism contract).
  std::array<std::vector<std::uint32_t>, kFlatChannels> cohorts_;
  std::unordered_map<wire::Channel, std::vector<std::uint32_t>> cohorts_other_;

  std::array<CellMap, kFlatChannels> grids_;
  std::unordered_map<wire::Channel, CellMap> grids_other_;
  /// Slots enrolled in the position-epoch sweep, in attach order (order is
  /// irrelevant for determinism — rebucketing consumes no RNG — but kept
  /// stable anyway).
  std::vector<std::uint32_t> mobile_slots_;
  /// Sim timestamp of the last mobile sweep; positions are pure functions
  /// of sim time, so buckets refreshed at `now` stay exact until the clock
  /// advances.
  Time last_refresh_ = Time{-1};
  /// Reused candidate buffer for grid queries (cleared per transmit; no
  /// steady-state allocation once its capacity plateaus).
  std::vector<std::uint32_t> scratch_;

  std::array<double, kFlatChannels> impairment_flat_{};
  std::unordered_map<wire::Channel, double> impairments_other_;

  /// One transmitted frame body shared by its whole fan-out. `refs` counts
  /// scheduled deliveries still in flight (non-atomic: the medium lives on
  /// one simulation thread); cells are recycled through free_bodies_, so
  /// steady-state transmits reuse storage instead of allocating. A deque
  /// keeps cell references stable while a deliver() upcall reentrantly
  /// transmits (which may grow the pool).
  struct BodyCell {
    wire::Frame frame;
    std::uint32_t refs = 0;
  };
  std::deque<BodyCell> bodies_;
  std::vector<std::uint32_t> free_bodies_;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_dropped_at_rx_ = 0;
  std::uint64_t fanout_scheduled_ = 0;
  std::uint64_t candidates_examined_ = 0;
  std::uint64_t grid_cells_scanned_ = 0;
  std::uint64_t grid_rebuckets_ = 0;
};

}  // namespace spider::phy
