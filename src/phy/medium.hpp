#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "phy/propagation.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "util/units.hpp"
#include "wire/frame.hpp"

namespace spider::phy {

class Radio;

/// The shared wireless medium.
///
/// Radios register themselves and transmit frames; the medium decides who
/// hears what. Delivery requires (a) same channel, (b) receiver not mid
/// channel-switch, (c) within propagation range, and (d) surviving an
/// independent Bernoulli loss draw from the propagation model. Frames
/// arrive after their serialisation airtime.
///
/// 802.11 link-layer ARQ is modelled statistically: a unicast frame is
/// retransmitted up to `retry_limit` times, so its delivery probability to
/// its addressee is 1 - p^(retries+1) with each extra attempt adding one
/// airtime of latency. Broadcast frames (beacons, probe requests) get a
/// single attempt, as on real hardware — which is exactly why the paper's
/// join model sees a flat per-message loss h on the handshake while bulk
/// TCP rides an almost-lossless link inside the cell.
///
/// Deliberate simplification: there is no CSMA/collision model. The paper's
/// effects come from scheduling, handshake timeouts and backhaul limits, not
/// from MAC contention (its outdoor cells are sparse); modelling loss as a
/// distance-dependent Bernoulli process keeps runs deterministic per seed
/// and is consistent with the paper's own analytical treatment (flat h).
class Medium {
 public:
  /// Default max retransmissions of a unicast frame. Stock drivers use ~7;
  /// the conservative default of 4 reflects the short-retry behaviour under
  /// mobility. Sweeps (fault-resilience, ARQ ablations) pass their own
  /// limit to the constructor. The sender's occupancy for retries is not
  /// modelled.
  static constexpr int kDefaultRetryLimit = 4;

  Medium(sim::Simulator& simulator, Propagation propagation, Rng rng,
         int retry_limit = kDefaultRetryLimit);

  /// Radios self-register from their constructor/destructor.
  void attach(Radio& radio);
  void detach(Radio& radio);

  /// Broadcasts `frame` from `sender` on the sender's current channel.
  /// Called by Radio once the frame reaches the head of its TX queue.
  void transmit(Radio& sender, wire::Frame frame);

  const Propagation& propagation() const { return propagation_; }
  sim::Simulator& simulator() { return sim_; }
  int retry_limit() const { return retry_limit_; }

  /// Fault-injection hook: adds `extra_loss` (in [0,1]) to every frame on
  /// `channel`, combined independently with the propagation loss. One
  /// impairment per channel; setting again overwrites, clearing removes.
  void set_channel_impairment(wire::Channel channel, double extra_loss);
  void clear_channel_impairment(wire::Channel channel);
  /// Current extra loss on `channel` (0 when unimpaired).
  double channel_impairment(wire::Channel channel) const;

  /// Airtime of a frame of `bytes` at `rate` (PLCP preamble + payload).
  static Time airtime(std::size_t bytes, BitRate rate);

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_delivered() const { return frames_delivered_; }

 private:
  sim::Simulator& sim_;
  Propagation propagation_;
  Rng rng_;
  int retry_limit_;
  std::vector<Radio*> radios_;
  std::unordered_map<wire::Channel, double> impairments_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_delivered_ = 0;
};

}  // namespace spider::phy
