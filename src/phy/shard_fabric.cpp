#include "phy/shard_fabric.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <utility>

#include "phy/medium.hpp"
#include "phy/radio.hpp"

namespace spider::phy {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Fixed-point owner for channels no AP uses (a scanner probing an empty
/// channel still needs a deterministic place for its proxy to live).
int fallback_owner(wire::Channel c, int shards) {
  const auto h = static_cast<std::uint64_t>(static_cast<std::uint32_t>(c)) *
                 0x9E3779B97F4A7C15ull;
  return static_cast<int>((h >> 33) % static_cast<std::uint64_t>(shards));
}

}  // namespace

int ShardPartition::owner(wire::Channel c, double x) const {
  const auto it = stripes.find(c);
  if (it == stripes.end()) return fallback_owner(c, shards);
  for (const ShardStripe& s : it->second) {
    if (x < s.x1) return s.shard;
  }
  return it->second.back().shard;  // unreachable: last stripe is +inf
}

int ShardPartition::targets(wire::Channel c, double x, int* out) const {
  const auto it = stripes.find(c);
  if (it == stripes.end()) {
    out[0] = fallback_owner(c, shards);
    return 1;
  }
  int n = 0;
  double x0 = -kInf;
  for (const ShardStripe& s : it->second) {
    if (x + margin_m >= x0 && x - margin_m < s.x1) {
      bool dup = false;
      for (int j = 0; j < n; ++j) dup = dup || out[j] == s.shard;
      if (!dup) out[n++] = s.shard;
    }
    x0 = s.x1;
  }
  return n;
}

int ShardPartition::stripe_owners(wire::Channel c, int* out) const {
  const auto it = stripes.find(c);
  if (it == stripes.end()) {
    out[0] = fallback_owner(c, shards);
    return 1;
  }
  int n = 0;
  for (const ShardStripe& s : it->second) {
    bool dup = false;
    for (int j = 0; j < n; ++j) dup = dup || out[j] == s.shard;
    if (!dup) out[n++] = s.shard;
  }
  return n;
}

bool ShardPartition::spatial() const {
  for (const auto& [c, v] : stripes) {
    if (v.size() > 1) return true;
  }
  return false;
}

ShardPartition build_shard_partition(
    const std::vector<std::pair<wire::Channel, double>>& ap_sites, int shards,
    double range_m) {
  ShardPartition p;
  p.shards = std::max(1, shards);
  p.margin_m = range_m + kShardSlopM;

  // Group AP x-coordinates per channel, in deterministic channel order.
  std::map<wire::Channel, std::vector<double>> xs;
  for (const auto& [c, x] : ap_sites) xs[c].push_back(x);

  if (p.shards == 1) {
    for (const auto& [c, v] : xs) p.stripes[c] = {{kInf, 0}};
    return p;
  }

  // Cut each channel with enough APs into `shards` equal-count stripes —
  // small pieces pack far tighter than whole channels (three channels on
  // two shards would otherwise load 2:1). Channels too small to split stay
  // whole; their piece is cheap to place anywhere.
  struct Piece {
    wire::Channel channel;
    std::size_t index;  ///< stripe index within the channel
    std::size_t count;
  };
  std::vector<Piece> pieces;
  for (auto& [c, v] : xs) {
    std::sort(v.begin(), v.end());
    const std::size_t count = v.size();
    std::size_t k = 1;
    if (count >= 2 * static_cast<std::size_t>(p.shards)) {
      k = static_cast<std::size_t>(p.shards);
    }
    std::vector<ShardStripe>& sv = p.stripes[c];
    double prev_cut = -kInf;
    std::size_t begin = 0;
    for (std::size_t i = 1; i < k; ++i) {
      const std::size_t at = i * count / k;  // first element of stripe i
      const double cut = (v[at - 1] + v[at]) / 2.0;
      if (cut <= prev_cut) continue;  // duplicate x positions: merge pieces
      pieces.push_back({c, sv.size(), at - begin});
      sv.push_back({cut, 0});
      prev_cut = cut;
      begin = at;
    }
    pieces.push_back({c, sv.size(), count - begin});
    sv.push_back({kInf, 0});
  }

  // LPT greedy: heaviest piece first onto the least-loaded shard. Stable
  // sort keeps equal-count ties in channel/stripe order — deterministic.
  std::stable_sort(pieces.begin(), pieces.end(),
                   [](const Piece& a, const Piece& b) { return a.count > b.count; });
  std::vector<std::size_t> load(static_cast<std::size_t>(p.shards), 0);
  for (const Piece& piece : pieces) {
    int best = 0;
    for (int s = 1; s < p.shards; ++s) {
      if (load[static_cast<std::size_t>(s)] <
          load[static_cast<std::size_t>(best)]) {
        best = s;
      }
    }
    load[static_cast<std::size_t>(best)] += piece.count;
    p.stripes[piece.channel][piece.index].shard = best;
  }
  return p;
}

// ---------------------------------------------------------------------------

ShardFabric::ShardFabric(sim::ShardedSimulator& bus,
                         std::vector<Medium*> mediums, ShardPartition partition,
                         std::function<bool(wire::MacAddress)> is_client)
    : bus_(bus),
      mediums_(std::move(mediums)),
      partition_(std::move(partition)),
      is_client_(std::move(is_client)),
      homed_(mediums_.size()) {
  assert(static_cast<int>(mediums_.size()) == partition_.shards);
  ports_.resize(mediums_.size());
  for (std::size_t s = 0; s < mediums_.size(); ++s) {
    ports_[s].fab = this;
    ports_[s].shard = static_cast<int>(s);
    mediums_[s]->set_shard_link(&ports_[s]);
  }
  if (partition_.spatial()) {
    for (int s = 0; s < partition_.shards; ++s) {
      bus_.set_window_hook(s, [this, s] { migrate_sweep(s); });
    }
  }
}

ShardFabric::~ShardFabric() {
  for (Medium* m : mediums_) m->set_shard_link(nullptr);
}

void ShardFabric::register_client(int home, Radio& radio,
                                  std::function<Position(Time)> pos_at,
                                  double max_speed_mps, std::uint64_t addr_lo,
                                  std::uint64_t addr_hi) {
  const std::uint64_t gid = radio.mac().raw();
  ClientInfo& info = clients_[gid];  // created at attach; tolerate either order
  info.radio = &radio;
  info.home = home;
  info.pos_at = std::move(pos_at);
  info.max_speed = max_speed_mps;
  info.addr_lo = addr_lo;
  info.addr_hi = addr_hi;
  homed_[static_cast<std::size_t>(home)].push_back({gid, &info});

  // Initial placement: the owner of the radio's boot channel stripe at its
  // starting position. Sent from the coordinating thread pre-run; applied
  // by drain_initial.
  const wire::Channel ch = radio.channel();
  const int owner = partition_.owner(ch, info.pos_at(Time{0}).x);
  move_proxy(home, info, gid, ch, owner);
}

bool ShardFabric::Port::is_shadow(wire::MacAddress mac) const {
  return fab->is_client_(mac);
}

void ShardFabric::Port::on_shadow_attach(Radio& radio) {
  // May run before register_client fills the entry in (Radio constructors
  // attach eagerly); just record the pointer.
  fab->clients_[radio.mac().raw()].radio = &radio;
}

void ShardFabric::Port::on_shadow_detach(Radio& radio) {
  // Teardown (after the workers joined and drain_final ran): nothing to
  // send — the formation is being dismantled wholesale.
  const auto it = fab->clients_.find(radio.mac().raw());
  if (it != fab->clients_.end()) it->second.radio = nullptr;
}

void ShardFabric::route_transmit(int from, bool skip_self,
                                 wire::Channel channel, const Position& tx_pos,
                                 Time t0, BitRate rate,
                                 const wire::Frame& frame,
                                 std::uint64_t exclude_gid) {
  int out[kMaxShards];
  const int n = partition_.targets(channel, tx_pos.x, out);
  for (int i = 0; i < n; ++i) {
    const int to = out[i];
    if (skip_self && to == from) continue;
    Medium* m = mediums_[static_cast<std::size_t>(to)];
    bus_.send(from, to,
              [m, channel, tx_pos, t0, rate, frame, exclude_gid]() mutable {
                m->inject_shard_fanout(channel, tx_pos, t0, rate,
                                       std::move(frame), exclude_gid);
              });
  }
}

void ShardFabric::Port::on_shadow_transmit(Radio& sender,
                                           const wire::Frame& frame,
                                           const Position& tx_pos,
                                           BitRate rate) {
  // A shadow has no local phy presence: even its home shard's medium (when
  // it owns the stripe) receives the frame through the mailbox, so shard
  // placement never changes which path a frame takes. The sender's own
  // proxy is excluded by gid, mirroring the local loop's sender skip.
  fab->route_transmit(shard, /*skip_self=*/false, sender.channel(), tx_pos,
                      fab->mediums_[static_cast<std::size_t>(shard)]
                          ->simulator()
                          .now(),
                      rate, frame, sender.mac().raw());
}

void ShardFabric::Port::on_native_transmit(wire::Channel channel,
                                           const Position& tx_pos,
                                           const wire::Frame& frame,
                                           BitRate rate,
                                           std::uint64_t sender_gid) {
  // The local medium already fanned this frame out; only stripes of the
  // channel owned by *other* shards within the export margin need a mirror.
  // Single-stripe channels (the common case) fall straight through with
  // zero sends.
  fab->route_transmit(shard, /*skip_self=*/true, channel, tx_pos,
                      fab->mediums_[static_cast<std::size_t>(shard)]
                          ->simulator()
                          .now(),
                      rate, frame, sender_gid);
}

void ShardFabric::Port::on_shadow_retune(Radio& radio,
                                         wire::Channel old_channel) {
  // Home shard thread, at retune completion (the radio already reports the
  // new channel). Frames still in flight toward the old proxy are dropped
  // at the home gate by the channel check — the same frames a serial run
  // drops at delivery time.
  (void)old_channel;
  ShardFabric& f = *fab;
  const std::uint64_t gid = radio.mac().raw();
  ClientInfo& info = f.clients_.at(gid);
  const wire::Channel ch = radio.channel();
  const int owner = f.partition_.owner(ch, radio.position().x);
  f.move_proxy(shard, info, gid, ch, owner);
}

void ShardFabric::move_proxy(int home, ClientInfo& info, std::uint64_t gid,
                             wire::Channel channel, int new_shard) {
  if (info.placed) {
    Medium* old_m = mediums_[static_cast<std::size_t>(info.cur_shard)];
    bus_.send(home, info.cur_shard, [old_m, gid] { old_m->proxy_detach(gid); });
  }
  ShardProxyDesc desc;
  desc.gid = gid;
  desc.channel = channel;
  desc.addr_lo = info.addr_lo;
  desc.addr_hi = info.addr_hi;
  desc.pos_at = info.pos_at;
  desc.max_speed_mps = info.max_speed;
  Medium* new_m = mediums_[static_cast<std::size_t>(new_shard)];
  bus_.send(home, new_shard,
            [new_m, desc = std::move(desc)] { new_m->proxy_attach(desc); });
  info.cur_shard = new_shard;
  info.cur_channel = channel;
  info.placed = true;
}

void ShardFabric::Port::on_proxy_delivery(std::uint64_t gid,
                                          const wire::Frame& frame,
                                          double rssi) {
  (void)rssi;  // already stamped into frame.rssi_dbm by the medium
  ShardFabric& f = *fab;
  const auto it = f.clients_.find(gid);
  if (it == f.clients_.end()) return;  // stale proxy of a torn-down client
  ShardFabric* fp = fab;
  f.bus_.send(shard, it->second.home,
              [fp, gid, frame] { fp->deliver_home(gid, frame); });
}

void ShardFabric::deliver_home(std::uint64_t gid, const wire::Frame& frame) {
  const auto it = clients_.find(gid);
  if (it == clients_.end() || it->second.radio == nullptr) return;
  Radio& r = *it->second.radio;
  Medium& m = *mediums_[static_cast<std::size_t>(it->second.home)];
  // The owner drew the loss; the home radio applies its live state — deaf
  // mid-reset or already retuned elsewhere means a drop, exactly the
  // serial delivery-time gate.
  const bool ok = r.listening() && r.channel() == frame.channel;
  m.note_forwarded_delivery(ok);
  if (ok) r.deliver(frame);
}

void ShardFabric::migrate_sweep(int shard) {
  const Time now =
      mediums_[static_cast<std::size_t>(shard)]->simulator().now();
  std::uint64_t moved = 0;
  for (auto& [gid, info] : homed_[static_cast<std::size_t>(shard)]) {
    if (!info->placed || info->radio == nullptr) continue;
    const auto it = partition_.stripes.find(info->cur_channel);
    if (it == partition_.stripes.end() || it->second.size() == 1) continue;
    const int owner = partition_.owner(info->cur_channel, info->pos_at(now).x);
    if (owner == info->cur_shard) continue;
    move_proxy(shard, *info, gid, info->cur_channel, owner);
    ++moved;
  }
  if (moved != 0) migrations_.fetch_add(moved, std::memory_order_relaxed);
}

}  // namespace spider::phy
