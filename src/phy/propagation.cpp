#include "phy/propagation.hpp"

#include <algorithm>
#include <cmath>

namespace spider::phy {

Propagation::Propagation(PropagationConfig config) : config_(config) {}

bool Propagation::in_range(const Position& a, const Position& b) const {
  return distance(a, b) <= config_.range_m;
}

double Propagation::loss_probability(const Position& a, const Position& b) const {
  const double d = distance(a, b);
  if (d > config_.range_m) return 1.0;
  if (d <= config_.good_radius_m) return config_.base_loss;
  const double edge_span = config_.range_m - config_.good_radius_m;
  const double frac = edge_span <= 0.0 ? 1.0 : (d - config_.good_radius_m) / edge_span;
  return std::clamp(config_.base_loss + frac * (1.0 - config_.base_loss), 0.0, 1.0);
}

double Propagation::rssi_dbm(const Position& a, const Position& b) const {
  const double d = std::max(1.0, distance(a, b));
  return config_.tx_power_dbm - 40.0 -
         10.0 * config_.path_loss_exponent * std::log10(d);
}

}  // namespace spider::phy
