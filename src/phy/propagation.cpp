#include "phy/propagation.hpp"

namespace spider::phy {

Propagation::Propagation(PropagationConfig config) : config_(config) {}

bool Propagation::in_range(const Position& a, const Position& b) const {
  return in_range_at(distance(a, b));
}

double Propagation::loss_probability(const Position& a, const Position& b) const {
  return loss_probability_at(distance(a, b));
}

double Propagation::rssi_dbm(const Position& a, const Position& b) const {
  return rssi_dbm_at(distance(a, b));
}

}  // namespace spider::phy
