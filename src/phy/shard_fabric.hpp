#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "phy/shard_link.hpp"
#include "sim/sharded.hpp"
#include "util/time.hpp"
#include "util/units.hpp"
#include "wire/frame.hpp"

namespace spider::phy {

class Medium;
class Radio;

/// Upper bound on formation width (ScenarioConfig::validate enforces it).
inline constexpr int kMaxShards = 64;

/// One contiguous x-stripe of a channel. A stripe covers [previous stripe's
/// x1, x1); the last stripe of a channel has x1 = +infinity. Stripe lists
/// are ascending in x1.
struct ShardStripe {
  double x1 = 0.0;
  int shard = 0;
};

/// The static channel/space -> shard map of a formation. Built once from
/// the AP population before radios attach; immutable afterwards, so every
/// shard thread reads it without synchronisation.
struct ShardPartition {
  int shards = 1;
  /// Boundary-export margin: propagation range + kShardSlopM.
  double margin_m = 0.0;
  std::unordered_map<wire::Channel, std::vector<ShardStripe>> stripes;

  /// Shard owning position x on channel c. Channels with no stripe entry
  /// (a client scanning a channel no AP uses) hash to a fixed shard.
  int owner(wire::Channel c, double x) const;
  /// Fills `out` (capacity >= kMaxShards) with every shard owning a stripe
  /// of `c` that intersects [x - margin, x + margin]; returns the count.
  /// Deduplicated; order follows the stripe list.
  int targets(wire::Channel c, double x, int* out) const;
  /// Fills `out` (capacity >= kMaxShards) with every shard owning any
  /// stripe of `c`, position-independent (absent channel: the owner()
  /// fallback shard). Deduplicated; order follows the stripe list. Fault
  /// routing uses this: a channel-scoped fault must reach every medium
  /// that can carry the channel's frames, including the shard a migrating
  /// proxy lands on mid-fault.
  int stripe_owners(wire::Channel c, int* out) const;
  /// True when any channel is split spatially (i.e. proxies can migrate).
  bool spatial() const;
};

/// Builds the partition from the AP population: channels first (a shard
/// owning a whole channel exchanges nothing for it), then heavy channels
/// split into equal-AP-count x-stripes cut between adjacent APs, and all
/// pieces greedily packed onto shards by AP count (LPT). Deterministic and
/// machine-independent: depends only on (sites, shards, range).
ShardPartition build_shard_partition(
    const std::vector<std::pair<wire::Channel, double>>& ap_sites, int shards,
    double range_m);

/// The formation adapter: one ShardFabric spans all shards of a run,
/// implementing ShardLink for each shard's medium and owning the client
/// registry that maps a shadow radio to its current proxy placement.
///
/// Threading contract (TSan-verified by the sharded smoke):
///  - the registry's *structure* mutates only before run_until / after the
///    workers join (register_client, attach/detach);
///  - ClientInfo::cur_shard / cur_channel / placed are written only by the
///    client's home shard thread (retune upcalls and the migration sweep)
///    and read only there;
///  - other threads (a proxy's owner forwarding a delivery) read only the
///    immutable fields (home, addr range, pos_at);
///  - all cross-shard effects travel as ShardedSimulator mailbox thunks.
class ShardFabric {
 public:
  /// `mediums[s]` is shard s's medium; `is_client` classifies radio MACs
  /// (true = client radio, shadow on its home shard). Installs itself as
  /// every medium's shard link and, when the partition is spatial, a
  /// per-window migration sweep on every shard.
  ShardFabric(sim::ShardedSimulator& bus, std::vector<Medium*> mediums,
              ShardPartition partition,
              std::function<bool(wire::MacAddress)> is_client);
  ~ShardFabric();
  ShardFabric(const ShardFabric&) = delete;
  ShardFabric& operator=(const ShardFabric&) = delete;

  /// Declares a client radio homed on shard `home` and places its proxy on
  /// the owner of its current channel stripe. Call after constructing the
  /// radio (its attach has already been intercepted) and before
  /// ShardedSimulator::drain_initial, from the coordinating thread.
  /// `pos_at` must be a pure function of sim time (the MobilityModel
  /// contract); [addr_lo, addr_hi) are the unicast addresses the client's
  /// virtual interfaces answer for (the ARQ gate on the owning shard).
  void register_client(int home, Radio& radio,
                       std::function<Position(Time)> pos_at,
                       double max_speed_mps, std::uint64_t addr_lo,
                       std::uint64_t addr_hi);

  const ShardPartition& partition() const { return partition_; }
  /// Proxies moved across a stripe cut by the migration sweep.
  std::uint64_t migrations() const {
    return migrations_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-shard face of the fabric (the pointer installed into a medium).
  struct Port final : ShardLink {
    ShardFabric* fab = nullptr;
    int shard = 0;

    bool is_shadow(wire::MacAddress mac) const override;
    void on_shadow_attach(Radio& radio) override;
    void on_shadow_detach(Radio& radio) override;
    void on_shadow_transmit(Radio& sender, const wire::Frame& frame,
                            const Position& tx_pos, BitRate rate) override;
    void on_shadow_retune(Radio& radio, wire::Channel old_channel) override;
    void on_native_transmit(wire::Channel channel, const Position& tx_pos,
                            const wire::Frame& frame, BitRate rate,
                            std::uint64_t sender_gid) override;
    void on_proxy_delivery(std::uint64_t gid, const wire::Frame& frame,
                           double rssi) override;
  };

  struct ClientInfo {
    Radio* radio = nullptr;  ///< null before attach / after teardown
    int home = 0;
    std::function<Position(Time)> pos_at;
    double max_speed = 0.0;
    std::uint64_t addr_lo = 0, addr_hi = 0;
    // Home-thread-only placement state.
    int cur_shard = -1;
    wire::Channel cur_channel = 1;
    bool placed = false;
  };

  /// Routes a shadow/native transmission to every shard whose stripe of
  /// `channel` is within the export margin of `tx_pos`. `from` is the
  /// sending shard; its own medium is skipped for native senders (they
  /// already fanned out locally) but *not* for shadows (a shadow has no
  /// local phy presence — its proxy may live right here).
  void route_transmit(int from, bool skip_self, wire::Channel channel,
                      const Position& tx_pos, Time t0, BitRate rate,
                      const wire::Frame& frame, std::uint64_t exclude_gid);
  /// Sends depart (old placement) + arrive (new) thunks and updates the
  /// placement. Home thread only.
  void move_proxy(int home, ClientInfo& info, std::uint64_t gid,
                  wire::Channel channel, int new_shard);
  /// Applies a forwarded delivery on the client's home shard: the owner
  /// already drew the loss; here the real radio's listening/channel state
  /// decides delivery vs drop.
  void deliver_home(std::uint64_t gid, const wire::Frame& frame);
  /// Per-window home-side sweep: re-place proxies whose client crossed a
  /// stripe cut. Installed as a ShardedSimulator window hook when the
  /// partition is spatial.
  void migrate_sweep(int shard);

  sim::ShardedSimulator& bus_;
  std::vector<Medium*> mediums_;
  ShardPartition partition_;
  std::function<bool(wire::MacAddress)> is_client_;
  std::vector<Port> ports_;
  std::unordered_map<std::uint64_t, ClientInfo> clients_;
  /// Per-shard home rosters (pointers into clients_, stable: node-based
  /// map, structure frozen during the run).
  std::vector<std::vector<std::pair<std::uint64_t, ClientInfo*>>> homed_;
  std::atomic<std::uint64_t> migrations_{0};
};

}  // namespace spider::phy
