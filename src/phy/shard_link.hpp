#pragma once

#include <cstdint>
#include <functional>

#include "util/time.hpp"
#include "util/units.hpp"
#include "wire/frame.hpp"

namespace spider::phy {

class Radio;

/// Cross-shard lookahead window: one 802.11b long-preamble PLCP overhead.
/// Every frame's airtime is at least this (PLCP + payload), and the
/// hardware-reset switch latency (~4 ms) is over 20x larger, so any
/// cross-shard effect decided while executing window k — a frame landing
/// on a remote shard's radio, a retune completing on another channel —
/// takes effect strictly after the window boundary k*W. That is exactly
/// the safety condition of the conservative lockstep protocol in
/// sim::ShardedSimulator (DESIGN.md §12).
inline constexpr Time kShardLookahead = usec(192);

/// Spatial slop added to the boundary-export margin. A client whose proxy
/// lags one exchange window behind its true position has moved at most
/// speed * 2W (millimetres at vehicular speeds); exporting transmissions
/// within range + slop of a stripe cut covers the lag with three orders of
/// magnitude to spare.
inline constexpr double kShardSlopM = 1.0;

/// Everything a shard needs to host a remote client's phy presence: a
/// proxy slot that occupies the client's channel cohort and grid cell,
/// draws loss like a local radio would, and forwards its deliveries home.
struct ShardProxyDesc {
  /// Global radio identity: the raw MAC of the client's physical radio.
  std::uint64_t gid = 0;
  wire::Channel channel = 1;
  /// Unicast addresses the client answers for (ARQ gate): [lo, hi). The
  /// client MAC block layout makes this a contiguous range.
  std::uint64_t addr_lo = 0;
  std::uint64_t addr_hi = 0;
  /// Pure function of sim time (the MobilityModel contract) — safe to
  /// evaluate from the owning shard's thread with its own clock.
  std::function<Position(Time)> pos_at;
  double max_speed_mps = 0.0;
};

/// The medium's window into a sharded formation. When installed (via
/// Medium::set_shard_link), the medium intercepts the lifecycle of
/// "shadow" radios — client radios homed on this shard whose phy presence
/// lives on whichever shard owns their channel stripe — and mirrors native
/// transmissions near stripe boundaries to adjacent shards. When no link
/// is installed (every serial run), none of these paths exist and the
/// medium's behaviour is byte-identical to the pre-shard engine.
///
/// All callbacks run on the calling medium's shard thread; implementations
/// communicate only through sim::ShardedSimulator mailboxes.
class ShardLink {
 public:
  virtual ~ShardLink() = default;

  /// True when `mac` identifies a client radio (shadow on its home shard,
  /// proxied on its channel-owning shard). AP radios are never shadows.
  virtual bool is_shadow(wire::MacAddress mac) const = 0;

  /// A shadow radio attached/detached on its home medium (assembly and
  /// teardown time; never mid-run).
  virtual void on_shadow_attach(Radio& radio) = 0;
  virtual void on_shadow_detach(Radio& radio) = 0;

  /// A shadow radio put a frame on the air: route it to every shard owning
  /// a stripe of the radio's channel within range of `tx_pos`.
  virtual void on_shadow_transmit(Radio& sender, const wire::Frame& frame,
                                  const Position& tx_pos, BitRate rate) = 0;

  /// A shadow radio's retune completed (channel actually changed): move
  /// its proxy from the old channel's owner to the new one's.
  virtual void on_shadow_retune(Radio& radio, wire::Channel old_channel) = 0;

  /// A native (non-shadow) radio on this shard transmitted: mirror the
  /// fan-out to adjacent-stripe shards when `tx_pos` is within the export
  /// margin of a stripe cut. The common case — this shard owns the whole
  /// channel — must be answered with no sends.
  virtual void on_native_transmit(wire::Channel channel,
                                  const Position& tx_pos,
                                  const wire::Frame& frame, BitRate rate,
                                  std::uint64_t sender_gid) = 0;

  /// A frame survived the loss draw against a proxy slot: forward it to
  /// the client's home shard, where the real radio applies its
  /// listening/channel state and takes the delivery (or drops it).
  virtual void on_proxy_delivery(std::uint64_t gid, const wire::Frame& frame,
                                 double rssi) = 0;
};

}  // namespace spider::phy
