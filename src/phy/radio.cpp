#include "phy/radio.hpp"

#include <utility>

namespace spider::phy {

Radio::Radio(Medium& medium, wire::MacAddress mac, PositionFn position,
             RadioConfig config)
    : medium_(medium),
      mac_(mac),
      position_(std::move(position)),
      config_(config) {
  medium_.attach(*this);
}

Radio::~Radio() {
  tx_event_.cancel();
  switch_event_.cancel();
  medium_.detach(*this);
}

void Radio::tune(wire::Channel channel, std::function<void()> done) {
  // The latest request wins; a superseded tune's completion callback is
  // dropped (its requester has moved on).
  switch_event_.cancel();
  pending_tune_ = PendingTune{channel, std::move(done)};
  if (resetting_) {
    // Mid-reset retarget: restart the reset toward the new channel.
    begin_reset();
  } else if (!tx_busy_ && tx_queue_.empty()) {
    begin_reset();
  }
  // Otherwise pump_tx() starts the reset once the queue drains.
}

void Radio::begin_reset() {
  resetting_ = true;
  ++switches_;
  switch_airtime_ += config_.switch_latency;
  switch_event_ = medium_.simulator().schedule(config_.switch_latency, [this] {
    PendingTune tune = std::move(*pending_tune_);
    pending_tune_.reset();
    const wire::Channel old_channel = channel_;
    channel_ = tune.channel;
    resetting_ = false;
    // The medium's channel index tracks channel_ exactly: membership moves
    // at the instant the retune completes, never while frames for the old
    // channel are still addressed to this radio's cohort entry.
    if (channel_ != old_channel) medium_.retune(*this, old_channel);
    pump_tx();
    if (tune.done) tune.done();
  });
}

void Radio::send(wire::Frame frame) {
  if (switching()) {
    // Traffic submitted during a switch would hit the wrong channel.
    ++dropped_switching_;
    return;
  }
  frame.src = frame.src.is_null() ? mac_ : frame.src;
  tx_queue_.push_back(std::move(frame));
  pump_tx();
}

void Radio::pump_tx() {
  if (tx_busy_ || resetting_) return;
  if (tx_queue_.empty()) {
    if (pending_tune_) begin_reset();
    return;
  }
  tx_busy_ = true;
  wire::Frame frame = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  const Time occupancy = Medium::airtime(frame.size_bytes, config_.phy_rate);
  tx_airtime_ += occupancy;
  tx_bytes_ += frame.size_bytes;
  medium_.transmit(*this, std::move(frame));
  tx_event_ = medium_.simulator().schedule(occupancy, [this] {
    tx_busy_ = false;
    pump_tx();
  });
}

void Radio::deliver(const wire::Frame& frame) {
  if (receiver_) receiver_(frame);
}

}  // namespace spider::phy
