#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"
#include "wire/frame.hpp"

namespace spider::phy {

/// Hardware parameters of a Wi-Fi card.
struct RadioConfig {
  BitRate phy_rate = kWirelessRate;  ///< 11 Mbps, as in the paper
  /// Hardware-reset latency applied on every channel change. Table 1
  /// measures the full switch (PSM frames + reset) at ~5 ms with the reset
  /// as the dominant term.
  Time switch_latency = msec(4);
  /// Whether the position callback is time-varying. The medium's spatial
  /// grid (DESIGN.md §10) re-samples mobile radios whenever sim time
  /// advances but buckets static radios exactly once at attach/retune —
  /// this is what keeps thousands of stationary APs free of per-frame
  /// position sampling. The default is the always-correct conservative
  /// choice; only declare a radio static when its position callback is a
  /// constant (APs do), or grid deliveries will miss it after it moves.
  bool mobile = true;
  /// Optional ceiling on how fast the position callback can move this
  /// radio, in metres per second of sim time (0 = no ceiling known). When
  /// set, the medium's mobile sweep amortises rebucketing (DESIGN.md §10):
  /// a radio mid-cell cannot reach a cell boundary before
  /// distance-to-boundary / max_speed_mps elapses, so its position is not
  /// re-sampled until that horizon — without changing delivered sets,
  /// counters, or RNG draws. The value must be a true bound over the whole
  /// run (every MobilityModel moves at constant path speed with no
  /// teleports, so speed_mps() qualifies); a callback that outruns its
  /// declared ceiling breaks grid correctness. Leave 0 when unsure.
  double max_speed_mps = 0.0;
};

/// A single physical 802.11 card.
///
/// The radio is tuned to exactly one channel at a time. Transmissions are
/// serialised through a FIFO: a frame occupies the air for its airtime
/// before the next may start. A `tune()` request first drains frames that
/// are already queued (Spider's switch sequence queues PSM frames to each
/// associated AP immediately before retuning, and those must reach the old
/// channel), then performs the hardware reset, during which the card
/// neither transmits nor receives. Virtualisation (multiple BSS on one
/// card) lives above this class, in the MAC and in Spider's scheduler.
class Radio {
 public:
  using PositionFn = std::function<Position()>;
  using ReceiveFn = std::function<void(const wire::Frame&)>;

  Radio(Medium& medium, wire::MacAddress mac, PositionFn position,
        RadioConfig config = {});
  ~Radio();
  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  wire::MacAddress mac() const { return mac_; }
  wire::Channel channel() const { return channel_; }
  Position position() const { return position_(); }
  const RadioConfig& config() const { return config_; }

  /// True when the card can hear frames on its channel.
  bool listening() const { return !resetting_; }
  /// True from the tune() call until the retune completes.
  bool switching() const { return resetting_ || pending_tune_.has_value(); }

  /// Retunes the card. Already-queued frames are flushed first; then the
  /// card is deaf for `switch_latency`; `done` runs once it is usable on
  /// the new channel. Retuning to the current channel still pays the
  /// hardware-reset cost (matching the driver's behaviour). A second tune()
  /// while one is pending supersedes it (the previous `done` is dropped).
  void tune(wire::Channel channel, std::function<void()> done = nullptr);

  /// Enqueues a frame for transmission on the current channel. Frames
  /// queued after a tune() request are dropped — callers must hold traffic
  /// until the retune completes.
  void send(wire::Frame frame);

  /// Upcall for every frame heard on the tuned channel (promiscuous: the
  /// MAC above filters by address; the scanner wants overheard beacons).
  void set_receiver(ReceiveFn receiver) { receiver_ = std::move(receiver); }

  /// Declares which unicast destinations this card answers for. A
  /// virtualised driver programs all of its interface MACs here; the
  /// medium applies link-layer ARQ only to frames an addressee will ACK.
  /// Default: only the card's own MAC.
  void set_address_filter(std::function<bool(wire::MacAddress)> filter) {
    address_filter_ = std::move(filter);
  }
  bool owns_address(wire::MacAddress addr) const {
    return addr == mac_ || (address_filter_ && address_filter_(addr));
  }

  /// Called by the medium on delivery.
  void deliver(const wire::Frame& frame);

  std::uint64_t switches_performed() const { return switches_; }
  std::uint64_t frames_dropped_switching() const { return dropped_switching_; }

  // --- energy accounting inputs (see phy/energy.hpp) ------------------
  /// Cumulative airtime this card spent transmitting.
  Time tx_airtime() const { return tx_airtime_; }
  /// Cumulative time spent in hardware resets (tuning).
  Time switch_airtime() const { return switch_airtime_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }

 private:
  friend class Medium;
  friend struct MediumTestPeer;  ///< test-only invariant-corruption backdoor

  struct PendingTune {
    wire::Channel channel;
    std::function<void()> done;
  };

  void pump_tx();
  void begin_reset();

  Medium& medium_;
  /// Index into the medium's generation-stamped slot registry; assigned by
  /// Medium::attach and used for O(1) liveness checks on in-flight frames.
  std::uint32_t medium_slot_ = 0;
  wire::MacAddress mac_;
  PositionFn position_;
  RadioConfig config_;
  ReceiveFn receiver_;
  std::function<bool(wire::MacAddress)> address_filter_;

  wire::Channel channel_ = 1;
  bool resetting_ = false;
  std::optional<PendingTune> pending_tune_;
  std::uint64_t switches_ = 0;
  std::uint64_t dropped_switching_ = 0;

  Time tx_airtime_{0};
  Time switch_airtime_{0};
  std::uint64_t tx_bytes_ = 0;

  std::deque<wire::Frame> tx_queue_;
  bool tx_busy_ = false;
  sim::EventHandle tx_event_;
  sim::EventHandle switch_event_;
};

}  // namespace spider::phy
