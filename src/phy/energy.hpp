#pragma once

#include "phy/radio.hpp"
#include "util/time.hpp"

namespace spider::phy {

/// Radio energy model.
///
/// The paper motivates Wi-Fi offloading partly with "higher per-bit energy
/// efficiency"; this model lets the benches quantify the energy cost of
/// the different schedules. State powers approximate an Atheros-era
/// miniPCI card: the receiver chain dominates whenever the card is awake,
/// transmission adds on top, and the hardware reset burns about as much as
/// active receive. Spider's fake-PSM never actually sleeps the card, so
/// there is no sleep state here — one of the costs of the technique.
struct EnergyModel {
  double tx_watts = 1.4;
  double idle_rx_watts = 0.9;   ///< awake on a channel (receive == idle)
  double switch_watts = 1.0;    ///< during the hardware reset

  /// Total energy drawn by `radio` from simulation start to `now`.
  double joules(const Radio& radio, Time now) const {
    const double tx_s = to_seconds(radio.tx_airtime());
    const double switch_s = to_seconds(radio.switch_airtime());
    const double idle_s =
        std::max(0.0, to_seconds(now) - tx_s - switch_s);
    // TX time is charged at tx power *instead of* idle power.
    return tx_s * tx_watts + switch_s * switch_watts + idle_s * idle_rx_watts;
  }

  /// Joules per useful megabyte — the efficiency metric the benches report.
  double joules_per_mb(const Radio& radio, Time now,
                       std::uint64_t goodput_bytes) const {
    if (goodput_bytes == 0) return 0.0;
    return joules(radio, now) / (static_cast<double>(goodput_bytes) / 1e6);
  }
};

}  // namespace spider::phy
