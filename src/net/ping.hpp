#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulator.hpp"
#include "wire/packet.hpp"

namespace spider::net {

/// Spider's connectivity prober (§3.2.2): after a successful join the link
/// manager "continuously uses end-to-end pings to determine whether the
/// connection is alive. If thirty consecutive pings fail (sent at a rate of
/// 10 pings per second), Spider assumes that the connection is dropped."
struct PingProberConfig {
  Time interval = msec(100);   ///< 10 pings/s
  int fail_threshold = 30;     ///< consecutive misses before declaring death
};

class PingProber {
 public:
  using SendFn = std::function<void(wire::PacketPtr)>;

  struct Callbacks {
    /// First successful round-trip (used as the end-to-end join check).
    std::function<void()> on_first_reply;
    /// `fail_threshold` consecutive probes went unanswered.
    std::function<void()> on_dead;
  };

  PingProber(sim::Simulator& simulator, std::uint32_t prober_id,
             PingProberConfig config);
  ~PingProber();
  PingProber(const PingProber&) = delete;
  PingProber& operator=(const PingProber&) = delete;

  void set_send(SendFn send) { send_ = std::move(send); }
  void set_callbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }

  /// Starts probing `target` from `source`.
  void start(wire::Ipv4 source, wire::Ipv4 target);
  void stop();
  bool running() const { return running_; }

  /// Feed ICMP packets received on the interface.
  void on_packet(const wire::Packet& packet);

  int consecutive_misses() const;
  std::uint64_t replies_received() const { return replies_; }

 private:
  void tick();

  sim::Simulator& sim_;
  std::uint32_t id_;
  PingProberConfig config_;
  SendFn send_;
  Callbacks callbacks_;

  bool running_ = false;
  bool saw_reply_ = false;
  wire::Ipv4 source_;
  wire::Ipv4 target_;
  std::uint32_t next_seq_ = 0;
  std::int64_t last_reply_seq_ = -1;
  std::uint64_t replies_ = 0;
  sim::EventHandle timer_;
};

}  // namespace spider::net
