#include "net/wired.hpp"

namespace spider::net {

void WiredNetwork::register_host(Host& host) { hosts_[host.ip()] = &host; }

void WiredNetwork::unregister_host(const Host& host) { hosts_.erase(host.ip()); }

void WiredNetwork::register_subnet(wire::Ipv4 subnet_base, Link& downlink) {
  subnets_[subnet_base.raw() & 0xFFFFFF00u] = &downlink;
}

void WiredNetwork::route(wire::PacketPtr packet) {
  sim_.post(core_latency_, [this, packet = std::move(packet)]() mutable {
    if (auto host = hosts_.find(packet->dst); host != hosts_.end()) {
      ++routed_;
      host->second->receive(*packet);
      return;
    }
    if (auto subnet = subnets_.find(packet->dst.raw() & 0xFFFFFF00u);
        subnet != subnets_.end()) {
      ++routed_;
      subnet->second->send(std::move(packet));
      return;
    }
    ++unroutable_;
  });
}

Host::Host(WiredNetwork& network, wire::Ipv4 ip) : network_(network), ip_(ip) {
  network_.register_host(*this);
}

Host::~Host() { network_.unregister_host(*this); }

void Host::receive(const wire::Packet& packet) {
  if (const auto* echo = packet.as<wire::IcmpEcho>(); echo && !echo->reply) {
    wire::IcmpEcho reply = *echo;
    reply.reply = true;
    send(wire::make_icmp_packet(ip_, packet.src, reply));
    return;
  }
  if (handler_) handler_(packet);
}

}  // namespace spider::net
