#include "net/ping.hpp"

namespace spider::net {

PingProber::PingProber(sim::Simulator& simulator, std::uint32_t prober_id,
                       PingProberConfig config)
    : sim_(simulator), id_(prober_id), config_(config) {}

PingProber::~PingProber() { timer_.cancel(); }

void PingProber::start(wire::Ipv4 source, wire::Ipv4 target) {
  stop();
  running_ = true;
  saw_reply_ = false;
  source_ = source;
  target_ = target;
  next_seq_ = 0;
  last_reply_seq_ = -1;
  tick();
}

void PingProber::stop() {
  timer_.cancel();
  running_ = false;
}

int PingProber::consecutive_misses() const {
  return static_cast<int>(static_cast<std::int64_t>(next_seq_) - 1 -
                          last_reply_seq_);
}

void PingProber::tick() {
  if (!running_) return;
  if (consecutive_misses() >= config_.fail_threshold) {
    running_ = false;
    if (callbacks_.on_dead) callbacks_.on_dead();
    return;
  }
  wire::IcmpEcho echo;
  echo.reply = false;
  echo.id = id_;
  echo.seq = next_seq_++;
  if (send_) send_(wire::make_icmp_packet(source_, target_, echo));
  timer_ = sim_.schedule(config_.interval, [this] { tick(); });
}

void PingProber::on_packet(const wire::Packet& packet) {
  const auto* echo = packet.as<wire::IcmpEcho>();
  if (!echo || !echo->reply || echo->id != id_) return;
  last_reply_seq_ = std::max<std::int64_t>(last_reply_seq_, echo->seq);
  ++replies_;
  if (!saw_reply_) {
    saw_reply_ = true;
    if (callbacks_.on_first_reply) callbacks_.on_first_reply();
  }
}

}  // namespace spider::net
