#include "net/dhcp_server.hpp"

#include <algorithm>
#include <cmath>

namespace spider::net {

using wire::DhcpMessage;

DhcpServer::DhcpServer(sim::Simulator& simulator, wire::Ipv4 subnet_base,
                       wire::Ipv4 gateway, DhcpServerConfig config, Rng rng)
    : sim_(simulator),
      subnet_base_(subnet_base),
      gateway_(gateway),
      config_(config),
      rng_(rng),
      next_host_(config.first_host) {}

void DhcpServer::reset_pool() {
  by_mac_.clear();
  by_ip_.clear();
  next_host_ = config_.first_host;
}

void DhcpServer::on_message(const DhcpMessage& msg, wire::MacAddress from) {
  if (stalled_) {
    ++dropped_;
    return;
  }
  switch (msg.type) {
    case DhcpMessage::Type::kDiscover:
      handle_discover(msg, from);
      return;
    case DhcpMessage::Type::kRequest:
      handle_request(msg, from);
      return;
    case DhcpMessage::Type::kRelease:
      handle_release(msg, from);
      return;
    default:
      return;  // OFFER/ACK/NAK are server->client only
  }
}

std::optional<wire::Ipv4> DhcpServer::allocate(wire::MacAddress mac) {
  if (auto it = by_mac_.find(mac); it != by_mac_.end()) {
    it->second.expires_at = sim_.now() + config_.lease_duration;
    return it->second.ip;
  }
  // Reclaim expired leases lazily when the pool wraps.
  for (int attempts = config_.last_host - config_.first_host + 1; attempts > 0;
       --attempts) {
    const wire::Ipv4 candidate = subnet_base_.with_host(next_host_);
    next_host_ = next_host_ >= config_.last_host
                     ? config_.first_host
                     : static_cast<std::uint8_t>(next_host_ + 1);
    auto existing = by_ip_.find(candidate);
    if (existing != by_ip_.end()) {
      auto& rec = by_mac_[existing->second];
      if (rec.expires_at > sim_.now()) continue;  // still held
      by_mac_.erase(existing->second);
      by_ip_.erase(existing);
    }
    by_mac_[mac] = LeaseRecord{candidate, sim_.now() + config_.lease_duration};
    by_ip_[candidate] = mac;
    return candidate;
  }
  return std::nullopt;  // pool exhausted
}

void DhcpServer::respond_after(Time delay, DhcpMessage response,
                               wire::MacAddress to) {
  sim_.post(delay, [this, response, to] {
    if (!send_) return;
    // DHCP server responses are addressed at L2; the client has no
    // routable IP yet, so src is the server/gateway and dst is broadcast
    // per RFC 2131's pre-bind behaviour.
    send_(wire::make_dhcp_packet(gateway_, wire::Ipv4(255, 255, 255, 255),
                                 response),
          to);
  });
}

Time DhcpServer::draw_offer_delay() {
  const double median_s = to_seconds(config_.offer_delay_median);
  const double sample_s =
      rng_.lognormal(std::log(std::max(1e-3, median_s)),
                     config_.offer_delay_sigma);
  const Time sample = sec(sample_s);
  return std::clamp(sample, config_.offer_delay_min, config_.offer_delay_max);
}

void DhcpServer::handle_discover(const DhcpMessage& msg, wire::MacAddress from) {
  const auto ip = allocate(from);
  if (!ip) return;  // exhausted pool: silent, client times out

  DhcpMessage offer;
  offer.type = DhcpMessage::Type::kOffer;
  offer.xid = msg.xid;
  offer.client_mac = from;
  offer.offered_ip = *ip;
  offer.server_id = gateway_;
  offer.gateway = gateway_;
  offer.lease_duration = config_.lease_duration;

  ++offers_sent_;
  respond_after(draw_offer_delay(), offer, from);
}

void DhcpServer::handle_request(const DhcpMessage& msg, wire::MacAddress from) {
  DhcpMessage resp;
  resp.xid = msg.xid;
  resp.client_mac = from;
  resp.server_id = gateway_;
  resp.gateway = gateway_;

  auto it = by_mac_.find(from);
  const bool valid = !nak_requests_ && it != by_mac_.end() &&
                     it->second.ip == msg.offered_ip;
  if (valid) {
    it->second.expires_at = sim_.now() + config_.lease_duration;
    resp.type = DhcpMessage::Type::kAck;
    resp.offered_ip = it->second.ip;
    resp.lease_duration = config_.lease_duration;
    ++acks_sent_;
  } else {
    // INIT-REBOOT with a lease we no longer honour (e.g. cache from a past
    // drive-by that has since been reassigned or expired), or a forced
    // NAK-after-OFFER window. Misconfigured gateways skip even the NAK.
    if (!config_.nak_unknown_requests && !nak_requests_) {
      ++dropped_;
      return;
    }
    resp.type = DhcpMessage::Type::kNak;
    ++naks_sent_;
  }
  const Time delay = usec(rng_.uniform_int(config_.ack_delay_min.count(),
                                           config_.ack_delay_max.count()));
  respond_after(delay, resp, from);
}

void DhcpServer::handle_release(const DhcpMessage&, wire::MacAddress from) {
  // RFC 2131 §4.4.6: the client relinquishes its lease; no reply is sent.
  ++releases_;
  auto it = by_mac_.find(from);
  if (it == by_mac_.end()) return;
  by_ip_.erase(it->second.ip);
  by_mac_.erase(it);
}

std::optional<wire::MacAddress> DhcpServer::lookup_mac(wire::Ipv4 ip) const {
  auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) return std::nullopt;
  return it->second;
}

std::optional<wire::Ipv4> DhcpServer::lookup_ip(wire::MacAddress mac) const {
  auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) return std::nullopt;
  return it->second.ip;
}

}  // namespace spider::net
