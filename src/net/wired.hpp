#pragma once

#include <functional>
#include <unordered_map>

#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "wire/packet.hpp"

namespace spider::net {

class Host;

/// The wired core ("the Internet" behind the APs' backhauls). Bandwidth
/// constraints live in the Link objects on either side; the core itself
/// adds only a small fixed forwarding latency — going through the event
/// queue also keeps zero-RTT topologies from recursing unboundedly.
/// Destinations are either registered hosts (servers) or /24 subnets owned
/// by an AP, reached via that AP's downlink.
class WiredNetwork {
 public:
  explicit WiredNetwork(sim::Simulator& simulator, Time core_latency = usec(200))
      : sim_(simulator), core_latency_(core_latency) {}

  void register_host(Host& host);
  void unregister_host(const Host& host);

  /// Routes packets destined to `subnet_base`/24 into `downlink`.
  void register_subnet(wire::Ipv4 subnet_base, Link& downlink);

  void route(wire::PacketPtr packet);

  std::uint64_t routed() const { return routed_; }
  std::uint64_t unroutable() const { return unroutable_; }

 private:
  sim::Simulator& sim_;
  Time core_latency_;
  std::unordered_map<wire::Ipv4, Host*> hosts_;
  std::unordered_map<std::uint32_t, Link*> subnets_;  // keyed by base/24
  std::uint64_t routed_ = 0;
  std::uint64_t unroutable_ = 0;
};

/// A wired end host (the paper's download server / ping sink). Replies to
/// ICMP echos automatically; other traffic goes to the installed handler
/// (the transport layer registers TCP here).
class Host {
 public:
  using PacketHandler = std::function<void(const wire::Packet&)>;

  Host(WiredNetwork& network, wire::Ipv4 ip);
  ~Host();
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  wire::Ipv4 ip() const { return ip_; }
  void set_handler(PacketHandler handler) { handler_ = std::move(handler); }

  void send(wire::PacketPtr packet) { network_.route(std::move(packet)); }
  void receive(const wire::Packet& packet);

 private:
  WiredNetwork& network_;
  wire::Ipv4 ip_;
  PacketHandler handler_;
};

}  // namespace spider::net
