#include "net/dhcp_client.hpp"

#include "obs/tracer.hpp"

namespace spider::net {

using wire::DhcpMessage;

DhcpClient::DhcpClient(sim::Simulator& simulator, wire::MacAddress mac,
                       DhcpClientConfig config)
    : sim_(simulator), mac_(mac), config_(config) {}

DhcpClient::~DhcpClient() {
  timer_.cancel();
  renew_timer_.cancel();
}

void DhcpClient::start(std::optional<Lease> cached) {
  abort();
  started_ = sim_.now();
  xid_ = next_xid_++;
  if (cached && cached->expires_at > sim_.now()) {
    // INIT-REBOOT: re-request the remembered address directly.
    from_cache_ = true;
    pending_ip_ = cached->ip;
    pending_server_ = cached->server_id;
    pending_gateway_ = cached->gateway;
    state_ = State::kRequesting;
    sends_left_ = config_.max_sends;
    SPIDER_TRACE(sim_, .kind = obs::TraceKind::kDhcpRequest, .aux = 1,
                 .track = trace_track_);
    send_request();
  } else {
    from_cache_ = false;
    state_ = State::kSelecting;
    sends_left_ = config_.max_sends;
    SPIDER_TRACE(sim_, .kind = obs::TraceKind::kDhcpDiscover,
                 .track = trace_track_);
    send_discover();
  }
}

void DhcpClient::abort() {
  timer_.cancel();
  renew_timer_.cancel();
  renewing_ = false;
  state_ = State::kIdle;
  lease_.reset();
}

void DhcpClient::release() {
  if (state_ != State::kBound || !lease_) {
    abort();
    return;
  }
  DhcpMessage msg;
  msg.type = DhcpMessage::Type::kRelease;
  msg.xid = xid_;
  msg.client_mac = mac_;
  msg.offered_ip = lease_->ip;
  msg.server_id = lease_->server_id;
  if (send_) {
    send_(wire::make_dhcp_packet(lease_->ip, lease_->server_id, msg));
  }
  abort();
}

void DhcpClient::schedule_renew() {
  renew_timer_.cancel();
  const Time lease_left = lease_->expires_at - sim_.now();
  const auto t1 = Time{static_cast<std::int64_t>(
      config_.renew_fraction * static_cast<double>(lease_left.count()))};
  renew_timer_ = sim_.schedule(std::max(t1, Time{1}), [this] { send_renew(); });
}

void DhcpClient::send_renew() {
  if (state_ != State::kBound || !lease_) return;
  if (sim_.now() >= lease_->expires_at) {
    // Expired without a successful renewal: the address is gone.
    SPIDER_TRACE(sim_, .kind = obs::TraceKind::kDhcpLeaseLost,
                 .track = trace_track_);
    const auto cb = callbacks_.on_lease_lost;
    abort();
    if (cb) cb();
    return;
  }
  renewing_ = true;
  DhcpMessage msg;
  msg.type = DhcpMessage::Type::kRequest;
  msg.xid = xid_;
  msg.client_mac = mac_;
  msg.offered_ip = lease_->ip;
  msg.server_id = lease_->server_id;
  if (send_) {
    send_(wire::make_dhcp_packet(lease_->ip, lease_->server_id, msg));
  }
  // Retry on the retransmit timer until the ACK lands or the lease dies.
  renew_timer_ = sim_.schedule(config_.retx_timeout, [this] { send_renew(); });
}

void DhcpClient::arm_timer(std::function<void()> on_expiry) {
  timer_.cancel();
  timer_ = sim_.schedule(config_.retx_timeout, std::move(on_expiry));
}

void DhcpClient::fail() {
  timer_.cancel();
  state_ = State::kFailed;
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kDhcpFail,
               .aux = static_cast<std::uint8_t>(from_cache_ ? 1 : 0),
               .track = trace_track_);
  if (callbacks_.on_failed) callbacks_.on_failed();
}

void DhcpClient::send_discover() {
  if (sends_left_-- <= 0) {
    fail();
    return;
  }
  DhcpMessage msg;
  msg.type = DhcpMessage::Type::kDiscover;
  msg.xid = xid_;
  msg.client_mac = mac_;
  if (send_) {
    send_(wire::make_dhcp_packet(wire::Ipv4(), wire::Ipv4(255, 255, 255, 255),
                                 msg));
  }
  arm_timer([this] {
    if (state_ == State::kSelecting) send_discover();
  });
}

void DhcpClient::send_request() {
  if (sends_left_-- <= 0) {
    fail();
    return;
  }
  DhcpMessage msg;
  msg.type = DhcpMessage::Type::kRequest;
  msg.xid = xid_;
  msg.client_mac = mac_;
  msg.offered_ip = pending_ip_;
  msg.server_id = pending_server_;
  if (send_) {
    send_(wire::make_dhcp_packet(wire::Ipv4(), wire::Ipv4(255, 255, 255, 255),
                                 msg));
  }
  arm_timer([this] {
    if (state_ == State::kRequesting) send_request();
  });
}

void DhcpClient::on_packet(const wire::Packet& packet) {
  const auto* msg = packet.as<DhcpMessage>();
  if (!msg || msg->xid != xid_ || msg->client_mac != mac_) return;

  switch (msg->type) {
    case DhcpMessage::Type::kOffer:
      if (state_ != State::kSelecting) return;
      pending_ip_ = msg->offered_ip;
      pending_server_ = msg->server_id;
      pending_gateway_ = msg->gateway;
      state_ = State::kRequesting;
      sends_left_ = config_.max_sends;
      send_request();
      return;

    case DhcpMessage::Type::kAck: {
      if (state_ == State::kBound && renewing_) {
        // Renewal ACK: extend in place, no re-bind notification.
        renewing_ = false;
        lease_->expires_at = sim_.now() + msg->lease_duration;
        schedule_renew();
        return;
      }
      if (state_ != State::kRequesting) return;
      timer_.cancel();
      state_ = State::kBound;
      lease_ = Lease{msg->offered_ip, pending_gateway_, msg->server_id,
                     sim_.now() + msg->lease_duration};
      SPIDER_TRACE(sim_, .kind = obs::TraceKind::kDhcpBound,
                   .aux = static_cast<std::uint8_t>(from_cache_ ? 1 : 0),
                   .track = trace_track_,
                   .value = to_seconds(msg->lease_duration));
      schedule_renew();
      if (callbacks_.on_bound) callbacks_.on_bound(*lease_);
      return;
    }

    case DhcpMessage::Type::kNak:
      SPIDER_TRACE(sim_, .kind = obs::TraceKind::kDhcpNak,
                   .aux = static_cast<std::uint8_t>(
                       state_ == State::kBound && renewing_ ? 1 : 0),
                   .track = trace_track_);
      if (state_ == State::kBound && renewing_) {
        // Server refused the renewal: the lease is dead now.
        SPIDER_TRACE(sim_, .kind = obs::TraceKind::kDhcpLeaseLost,
                     .track = trace_track_);
        const auto cb = callbacks_.on_lease_lost;
        abort();
        if (cb) cb();
        return;
      }
      if (state_ != State::kRequesting) return;
      if (from_cache_) {
        // The cached lease is stale; restart with a fresh DISCOVER.
        from_cache_ = false;
        if (callbacks_.on_cache_rejected) callbacks_.on_cache_rejected();
        state_ = State::kSelecting;
        sends_left_ = config_.max_sends;
        send_discover();
      } else {
        fail();
      }
      return;

    default:
      return;
  }
}

std::optional<Lease> LeaseCache::find(wire::Bssid bssid, Time now) const {
  auto it = cache_.find(bssid);
  if (it == cache_.end() || it->second.expires_at <= now) return std::nullopt;
  return it->second;
}

}  // namespace spider::net
