#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "sim/simulator.hpp"
#include "util/time.hpp"
#include "wire/packet.hpp"

namespace spider::net {

/// A bound DHCP lease.
struct Lease {
  wire::Ipv4 ip;
  wire::Ipv4 gateway;
  wire::Ipv4 server_id;
  Time expires_at{0};
};

/// Client-side DHCP timers.
///
/// The defaults mirror the stock behaviour the paper describes ("the client
/// attempts to acquire a lease for 3 seconds, and it is idle for 60 seconds
/// if it fails"): three 1 s-spaced transmissions per phase. The mobile
/// experiments reduce `retx_timeout` to 100-600 ms, shrinking the attempt
/// window proportionally — which is exactly the trade-off of Table 3 /
/// Fig. 14 (faster medians, more failures).
struct DhcpClientConfig {
  Time retx_timeout = sec(1);
  int max_sends = 3;  ///< transmissions per phase before giving up
  /// Renew at this fraction of the lease (RFC 2131's T1). Renewals are
  /// unicast REQUESTs; failures retry on the retransmit timer until the
  /// lease expires.
  double renew_fraction = 0.5;
};

/// Client DHCP state machine (DISCOVER -> OFFER -> REQUEST -> ACK), with an
/// INIT-REBOOT fast path when a cached lease is supplied. Outgoing packets
/// are handed to the driver, which queues them per channel — so the
/// retransmit clock keeps running while the card serves other channels,
/// reproducing the lost-response dynamics of the paper's join model.
class DhcpClient {
 public:
  using SendFn = std::function<void(wire::PacketPtr)>;

  struct Callbacks {
    std::function<void(const Lease&)> on_bound;
    std::function<void()> on_failed;
    /// Bound lease expired without a successful renewal.
    std::function<void()> on_lease_lost;
    /// An INIT-REBOOT REQUEST was NAKed: the cached lease the caller
    /// supplied is dead (server rebooted or reassigned the address). Fires
    /// before the internal fallback to DISCOVER, so owners of a LeaseCache
    /// can invalidate the entry the moment it is disproven.
    std::function<void()> on_cache_rejected;
  };

  enum class State { kIdle, kSelecting, kRequesting, kBound, kFailed };

  DhcpClient(sim::Simulator& simulator, wire::MacAddress mac,
             DhcpClientConfig config);
  ~DhcpClient();
  DhcpClient(const DhcpClient&) = delete;
  DhcpClient& operator=(const DhcpClient&) = delete;

  void set_send(SendFn send) { send_ = std::move(send); }
  void set_callbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }
  void set_config(const DhcpClientConfig& config) { config_ = config; }
  const DhcpClientConfig& config() const { return config_; }
  /// Flight-recorder lane (obs::track::client of the owning interface).
  void set_trace_track(std::uint32_t track) { trace_track_ = track; }

  /// Begins acquisition. With a cached lease the client attempts
  /// INIT-REBOOT (straight to REQUEST); a NAK falls back to full DISCOVER.
  void start(std::optional<Lease> cached = std::nullopt);

  void abort();

  /// Relinquishes a bound lease (DHCPRELEASE, fire-and-forget) and
  /// returns to idle. No-op unless bound.
  void release();

  /// Feed DHCP packets received on the interface.
  void on_packet(const wire::Packet& packet);

  State state() const { return state_; }
  bool bound() const { return state_ == State::kBound; }
  const std::optional<Lease>& lease() const { return lease_; }
  Time started_at() const { return started_; }

 private:
  void send_discover();
  void send_request();
  void schedule_renew();
  void send_renew();
  void arm_timer(std::function<void()> on_expiry);
  void fail();

  sim::Simulator& sim_;
  wire::MacAddress mac_;
  DhcpClientConfig config_;
  SendFn send_;
  Callbacks callbacks_;

  State state_ = State::kIdle;
  std::uint32_t trace_track_ = 0;
  std::uint32_t xid_ = 0;
  int sends_left_ = 0;
  bool from_cache_ = false;
  wire::Ipv4 pending_ip_;
  wire::Ipv4 pending_server_;
  wire::Ipv4 pending_gateway_;
  bool renewing_ = false;
  std::optional<Lease> lease_;
  Time started_{0};
  sim::EventHandle timer_;
  sim::EventHandle renew_timer_;
  std::uint32_t next_xid_ = 1;
};

/// Per-BSSID lease cache (§3.2.2: "per-BSSID dhcp caches are used to speed
/// up the process of obtaining a lease"). Entries expire with the lease.
class LeaseCache {
 public:
  void store(wire::Bssid bssid, const Lease& lease) { cache_[bssid] = lease; }
  void invalidate(wire::Bssid bssid) { cache_.erase(bssid); }

  /// Returns the cached lease if it is still valid at `now`.
  std::optional<Lease> find(wire::Bssid bssid, Time now) const;

  std::size_t size() const { return cache_.size(); }

 private:
  std::unordered_map<wire::Bssid, Lease> cache_;
};

}  // namespace spider::net
