#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/simulator.hpp"
#include "util/units.hpp"
#include "wire/packet.hpp"

namespace spider::net {

/// A unidirectional wired link with finite rate, fixed propagation delay
/// and a drop-tail queue.
///
/// This is the AP's backhaul: the paper's throughput-aggregation argument
/// rests on the backhaul rate being far below the 11 Mbps wireless rate,
/// so the queue here is where congestion (and thus TCP's behaviour under
/// channel absence) materialises.
struct LinkConfig {
  BitRate rate = mbps(1.5);
  Time delay = msec(10);
  std::size_t queue_packets = 50;
};

class Link {
 public:
  using SinkFn = std::function<void(wire::PacketPtr)>;

  Link(sim::Simulator& simulator, LinkConfig config);

  void set_sink(SinkFn sink) { sink_ = std::move(sink); }
  const LinkConfig& config() const { return config_; }

  /// Enqueues a packet; drops it (drop-tail) if the queue is full.
  void send(wire::PacketPtr packet);

  std::size_t queue_depth() const { return queue_.size(); }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  void pump();

  sim::Simulator& sim_;
  LinkConfig config_;
  SinkFn sink_;
  std::deque<wire::PacketPtr> queue_;
  bool busy_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace spider::net
