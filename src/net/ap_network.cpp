#include "net/ap_network.hpp"

namespace spider::net {

ApNetwork::ApNetwork(sim::Simulator& simulator, mac::AccessPoint& ap,
                     WiredNetwork& wired, wire::Ipv4 subnet_base,
                     ApNetworkConfig config, Rng rng)
    : sim_(simulator),
      ap_(ap),
      internet_connected_(config.internet_connected),
      dhcp_(simulator, subnet_base, subnet_base.with_host(1), config.dhcp, rng),
      uplink_(simulator, config.backhaul),
      downlink_(simulator, config.backhaul) {
  ap_.set_uplink([this](wire::PacketPtr p, wire::MacAddress from) {
    on_uplink(std::move(p), from);
  });
  dhcp_.set_send([this](wire::PacketPtr p, wire::MacAddress to) {
    ap_.deliver_to_client(to, std::move(p));
  });
  uplink_.set_sink([&wired](wire::PacketPtr p) { wired.route(std::move(p)); });
  downlink_.set_sink([this](wire::PacketPtr p) { on_downlink(std::move(p)); });
  wired.register_subnet(subnet_base, downlink_);
}

void ApNetwork::on_uplink(wire::PacketPtr packet, wire::MacAddress from) {
  // DHCP terminates at the AP regardless of addressing (clients have no
  // routable source address yet).
  if (const auto* dhcp_msg = packet->as<wire::DhcpMessage>()) {
    dhcp_.on_message(*dhcp_msg, from);
    return;
  }
  if (!gateway_up_) return;  // flapped WAN: routing and pings both dead
  // Gateway pings: Spider falls back to pinging the gateway when an AP
  // filters end-to-end ICMP; the gateway itself answers these.
  if (packet->dst == gateway_ip()) {
    if (const auto* echo = packet->as<wire::IcmpEcho>(); echo && !echo->reply) {
      wire::IcmpEcho reply = *echo;
      reply.reply = true;
      on_downlink(wire::make_icmp_packet(gateway_ip(), packet->src, reply));
    }
    return;
  }
  if (!internet_connected_) return;  // captive portal: silently eats traffic
  uplink_.send(std::move(packet));
}

void ApNetwork::on_downlink(wire::PacketPtr packet) {
  if (!gateway_up_) return;
  const auto mac = dhcp_.lookup_mac(packet->dst);
  if (!mac) return;  // no lease for this address: drop
  ap_.deliver_to_client(*mac, std::move(packet));
}

}  // namespace spider::net
