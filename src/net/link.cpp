#include "net/link.hpp"

#include "obs/tracer.hpp"

namespace spider::net {

Link::Link(sim::Simulator& simulator, LinkConfig config)
    : sim_(simulator), config_(config) {}

void Link::send(wire::PacketPtr packet) {
  if (queue_.size() >= config_.queue_packets) {
    ++dropped_;
    SPIDER_TRACE(sim_, .kind = obs::TraceKind::kBackhaulDrop,
                 .track = obs::track::backhaul(),
                 .value = static_cast<double>(queue_.size()));
    return;
  }
  queue_.push_back(std::move(packet));
  pump();
}

void Link::pump() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  wire::PacketPtr packet = std::move(queue_.front());
  queue_.pop_front();
  const Time serialization =
      config_.rate.time_for_bytes(static_cast<double>(packet->size_bytes));
  // The link is busy for the serialisation time; the packet additionally
  // rides the propagation delay before reaching the sink.
  sim_.post(serialization, [this, packet = std::move(packet)]() mutable {
    busy_ = false;
    sim_.post(config_.delay, [this, packet = std::move(packet)]() mutable {
      ++delivered_;
      if (sink_) sink_(std::move(packet));
    });
    pump();
  });
}

}  // namespace spider::net
