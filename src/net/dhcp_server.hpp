#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "util/time.hpp"
#include "wire/packet.hpp"

namespace spider::net {

/// Timing behaviour of an AP's DHCP service. The paper's βmax (the
/// dominant term of a join in a non-virtualised client) is the server's
/// OFFER latency: home gateways answer anywhere from a few hundred
/// milliseconds to many seconds depending on load and upstream checks.
struct DhcpServerConfig {
  /// OFFER latency is drawn per DISCOVER from a lognormal with the given
  /// median and sigma, clamped to [min, max]: most home gateways answer in
  /// a few hundred milliseconds, a heavy tail takes many seconds (the
  /// paper's β reaches 10 s). A fresh draw per message means client
  /// retransmissions genuinely help, as observed in Cabernet.
  Time offer_delay_min = msec(100);
  Time offer_delay_median = msec(1200);
  double offer_delay_sigma = 1.5;
  Time offer_delay_max = sec(10.0);
  /// ACKs are quick — the allocation decision was made at OFFER time.
  /// This is also why Spider's per-BSSID lease cache (INIT-REBOOT: skip
  /// straight to REQUEST) is such a win.
  Time ack_delay_min = msec(20);
  Time ack_delay_max = msec(120);
  Time lease_duration = sec(3600);
  std::uint8_t first_host = 10;   ///< first assignable host number
  std::uint8_t last_host = 250;
  /// RFC 2131 says a server MUST NAK a REQUEST for an address it does not
  /// know; plenty of consumer gateways instead stay silent after a reboot
  /// wiped their pool, leaving INIT-REBOOT clients to burn their whole
  /// retransmit budget. False models that misbehaviour.
  bool nak_unknown_requests = true;
};

/// AP-side DHCP server managing a /24 pool. Transport is abstracted: the
/// owning ApNetwork feeds in client messages and supplies a send function
/// that delivers responses over the air to a specific client MAC.
class DhcpServer {
 public:
  /// (response packet, destination client MAC)
  using SendFn = std::function<void(wire::PacketPtr, wire::MacAddress)>;

  DhcpServer(sim::Simulator& simulator, wire::Ipv4 subnet_base,
             wire::Ipv4 gateway, DhcpServerConfig config, Rng rng);

  void set_send(SendFn send) { send_ = std::move(send); }

  /// Handles a client DHCP message received over the air.
  void on_message(const wire::DhcpMessage& msg, wire::MacAddress from);

  // --- fault-injection hooks (src/fault) ------------------------------
  /// While stalled the daemon drops every incoming message unanswered.
  void set_stalled(bool stalled) { stalled_ = stalled; }
  bool stalled() const { return stalled_; }
  /// NAK-after-OFFER storm: OFFERs still go out, every REQUEST is NAKed.
  void set_nak_requests(bool nak) { nak_requests_ = nak; }
  /// Forgets every lease and rewinds the allocator (power cycle or a
  /// mid-lease pool reset); clients keep addresses the server no longer
  /// honours.
  void reset_pool();

  /// IP -> MAC lookup for downlink forwarding (only bound leases).
  std::optional<wire::MacAddress> lookup_mac(wire::Ipv4 ip) const;
  std::optional<wire::Ipv4> lookup_ip(wire::MacAddress mac) const;

  wire::Ipv4 gateway() const { return gateway_; }
  wire::Ipv4 subnet_base() const { return subnet_base_; }
  std::size_t leases_outstanding() const { return by_mac_.size(); }
  std::uint64_t offers_sent() const { return offers_sent_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t naks_sent() const { return naks_sent_; }
  std::uint64_t releases_received() const { return releases_; }
  std::uint64_t messages_dropped() const { return dropped_; }

 private:
  struct LeaseRecord {
    wire::Ipv4 ip;
    Time expires_at{0};
  };

  Time draw_offer_delay();
  void handle_discover(const wire::DhcpMessage& msg, wire::MacAddress from);
  void handle_request(const wire::DhcpMessage& msg, wire::MacAddress from);
  void handle_release(const wire::DhcpMessage& msg, wire::MacAddress from);
  std::optional<wire::Ipv4> allocate(wire::MacAddress mac);
  void respond_after(Time delay, wire::DhcpMessage response, wire::MacAddress to);

  sim::Simulator& sim_;
  wire::Ipv4 subnet_base_;
  wire::Ipv4 gateway_;
  DhcpServerConfig config_;
  Rng rng_;
  SendFn send_;
  std::unordered_map<wire::MacAddress, LeaseRecord> by_mac_;
  std::unordered_map<wire::Ipv4, wire::MacAddress> by_ip_;
  std::uint8_t next_host_;
  bool stalled_ = false;
  bool nak_requests_ = false;
  std::uint64_t offers_sent_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t naks_sent_ = 0;
  std::uint64_t releases_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace spider::net
