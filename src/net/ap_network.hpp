#pragma once

#include <memory>

#include "mac/ap.hpp"
#include "net/dhcp_server.hpp"
#include "net/link.hpp"
#include "net/wired.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"

namespace spider::net {

/// Everything behind one access point's Ethernet port: its DHCP service,
/// its gateway function (NAT-free routing of the /24 it owns, plus
/// answering gateway pings), and the rate-limited backhaul connecting it
/// to the wired core.
struct ApNetworkConfig {
  LinkConfig backhaul;          ///< applied to both directions
  DhcpServerConfig dhcp;
  /// When false the AP behaves like a captive portal / broken uplink:
  /// association and DHCP succeed, the gateway answers pings, but nothing
  /// is forwarded to or from the wired core.
  bool internet_connected = true;
};

class ApNetwork {
 public:
  /// `subnet_base` must be a /24 base (host byte 0); the gateway takes .1.
  ApNetwork(sim::Simulator& simulator, mac::AccessPoint& ap,
            WiredNetwork& wired, wire::Ipv4 subnet_base, ApNetworkConfig config,
            Rng rng);
  ApNetwork(const ApNetwork&) = delete;
  ApNetwork& operator=(const ApNetwork&) = delete;

  wire::Ipv4 gateway_ip() const { return dhcp_.gateway(); }
  wire::Ipv4 subnet_base() const { return dhcp_.subnet_base(); }
  const DhcpServer& dhcp() const { return dhcp_; }
  DhcpServer& dhcp() { return dhcp_; }
  mac::AccessPoint& ap() { return ap_; }
  Link& uplink() { return uplink_; }
  Link& downlink() { return downlink_; }

  // --- fault-injection hooks (src/fault) ------------------------------
  /// Gateway flap: while down the WAN/routing side is dead — gateway pings
  /// go unanswered and nothing is forwarded either way. The AP-local DHCP
  /// daemon keeps serving (it runs on the box, not behind the WAN).
  void set_gateway_up(bool up) { gateway_up_ = up; }
  bool gateway_up() const { return gateway_up_; }
  void set_internet_connected(bool connected) {
    internet_connected_ = connected;
  }

 private:
  void on_uplink(wire::PacketPtr packet, wire::MacAddress from);
  void on_downlink(wire::PacketPtr packet);

  sim::Simulator& sim_;
  mac::AccessPoint& ap_;
  bool internet_connected_;
  bool gateway_up_ = true;
  DhcpServer dhcp_;
  Link uplink_;
  Link downlink_;
};

}  // namespace spider::net
