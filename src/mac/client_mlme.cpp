#include "mac/client_mlme.hpp"

#include <utility>

#include "obs/tracer.hpp"

namespace spider::mac {

using wire::Frame;
using wire::FrameType;

const char* to_string(ClientMlme::State s) {
  switch (s) {
    case ClientMlme::State::kIdle: return "Idle";
    case ClientMlme::State::kAuthenticating: return "Authenticating";
    case ClientMlme::State::kAssociating: return "Associating";
    case ClientMlme::State::kAssociated: return "Associated";
  }
  return "?";
}

const char* to_string(JoinPhase p) {
  switch (p) {
    case JoinPhase::kAssociation: return "association";
    case JoinPhase::kDhcp: return "dhcp";
    case JoinPhase::kEndToEnd: return "end-to-end";
  }
  return "?";
}

ClientMlme::ClientMlme(sim::Simulator& simulator, wire::MacAddress self,
                       MlmeConfig config)
    : sim_(simulator), self_(self), config_(config) {}

ClientMlme::~ClientMlme() { timer_.cancel(); }

Frame ClientMlme::make_mgmt(FrameType type) const {
  Frame f;
  f.type = type;
  f.src = self_;
  f.dst = bssid_;
  f.bssid = bssid_;
  f.size_bytes = wire::kMgmtFrameBytes;
  return f;
}

void ClientMlme::start_join(wire::Bssid bssid, wire::Channel channel) {
  abort();
  bssid_ = bssid;
  channel_ = channel;
  state_ = State::kAuthenticating;
  retries_left_ = config_.max_retries;
  join_started_ = sim_.now();
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kAuthStart,
               .channel = static_cast<std::int16_t>(channel_),
               .track = trace_track_, .id = bssid_.raw());
  send_current_message();
}

void ClientMlme::abort() {
  timer_.cancel();
  state_ = State::kIdle;
  aid_ = 0;
}

void ClientMlme::disassociate() {
  if (state_ == State::kAssociated && send_) {
    send_(make_mgmt(FrameType::kDisassoc));
  }
  abort();
}

void ClientMlme::send_current_message() {
  const FrameType type = state_ == State::kAuthenticating
                             ? FrameType::kAuthRequest
                             : FrameType::kAssocRequest;
  const bool transmitted = send_ && send_(make_mgmt(type));
  if (transmitted) {
    arm_timeout();
  } else {
    // Radio is parked elsewhere: poll until our channel comes up. This
    // does not consume a retry — the message never hit the air.
    timer_.cancel();
    timer_ = sim_.schedule(config_.offchannel_poll, [this] {
      if (state_ == State::kAuthenticating || state_ == State::kAssociating) {
        send_current_message();
      }
    });
  }
}

void ClientMlme::arm_timeout() {
  timer_.cancel();
  timer_ = sim_.schedule(config_.ll_timeout, [this] {
    if (state_ != State::kAuthenticating && state_ != State::kAssociating) return;
    if (retries_left_-- <= 0) {
      fail(JoinPhase::kAssociation);
      return;
    }
    send_current_message();
  });
}

void ClientMlme::fail(JoinPhase phase) {
  timer_.cancel();
  state_ = State::kIdle;
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kAssocFail,
               .channel = static_cast<std::int16_t>(channel_),
               .track = trace_track_, .id = bssid_.raw());
  if (callbacks_.on_failed) callbacks_.on_failed(phase);
}

void ClientMlme::on_frame(const Frame& frame) {
  if (frame.src != bssid_ && !bssid_.is_null()) {
    // Frames from other BSSes are not ours (the scanner sees them anyway).
    if (frame.type != FrameType::kDeauth) return;
  }
  switch (frame.type) {
    case FrameType::kAuthResponse:
      if (state_ != State::kAuthenticating) return;
      if (frame.status != 0) {
        fail(JoinPhase::kAssociation);
        return;
      }
      state_ = State::kAssociating;
      retries_left_ = config_.max_retries;
      SPIDER_TRACE(sim_, .kind = obs::TraceKind::kAssocStart,
                   .channel = static_cast<std::int16_t>(channel_),
                   .track = trace_track_, .id = bssid_.raw());
      send_current_message();
      return;

    case FrameType::kAssocResponse:
      if (state_ != State::kAssociating) return;
      if (frame.status != 0) {
        fail(JoinPhase::kAssociation);
        return;
      }
      timer_.cancel();
      state_ = State::kAssociated;
      aid_ = frame.aid;
      SPIDER_TRACE(sim_, .kind = obs::TraceKind::kAssocOk,
                   .channel = static_cast<std::int16_t>(channel_),
                   .track = trace_track_, .id = bssid_.raw(),
                   .value = static_cast<double>(aid_));
      if (callbacks_.on_associated) callbacks_.on_associated(aid_);
      return;

    case FrameType::kDeauth:
    case FrameType::kDisassoc:
      if (state_ == State::kAssociated && frame.src == bssid_) {
        SPIDER_TRACE(sim_, .kind = obs::TraceKind::kMacLinkLost,
                     .channel = static_cast<std::int16_t>(channel_),
                     .track = trace_track_, .id = bssid_.raw());
        abort();
        if (callbacks_.on_link_lost) callbacks_.on_link_lost();
      }
      return;

    default:
      return;
  }
}

}  // namespace spider::mac
