#include "mac/ap.hpp"

#include <utility>

#include "obs/tracer.hpp"
#include "util/log.hpp"

namespace spider::mac {

using wire::Frame;
using wire::FrameType;

namespace {

// APs never move: declaring the radio static keeps it out of the medium's
// per-timestamp mobile sweep, so city-scale AP populations cost nothing to
// keep bucketed (DESIGN.md §10).
phy::RadioConfig stationary_radio() {
  phy::RadioConfig config;
  config.mobile = false;
  return config;
}

}  // namespace

AccessPoint::AccessPoint(sim::Simulator& simulator, phy::Medium& medium,
                         wire::MacAddress bssid, Position position,
                         ApConfig config, Rng rng)
    : sim_(simulator),
      config_(std::move(config)),
      position_(position),
      rng_(rng),
      radio_(medium, bssid, [position] { return position; },
             stationary_radio()) {
  radio_.set_receiver([this](const Frame& f) { on_frame(f); });
  // The AP parks on its channel permanently; the constructor-time tune pays
  // the one-off reset before the experiment starts.
  radio_.tune(config_.channel);
}

void AccessPoint::start() {
  // Random phase: co-located APs must not beacon in lockstep.
  beacon_event_ = sim_.schedule(
      usec(rng_.uniform_int(0, config_.beacon_interval.count())), [this] {
        send_beacon();
        schedule_next_beacon();
      });
  purge_timer_.emplace(sim_, sec(1), [this] { purge_inactive(); });
  purge_timer_->start();
}

void AccessPoint::power_off() {
  if (!powered_) return;
  powered_ = false;
  beacon_event_.cancel();
  purge_timer_.reset();
  // The table dies with the power; listeners learn of the silent departures
  // so higher layers can account for them (the stations themselves only
  // notice through timeouts, as with real hardware).
  for (const auto& [mac, state] : clients_) {
    if (assoc_listener_) assoc_listener_(mac, false);
  }
  clients_.clear();
}

void AccessPoint::power_on() {
  if (powered_) return;
  powered_ = true;
  start();
}

std::size_t AccessPoint::purge_psm_buffers() {
  std::size_t dropped = 0;
  for (auto& [mac, state] : clients_) {
    dropped += state.psm_queue.size();
    state.psm_queue.clear();
  }
  psm_drops_ += dropped;
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kPsmPurge,
               .channel = static_cast<std::int16_t>(config_.channel),
               .track = obs::track::ap(bssid().raw()),
               .value = static_cast<double>(dropped));
  return dropped;
}

void AccessPoint::schedule_next_beacon() {
  const auto jitter = config_.beacon_jitter.count();
  const Time next = config_.beacon_interval +
                    usec(jitter > 0 ? rng_.uniform_int(-jitter, jitter) : 0);
  beacon_event_ = sim_.schedule(next, [this] {
    send_beacon();
    schedule_next_beacon();
  });
}

Time AccessPoint::mgmt_delay() {
  return usec(rng_.uniform_int(config_.mgmt_delay_min.count(),
                               config_.mgmt_delay_max.count()));
}

void AccessPoint::send_beacon() {
  if (!powered_ || beacon_silenced_) return;
  Frame beacon;
  beacon.type = FrameType::kBeacon;
  beacon.src = bssid();
  beacon.dst = wire::MacAddress::broadcast();
  beacon.bssid = bssid();
  beacon.ssid = config_.ssid;
  beacon.size_bytes = wire::kBeaconFrameBytes;
  // TIM: advertise which sleeping stations have buffered traffic.
  for (const auto& [mac, state] : clients_) {
    if (state.power_save && !state.psm_queue.empty()) {
      beacon.tim_aids.push_back(state.aid);
    }
  }
  radio_.send(beacon);
}

void AccessPoint::on_frame(const Frame& frame) {
  if (!powered_) return;  // blackout: the radio may hear, nobody is home
  // Filter: management requests addressed to us (or broadcast probes), and
  // data/control frames within our BSS.
  switch (frame.type) {
    case FrameType::kProbeRequest:
      if (frame.dst.is_broadcast() || frame.dst == bssid()) handle_probe(frame);
      return;
    case FrameType::kAuthRequest:
      if (frame.dst == bssid()) handle_auth(frame);
      return;
    case FrameType::kAssocRequest:
      if (frame.dst == bssid()) handle_assoc(frame);
      return;
    case FrameType::kData:
    case FrameType::kNullData:
    case FrameType::kPsPoll:
      if (frame.bssid == bssid()) handle_data(frame);
      return;
    case FrameType::kDisassoc:
    case FrameType::kDeauth:
      if (frame.bssid == bssid()) {
        if (clients_.erase(frame.src) > 0 && assoc_listener_) {
          assoc_listener_(frame.src, false);
        }
      }
      return;
    default:
      return;  // beacons / responses from other APs
  }
}

void AccessPoint::handle_probe(const Frame& frame) {
  const auto requester = frame.src;
  sim_.post(mgmt_delay(), [this, requester] {
    if (!powered_) return;  // power lost before the response went out
    Frame resp;
    resp.type = FrameType::kProbeResponse;
    resp.src = bssid();
    resp.dst = requester;
    resp.bssid = bssid();
    resp.ssid = config_.ssid;
    resp.size_bytes = wire::kMgmtFrameBytes;
    radio_.send(resp);
  });
}

void AccessPoint::handle_auth(const Frame& frame) {
  const auto requester = frame.src;
  sim_.post(mgmt_delay(), [this, requester] {
    if (!powered_) return;
    Frame resp;
    resp.type = FrameType::kAuthResponse;
    resp.src = bssid();
    resp.dst = requester;
    resp.bssid = bssid();
    resp.status = 0;  // open system: always accept
    resp.size_bytes = wire::kMgmtFrameBytes;
    radio_.send(resp);
  });
}

void AccessPoint::handle_assoc(const Frame& frame) {
  const auto requester = frame.src;
  if (config_.max_clients > 0 && !clients_.contains(requester) &&
      clients_.size() >= config_.max_clients) {
    ++assoc_denials_;
    sim_.post(mgmt_delay(), [this, requester] {
      if (!powered_) return;
      Frame resp;
      resp.type = FrameType::kAssocResponse;
      resp.src = bssid();
      resp.dst = requester;
      resp.bssid = bssid();
      resp.status = 17;  // IEEE: denied, AP unable to handle more stations
      resp.size_bytes = wire::kMgmtFrameBytes;
      radio_.send(resp);
    });
    return;
  }
  auto [it, inserted] = clients_.try_emplace(requester);
  if (inserted) {
    it->second.aid = next_aid_++;
  }
  it->second.last_heard = sim_.now();
  const std::uint16_t aid = it->second.aid;
  ++assoc_grants_;
  sim_.post(mgmt_delay(), [this, requester, aid] {
    if (!powered_) return;
    Frame resp;
    resp.type = FrameType::kAssocResponse;
    resp.src = bssid();
    resp.dst = requester;
    resp.bssid = bssid();
    resp.status = 0;
    resp.aid = aid;
    resp.size_bytes = wire::kMgmtFrameBytes;
    radio_.send(resp);
  });
  if (inserted && assoc_listener_) assoc_listener_(requester, true);
}

void AccessPoint::handle_ps_transition(ClientState& state, const Frame& frame) {
  const bool was_saving = state.power_save;
  state.power_save = frame.power_mgmt;
  if (!was_saving && state.power_save) {
    SPIDER_TRACE(sim_, .kind = obs::TraceKind::kPsmSleep,
                 .channel = static_cast<std::int16_t>(config_.channel),
                 .track = obs::track::ap(bssid().raw()), .id = frame.src.raw());
  }
  if (was_saving && !state.power_save) {
    flush_psm_queue(frame.src, state);
  }
}

void AccessPoint::handle_data(const Frame& frame) {
  auto it = clients_.find(frame.src);
  if (it == clients_.end()) return;  // not associated: ignored, client re-joins
  ClientState& state = it->second;
  state.last_heard = sim_.now();

  switch (frame.type) {
    case FrameType::kNullData:
      handle_ps_transition(state, frame);
      return;
    case FrameType::kPsPoll:
      // Standard PS-Poll: one buffered frame per poll, with more_data
      // signalling the rest. (Spider's own switch path uses a PSM-clear
      // NullData instead, which flushes everything at once.)
      if (!state.psm_queue.empty()) {
        wire::PacketPtr packet = std::move(state.psm_queue.front());
        state.psm_queue.pop_front();
        transmit_data(frame.src, std::move(packet), !state.psm_queue.empty());
      }
      return;
    case FrameType::kData:
      handle_ps_transition(state, frame);
      if (frame.packet && uplink_) uplink_(frame.packet, frame.src);
      return;
    default:
      return;
  }
}

void AccessPoint::flush_psm_queue(wire::MacAddress client, ClientState& state) {
  const std::size_t flushed = state.psm_queue.size();
  while (!state.psm_queue.empty()) {
    wire::PacketPtr packet = std::move(state.psm_queue.front());
    state.psm_queue.pop_front();
    transmit_data(client, std::move(packet), !state.psm_queue.empty());
  }
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kPsmWake,
               .channel = static_cast<std::int16_t>(config_.channel),
               .track = obs::track::ap(bssid().raw()), .id = client.raw(),
               .value = static_cast<double>(flushed));
}

bool AccessPoint::deliver_to_client(wire::MacAddress client, wire::PacketPtr packet) {
  if (!powered_) return false;
  auto it = clients_.find(client);
  if (it == clients_.end()) return false;
  ClientState& state = it->second;
  if (state.power_save) {
    if (state.psm_queue.size() >= config_.psm_buffer_frames) {
      ++psm_drops_;
      return true;  // buffered-and-dropped; still "associated"
    }
    state.psm_queue.push_back(std::move(packet));
    return true;
  }
  transmit_data(client, std::move(packet), false);
  return true;
}

void AccessPoint::transmit_data(wire::MacAddress client, wire::PacketPtr packet,
                                bool more_data) {
  Frame f = wire::make_data_frame(bssid(), client, bssid(), std::move(packet));
  f.more_data = more_data;
  radio_.send(f);
}

bool AccessPoint::is_associated(wire::MacAddress client) const {
  return clients_.contains(client);
}

std::size_t AccessPoint::psm_buffered(wire::MacAddress client) const {
  auto it = clients_.find(client);
  return it == clients_.end() ? 0 : it->second.psm_queue.size();
}

void AccessPoint::purge_inactive() {
  for (auto it = clients_.begin(); it != clients_.end();) {
    if (sim_.now() - it->second.last_heard > config_.inactivity_timeout) {
      const auto mac = it->first;
      it = clients_.erase(it);
      if (assoc_listener_) assoc_listener_(mac, false);
    } else {
      ++it;
    }
  }
}

}  // namespace spider::mac
