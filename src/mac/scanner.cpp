#include "mac/scanner.hpp"

#include <algorithm>

#include "obs/tracer.hpp"

namespace spider::mac {

Scanner::Scanner(sim::Simulator& simulator, ScannerConfig config)
    : sim_(simulator), config_(config) {}

void Scanner::set_prober(ProbeFn prober) { prober_ = std::move(prober); }

void Scanner::start() {
  if (config_.probe_interval > Time{0} && prober_) {
    probe_timer_.emplace(sim_, config_.probe_interval, [this] { prober_(); });
    probe_timer_->start();
  }
}

void Scanner::stop() { probe_timer_.reset(); }

void Scanner::on_frame(const wire::Frame& frame) {
  if (frame.type != wire::FrameType::kBeacon &&
      frame.type != wire::FrameType::kProbeResponse) {
    return;
  }
  if (frame.rssi_dbm < config_.min_rssi_dbm) return;

  auto [it, inserted] = cache_.try_emplace(frame.bssid);
  ApObservation& obs = it->second;
  if (inserted) {
    obs.bssid = frame.bssid;
    obs.first_seen = sim_.now();
    obs.rssi_dbm = frame.rssi_dbm;
    // First sighting only — re-sightings would swamp the ring on long runs.
    SPIDER_TRACE(sim_, .kind = spider::obs::TraceKind::kScanResult,
                 .channel = static_cast<std::int16_t>(frame.channel),
                 .track = spider::obs::track::scanner(),
                 .id = frame.bssid.raw(), .value = frame.rssi_dbm);
  } else {
    obs.rssi_dbm = config_.rssi_ewma_alpha * frame.rssi_dbm +
                   (1.0 - config_.rssi_ewma_alpha) * obs.rssi_dbm;
  }
  obs.ssid = frame.ssid;
  obs.channel = frame.channel;
  obs.last_seen = sim_.now();
  ++obs.frames_heard;

  // Opportunistic garbage collection keeps the cache bounded on long runs.
  if (cache_.size() > 256) {
    for (auto gc = cache_.begin(); gc != cache_.end();) {
      gc = fresh(gc->second) ? std::next(gc) : cache_.erase(gc);
    }
  }
}

bool Scanner::fresh(const ApObservation& obs) const {
  return sim_.now() - obs.last_seen <= config_.expiry;
}

std::vector<ApObservation> Scanner::current() const {
  std::vector<ApObservation> out;
  for (const auto& [bssid, obs] : cache_) {
    if (fresh(obs)) out.push_back(obs);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.rssi_dbm > b.rssi_dbm;
  });
  return out;
}

std::vector<ApObservation> Scanner::current_on(wire::Channel channel) const {
  auto all = current();
  std::erase_if(all, [channel](const auto& o) { return o.channel != channel; });
  return all;
}

std::optional<ApObservation> Scanner::find(wire::Bssid bssid) const {
  auto it = cache_.find(bssid);
  if (it == cache_.end() || !fresh(it->second)) return std::nullopt;
  return it->second;
}

bool Scanner::in_range(wire::Bssid bssid) const {
  auto it = cache_.find(bssid);
  return it != cache_.end() && fresh(it->second);
}

}  // namespace spider::mac
