#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "wire/frame.hpp"

namespace spider::mac {

/// Configuration of a single access point's MAC.
struct ApConfig {
  std::string ssid = "open-ap";
  wire::Channel channel = 6;
  Time beacon_interval = msec(100);
  /// Per-beacon timing jitter (uniform +/- this). Real beacons drift with
  /// medium contention and TSF error; without jitter a deterministic
  /// simulation can phase-lock beacons against a client's channel
  /// schedule so that a dwell never contains one.
  Time beacon_jitter = msec(6);
  /// Management processing latency (probe/auth/assoc responses). Real APs
  /// answer within a few milliseconds; the slow part of a join is DHCP.
  Time mgmt_delay_min = msec(1);
  Time mgmt_delay_max = msec(8);
  /// Per-client power-save buffer (frames). Overflow drops the newest
  /// frame, which TCP perceives as loss.
  std::size_t psm_buffer_frames = 120;
  /// Clients silent for this long are deauthenticated and their PSM
  /// buffers reclaimed (mobile clients usually just drive away).
  Time inactivity_timeout = sec(30);
  /// Association table capacity; further requests are denied with a
  /// status code (0 disables the limit). Consumer APs of the era held a
  /// few dozen stations.
  std::size_t max_clients = 32;
};

/// AP-side 802.11 MAC: beaconing, the scan/auth/assoc responder side,
/// the association table, and per-client power-save buffering.
///
/// The AP is deliberately unaware of IP: packets from associated clients
/// are handed to an uplink callback, and the network layer above pushes
/// downlink packets back with an explicit destination client. This keeps
/// the MAC reusable under both the AP's own DHCP/gateway stack and tests.
class AccessPoint {
 public:
  /// (packet, source client) — invoked for every uplink data frame.
  using UplinkFn = std::function<void(wire::PacketPtr, wire::MacAddress)>;
  using AssocListener = std::function<void(wire::MacAddress, bool associated)>;

  AccessPoint(sim::Simulator& simulator, phy::Medium& medium,
              wire::MacAddress bssid, Position position, ApConfig config,
              Rng rng);
  /// The self-rescheduling beacon chain captures `this`; an AP torn down
  /// mid-run (fault tests) must cancel it or the event fires on a corpse.
  ~AccessPoint() { beacon_event_.cancel(); }

  void start();  ///< begins beaconing

  // --- fault-injection hooks (src/fault) ------------------------------
  /// Power loss: beaconing stops, the association table and all PSM
  /// buffers are wiped (no deauth goes out — the clients just stop
  /// hearing us), and every received frame is ignored.
  void power_off();
  /// Power restored: fresh boot, beaconing resumes at a random phase.
  /// No-op while already powered.
  void power_on();
  bool powered() const { return powered_; }
  /// While silenced the AP skips its beacons but still answers probes,
  /// handshakes and data (a real firmware failure mode: passive scanners
  /// go blind, existing associations keep working).
  void set_beacon_silence(bool silenced) { beacon_silenced_ = silenced; }
  /// Discards every PSM-buffered frame (firmware buffer reclaim); the
  /// drops are counted in `psm_drops()`. Returns frames discarded.
  std::size_t purge_psm_buffers();

  const ApConfig& config() const { return config_; }
  wire::Bssid bssid() const { return radio_.mac(); }
  wire::Channel channel() const { return config_.channel; }
  Position position() const { return position_; }

  void set_uplink(UplinkFn uplink) { uplink_ = std::move(uplink); }
  void set_assoc_listener(AssocListener l) { assoc_listener_ = std::move(l); }

  /// Downlink entry point used by the network layer. Respects the client's
  /// power-save state; returns false if the client is not associated.
  bool deliver_to_client(wire::MacAddress client, wire::PacketPtr packet);

  bool is_associated(wire::MacAddress client) const;
  std::size_t associated_count() const { return clients_.size(); }
  std::size_t psm_buffered(wire::MacAddress client) const;

  std::uint64_t assoc_grants() const { return assoc_grants_; }
  std::uint64_t assoc_denials() const { return assoc_denials_; }
  std::uint64_t psm_drops() const { return psm_drops_; }

 private:
  struct ClientState {
    std::uint16_t aid = 0;
    bool power_save = false;
    Time last_heard{0};
    std::deque<wire::PacketPtr> psm_queue;
  };

  void on_frame(const wire::Frame& frame);
  void handle_probe(const wire::Frame& frame);
  void handle_auth(const wire::Frame& frame);
  void handle_assoc(const wire::Frame& frame);
  void handle_data(const wire::Frame& frame);
  void handle_ps_transition(ClientState& state, const wire::Frame& frame);
  void flush_psm_queue(wire::MacAddress client, ClientState& state);
  void send_beacon();
  void schedule_next_beacon();
  void purge_inactive();
  void transmit_data(wire::MacAddress client, wire::PacketPtr packet,
                     bool more_data);
  Time mgmt_delay();

  sim::Simulator& sim_;
  ApConfig config_;
  Position position_;
  Rng rng_;
  phy::Radio radio_;
  UplinkFn uplink_;
  AssocListener assoc_listener_;
  std::unordered_map<wire::MacAddress, ClientState> clients_;
  bool powered_ = true;
  bool beacon_silenced_ = false;
  std::uint16_t next_aid_ = 1;
  std::uint64_t assoc_grants_ = 0;
  std::uint64_t assoc_denials_ = 0;
  std::uint64_t psm_drops_ = 0;
  sim::EventHandle beacon_event_;
  std::optional<sim::PeriodicTimer> purge_timer_;
};

}  // namespace spider::mac
