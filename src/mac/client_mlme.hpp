#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulator.hpp"
#include "util/time.hpp"
#include "wire/frame.hpp"

namespace spider::mac {

/// Which phase of the join pipeline an attempt died in. Spider's AP
/// selection utility weighs APs by how far previous joins progressed
/// (zero for association failures, va < vb < vc beyond — see §3.1).
enum class JoinPhase { kAssociation, kDhcp, kEndToEnd };

/// Client-side association state machine parameters.
struct MlmeConfig {
  /// Per-message response timeout ("link-layer timeout" in the paper;
  /// default 1 s, reduced to 100 ms in the mobile experiments). This is a
  /// timer per message of the multi-step handshake, not for the whole join.
  Time ll_timeout = sec(1);
  /// Retransmissions per handshake message before the join is abandoned.
  int max_retries = 5;
  /// Poll interval used while the radio is parked on another channel and
  /// the pending handshake message cannot be transmitted.
  Time offchannel_poll = msec(20);
};

/// Client-side 802.11 MLME for one virtual interface: drives the
/// Auth -> AuthResp -> Assoc -> AssocResp four-way handshake with
/// per-message timeouts and retries.
///
/// The MLME does not own the radio. It emits frames through a `SendFn`
/// supplied by the driver, which returns false when the card is currently
/// parked on a different channel; in that case the message waits (polling)
/// without consuming a retry, exactly like a queued frame in the real
/// driver. Received frames are fed in by the owner after address filtering.
class ClientMlme {
 public:
  using SendFn = std::function<bool(wire::Frame)>;

  struct Callbacks {
    std::function<void(std::uint16_t aid)> on_associated;
    /// Join abandoned (retries exhausted in the given phase).
    std::function<void(JoinPhase)> on_failed;
    /// Association lost (deauth/disassoc from the AP).
    std::function<void()> on_link_lost;
  };

  enum class State { kIdle, kAuthenticating, kAssociating, kAssociated };

  ClientMlme(sim::Simulator& simulator, wire::MacAddress self, MlmeConfig config);
  ~ClientMlme();
  ClientMlme(const ClientMlme&) = delete;
  ClientMlme& operator=(const ClientMlme&) = delete;

  void set_send(SendFn send) { send_ = std::move(send); }
  void set_callbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }
  /// Flight-recorder lane for this MLME's events (obs::track::client of the
  /// owning interface). Zero leaves events on the anonymous track.
  void set_trace_track(std::uint32_t track) { trace_track_ = track; }
  void set_config(const MlmeConfig& config) { config_ = config; }
  const MlmeConfig& config() const { return config_; }

  /// Starts a join to the given BSS. Any ongoing attempt is aborted first.
  void start_join(wire::Bssid bssid, wire::Channel channel);

  /// Aborts an in-progress join or tears down an association (silently;
  /// use `disassociate()` to notify the AP).
  void abort();

  /// Sends a Disassoc frame (best effort) and returns to idle.
  void disassociate();

  /// Owner feeds frames addressed to this interface (dst == self).
  void on_frame(const wire::Frame& frame);

  State state() const { return state_; }
  bool associated() const { return state_ == State::kAssociated; }
  wire::Bssid bssid() const { return bssid_; }
  wire::Channel channel() const { return channel_; }
  wire::MacAddress self() const { return self_; }
  std::uint16_t aid() const { return aid_; }

  /// Time the current/most recent join attempt started (for join logs).
  Time join_started_at() const { return join_started_; }

 private:
  void send_current_message();
  void arm_timeout();
  void fail(JoinPhase phase);
  wire::Frame make_mgmt(wire::FrameType type) const;

  sim::Simulator& sim_;
  wire::MacAddress self_;
  MlmeConfig config_;
  SendFn send_;
  Callbacks callbacks_;

  State state_ = State::kIdle;
  wire::Bssid bssid_;
  wire::Channel channel_ = 0;
  std::uint32_t trace_track_ = 0;
  std::uint16_t aid_ = 0;
  int retries_left_ = 0;
  Time join_started_{0};
  sim::EventHandle timer_;
};

const char* to_string(ClientMlme::State s);
const char* to_string(JoinPhase p);

}  // namespace spider::mac
