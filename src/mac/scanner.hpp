#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "util/time.hpp"
#include "wire/frame.hpp"

namespace spider::mac {

/// A recently-heard access point.
struct ApObservation {
  wire::Bssid bssid;
  std::string ssid;
  wire::Channel channel = 0;
  double rssi_dbm = -100.0;  ///< EWMA over received beacons
  Time first_seen{0};
  Time last_seen{0};
  int frames_heard = 0;
};

struct ScannerConfig {
  /// Observations older than this no longer count as "in range". At
  /// vehicular speed a 3 s silence means the AP is likely behind us.
  Time expiry = sec(3);
  /// Interval between broadcast probe requests on the active channel;
  /// zero disables active scanning (purely opportunistic reception).
  Time probe_interval = msec(500);
  double rssi_ewma_alpha = 0.5;
  /// APs weaker than this are not reported (paper: "sufficient signal
  /// strength" gate before an AP is considered for association). The
  /// default corresponds to ~80 m in the propagation model — the edge of
  /// the low-loss zone; attempting joins in the lossy cell fringe wastes
  /// the precious first seconds of an encounter.
  double min_rssi_dbm = -77.0;
};

/// Opportunistic scanner (§3.2.1): passively collects beacons and probe
/// responses overheard on whatever channel the card currently occupies,
/// without interrupting foreground transfers, and can periodically fire a
/// broadcast probe request. Maintains the freshness-bounded AP cache that
/// drives Spider's AP selection.
class Scanner {
 public:
  /// Callback that emits a broadcast probe request; wired to the driver.
  using ProbeFn = std::function<void()>;

  Scanner(sim::Simulator& simulator, ScannerConfig config);

  void set_prober(ProbeFn prober);
  void start();  ///< begins periodic active probing (if configured)
  void stop();

  /// Feed every received frame; beacons/probe responses update the cache.
  void on_frame(const wire::Frame& frame);

  /// All fresh observations (optionally restricted to one channel),
  /// strongest RSSI first.
  std::vector<ApObservation> current() const;
  std::vector<ApObservation> current_on(wire::Channel channel) const;
  std::optional<ApObservation> find(wire::Bssid bssid) const;

  /// True if the AP has been heard within the expiry window.
  bool in_range(wire::Bssid bssid) const;

  std::size_t cache_size() const { return cache_.size(); }

 private:
  bool fresh(const ApObservation& obs) const;

  sim::Simulator& sim_;
  ScannerConfig config_;
  ProbeFn prober_;
  std::unordered_map<wire::Bssid, ApObservation> cache_;
  std::optional<sim::PeriodicTimer> probe_timer_;
};

}  // namespace spider::mac
