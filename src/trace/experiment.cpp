#include "trace/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/spider_driver.hpp"
#include "mobility/mobility.hpp"
#include "obs/tracer.hpp"
#include "trace/runner.hpp"

namespace spider::trace {

const char* to_string(DriverKind k) {
  switch (k) {
    case DriverKind::kSpider: return "spider";
    case DriverKind::kStock: return "stock";
    case DriverKind::kFatVap: return "fatvap";
  }
  return "?";
}

int ScenarioConfig::resolved_clients() const {
  if (client_mix.empty()) return std::max(1, clients);
  int total = 0;
  for (const ClientMixEntry& entry : client_mix) {
    total += std::max(0, entry.count);
  }
  return std::max(1, total);
}

double ScenarioResult::dhcp_failure_fraction() const {
  if (assoc_succeeded == 0) return 0.0;
  return 1.0 -
         static_cast<double>(dhcp_succeeded) / static_cast<double>(assoc_succeeded);
}

namespace detail {

void digest_join_log(ScenarioResult& result) {
  result.joins_attempted = result.join_log.size();
  for (const auto& rec : result.join_log) {
    result.assoc_succeeded += rec.assoc_delay.has_value() ? 1 : 0;
    result.dhcp_succeeded += rec.dhcp_delay.has_value() ? 1 : 0;
    result.e2e_succeeded +=
        rec.outcome == core::JoinOutcome::kEndToEnd && rec.finished ? 1 : 0;
  }
}

ScenarioResult execute_scenario(const ScenarioConfig& config,
                                std::shared_ptr<obs::Tracer> tracer,
                                sim::CancelToken* cancel) {
  // Formations of more than one shard take the sharded twin (one testbed
  // per shard, lockstep windows). Impairment sources ride along: the
  // schedule is compiled into per-shard sub-schedules at partition time
  // (fault::partition_schedule, DESIGN.md §12).
  const int shards = resolve_shards(config);
  if (shards > 1) {
    return execute_scenario_sharded(config, shards, std::move(tracer), cancel);
  }
  const auto wall_start = std::chrono::steady_clock::now();
  TestbedConfig tb_config;
  tb_config.seed = config.seed;
  tb_config.propagation = config.propagation;
  tb_config.medium.neighbor_index = config.neighbor_index;
  tb_config.medium.grid_cell_m = config.grid_cell_m;
  Testbed bed(tb_config);
  if (cancel != nullptr) bed.sim.set_cancel_token(cancel);
  // Installed before any entity schedules work so the trace covers the
  // whole run. The recorder only reads the sim clock — never wall time —
  // so the trace is a pure function of (config, seed).
  if (tracer) bed.sim.set_tracer(tracer.get());

  // Populate the road (or the city street mesh).
  Rng deploy_rng = bed.fork_rng();
  const auto sites =
      !config.fixed_sites.empty()
          ? config.fixed_sites
          : config.city
              ? mob::generate_city_deployment(*config.city, deploy_rng)
              : mob::generate_deployment(config.deployment, deploy_rng);
  for (const auto& site : sites) {
    Testbed::ApSpec spec;
    spec.channel = site.channel;
    spec.position = site.position;
    spec.backhaul = site.backhaul;
    spec.backhaul_delay = config.backhaul_delay;
    spec.internet_connected = site.internet_connected;
    spec.dhcp = config.dhcp_server;
    bed.add_ap(spec);
  }

  // The vehicles. Each client rig owns its route and driver stack; radios
  // sample routes lazily through position callbacks, so positions stay pure
  // functions of sim time (the contract the medium's mobile-rebucket epoch
  // check relies on, DESIGN.md §10).
  struct ClientRig {
    std::unique_ptr<mob::MobilityModel> route;
    /// Phase shift into the route, staggering road clients along the loop.
    Time offset{0};
    std::unique_ptr<core::SpiderDriver> spider;
    std::unique_ptr<base::StockWifiDriver> stock;
    std::unique_ptr<base::FatVapDriver> fatvap;
    std::unique_ptr<core::LinkManager> manager;
    std::unique_ptr<core::AdaptiveModeController> adaptive;
  };
  const int clients = config.resolved_clients();
  const std::vector<ClientProfile> profiles =
      expand_client_mix(config.client_mix, clients);
  std::vector<ClientRig> rigs(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    ClientRig& rig = rigs[static_cast<std::size_t>(c)];
    if (config.city) {
      // Each city client tours its own randomly drawn block rectangle. The
      // forks happen only in city mode, after the deployment fork, so
      // road-mode runs replay their exact pre-city RNG streams.
      Rng route_rng = bed.fork_rng();
      rig.route = std::make_unique<mob::WaypointLoop>(
          mob::city_route_waypoints(*config.city, route_rng),
          config.speed_mps);
    } else {
      rig.route = std::make_unique<mob::BackAndForthRoad>(
          config.deployment.road_length_m, config.speed_mps);
      // Spread road clients evenly along the route (offset 0 for the first
      // client keeps single-client runs byte-identical to the old path).
      if (config.speed_mps > 0.0) {
        rig.offset = sec(config.deployment.road_length_m * c /
                         (clients * config.speed_mps));
      }
    }
  }

  ThroughputRecorder recorder(config.metrics_bin);
  DownloadHarness harness(bed.sim, bed.server_ip(), recorder);
  ScenarioResult result;

  // Impairment timeline: the declarative source resolves to the schedule
  // the injector arms (synthetic sources pass through verbatim; trace-backed
  // ones ingest + compile here). The injector master derives from the
  // scenario seed under a fixed salt — never from the testbed's fork chain
  // (whose position depends on AP/client counts) — so per-spec dwell
  // streams match the sharded engine's partition_schedule exactly, and
  // impairment-free scenarios replay the exact pre-fault streams.
  fault::FaultSchedule faults;
  if (!config.impairments.none()) {
    std::string error;
    std::optional<fault::FaultSchedule> resolved =
        config.impairments.resolve(&error);
    if (!resolved) {
      // Callers that ran validate() first never land here; direct callers
      // (unit tests, ad-hoc drivers) get the field-named failure.
      throw std::runtime_error(std::string(config.impairments.field_name()) +
                               ": " + error);
    }
    faults = std::move(*resolved);
  }
  ResilienceRecorder resilience;
  std::optional<fault::FaultInjector> injector;
  if (!faults.empty()) {
    injector.emplace(bed.sim, Rng(fault::fault_stream_seed(config.seed)));
    injector->attach_medium(bed.medium);
    for (auto& bundle : bed.aps()) {
      injector->add_ap(*bundle.ap, bundle.network.get());
    }
    injector->set_fault_observer(
        [&resilience, &sim = bed.sim](const fault::FaultSpec&) {
          resilience.note_fault(sim.now());
        });
    injector->arm(faults);
    // Link events carry the client identity (the MAC block, shared by the
    // radio and every interface in it), keeping outage detection per client
    // — the same bookkeeping a formation does shard-by-shard.
    harness.set_extra_callbacks({
        .on_link_up =
            [&resilience, &sim = bed.sim](core::VirtualInterface& vif) {
              resilience.note_link_up(sim.now(), vif.mac().raw() >> 8);
            },
        .on_link_down =
            [&resilience, &sim = bed.sim](core::VirtualInterface& vif) {
              resilience.note_link_down(sim.now(), vif.mac().raw() >> 8);
            },
    });
  }

  // Declare the clients' motion bound to the medium: every route above is a
  // constant-path-speed MobilityModel, so speed_mps is a true ceiling and
  // the grid may amortise mobile rebucketing against it (a pure wall-clock
  // optimisation — delivered sets, counters and RNG draws are unchanged).
  core::SpiderConfig spider_cfg = config.spider;
  spider_cfg.radio.max_speed_mps = config.speed_mps;
  base::StockConfig stock_cfg = config.stock;
  stock_cfg.stack.radio.max_speed_mps = config.speed_mps;

  // Assemble one driver stack per client. Construction and start order per
  // rig matches the old single-client path exactly (driver, manager,
  // harness attach, starts, adaptive), so one-client runs replay the same
  // event sequence to the byte. Each rig's config starts from the shared
  // tuned copy and has its mix profile applied on top — a default profile
  // is the exact identity, so mix-free scenarios are unchanged.
  for (int c = 0; c < clients; ++c) {
    ClientRig& rig = rigs[static_cast<std::size_t>(c)];
    const ClientProfile& profile = profiles[static_cast<std::size_t>(c)];
    auto position = [route = rig.route.get(), offset = rig.offset,
                     &sim = bed.sim] {
      return route->position_at(sim.now() + offset);
    };
    switch (config.driver) {
      case DriverKind::kSpider: {
        core::SpiderConfig rig_cfg = spider_cfg;
        profile.apply(rig_cfg);
        rig.spider = std::make_unique<core::SpiderDriver>(
            bed.sim, bed.medium, bed.next_client_mac_block(), position,
            rig_cfg);
        rig.manager =
            std::make_unique<core::LinkManager>(*rig.spider, bed.server_ip());
        harness.attach(*rig.manager);
        rig.spider->start();
        rig.manager->start();
        if (config.adaptive) {
          rig.adaptive = std::make_unique<core::AdaptiveModeController>(
              *rig.spider, [speed = config.speed_mps] { return speed; },
              config.adaptive_config);
          rig.adaptive->start();
        }
        break;
      }
      case DriverKind::kStock: {
        base::StockConfig rig_cfg = stock_cfg;
        profile.apply(rig_cfg);
        rig.stock = std::make_unique<base::StockWifiDriver>(
            bed.sim, bed.medium, bed.next_client_mac_block(), position,
            rig_cfg, bed.server_ip());
        harness.attach(*rig.stock);
        rig.stock->start();
        break;
      }
      case DriverKind::kFatVap: {
        core::SpiderConfig rig_cfg = spider_cfg;
        profile.apply(rig_cfg);
        rig.fatvap = std::make_unique<base::FatVapDriver>(
            bed.sim, bed.medium, bed.next_client_mac_block(), position,
            rig_cfg, config.fatvap);
        rig.manager =
            std::make_unique<core::LinkManager>(*rig.fatvap, bed.server_ip());
        harness.attach(*rig.manager);
        rig.fatvap->start();
        rig.manager->start();
        break;
      }
    }
  }
  bed.sim.run_until(config.duration);
  result.completed = !bed.sim.interrupted();

  // Harvest in client order: join logs concatenate, switch counts sum,
  // latency accumulators merge (parallel Welford). An interrupted run
  // harvests the same way — partial output is flushed, not discarded.
  for (ClientRig& rig : rigs) {
    switch (config.driver) {
      case DriverKind::kSpider: {
        const auto& log = rig.manager->join_log();
        result.join_log.insert(result.join_log.end(), log.begin(), log.end());
        result.switches += rig.spider->switches();
        result.switch_latency_ms.merge(rig.spider->switch_latency_stats());
        break;
      }
      case DriverKind::kStock: {
        const auto& log = rig.stock->join_log();
        result.join_log.insert(result.join_log.end(), log.begin(), log.end());
        result.switches += rig.stock->radio().switches_performed();
        break;
      }
      case DriverKind::kFatVap: {
        const auto& log = rig.manager->join_log();
        result.join_log.insert(result.join_log.end(), log.begin(), log.end());
        result.switches += rig.fatvap->radio().switches_performed();
        break;
      }
    }
  }

  // An interrupted run closes its timeline at the interruption point, so
  // connectivity/throughput fractions describe the simulated span, not the
  // never-reached configured horizon. Completed runs have now() == duration.
  recorder.finalize(bed.sim.now());
  result.avg_throughput_kBps = recorder.average_throughput_kBps();
  result.connectivity = recorder.connectivity_fraction();
  result.connection_durations = Cdf(recorder.connection_durations());
  result.disruption_durations = Cdf(recorder.disruption_durations());
  result.instantaneous_kBps = Cdf(recorder.instantaneous_kBps());
  result.total_bytes = recorder.total_bytes();
  result.faults_injected = resilience.faults_injected();
  result.outages = resilience.outages();
  result.recoveries = resilience.recoveries();
  result.recovery_times = resilience.time_to_recover();
  digest_join_log(result);
  result.perf = bed.sim.perf();
  bed.medium.add_perf(result.perf);
  result.perf.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (tracer) {
    bed.sim.set_tracer(nullptr);
    result.metrics = tracer->metrics();
    // Medium-side spatial-grid counters ride along with the trace-derived
    // metrics so sinks see them next to the per-layer event counts.
    result.metrics.count("phy.grid_cells_scanned",
                         bed.medium.grid_cells_scanned());
    result.metrics.count("phy.grid_rebuckets", bed.medium.grid_rebuckets());
    result.metrics.count("phy.neighbor_auto_grid_tx",
                         bed.medium.neighbor_auto_grid_tx());
    result.metrics.count("phy.neighbor_auto_brute_tx",
                         bed.medium.neighbor_auto_brute_tx());
    result.traces.push_back(std::move(tracer));
  }
  return result;
}

}  // namespace detail

ScenarioResult run_scenario(const ScenarioConfig& config) {
  return ScenarioRunner().run_one(config);
}

ScenarioResult pool_results(const std::vector<ScenarioResult>& runs) {
  ScenarioResult pooled;
  const auto n = static_cast<int>(runs.size());
  for (const ScenarioResult& one : runs) {
    pooled.avg_throughput_kBps += one.avg_throughput_kBps / n;
    pooled.connectivity += one.connectivity / n;
    pooled.total_bytes += one.total_bytes;
    pooled.switches += one.switches;
    for (double x : one.connection_durations.samples()) {
      pooled.connection_durations.add(x);
    }
    for (double x : one.disruption_durations.samples()) {
      pooled.disruption_durations.add(x);
    }
    for (double x : one.instantaneous_kBps.samples()) {
      pooled.instantaneous_kBps.add(x);
    }
    pooled.faults_injected += one.faults_injected;
    pooled.outages += one.outages;
    pooled.recoveries += one.recoveries;
    for (double x : one.recovery_times.samples()) {
      pooled.recovery_times.add(x);
    }
    pooled.completed = pooled.completed && one.completed;
    pooled.join_log.insert(pooled.join_log.end(), one.join_log.begin(),
                           one.join_log.end());
    pooled.switch_latency_ms.merge(one.switch_latency_ms);
    pooled.perf.merge(one.perf);
    pooled.metrics.merge(one.metrics);
    pooled.traces.insert(pooled.traces.end(), one.traces.begin(),
                         one.traces.end());
  }
  detail::digest_join_log(pooled);
  return pooled;
}

ScenarioResult run_scenario_averaged(ScenarioConfig config, int runs) {
  RunnerOptions options;
  options.repetitions = runs;
  return ScenarioRunner(options).run_averaged(config);
}

}  // namespace spider::trace
