#include "trace/experiment.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "core/spider_driver.hpp"
#include "mobility/mobility.hpp"
#include "obs/tracer.hpp"
#include "trace/runner.hpp"

namespace spider::trace {

const char* to_string(DriverKind k) {
  switch (k) {
    case DriverKind::kSpider: return "spider";
    case DriverKind::kStock: return "stock";
    case DriverKind::kFatVap: return "fatvap";
  }
  return "?";
}

double ScenarioResult::dhcp_failure_fraction() const {
  if (assoc_succeeded == 0) return 0.0;
  return 1.0 -
         static_cast<double>(dhcp_succeeded) / static_cast<double>(assoc_succeeded);
}

namespace {

void digest_join_log(ScenarioResult& result) {
  result.joins_attempted = result.join_log.size();
  for (const auto& rec : result.join_log) {
    result.assoc_succeeded += rec.assoc_delay.has_value() ? 1 : 0;
    result.dhcp_succeeded += rec.dhcp_delay.has_value() ? 1 : 0;
    result.e2e_succeeded +=
        rec.outcome == core::JoinOutcome::kEndToEnd && rec.finished ? 1 : 0;
  }
}

}  // namespace

namespace detail {

ScenarioResult execute_scenario(const ScenarioConfig& config,
                                std::shared_ptr<obs::Tracer> tracer) {
  const auto wall_start = std::chrono::steady_clock::now();
  TestbedConfig tb_config;
  tb_config.seed = config.seed;
  tb_config.propagation = config.propagation;
  Testbed bed(tb_config);
  // Installed before any entity schedules work so the trace covers the
  // whole run. The recorder only reads the sim clock — never wall time —
  // so the trace is a pure function of (config, seed).
  if (tracer) bed.sim.set_tracer(tracer.get());

  // Populate the road.
  Rng deploy_rng = bed.fork_rng();
  const auto sites = config.fixed_sites.empty()
                         ? mob::generate_deployment(config.deployment, deploy_rng)
                         : config.fixed_sites;
  for (const auto& site : sites) {
    Testbed::ApSpec spec;
    spec.channel = site.channel;
    spec.position = site.position;
    spec.backhaul = site.backhaul;
    spec.backhaul_delay = config.backhaul_delay;
    spec.internet_connected = site.internet_connected;
    spec.dhcp = config.dhcp_server;
    bed.add_ap(spec);
  }

  // The vehicle.
  mob::BackAndForthRoad route(config.deployment.road_length_m, config.speed_mps);
  auto position = [&route, &sim = bed.sim] { return route.position_at(sim.now()); };

  ThroughputRecorder recorder(config.metrics_bin);
  DownloadHarness harness(bed.sim, bed.server_ip(), recorder);
  ScenarioResult result;

  // Fault timeline. The injector's RNG fork happens only when faults are
  // scheduled, so fault-free scenarios replay the exact pre-fault streams.
  ResilienceRecorder resilience;
  std::optional<fault::FaultInjector> injector;
  if (!config.faults.empty()) {
    injector.emplace(bed.sim, bed.fork_rng());
    injector->attach_medium(bed.medium);
    for (auto& bundle : bed.aps()) {
      injector->add_ap(*bundle.ap, bundle.network.get());
    }
    injector->set_fault_observer(
        [&resilience, &sim = bed.sim](const fault::FaultSpec&) {
          resilience.note_fault(sim.now());
        });
    injector->arm(config.faults);
    harness.set_extra_callbacks({
        .on_link_up =
            [&resilience, &sim = bed.sim](core::VirtualInterface&) {
              resilience.note_link_up(sim.now());
            },
        .on_link_down =
            [&resilience, &sim = bed.sim](core::VirtualInterface&) {
              resilience.note_link_down(sim.now());
            },
    });
  }

  // Assemble the chosen driver, run, and harvest. The driver objects live
  // on the stack of each branch; runs are fully self-contained.
  switch (config.driver) {
    case DriverKind::kSpider: {
      core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                                position, config.spider);
      core::LinkManager manager(driver, bed.server_ip());
      harness.attach(manager);
      driver.start();
      manager.start();
      std::optional<core::AdaptiveModeController> adaptive;
      if (config.adaptive) {
        adaptive.emplace(driver, [speed = config.speed_mps] { return speed; },
                         config.adaptive_config);
        adaptive->start();
      }
      bed.sim.run_until(config.duration);
      result.join_log = manager.join_log();
      result.switches = driver.switches();
      result.switch_latency_ms = driver.switch_latency_stats();
      break;
    }
    case DriverKind::kStock: {
      base::StockWifiDriver driver(bed.sim, bed.medium,
                                   bed.next_client_mac_block(), position,
                                   config.stock, bed.server_ip());
      harness.attach(driver);
      driver.start();
      bed.sim.run_until(config.duration);
      result.join_log = driver.join_log();
      result.switches = driver.radio().switches_performed();
      break;
    }
    case DriverKind::kFatVap: {
      base::FatVapDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                                position, config.spider, config.fatvap);
      core::LinkManager manager(driver, bed.server_ip());
      harness.attach(manager);
      driver.start();
      manager.start();
      bed.sim.run_until(config.duration);
      result.join_log = manager.join_log();
      result.switches = driver.radio().switches_performed();
      break;
    }
  }

  recorder.finalize(config.duration);
  result.avg_throughput_kBps = recorder.average_throughput_kBps();
  result.connectivity = recorder.connectivity_fraction();
  result.connection_durations = Cdf(recorder.connection_durations());
  result.disruption_durations = Cdf(recorder.disruption_durations());
  result.instantaneous_kBps = Cdf(recorder.instantaneous_kBps());
  result.total_bytes = recorder.total_bytes();
  result.faults_injected = resilience.faults_injected();
  result.outages = resilience.outages();
  result.recoveries = resilience.recoveries();
  result.recovery_times = resilience.time_to_recover();
  digest_join_log(result);
  result.perf = bed.sim.perf();
  bed.medium.add_perf(result.perf);
  result.perf.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (tracer) {
    bed.sim.set_tracer(nullptr);
    result.metrics = tracer->metrics();
    result.traces.push_back(std::move(tracer));
  }
  return result;
}

}  // namespace detail

ScenarioResult run_scenario(const ScenarioConfig& config) {
  return ScenarioRunner().run_one(config);
}

ScenarioResult pool_results(const std::vector<ScenarioResult>& runs) {
  ScenarioResult pooled;
  const auto n = static_cast<int>(runs.size());
  for (const ScenarioResult& one : runs) {
    pooled.avg_throughput_kBps += one.avg_throughput_kBps / n;
    pooled.connectivity += one.connectivity / n;
    pooled.total_bytes += one.total_bytes;
    pooled.switches += one.switches;
    for (double x : one.connection_durations.samples()) {
      pooled.connection_durations.add(x);
    }
    for (double x : one.disruption_durations.samples()) {
      pooled.disruption_durations.add(x);
    }
    for (double x : one.instantaneous_kBps.samples()) {
      pooled.instantaneous_kBps.add(x);
    }
    pooled.faults_injected += one.faults_injected;
    pooled.outages += one.outages;
    pooled.recoveries += one.recoveries;
    for (double x : one.recovery_times.samples()) {
      pooled.recovery_times.add(x);
    }
    pooled.join_log.insert(pooled.join_log.end(), one.join_log.begin(),
                           one.join_log.end());
    pooled.perf.merge(one.perf);
    pooled.metrics.merge(one.metrics);
    pooled.traces.insert(pooled.traces.end(), one.traces.begin(),
                         one.traces.end());
  }
  digest_join_log(pooled);
  return pooled;
}

ScenarioResult run_scenario_averaged(ScenarioConfig config, int runs) {
  RunnerOptions options;
  options.repetitions = runs;
  return ScenarioRunner(options).run_averaged(config);
}

}  // namespace spider::trace
