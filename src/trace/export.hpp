#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/link_manager.hpp"
#include "trace/experiment.hpp"
#include "trace/metrics.hpp"
#include "util/stats.hpp"

namespace spider::trace {

/// CSV exporters for post-processing (plotting the reproduced figures with
/// external tooling). All writers take a stream overload (unit-testable)
/// and a path convenience overload; files are truncated.

/// The one open-truncate-write-check recipe behind every path overload:
/// opens `path` truncated, applies `writer` to the stream, and returns
/// whether both the open and the writes succeeded.
bool export_csv(const std::string& path,
                const std::function<void(std::ostream&)>& writer);

/// `second,bytes` — the ThroughputRecorder's binned timeline.
void write_timeseries_csv(std::ostream& os, const ThroughputRecorder& recorder);
bool write_timeseries_csv(const std::string& path,
                          const ThroughputRecorder& recorder);

/// `start_s,channel,bssid,outcome,assoc_ms,dhcp_ms,e2e_ms,used_cache`
void write_join_log_csv(std::ostream& os,
                        const std::vector<core::JoinRecord>& log);
bool write_join_log_csv(const std::string& path,
                        const std::vector<core::JoinRecord>& log);

/// `x,cdf` over every distinct sample (exact empirical CDF).
void write_cdf_csv(std::ostream& os, const Cdf& cdf, const std::string& x_label);
bool write_cdf_csv(const std::string& path, const Cdf& cdf,
                   const std::string& x_label);

/// `metric,value` rows: faults injected, outages, recoveries, and the
/// p50/p90/p99/max of the time-to-recover distribution (seconds).
void write_resilience_csv(std::ostream& os, const ResilienceRecorder& recorder);
bool write_resilience_csv(const std::string& path,
                          const ResilienceRecorder& recorder);

/// One row per result, in submission order:
/// `run,faults_injected,outages,recoveries,ttr_p50_s,ttr_p90_s,ttr_max_s`
/// (empty recovery distributions print empty cells). Deterministic — no
/// wall-clock fields — so trace-replay sweeps can pin this file's bytes.
void write_resilience_summary_csv(std::ostream& os,
                                  const std::vector<ScenarioResult>& results);
bool write_resilience_summary_csv(const std::string& path,
                                  const std::vector<ScenarioResult>& results);

/// One row per sweep result, in submission order:
/// `run,events_popped,events_cancelled,heap_peak,compactions,sim_s,wall_s,sim_per_wall`.
/// This is where the host-dependent wall-clock numbers go — they are kept
/// out of bench stdout so sweep output stays byte-identical across --jobs.
void write_perf_csv(std::ostream& os,
                    const std::vector<ScenarioResult>& results);
bool write_perf_csv(const std::string& path,
                    const std::vector<ScenarioResult>& results);

/// Flight-recorder sinks over a batch of (possibly pooled) results. The
/// run index restarts from 0 and counts every retained tracer across the
/// batch in submission order, so sweep output is byte-identical for any
/// worker count. No-ops (header/empty envelope only) when nothing was
/// traced.

/// One JSON object per line per retained event (see obs::write_jsonl).
void write_trace_jsonl(std::ostream& os,
                       const std::vector<ScenarioResult>& results);
bool write_trace_jsonl(const std::string& path,
                       const std::vector<ScenarioResult>& results);

/// Chrome trace-event JSON: one process per traced run, one named thread
/// lane per VAP / AP / channel (see obs::ChromeTraceWriter).
void write_trace_chrome(std::ostream& os,
                        const std::vector<ScenarioResult>& results);
bool write_trace_chrome(const std::string& path,
                        const std::vector<ScenarioResult>& results);

/// `metric,kind,value` rows of every result's registry merged (counters
/// sum, gauges max), in name order.
void write_metrics_csv(std::ostream& os,
                       const std::vector<ScenarioResult>& results);
bool write_metrics_csv(const std::string& path,
                       const std::vector<ScenarioResult>& results);

}  // namespace spider::trace
