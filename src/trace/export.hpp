#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/link_manager.hpp"
#include "trace/experiment.hpp"
#include "trace/metrics.hpp"
#include "util/stats.hpp"

namespace spider::trace {

/// CSV exporters for post-processing (plotting the reproduced figures with
/// external tooling). All writers take a stream overload (unit-testable)
/// and a path convenience overload; files are truncated.

/// `second,bytes` — the ThroughputRecorder's binned timeline.
void write_timeseries_csv(std::ostream& os, const ThroughputRecorder& recorder);
bool write_timeseries_csv(const std::string& path,
                          const ThroughputRecorder& recorder);

/// `start_s,channel,bssid,outcome,assoc_ms,dhcp_ms,e2e_ms,used_cache`
void write_join_log_csv(std::ostream& os,
                        const std::vector<core::JoinRecord>& log);
bool write_join_log_csv(const std::string& path,
                        const std::vector<core::JoinRecord>& log);

/// `x,cdf` over every distinct sample (exact empirical CDF).
void write_cdf_csv(std::ostream& os, const Cdf& cdf, const std::string& x_label);
bool write_cdf_csv(const std::string& path, const Cdf& cdf,
                   const std::string& x_label);

/// `metric,value` rows: faults injected, outages, recoveries, and the
/// p50/p90/p99/max of the time-to-recover distribution (seconds).
void write_resilience_csv(std::ostream& os, const ResilienceRecorder& recorder);
bool write_resilience_csv(const std::string& path,
                          const ResilienceRecorder& recorder);

/// One row per sweep result, in submission order:
/// `run,events_popped,events_cancelled,heap_peak,compactions,sim_s,wall_s,sim_per_wall`.
/// This is where the host-dependent wall-clock numbers go — they are kept
/// out of bench stdout so sweep output stays byte-identical across --jobs.
void write_perf_csv(std::ostream& os,
                    const std::vector<ScenarioResult>& results);
bool write_perf_csv(const std::string& path,
                    const std::vector<ScenarioResult>& results);

}  // namespace spider::trace
