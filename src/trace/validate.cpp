#include <cmath>
#include <string>
#include <vector>

#include "phy/shard_fabric.hpp"
#include "trace/error.hpp"
#include "trace/experiment.hpp"

namespace spider::trace {

const char* to_string(RunErrorKind kind) {
  switch (kind) {
    case RunErrorKind::kInvalidConfig: return "invalid-config";
    case RunErrorKind::kDeadlineExceeded: return "deadline-exceeded";
    case RunErrorKind::kCancelled: return "cancelled";
    case RunErrorKind::kInternal: return "internal";
  }
  return "?";
}

std::string join_issues(const std::vector<ConfigIssue>& issues) {
  std::string out;
  for (const ConfigIssue& issue : issues) {
    if (!out.empty()) out += "; ";
    out += issue.field + ": " + issue.message;
  }
  return out;
}

namespace {

void check_channel_mix(
    const std::vector<std::pair<wire::Channel, double>>& weights,
    const std::string& prefix, std::vector<ConfigIssue>& issues) {
  if (weights.empty()) {
    issues.push_back({prefix + ".channel_weights", "channel mix is empty"});
    return;
  }
  double total = 0.0;
  for (const auto& [channel, weight] : weights) {
    if (weight < 0.0 || !std::isfinite(weight)) {
      issues.push_back({prefix + ".channel_weights",
                        "weight for channel " + std::to_string(channel) +
                            " must be finite and >= 0"});
      return;
    }
    total += weight;
  }
  if (total <= 0.0) {
    issues.push_back(
        {prefix + ".channel_weights", "channel weights sum to zero"});
  }
}

void check_backhaul(BitRate lo, BitRate hi, const std::string& prefix,
                    std::vector<ConfigIssue>& issues) {
  if (lo.bps <= 0.0) {
    issues.push_back({prefix + ".backhaul_min", "backhaul rate must be > 0"});
  }
  if (hi.bps < lo.bps) {
    issues.push_back(
        {prefix + ".backhaul_max", "backhaul_max below backhaul_min"});
  }
}

void check_fraction(double v, const std::string& field,
                    std::vector<ConfigIssue>& issues) {
  if (v < 0.0 || v > 1.0 || !std::isfinite(v)) {
    issues.push_back({field, "must lie in [0, 1]"});
  }
}

}  // namespace

std::vector<ConfigIssue> ScenarioConfig::validate() const {
  std::vector<ConfigIssue> issues;

  if (duration <= Time{0}) {
    issues.push_back({"duration", "must be positive"});
  }
  if (!(speed_mps >= 0.0) || !std::isfinite(speed_mps)) {
    issues.push_back({"speed_mps", "must be finite and >= 0"});
  }
  if (client_mix.empty()) {
    if (clients <= 0) {
      issues.push_back({"clients", "must be >= 1"});
    }
  } else {
    // A non-empty mix replaces `clients` entirely, so its slices carry the
    // population checks: every slice must contribute and every knob must be
    // a usable multiplier/fraction.
    for (std::size_t i = 0; i < client_mix.size(); ++i) {
      const std::string prefix = "client_mix[" + std::to_string(i) + "]";
      const ClientMixEntry& entry = client_mix[i];
      if (entry.count <= 0) {
        issues.push_back({prefix + ".count", "must be >= 1"});
      }
      const ClientProfile& p = entry.profile;
      if (!(p.scan_aggressiveness > 0.0) ||
          !std::isfinite(p.scan_aggressiveness)) {
        issues.push_back(
            {prefix + ".scan_aggressiveness", "must be finite and > 0"});
      }
      if (!(p.ap_stickiness > 0.0) || !std::isfinite(p.ap_stickiness)) {
        issues.push_back({prefix + ".ap_stickiness", "must be finite and > 0"});
      }
      if (p.psm_duty < 0.0 || p.psm_duty > 1.0 || !std::isfinite(p.psm_duty)) {
        issues.push_back({prefix + ".psm_duty", "must lie in [0, 1]"});
      }
    }
  }
  if (metrics_bin <= Time{0}) {
    issues.push_back({"metrics_bin", "must be positive"});
  }
  if (backhaul_delay < Time{0}) {
    issues.push_back({"backhaul_delay", "must be >= 0"});
  }

  if (!(propagation.range_m > 0.0)) {
    issues.push_back({"propagation.range_m", "must be > 0"});
  }
  if (propagation.good_radius_m < 0.0 ||
      propagation.good_radius_m > propagation.range_m) {
    issues.push_back(
        {"propagation.good_radius_m", "must lie in [0, range_m]"});
  }
  check_fraction(propagation.base_loss, "propagation.base_loss", issues);

  if (grid_cell_m < 0.0 || !std::isfinite(grid_cell_m)) {
    issues.push_back({"grid_cell_m", "must be finite and >= 0 (0 = auto)"});
  } else if (grid_cell_m != 0.0 && grid_cell_m < propagation.range_m) {
    issues.push_back(
        {"grid_cell_m",
         "below the propagation range (" +
             std::to_string(propagation.range_m) +
             " m); the 3x3 grid neighborhood would miss in-range radios"});
  }

  if (city) {
    if (!(city->width_m > 0.0) || !(city->height_m > 0.0)) {
      issues.push_back({"city.width_m/height_m", "city area must be > 0"});
    }
    if (!(city->block_m > 0.0)) {
      issues.push_back({"city.block_m", "street spacing must be > 0"});
    } else if (city->block_m > std::max(city->width_m, city->height_m)) {
      issues.push_back(
          {"city.block_m", "exceeds the city extent — no street mesh fits"});
    }
    if (city->aps_per_km2 < 0.0 || !std::isfinite(city->aps_per_km2)) {
      issues.push_back({"city.aps_per_km2", "must be finite and >= 0"});
    }
    if (city->lateral_min_m < 0.0 ||
        city->lateral_max_m < city->lateral_min_m) {
      issues.push_back(
          {"city.lateral_min_m/max_m", "need 0 <= min <= max"});
    }
    check_channel_mix(city->channel_weights, "city", issues);
    check_backhaul(city->backhaul_min, city->backhaul_max, "city", issues);
    check_fraction(city->dead_backhaul_fraction, "city.dead_backhaul_fraction",
                   issues);
  } else if (fixed_sites.empty()) {
    if (!(deployment.road_length_m > 0.0)) {
      issues.push_back({"deployment.road_length_m", "must be > 0"});
    }
    if (deployment.aps_per_km < 0.0 || !std::isfinite(deployment.aps_per_km)) {
      issues.push_back({"deployment.aps_per_km", "must be finite and >= 0"});
    }
    if (deployment.lateral_min_m < 0.0 ||
        deployment.lateral_max_m < deployment.lateral_min_m) {
      issues.push_back(
          {"deployment.lateral_min_m/max_m", "need 0 <= min <= max"});
    }
    if (deployment.clusters_per_km < 0.0 || deployment.cluster_radius_m < 0.0) {
      issues.push_back(
          {"deployment.clusters_per_km/cluster_radius_m", "must be >= 0"});
    }
    check_channel_mix(deployment.channel_weights, "deployment", issues);
    check_backhaul(deployment.backhaul_min, deployment.backhaul_max,
                   "deployment", issues);
    check_fraction(deployment.dead_backhaul_fraction,
                   "deployment.dead_backhaul_fraction", issues);
  }

  if ((driver == DriverKind::kSpider || driver == DriverKind::kFatVap) &&
      spider.num_interfaces < 1) {
    issues.push_back({"spider.num_interfaces", "must be >= 1"});
  }

  // The impairment source must resolve before any simulator state is
  // built: trace-backed kinds ingest (and line-number-check) their
  // recordings here, so a typo'd path or a malformed row surfaces as an
  // invalid-config against the source's own field, never as a mid-run
  // failure. Synthetic schedules are builder-constructed and need no check.
  if (impairments.kind != ImpairmentSource::Kind::kSynthetic) {
    std::string error;
    if (!impairments.resolve(&error)) {
      issues.push_back({impairments.field_name(), error});
    }
  }

  if (shards < 0 || shards > phy::kMaxShards) {
    issues.push_back({"shards", "must lie in [0, " +
                                    std::to_string(phy::kMaxShards) +
                                    "] (0 = auto, 1 = serial)"});
  }
  // Impairment sources of every kind (synthetic schedule, trace file,
  // inline timeline) are valid at any formation width: schedules compile
  // into per-shard sub-schedules at partition time (fault routing across
  // shards, DESIGN.md §12), so shards > 1 no longer pins a faulted run to
  // the serial engine.

  return issues;
}

}  // namespace spider::trace
