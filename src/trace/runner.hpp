#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/tracer.hpp"
#include "sim/cancel.hpp"
#include "trace/error.hpp"
#include "trace/experiment.hpp"

namespace spider::trace {

/// File destinations for a traced run's artefacts. An empty path disables
/// that sink; with all paths empty (and tracing off) a runner does no
/// observer work at all.
struct SinkOptions {
  std::string jsonl_path;    ///< one JSON object per trace event
  std::string chrome_path;   ///< Chrome trace-event JSON (Perfetto-loadable)
  std::string metrics_path;  ///< merged metric,kind,value CSV

  bool any() const {
    return !jsonl_path.empty() || !chrome_path.empty() || !metrics_path.empty();
  }
};

/// Everything that used to be spread across three entrypoints: how many
/// seeded repetitions, how many workers, and which observers ride along.
struct RunnerOptions {
  /// Seeded repetitions per config (seed, seed+1, ...), pooled by the
  /// *_averaged entrypoints. Values < 1 behave as 1.
  int repetitions = 1;
  /// Worker threads. 0 defers to SPIDER_JOBS / hardware_concurrency (see
  /// util::ThreadPool::default_jobs); 1 runs inline on the caller.
  std::size_t jobs = 1;
  /// Record a flight recorder per run. Implied by any sink path being set.
  bool tracing = false;
  /// Ring sizing for each run's recorder (seed is stamped per run).
  obs::TracerConfig tracer;
  SinkOptions sinks;
  /// Optional cooperative stop token observed by every run this runner
  /// executes: runs in flight are interrupted at the next poll, runs not
  /// yet started are skipped (completed == false either way). Benches wire
  /// their SIGINT/SIGTERM handler here; the scenario server arms a token
  /// per request. Not owned; must outlive the runner's calls.
  sim::CancelToken* cancel = nullptr;
};

/// Outcome of a bounded run: either a completed result, or a structured
/// error — possibly still carrying the partial result harvested at the
/// interruption point (deadline/cancel), so callers can flush partial
/// output instead of losing the run entirely.
struct RunOutcome {
  std::optional<ScenarioResult> result;
  std::optional<RunError> error;

  bool ok() const { return !error.has_value(); }
};

/// The one scenario execution path. run_scenario, run_scenario_averaged,
/// and SweepRunner are thin forwarders over this class, so every entry
/// inherits the same determinism contract (DESIGN.md §7): each run owns
/// its Simulator and RNG streams, results are indexed by submission order,
/// and output is byte-identical for any worker count.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(RunnerOptions options = {});

  /// A single run of `config` (repetitions are ignored).
  ScenarioResult run_one(const ScenarioConfig& config) const;

  /// The robust entry point (DESIGN.md §11): validates `config` up front
  /// (kInvalidConfig instead of asserting downstream), runs it under the
  /// cancel/deadline token (the per-call `cancel` if given, else the
  /// runner-wide options().cancel), maps an interruption to
  /// kDeadlineExceeded/kCancelled with the partial result attached, and
  /// converts escaped exceptions to kInternal. A completed run is
  /// byte-identical to run_one() with no token installed.
  RunOutcome run_bounded(const ScenarioConfig& config,
                         sim::CancelToken* cancel = nullptr) const;

  /// `repetitions` seeded repetitions of `config`, pooled into one result.
  ScenarioResult run_averaged(const ScenarioConfig& config) const;

  /// One result per config, results[i] from configs[i], computed with
  /// `jobs` workers.
  std::vector<ScenarioResult> run_many(
      const std::vector<ScenarioConfig>& configs) const;

  /// Per config: `repetitions` seeded repetitions pooled. The expansion is
  /// flattened across configs × repetitions so repetitions of different
  /// configs overlap on the pool instead of serialising per config.
  std::vector<ScenarioResult> run_many_averaged(
      const std::vector<ScenarioConfig>& configs) const;

  /// The worker count this runner resolves to (>= 1).
  std::size_t jobs() const { return jobs_; }
  /// Whether runs record a flight recorder (explicit or implied by sinks).
  bool tracing() const { return tracing_; }
  const RunnerOptions& options() const { return options_; }

 private:
  std::vector<ScenarioResult> execute(
      const std::vector<ScenarioConfig>& expanded) const;
  void write_sinks(const std::vector<ScenarioResult>& results) const;

  RunnerOptions options_;
  std::size_t jobs_;
  bool tracing_;
};

}  // namespace spider::trace
