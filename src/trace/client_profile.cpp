#include "trace/client_profile.hpp"

#include <algorithm>
#include <cmath>

namespace spider::trace {

const char* to_string(ClientProfileKind kind) {
  switch (kind) {
    case ClientProfileKind::kDefault: return "default";
    case ClientProfileKind::kAggressiveScanner: return "aggressive-scanner";
    case ClientProfileKind::kStickyDevice: return "sticky-device";
    case ClientProfileKind::kPsmPhone: return "psm-phone";
  }
  return "?";
}

bool client_profile_kind_from_string(const std::string& name,
                                     ClientProfileKind* out) {
  if (name == "default") *out = ClientProfileKind::kDefault;
  else if (name == "aggressive-scanner") {
    *out = ClientProfileKind::kAggressiveScanner;
  } else if (name == "sticky-device") {
    *out = ClientProfileKind::kStickyDevice;
  } else if (name == "psm-phone") {
    *out = ClientProfileKind::kPsmPhone;
  } else {
    return false;
  }
  return true;
}

ClientProfile ClientProfile::preset(ClientProfileKind kind) {
  ClientProfile p;
  p.kind = kind;
  switch (kind) {
    case ClientProfileKind::kDefault:
      break;
    case ClientProfileKind::kAggressiveScanner:
      p.scan_aggressiveness = 4.0;
      break;
    case ClientProfileKind::kStickyDevice:
      p.ap_stickiness = 4.0;
      p.scan_aggressiveness = 0.5;
      break;
    case ClientProfileKind::kPsmPhone:
      p.psm_duty = 0.5;
      p.scan_aggressiveness = 0.5;
      break;
  }
  return p;
}

namespace {

/// Timer scaling with a 1 ms floor: profiles stretch or shrink cadences,
/// they never create zero-period timers.
Time scale_time(Time t, double factor) {
  const auto scaled = static_cast<std::int64_t>(
      std::llround(static_cast<double>(t.count()) * factor));
  return std::max(Time{scaled}, msec(1));
}

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

void ClientProfile::apply(core::SpiderConfig& config) const {
  if (is_default()) return;
  if (scan_aggressiveness != 1.0 && scan_aggressiveness > 0.0) {
    if (config.scanner.probe_interval > Time{0}) {
      config.scanner.probe_interval =
          scale_time(config.scanner.probe_interval, 1.0 / scan_aggressiveness);
    }
  }
  if (ap_stickiness != 1.0 && ap_stickiness > 0.0) {
    config.selector.tie_margin =
        clamp01(config.selector.tie_margin * ap_stickiness);
    config.evaluate_interval =
        scale_time(config.evaluate_interval, ap_stickiness);
    config.scanner.expiry = scale_time(config.scanner.expiry, ap_stickiness);
  }
  if (psm_duty > 0.0) {
    config.psm_retrieval = core::PsmRetrieval::kPsPoll;
    config.mode.period = scale_time(config.mode.period, 1.0 + psm_duty);
  }
}

void ClientProfile::apply(base::StockConfig& config) const {
  if (is_default()) return;
  // The stock stack embeds a SpiderConfig; the shared knobs apply there.
  apply(config.stack);
  if (scan_aggressiveness != 1.0 && scan_aggressiveness > 0.0) {
    config.rescan_backoff =
        scale_time(config.rescan_backoff, 1.0 / scan_aggressiveness);
  }
  if (ap_stickiness != 1.0 && ap_stickiness > 0.0) {
    // Sticky stock devices ride a fading association longer before the
    // liveness prober declares it dead and triggers a rescan.
    config.stack.ping.fail_threshold = std::max(
        1, static_cast<int>(std::llround(config.stack.ping.fail_threshold *
                                         ap_stickiness)));
  }
}

std::vector<ClientProfile> expand_client_mix(const ClientMix& mix,
                                             int fallback_clients) {
  std::vector<ClientProfile> out;
  if (mix.empty()) {
    out.resize(static_cast<std::size_t>(std::max(1, fallback_clients)));
    return out;
  }
  for (const ClientMixEntry& entry : mix) {
    for (int i = 0; i < entry.count; ++i) out.push_back(entry.profile);
  }
  if (out.empty()) out.emplace_back();
  return out;
}

}  // namespace spider::trace
