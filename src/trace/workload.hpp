#pragma once

#include "util/random.hpp"
#include "util/stats.hpp"

namespace spider::trace {

/// Synthetic stand-in for the §4.7 mesh measurement study (161 users,
/// 128,587 TCP connections over one day on a 25-node downtown mesh). The
/// real traces are not available; we draw flow durations and
/// inter-connection gaps from heavy-tailed distributions calibrated to the
/// aggregate facts the paper reports: mostly short web flows (68% HTTP),
/// connection durations overwhelmingly under ~20 s with a long tail, and
/// inter-connection gaps from seconds to several minutes.
struct MeshWorkloadConfig {
  int users = 161;
  int flows_per_user = 80;
  /// Flow duration ~ lognormal(mu, sigma) seconds, capped.
  double duration_mu = 1.1;     ///< median = e^mu ~ 3 s
  double duration_sigma = 1.3;
  double duration_cap_s = 250.0;
  /// Inter-connection gap ~ Pareto(xm, alpha) seconds, capped.
  double gap_xm = 2.0;
  double gap_alpha = 1.1;
  double gap_cap_s = 300.0;
};

struct UserTraces {
  Cdf connection_durations;   ///< Fig. 16's "users connection duration"
  Cdf interconnection_gaps;   ///< Fig. 17's "user inter-connection"
};

UserTraces generate_mesh_user_traces(const MeshWorkloadConfig& config, Rng& rng);

}  // namespace spider::trace
