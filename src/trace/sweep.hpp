#pragma once

#include <cstddef>
#include <vector>

#include "trace/runner.hpp"

namespace spider::trace {

/// Sweep-wide options; benches map their CLI flags here. `jobs == 0`
/// defers to the SPIDER_JOBS environment variable, then
/// hardware_concurrency (see util::ThreadPool::default_jobs). The trace
/// fields opt a sweep into the flight recorder and its sinks — tracing is
/// implied whenever any sink path is set.
struct SweepOptions {
  std::size_t jobs = 0;
  bool tracing = false;
  obs::TracerConfig tracer;
  SinkOptions sinks;
  /// Cooperative stop token (see RunnerOptions::cancel): benches point
  /// this at their SIGINT/SIGTERM token so an interrupted sweep drains
  /// promptly and flushes partial sinks. Not owned.
  sim::CancelToken* cancel = nullptr;
};

/// Replays a list of independent scenarios on a fixed-size thread pool.
/// Thin forwarder over ScenarioRunner (trace/runner.hpp) — the determinism
/// contract (DESIGN.md §7) lives there: each scenario owns its Simulator,
/// EventQueue, and RNG streams, results are indexed by submission order,
/// and every table, CDF, and join log derived from a sweep is
/// byte-identical for any worker count, including the serial jobs=1 loop.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// One result per config, results[i] from configs[i].
  std::vector<ScenarioResult> run(
      const std::vector<ScenarioConfig>& configs) const;

  /// Expands each config into `runs` seeded repetitions (seed, seed+1,
  /// ...), runs all of them on the pool, and pools each group — the
  /// parallel equivalent of calling run_scenario_averaged per config.
  std::vector<ScenarioResult> run_averaged(
      const std::vector<ScenarioConfig>& configs, int runs) const;

  /// The worker count this runner resolves to (>= 1).
  std::size_t jobs() const { return options_.jobs; }

 private:
  RunnerOptions options_;
};

}  // namespace spider::trace
