#pragma once

#include <cstddef>
#include <vector>

#include "trace/experiment.hpp"

namespace spider::trace {

/// Worker-count selection for a sweep. `jobs == 0` defers to the
/// SPIDER_JOBS environment variable, then hardware_concurrency (see
/// util::ThreadPool::default_jobs); benches map their --jobs flag here.
struct SweepOptions {
  std::size_t jobs = 0;
};

/// Replays a list of independent scenarios on a fixed-size thread pool.
///
/// Determinism contract (DESIGN.md §7): each scenario owns its Simulator,
/// EventQueue, and RNG streams, and shares no mutable state with its
/// siblings, so a run's result depends only on its ScenarioConfig. Results
/// are returned indexed by submission order, never completion order.
/// Together these guarantee that every table, CDF, and join log derived
/// from a sweep is byte-identical for any worker count, including the
/// serial jobs=1 loop.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// One result per config, results[i] from configs[i].
  std::vector<ScenarioResult> run(
      const std::vector<ScenarioConfig>& configs) const;

  /// Expands each config into `runs` seeded repetitions (seed, seed+1,
  /// ...), runs all of them on the pool, and pools each group — the
  /// parallel equivalent of calling run_scenario_averaged per config.
  std::vector<ScenarioResult> run_averaged(
      const std::vector<ScenarioConfig>& configs, int runs) const;

  /// The worker count this runner resolves to (>= 1).
  std::size_t jobs() const { return jobs_; }

 private:
  std::size_t jobs_;
};

}  // namespace spider::trace
