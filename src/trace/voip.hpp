#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/link_manager.hpp"
#include "sim/simulator.hpp"
#include "transport/cbr.hpp"
#include "util/stats.hpp"

namespace spider::trace {

/// Drives a VoIP-like workload over Spider's links: whenever a link comes
/// up, the harness subscribes to a downlink CBR stream through it and
/// measures what a real-time application would experience. §4.3 asks
/// whether Spider's disruption profile "can support interactive
/// applications such as VoIP"; this answers it behaviourally rather than
/// by comparing distributions.
///
/// Each link carries its own call leg (its own flow id); the summary pools
/// the per-leg measurements and the wall-clock voice availability.
class VoipHarness {
 public:
  struct CallRecord {
    Time started{0};
    Time ended{0};
    std::uint64_t packets = 0;
    double delivery_ratio = 0.0;
    double mean_delay_s = 0.0;
    double jitter_s = 0.0;
    Time longest_gap{0};
  };

  struct Summary {
    std::size_t calls = 0;
    std::uint64_t packets_received = 0;
    double mean_delivery_ratio = 0.0;  ///< weighted by packets expected
    double mean_delay_s = 0.0;
    double mean_jitter_s = 0.0;
    /// Fraction of 1-second bins (over `duration`) with at least
    /// `voice_ok_fraction` of the nominal packet rate arriving.
    double voice_availability = 0.0;
    Time longest_gap{0};
  };

  VoipHarness(sim::Simulator& simulator, wire::Ipv4 server_ip,
              tcp::CbrConfig config = {});

  void attach(core::LinkManager& manager);

  /// Finalises per-second accounting and aggregates.
  Summary summarize(Time duration, double voice_ok_fraction = 0.8);

  const std::vector<CallRecord>& calls() const { return finished_; }

 private:
  struct ActiveCall {
    std::unique_ptr<tcp::CbrSink> sink;
    std::unique_ptr<sim::PeriodicTimer> subscribe_timer;
    Time started{0};
  };

  void link_up(core::VirtualInterface& vif);
  void link_down(core::VirtualInterface& vif);
  void finish_call(core::VirtualInterface& vif, ActiveCall& call);

  sim::Simulator& sim_;
  wire::Ipv4 server_ip_;
  tcp::CbrConfig config_;
  std::unordered_map<const core::VirtualInterface*, ActiveCall> active_;
  std::vector<CallRecord> finished_;
  std::vector<std::uint32_t> per_second_packets_;
};

}  // namespace spider::trace
