#include "trace/workload.hpp"

#include <algorithm>

namespace spider::trace {

UserTraces generate_mesh_user_traces(const MeshWorkloadConfig& config,
                                     Rng& rng) {
  UserTraces traces;
  for (int u = 0; u < config.users; ++u) {
    for (int f = 0; f < config.flows_per_user; ++f) {
      const double duration = std::min(
          config.duration_cap_s,
          rng.lognormal(config.duration_mu, config.duration_sigma));
      traces.connection_durations.add(duration);
      if (f + 1 < config.flows_per_user) {
        const double gap = std::min(config.gap_cap_s,
                                    rng.pareto(config.gap_xm, config.gap_alpha));
        traces.interconnection_gaps.add(gap);
      }
    }
  }
  traces.connection_durations.finalize();
  traces.interconnection_gaps.finalize();
  return traces;
}

}  // namespace spider::trace
