#include "trace/scenario_json.hpp"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <utility>

namespace spider::trace {

using util::Json;
using util::json_escape;
using util::json_number;

namespace {

bool driver_from_string(const std::string& name, DriverKind* out) {
  if (name == "spider") *out = DriverKind::kSpider;
  else if (name == "stock") *out = DriverKind::kStock;
  else if (name == "fatvap") *out = DriverKind::kFatVap;
  else return false;
  return true;
}

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Rounding second/millisecond parsers for the extension fields: a Time
/// printed as %.17g seconds re-parses to the identical tick, which the
/// ingest -> serialize -> ingest byte-identity contract depends on.
/// (The legacy duration_s/metrics_bin_s keys keep their original
/// truncating semantics untouched.)
Time seconds_exact(double v) {
  return Time{static_cast<std::int64_t>(std::llround(v * 1e6))};
}
Time millis_exact(double v) {
  return Time{static_cast<std::int64_t>(std::llround(v * 1e3))};
}

void write_replay(std::ostream& os, const tracein::ReplayOptions& replay) {
  os << "{\"mapping\":\"" << tracein::to_string(replay.mapping) << '"'
     << ",\"loss_scale\":" << json_number(replay.loss_scale)
     << ",\"min_occupancy\":" << json_number(replay.min_occupancy)
     << ",\"tail_window_s\":" << json_number(to_seconds(replay.tail_window))
     << ",\"burst_dwell_ms\":" << json_number(to_millis(replay.burst_dwell))
     << '}';
}

bool parse_replay(const Json& json, tracein::ReplayOptions* replay,
                  std::string* error) {
  if (!json.is_object()) {
    return set_error(error, "impairments.replay must be a JSON object");
  }
  for (const auto& [key, value] : json.members()) {
    if (key == "mapping") {
      if (!value.is_string() ||
          !tracein::replay_mapping_from_string(value.string_value(),
                                               &replay->mapping)) {
        return set_error(error,
                         "impairments.replay.mapping must be "
                         "interference|burst");
      }
    } else if (key == "loss_scale") {
      if (!value.is_number()) {
        return set_error(error,
                         "impairments.replay.loss_scale must be a number");
      }
      replay->loss_scale = value.number_or(0.0);
    } else if (key == "min_occupancy") {
      if (!value.is_number()) {
        return set_error(error,
                         "impairments.replay.min_occupancy must be a number");
      }
      replay->min_occupancy = value.number_or(0.0);
    } else if (key == "tail_window_s") {
      if (!value.is_number()) {
        return set_error(error,
                         "impairments.replay.tail_window_s must be a number");
      }
      replay->tail_window = seconds_exact(value.number_or(0.0));
    } else if (key == "burst_dwell_ms") {
      if (!value.is_number()) {
        return set_error(error,
                         "impairments.replay.burst_dwell_ms must be a number");
      }
      replay->burst_dwell = millis_exact(value.number_or(0.0));
    } else {
      return set_error(error,
                       "unknown impairments.replay key '" + key + "'");
    }
  }
  return true;
}

bool parse_fault_spec(const Json& json, std::size_t index,
                      fault::FaultSpec* spec, std::string* error) {
  const std::string prefix =
      "impairments.schedule[" + std::to_string(index) + "]";
  if (!json.is_object()) {
    return set_error(error, prefix + " must be a JSON object");
  }
  for (const auto& [key, value] : json.members()) {
    if (key == "kind") {
      if (!value.is_string() ||
          !fault::fault_kind_from_string(value.string_value(), &spec->kind)) {
        return set_error(error, prefix + ".kind is not a known fault kind");
      }
    } else if (key == "at_s") {
      if (!value.is_number()) {
        return set_error(error, prefix + ".at_s must be a number");
      }
      spec->at = seconds_exact(value.number_or(0.0));
    } else if (key == "duration_s") {
      if (!value.is_number()) {
        return set_error(error, prefix + ".duration_s must be a number");
      }
      spec->duration = seconds_exact(value.number_or(0.0));
    } else if (key == "target") {
      if (!value.is_number()) {
        return set_error(error, prefix + ".target must be a number");
      }
      spec->target = static_cast<int>(value.number_or(0.0));
    } else if (key == "intensity") {
      if (!value.is_number()) {
        return set_error(error, prefix + ".intensity must be a number");
      }
      spec->intensity = value.number_or(0.0);
    } else if (key == "burst_ms") {
      if (!value.is_number()) {
        return set_error(error, prefix + ".burst_ms must be a number");
      }
      spec->burst_mean = millis_exact(value.number_or(0.0));
    } else if (key == "gap_ms") {
      if (!value.is_number()) {
        return set_error(error, prefix + ".gap_ms must be a number");
      }
      spec->gap_mean = millis_exact(value.number_or(0.0));
    } else {
      return set_error(error, "unknown " + prefix + " key '" + key + "'");
    }
  }
  return true;
}

bool parse_impairments(const Json& json, ImpairmentSource* out,
                       std::string* error) {
  if (!json.is_object()) {
    return set_error(error, "impairments must be a JSON object");
  }
  ImpairmentSource src;
  const Json* kind = json.find("kind");
  if (kind == nullptr || !kind->is_string() ||
      !impairment_kind_from_string(kind->string_value(), &src.kind)) {
    return set_error(error,
                     "impairments.kind must be "
                     "synthetic|trace-file|inline-timeline");
  }
  for (const auto& [key, value] : json.members()) {
    if (key == "kind") {
      continue;
    } else if (key == "schedule") {
      if (src.kind != ImpairmentSource::Kind::kSynthetic) {
        return set_error(
            error, "impairments.schedule only applies to kind 'synthetic'");
      }
      if (!value.is_array()) {
        return set_error(error, "impairments.schedule must be an array");
      }
      for (std::size_t i = 0; i < value.elements().size(); ++i) {
        fault::FaultSpec spec;
        if (!parse_fault_spec(value.elements()[i], i, &spec, error)) {
          return false;
        }
        src.schedule.add(spec);
      }
    } else if (key == "path") {
      if (src.kind != ImpairmentSource::Kind::kTraceFile) {
        return set_error(error,
                         "impairments.path only applies to kind 'trace-file'");
      }
      if (!value.is_string()) {
        return set_error(error, "impairments.path must be a string");
      }
      src.trace_path = value.string_value();
    } else if (key == "samples") {
      if (src.kind != ImpairmentSource::Kind::kInlineTimeline) {
        return set_error(
            error,
            "impairments.samples only applies to kind 'inline-timeline'");
      }
      if (!value.is_array()) {
        return set_error(error, "impairments.samples must be an array");
      }
      for (std::size_t i = 0; i < value.elements().size(); ++i) {
        const Json& row = value.elements()[i];
        const std::string prefix =
            "impairments.samples[" + std::to_string(i) + "]";
        if (!row.is_array() || row.elements().size() != 3 ||
            !row.elements()[0].is_number() || !row.elements()[1].is_number() ||
            !row.elements()[2].is_number()) {
          return set_error(
              error, prefix + " must be [t_s, channel, occupancy] numbers");
        }
        tracein::OccupancySample sample;
        sample.at = seconds_exact(row.elements()[0].number_or(0.0));
        sample.channel =
            static_cast<wire::Channel>(row.elements()[1].number_or(0.0));
        sample.occupancy = row.elements()[2].number_or(0.0);
        src.timeline.samples.push_back(sample);
      }
    } else if (key == "replay") {
      if (src.kind == ImpairmentSource::Kind::kSynthetic) {
        return set_error(
            error, "impairments.replay only applies to trace-backed kinds");
      }
      if (!parse_replay(value, &src.replay, error)) return false;
    } else {
      return set_error(error, "unknown impairments key '" + key + "'");
    }
  }
  *out = std::move(src);
  return true;
}

bool parse_client_mix(const Json& json, ClientMix* out, std::string* error) {
  if (!json.is_array()) {
    return set_error(error, "client_mix must be an array");
  }
  ClientMix mix;
  for (std::size_t i = 0; i < json.elements().size(); ++i) {
    const Json& entry = json.elements()[i];
    const std::string prefix = "client_mix[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      return set_error(error, prefix + " must be a JSON object");
    }
    ClientMixEntry e;
    // The preset seeds the knobs, then explicit knob keys override — a
    // wire entry is "a named profile, possibly customized".
    const Json* profile = entry.find("profile");
    if (profile != nullptr) {
      ClientProfileKind kind;
      if (!profile->is_string() ||
          !client_profile_kind_from_string(profile->string_value(), &kind)) {
        return set_error(error,
                         prefix +
                             ".profile must be default|aggressive-scanner|"
                             "sticky-device|psm-phone");
      }
      e.profile = ClientProfile::preset(kind);
    }
    for (const auto& [key, value] : entry.members()) {
      if (key == "profile") {
        continue;
      } else if (key == "count") {
        if (!value.is_number()) {
          return set_error(error, prefix + ".count must be a number");
        }
        e.count = static_cast<int>(value.number_or(0.0));
      } else if (key == "scan_aggressiveness") {
        if (!value.is_number()) {
          return set_error(error,
                           prefix + ".scan_aggressiveness must be a number");
        }
        e.profile.scan_aggressiveness = value.number_or(0.0);
      } else if (key == "ap_stickiness") {
        if (!value.is_number()) {
          return set_error(error, prefix + ".ap_stickiness must be a number");
        }
        e.profile.ap_stickiness = value.number_or(0.0);
      } else if (key == "psm_duty") {
        if (!value.is_number()) {
          return set_error(error, prefix + ".psm_duty must be a number");
        }
        e.profile.psm_duty = value.number_or(0.0);
      } else {
        return set_error(error, "unknown " + prefix + " key '" + key + "'");
      }
    }
    mix.push_back(e);
  }
  *out = std::move(mix);
  return true;
}

}  // namespace

void write_scenario_json(std::ostream& os, const ScenarioConfig& config) {
  os << "{\"seed\":" << config.seed
     << ",\"duration_s\":" << json_number(to_seconds(config.duration))
     << ",\"speed_mps\":" << json_number(config.speed_mps)
     << ",\"clients\":" << config.clients
     << ",\"shards\":" << config.shards
     << ",\"metrics_bin_s\":" << json_number(to_seconds(config.metrics_bin))
     << ",\"driver\":\"" << to_string(config.driver) << '"'
     << ",\"adaptive\":" << (config.adaptive ? "true" : "false")
     << ",\"num_interfaces\":" << config.spider.num_interfaces
     << ",\"mode\":{\"period_ms\":"
     << json_number(to_millis(config.spider.mode.period)) << ",\"fractions\":[";
  bool first = true;
  for (const auto& [channel, fraction] : config.spider.mode.fractions) {
    if (!first) os << ',';
    first = false;
    os << '[' << channel << ',' << json_number(fraction) << ']';
  }
  os << "]}"
     << ",\"neighbor_index\":\""
     << (config.neighbor_index == phy::NeighborIndex::kGrid   ? "grid"
         : config.neighbor_index == phy::NeighborIndex::kAuto ? "auto"
                                                              : "brute")
     << '"' << ",\"grid_cell_m\":" << json_number(config.grid_cell_m);
  if (config.city) {
    os << ",\"city\":{\"width_m\":" << json_number(config.city->width_m)
       << ",\"height_m\":" << json_number(config.city->height_m)
       << ",\"block_m\":" << json_number(config.city->block_m)
       << ",\"aps_per_km2\":" << json_number(config.city->aps_per_km2) << '}';
  } else {
    os << ",\"road_length_m\":" << json_number(config.deployment.road_length_m)
       << ",\"aps_per_km\":" << json_number(config.deployment.aps_per_km);
  }
  // Extensions travel only when non-default, so a mix-free, impairment-free
  // config serializes to the exact pre-extension protocol bytes.
  if (!config.client_mix.empty()) {
    os << ",\"client_mix\":[";
    bool first_entry = true;
    for (const ClientMixEntry& entry : config.client_mix) {
      if (!first_entry) os << ',';
      first_entry = false;
      os << "{\"profile\":\"" << to_string(entry.profile.kind)
         << "\",\"count\":" << entry.count << ",\"scan_aggressiveness\":"
         << json_number(entry.profile.scan_aggressiveness)
         << ",\"ap_stickiness\":" << json_number(entry.profile.ap_stickiness)
         << ",\"psm_duty\":" << json_number(entry.profile.psm_duty) << '}';
    }
    os << ']';
  }
  const ImpairmentSource& imp = config.impairments;
  const bool default_impairments =
      imp.kind == ImpairmentSource::Kind::kSynthetic && imp.schedule.empty();
  if (!default_impairments) {
    os << ",\"impairments\":{\"kind\":\"" << imp.kind_name() << '"';
    switch (imp.kind) {
      case ImpairmentSource::Kind::kSynthetic: {
        os << ",\"schedule\":[";
        bool first_spec = true;
        for (const fault::FaultSpec& spec : imp.schedule.specs()) {
          if (!first_spec) os << ',';
          first_spec = false;
          os << "{\"kind\":\"" << fault::to_string(spec.kind)
             << "\",\"at_s\":" << json_number(to_seconds(spec.at))
             << ",\"duration_s\":" << json_number(to_seconds(spec.duration))
             << ",\"target\":" << spec.target
             << ",\"intensity\":" << json_number(spec.intensity)
             << ",\"burst_ms\":" << json_number(to_millis(spec.burst_mean))
             << ",\"gap_ms\":" << json_number(to_millis(spec.gap_mean))
             << '}';
        }
        os << ']';
        break;
      }
      case ImpairmentSource::Kind::kTraceFile: {
        os << ",\"path\":\"" << json_escape(imp.trace_path)
           << "\",\"replay\":";
        write_replay(os, imp.replay);
        break;
      }
      case ImpairmentSource::Kind::kInlineTimeline: {
        os << ",\"samples\":[";
        bool first_sample = true;
        for (const tracein::OccupancySample& s : imp.timeline.samples) {
          if (!first_sample) os << ',';
          first_sample = false;
          os << '[' << json_number(to_seconds(s.at)) << ','
             << static_cast<int>(s.channel) << ','
             << json_number(s.occupancy) << ']';
        }
        os << "],\"replay\":";
        write_replay(os, imp.replay);
        break;
      }
    }
    os << '}';
  }
  os << '}';
}

std::string scenario_to_json(const ScenarioConfig& config) {
  std::ostringstream os;
  write_scenario_json(os, config);
  return os.str();
}

bool parse_scenario_json(const Json& json, ScenarioConfig* config,
                         std::string* error) {
  if (!json.is_object()) {
    return set_error(error, "scenario must be a JSON object");
  }
  ScenarioConfig out;  // protocol defaults = library defaults
  for (const auto& [key, value] : json.members()) {
    if (key == "seed") {
      out.seed = static_cast<std::uint64_t>(value.number_or(1.0));
    } else if (key == "duration_s") {
      out.duration = sec(value.number_or(0.0));
    } else if (key == "speed_mps") {
      out.speed_mps = value.number_or(-1.0);
    } else if (key == "clients") {
      out.clients = static_cast<int>(value.number_or(0.0));
    } else if (key == "shards") {
      // Non-numeric values resolve to -1 so validate() rejects them as
      // invalid_config instead of silently running a different formation.
      out.shards = static_cast<int>(value.number_or(-1.0));
    } else if (key == "metrics_bin_s") {
      out.metrics_bin = sec(value.number_or(0.0));
    } else if (key == "driver") {
      if (!value.is_string() ||
          !driver_from_string(value.string_value(), &out.driver)) {
        return set_error(error, "driver must be spider|stock|fatvap");
      }
    } else if (key == "adaptive") {
      out.adaptive = value.bool_or(false);
    } else if (key == "num_interfaces") {
      out.spider.num_interfaces =
          static_cast<std::size_t>(value.number_or(0.0));
    } else if (key == "mode") {
      const Json* period = value.find("period_ms");
      const Json* fractions = value.find("fractions");
      if (!value.is_object() || period == nullptr || fractions == nullptr ||
          !fractions->is_array()) {
        return set_error(error, "mode needs period_ms and fractions");
      }
      core::OperationMode mode;
      mode.period = msec(static_cast<std::int64_t>(period->number_or(0.0)));
      for (const Json& pair : fractions->elements()) {
        if (!pair.is_array() || pair.elements().size() != 2) {
          return set_error(error, "mode fraction entries are [channel,frac]");
        }
        mode.fractions.emplace_back(
            static_cast<wire::Channel>(pair.elements()[0].number_or(0.0)),
            pair.elements()[1].number_or(0.0));
      }
      out.spider.mode = mode;
    } else if (key == "neighbor_index") {
      const std::string name = value.string_or("");
      if (name == "grid") {
        out.neighbor_index = phy::NeighborIndex::kGrid;
      } else if (name == "brute") {
        out.neighbor_index = phy::NeighborIndex::kBruteForce;
      } else if (name == "auto") {
        out.neighbor_index = phy::NeighborIndex::kAuto;
      } else {
        return set_error(error, "neighbor_index must be grid|brute|auto");
      }
    } else if (key == "grid_cell_m") {
      out.grid_cell_m = value.number_or(-1.0);
    } else if (key == "road_length_m") {
      out.deployment.road_length_m = value.number_or(0.0);
    } else if (key == "aps_per_km") {
      out.deployment.aps_per_km = value.number_or(-1.0);
    } else if (key == "city") {
      mob::CityGridConfig city;
      if (!value.is_object()) {
        return set_error(error, "city must be a JSON object");
      }
      for (const auto& [ckey, cvalue] : value.members()) {
        if (ckey == "width_m") city.width_m = cvalue.number_or(0.0);
        else if (ckey == "height_m") city.height_m = cvalue.number_or(0.0);
        else if (ckey == "block_m") city.block_m = cvalue.number_or(0.0);
        else if (ckey == "aps_per_km2") {
          city.aps_per_km2 = cvalue.number_or(-1.0);
        } else {
          return set_error(error, "unknown city key '" + ckey + "'");
        }
      }
      out.city = city;
    } else if (key == "client_mix") {
      if (!parse_client_mix(value, &out.client_mix, error)) return false;
    } else if (key == "impairments") {
      if (!parse_impairments(value, &out.impairments, error)) return false;
    } else {
      // Strict: a dropped key would silently run a different experiment
      // than the client intended.
      return set_error(error, "unknown scenario key '" + key + "'");
    }
  }
  *config = std::move(out);
  return true;
}

bool parse_scenario_json(const std::string& text, ScenarioConfig* config,
                         std::string* error) {
  std::string parse_error;
  const std::optional<Json> json = Json::parse(text, &parse_error);
  if (!json) {
    return set_error(error, "scenario JSON: " + parse_error);
  }
  return parse_scenario_json(*json, config, error);
}

}  // namespace spider::trace
