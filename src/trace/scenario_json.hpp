#pragma once

#include <iosfwd>
#include <string>

#include "trace/experiment.hpp"
#include "util/json.hpp"

namespace spider::trace {

/// The one scenario JSON serde. The serve wire protocol, spider_campaign
/// and the trace tooling all round-trip ScenarioConfig through these two
/// functions, so a scenario means the same thing whether it arrives over
/// the server socket, from a campaign spec, or from a file on disk —
/// there is no second, drifting parser to disagree with.
///
/// The format covers the protocol subset of ScenarioConfig (seed,
/// duration/speed/clients, road or city deployment, driver + interface
/// count + operation mode, neighbor index and grid cell) plus the
/// declarative extensions: "client_mix" (heterogeneous profiles) and
/// "impairments" (synthetic schedule | trace file | inline timeline).
/// Extensions are written only when non-default, so mix-free,
/// impairment-free configs serialize to the exact pre-extension bytes.
///
/// parse is strict: an unknown key or malformed value fails with an error
/// message naming the offending field, so a client typo cannot silently
/// run a different experiment than intended.
bool parse_scenario_json(const util::Json& json, ScenarioConfig* config,
                         std::string* error);
/// Convenience: parse the textual form (one JSON object).
bool parse_scenario_json(const std::string& text, ScenarioConfig* config,
                         std::string* error);

void write_scenario_json(std::ostream& os, const ScenarioConfig& config);
std::string scenario_to_json(const ScenarioConfig& config);

}  // namespace spider::trace
