#pragma once

#include <string>
#include <vector>

#include "baseline/stock_wifi.hpp"
#include "core/config.hpp"

namespace spider::trace {

/// Named device-behaviour presets, after WiFiSim's observation that real
/// client populations are not uniform: probe cadence, roaming stickiness
/// and power-save discipline differ per device class and materially change
/// association dynamics. The preset picks the three numeric knobs below;
/// serde keeps the name so a wire round trip is stable.
enum class ClientProfileKind {
  kDefault,            ///< the tuned rig every experiment used until now
  kAggressiveScanner,  ///< probes hard, roams eagerly (laptops, wardrivers)
  kStickyDevice,       ///< clings to the current AP (IoT, printers)
  kPsmPhone,           ///< PSM-heavy duty-cycled handset
};

const char* to_string(ClientProfileKind kind);
bool client_profile_kind_from_string(const std::string& name,
                                     ClientProfileKind* out);

/// One client's behavioural deviation from the uniform rig. Applied on top
/// of the scenario's driver config at rig assembly; a default profile is
/// exactly the identity, so ClientMix-free scenarios are byte-identical to
/// every pre-profile build.
struct ClientProfile {
  ClientProfileKind kind = ClientProfileKind::kDefault;

  /// Probe-rate multiplier: 2.0 probes twice as often (probe_interval and
  /// the stock rescan backoff shrink accordingly), 0.5 half as often.
  double scan_aggressiveness = 1.0;
  /// AP-stickiness multiplier: > 1 widens the selector's tie margin,
  /// slows the evaluate loop, stretches scan-cache expiry, and (stock)
  /// tolerates more missed pings before abandoning a fading association.
  double ap_stickiness = 1.0;
  /// Fraction of time dozing in [0, 1]. Positive values switch PSM
  /// retrieval to the standard PS-Poll discipline and stretch the
  /// schedule period by (1 + psm_duty) — the duty-cycled handset pattern.
  double psm_duty = 0.0;

  /// The preset's knob values (kDefault is all-identity).
  static ClientProfile preset(ClientProfileKind kind);

  /// True when applying this profile changes nothing.
  bool is_default() const {
    return scan_aggressiveness == 1.0 && ap_stickiness == 1.0 &&
           psm_duty == 0.0;
  }

  /// Rewrites a driver config in place (exact identity when is_default()).
  void apply(core::SpiderConfig& config) const;
  void apply(base::StockConfig& config) const;
};

/// One slice of a heterogeneous population: `count` clients running
/// `profile`. A scenario's ClientMix is the ordered list of slices;
/// clients are assembled mix-order-major (all of entry 0, then entry 1,
/// ...) so the mix order is part of the deterministic run identity.
struct ClientMixEntry {
  ClientProfile profile;
  int count = 1;
};
using ClientMix = std::vector<ClientMixEntry>;

/// Per-client profile list a scenario actually runs: the mix expanded in
/// order, or `fallback_clients` default profiles when the mix is empty
/// (the homogeneous legacy rig).
std::vector<ClientProfile> expand_client_mix(const ClientMix& mix,
                                             int fallback_clients);

}  // namespace spider::trace
