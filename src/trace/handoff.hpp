#pragma once

#include <vector>

#include "baseline/stock_wifi.hpp"
#include "core/link_manager.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace spider::trace {

/// Hand-off quality tracker. §5 argues Spider is "the only practical soft
/// hand-off solution using client side modifications": because several
/// interfaces hold APs concurrently, a dying link often overlaps the next
/// one (make-before-break). This harness records link up/down events and
/// computes, for every link teardown, the gap until connectivity resumed —
/// negative gaps mean another link was already up (a soft hand-off).
class HandoffTracker {
 public:
  explicit HandoffTracker(sim::Simulator& simulator) : sim_(simulator) {}

  void attach(core::LinkManager& manager);
  void attach(base::StockWifiDriver& stock);

  /// Direct event feed for custom drivers (attach() routes through these).
  void record_link_up();
  void record_link_down();

  struct Summary {
    std::size_t handoffs = 0;       ///< teardown followed by another link
    std::size_t soft = 0;           ///< overlap existed (gap <= 0)
    double soft_fraction = 0.0;
    Cdf gap_seconds;                ///< hard hand-offs only (gap > 0)
  };

  /// Computes the summary from the recorded event stream.
  Summary summarize() const;

  std::size_t links_seen() const { return ups_; }

 private:
  struct Event {
    Time at;
    bool up;
  };

  sim::Simulator& sim_;
  std::vector<Event> events_;
  std::size_t ups_ = 0;
  int live_ = 0;
};

}  // namespace spider::trace
