#include "trace/testbed.hpp"

namespace spider::trace {

Testbed::Testbed(TestbedConfig config)
    : sim(),
      medium(sim, phy::Propagation(config.propagation), Rng(config.seed * 7919 + 1),
             config.medium),
      wired(sim),
      server(wired, config.server_ip),
      downloads(sim, server, config.tcp),
      config_(config),
      rng_(config.seed) {}

Testbed::ApBundle& Testbed::add_ap(const ApSpec& spec) {
  ApBundle bundle;
  mac::ApConfig mac_config = spec.mac;
  mac_config.ssid = spec.ssid;
  mac_config.channel = spec.channel;

  const auto index = spec.index ? *spec.index : next_subnet_++;
  const wire::MacAddress bssid(0xA0'0000ULL + index);
  bundle.ap = std::make_unique<mac::AccessPoint>(
      sim, medium, bssid, spec.position, mac_config, rng_.fork());

  net::ApNetworkConfig net_config;
  net_config.backhaul.rate = spec.backhaul;
  net_config.backhaul.delay = spec.backhaul_delay;
  net_config.dhcp = spec.dhcp;
  net_config.internet_connected = spec.internet_connected;
  // 10.(index/250).(index%250).0/24 — unique per AP, as home NATs would be.
  const wire::Ipv4 subnet(10, static_cast<std::uint8_t>(index / 250),
                          static_cast<std::uint8_t>(index % 250), 0);
  bundle.network = std::make_unique<net::ApNetwork>(
      sim, *bundle.ap, wired, subnet, net_config, rng_.fork());

  bundle.ap->start();
  aps_.push_back(std::move(bundle));
  return aps_.back();
}

std::uint64_t Testbed::next_client_mac_block() {
  return client_mac_block(next_client_block_++);
}

DownloadHarness::DownloadHarness(sim::Simulator& simulator,
                                 wire::Ipv4 server_ip,
                                 ThroughputRecorder& recorder)
    : sim_(simulator), server_ip_(server_ip), recorder_(recorder) {}

void DownloadHarness::attach(core::LinkManager& manager) {
  manager.set_callbacks({
      .on_link_up = [this](core::VirtualInterface& vif) { link_up(vif); },
      .on_link_down = [this](core::VirtualInterface& vif) { link_down(vif); },
  });
}

void DownloadHarness::attach(base::StockWifiDriver& stock) {
  stock.set_callbacks({
      .on_link_up = [this](core::VirtualInterface& vif) { link_up(vif); },
      .on_link_down = [this](core::VirtualInterface& vif) { link_down(vif); },
  });
}

void DownloadHarness::link_up(core::VirtualInterface& vif) {
  ++links_seen_;
  if (extra_.on_link_up) extra_.on_link_up(vif);
  auto client = std::make_unique<tcp::DownloadClient>(
      sim_, sim_.allocate_id(), vif.ip(), server_ip_,
      [&vif](wire::PacketPtr p) { vif.send_packet(std::move(p)); },
      [this](std::size_t bytes) { recorder_.record(sim_.now(), bytes); });
  vif.set_app_handler(
      [c = client.get()](const wire::Packet& p) { c->on_packet(p); });
  client->start();
  clients_[&vif] = std::move(client);
}

void DownloadHarness::link_down(core::VirtualInterface& vif) {
  if (extra_.on_link_down) extra_.on_link_down(vif);
  vif.set_app_handler(nullptr);
  clients_.erase(&vif);
}

}  // namespace spider::trace
