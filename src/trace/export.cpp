#include "trace/export.hpp"

#include <fstream>
#include <ostream>

#include "obs/sinks.hpp"
#include "obs/tracer.hpp"

namespace spider::trace {

namespace {

std::string ms_or_empty(const std::optional<Time>& t) {
  return t ? std::to_string(to_millis(*t)) : std::string();
}

}  // namespace

bool export_csv(const std::string& path,
                const std::function<void(std::ostream&)>& writer) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  writer(f);
  return static_cast<bool>(f);
}

void write_timeseries_csv(std::ostream& os, const ThroughputRecorder& recorder) {
  os << "second,bytes\n";
  const double width = to_seconds(recorder.bin_width());
  const auto& bins = recorder.raw_bins();
  for (std::size_t i = 0; i < bins.size(); ++i) {
    os << i * width << ',' << bins[i] << '\n';
  }
}

bool write_timeseries_csv(const std::string& path,
                          const ThroughputRecorder& recorder) {
  return export_csv(path,
                    [&](std::ostream& os) { write_timeseries_csv(os, recorder); });
}

void write_join_log_csv(std::ostream& os,
                        const std::vector<core::JoinRecord>& log) {
  os << "start_s,channel,bssid,outcome,assoc_ms,dhcp_ms,e2e_ms,used_cache\n";
  for (const auto& rec : log) {
    os << to_seconds(rec.started) << ',' << rec.channel << ','
       << rec.bssid.to_string() << ',' << core::to_string(rec.outcome) << ','
       << ms_or_empty(rec.assoc_delay) << ',' << ms_or_empty(rec.dhcp_delay)
       << ',' << ms_or_empty(rec.e2e_delay) << ','
       << (rec.used_lease_cache ? 1 : 0) << '\n';
  }
}

bool write_join_log_csv(const std::string& path,
                        const std::vector<core::JoinRecord>& log) {
  return export_csv(path,
                    [&](std::ostream& os) { write_join_log_csv(os, log); });
}

void write_cdf_csv(std::ostream& os, const Cdf& cdf, const std::string& x_label) {
  os << x_label << ",cdf\n";
  cdf.finalize();
  const auto& samples = cdf.samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Skip duplicates: emit each distinct x once, with its final F(x).
    if (i + 1 < samples.size() && samples[i + 1] == samples[i]) continue;
    os << samples[i] << ','
       << static_cast<double>(i + 1) / static_cast<double>(samples.size())
       << '\n';
  }
}

bool write_cdf_csv(const std::string& path, const Cdf& cdf,
                   const std::string& x_label) {
  return export_csv(path,
                    [&](std::ostream& os) { write_cdf_csv(os, cdf, x_label); });
}

void write_resilience_csv(std::ostream& os,
                          const ResilienceRecorder& recorder) {
  os << "metric,value\n";
  os << "faults_injected," << recorder.faults_injected() << '\n';
  os << "outages," << recorder.outages() << '\n';
  os << "recoveries," << recorder.recoveries() << '\n';
  const Cdf& ttr = recorder.time_to_recover();
  if (ttr.empty()) return;
  os << "ttr_p50_s," << ttr.quantile(0.5) << '\n';
  os << "ttr_p90_s," << ttr.quantile(0.9) << '\n';
  os << "ttr_p99_s," << ttr.quantile(0.99) << '\n';
  os << "ttr_max_s," << ttr.quantile(1.0) << '\n';
}

bool write_resilience_csv(const std::string& path,
                          const ResilienceRecorder& recorder) {
  return export_csv(
      path, [&](std::ostream& os) { write_resilience_csv(os, recorder); });
}

void write_resilience_summary_csv(std::ostream& os,
                                  const std::vector<ScenarioResult>& results) {
  os << "run,faults_injected,outages,recoveries,ttr_p50_s,ttr_p90_s,"
        "ttr_max_s\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    os << i << ',' << r.faults_injected << ',' << r.outages << ','
       << r.recoveries << ',';
    const Cdf& ttr = r.recovery_times;
    if (!ttr.empty()) {
      os << ttr.quantile(0.5) << ',' << ttr.quantile(0.9) << ','
         << ttr.quantile(1.0);
    } else {
      os << ",,";
    }
    os << '\n';
  }
}

bool write_resilience_summary_csv(const std::string& path,
                                  const std::vector<ScenarioResult>& results) {
  return export_csv(path, [&](std::ostream& os) {
    write_resilience_summary_csv(os, results);
  });
}

void write_perf_csv(std::ostream& os,
                    const std::vector<ScenarioResult>& results) {
  os << "run,shards,events_popped,events_cancelled,heap_peak,compactions,"
        "handles_allocated,callbacks_heap,frames_tx,frames_fanout,"
        "radio_candidates,grid_cells_scanned,grid_rebuckets,"
        "sim_s,wall_s,sim_per_wall\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const sim::PerfCounters& p = results[i].perf;
    // Sharded runs stamp their formation width into the metrics registry;
    // serial runs carry no entry and report width 1. Counter columns hold
    // exact per-shard sums either way (PerfCounters::merge_shard).
    const double width = results[i].metrics.value("shard.width");
    os << i << ',' << (width > 0.0 ? static_cast<int>(width) : 1) << ','
       << p.events_popped << ',' << p.events_cancelled << ','
       << p.heap_peak << ',' << p.compactions << ',' << p.handles_allocated
       << ',' << p.callbacks_heap << ',' << p.frames_tx << ','
       << p.frames_fanout << ',' << p.radio_candidates << ','
       << p.grid_cells_scanned << ',' << p.grid_rebuckets << ','
       << p.sim_seconds << ',' << p.wall_seconds << ',' << p.sim_rate()
       << '\n';
  }
}

bool write_perf_csv(const std::string& path,
                    const std::vector<ScenarioResult>& results) {
  return export_csv(path,
                    [&](std::ostream& os) { write_perf_csv(os, results); });
}

void write_trace_jsonl(std::ostream& os,
                       const std::vector<ScenarioResult>& results) {
  std::size_t run = 0;
  for (const ScenarioResult& result : results) {
    for (const auto& tracer : result.traces) {
      obs::write_jsonl(os, *tracer, run++);
    }
  }
}

bool write_trace_jsonl(const std::string& path,
                       const std::vector<ScenarioResult>& results) {
  return export_csv(path,
                    [&](std::ostream& os) { write_trace_jsonl(os, results); });
}

void write_trace_chrome(std::ostream& os,
                        const std::vector<ScenarioResult>& results) {
  obs::ChromeTraceWriter writer(os);
  std::size_t run = 0;
  for (const ScenarioResult& result : results) {
    for (const auto& tracer : result.traces) {
      writer.add_run(*tracer, run++);
    }
  }
  writer.finish();
}

bool write_trace_chrome(const std::string& path,
                        const std::vector<ScenarioResult>& results) {
  return export_csv(path,
                    [&](std::ostream& os) { write_trace_chrome(os, results); });
}

void write_metrics_csv(std::ostream& os,
                       const std::vector<ScenarioResult>& results) {
  obs::MetricsRegistry merged;
  for (const ScenarioResult& result : results) merged.merge(result.metrics);
  obs::write_metrics_csv(os, merged);
}

bool write_metrics_csv(const std::string& path,
                       const std::vector<ScenarioResult>& results) {
  return export_csv(path,
                    [&](std::ostream& os) { write_metrics_csv(os, results); });
}

}  // namespace spider::trace
