#include "trace/webflows.hpp"

#include <algorithm>
#include <cmath>

namespace spider::trace {

WebFlowHarness::WebFlowHarness(sim::Simulator& simulator, wire::Ipv4 server_ip,
                               WebFlowConfig config, Rng rng)
    : sim_(simulator), server_ip_(server_ip), config_(config), rng_(rng) {}

void WebFlowHarness::attach(core::LinkManager& manager) {
  manager.set_callbacks({
      .on_link_up = [this](core::VirtualInterface& vif) { link_up(vif); },
      .on_link_down = [this](core::VirtualInterface& vif) { link_down(vif); },
  });
}

std::size_t WebFlowHarness::draw_size() {
  const double bytes =
      std::min(config_.size_cap_bytes,
               rng_.lognormal(std::log(config_.size_median_bytes),
                              config_.size_sigma));
  return static_cast<std::size_t>(std::max(1.0, bytes));
}

void WebFlowHarness::link_up(core::VirtualInterface& vif) {
  up_.push_back(&vif);
  maybe_start_flow();
}

void WebFlowHarness::link_down(core::VirtualInterface& vif) {
  up_.erase(std::remove(up_.begin(), up_.end(), &vif), up_.end());
  if (current_vif_ == &vif) {
    // Fetch dies with the link: record the abort, remember the size so the
    // "reload" fetches the same object.
    log_.back().completed = false;
    pending_size_ = log_.back().size_bytes;
    vif.set_app_handler(nullptr);
    current_.reset();
    current_vif_ = nullptr;
    maybe_start_flow();
  }
}

void WebFlowHarness::maybe_start_flow() {
  if (current_ || thinking_ || up_.empty()) return;
  start_flow(*up_.front());
}

void WebFlowHarness::start_flow(core::VirtualInterface& vif) {
  FlowRecord rec;
  rec.size_bytes = pending_size_ ? *pending_size_ : draw_size();
  pending_size_.reset();
  rec.started = sim_.now();
  log_.push_back(rec);

  current_vif_ = &vif;
  current_ = std::make_unique<tcp::DownloadClient>(
      sim_, sim_.allocate_id(), vif.ip(), server_ip_,
      [&vif](wire::PacketPtr p) { vif.send_packet(std::move(p)); },
      /*progress=*/nullptr);
  current_->set_byte_limit(log_.back().size_bytes, [this] { flow_completed(); });
  vif.set_app_handler(
      [c = current_.get()](const wire::Packet& p) { c->on_packet(p); });
  current_->start();
}

void WebFlowHarness::flow_completed() {
  log_.back().completed = true;
  log_.back().finished = sim_.now();
  if (current_vif_) current_vif_->set_app_handler(nullptr);
  current_vif_ = nullptr;
  // Destroying the client inside its own callback stack would free the
  // object mid-call; defer to the next event.
  sim_.post(Time{0}, [dead = std::shared_ptr<tcp::DownloadClient>(
                          current_.release())]() mutable { dead.reset(); });

  thinking_ = true;
  const Time think = sec(rng_.exponential(to_seconds(config_.think_mean)));
  think_timer_ = sim_.schedule(think, [this] {
    thinking_ = false;
    maybe_start_flow();
  });
}

WebFlowHarness::Summary WebFlowHarness::summarize() {
  Summary s;
  for (const auto& rec : log_) {
    // A fetch still in flight at the end of the run is neither completed
    // nor aborted; skip it.
    if (!rec.completed && rec.finished == Time{0} && &rec == &log_.back() &&
        current_) {
      continue;
    }
    ++s.attempted;
    if (rec.completed) {
      ++s.completed;
      s.completion_times_s.add(to_seconds(rec.finished - rec.started));
    } else {
      ++s.aborted;
    }
  }
  s.completion_rate =
      s.attempted == 0 ? 0.0
                       : static_cast<double>(s.completed) / s.attempted;
  s.completion_times_s.finalize();
  s.median_completion_s =
      s.completion_times_s.empty() ? 0.0 : s.completion_times_s.median();
  return s;
}

}  // namespace spider::trace
