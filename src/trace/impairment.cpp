#include "trace/impairment.hpp"

namespace spider::trace {

const char* ImpairmentSource::field_name() const {
  switch (kind) {
    case Kind::kSynthetic: return "impairments.schedule";
    case Kind::kTraceFile: return "impairments.trace_path";
    case Kind::kInlineTimeline: return "impairments.timeline";
  }
  return "impairments";
}

const char* ImpairmentSource::kind_name() const {
  switch (kind) {
    case Kind::kSynthetic: return "synthetic";
    case Kind::kTraceFile: return "trace-file";
    case Kind::kInlineTimeline: return "inline-timeline";
  }
  return "?";
}

bool impairment_kind_from_string(const std::string& name,
                                 ImpairmentSource::Kind* out) {
  if (name == "synthetic") *out = ImpairmentSource::Kind::kSynthetic;
  else if (name == "trace-file") *out = ImpairmentSource::Kind::kTraceFile;
  else if (name == "inline-timeline") {
    *out = ImpairmentSource::Kind::kInlineTimeline;
  } else {
    return false;
  }
  return true;
}

std::optional<fault::FaultSchedule> ImpairmentSource::resolve(
    std::string* error) const {
  switch (kind) {
    case Kind::kSynthetic:
      return schedule;
    case Kind::kTraceFile: {
      if (trace_path.empty()) {
        if (error != nullptr) *error = "trace file path is empty";
        return std::nullopt;
      }
      if (const auto problem = replay.check()) {
        if (error != nullptr) *error = *problem;
        return std::nullopt;
      }
      const std::optional<tracein::OccupancyTimeline> ingested =
          tracein::ingest_file(trace_path, error);
      if (!ingested) return std::nullopt;
      return tracein::compile_schedule(*ingested, replay);
    }
    case Kind::kInlineTimeline: {
      if (const auto problem = replay.check()) {
        if (error != nullptr) *error = *problem;
        return std::nullopt;
      }
      if (const auto problem = timeline.check()) {
        if (error != nullptr) *error = *problem;
        return std::nullopt;
      }
      return tracein::compile_schedule(timeline, replay);
    }
  }
  if (error != nullptr) *error = "unknown impairment kind";
  return std::nullopt;
}

}  // namespace spider::trace
