#include "trace/voip.hpp"

namespace spider::trace {

VoipHarness::VoipHarness(sim::Simulator& simulator, wire::Ipv4 server_ip,
                         tcp::CbrConfig config)
    : sim_(simulator), server_ip_(server_ip), config_(config) {}

void VoipHarness::attach(core::LinkManager& manager) {
  manager.set_callbacks({
      .on_link_up = [this](core::VirtualInterface& vif) { link_up(vif); },
      .on_link_down = [this](core::VirtualInterface& vif) { link_down(vif); },
  });
}

void VoipHarness::link_up(core::VirtualInterface& vif) {
  ActiveCall call;
  const auto flow = static_cast<std::uint32_t>(sim_.allocate_id());
  call.started = sim_.now();
  call.sink = std::make_unique<tcp::CbrSink>(sim_, flow);

  vif.set_app_handler([this, sink = call.sink.get()](const wire::Packet& p) {
    sink->on_packet(p);
    if (p.as<wire::CbrDatagram>()) {
      const auto bin = static_cast<std::size_t>(sim_.now().count() / 1'000'000);
      if (per_second_packets_.size() <= bin) {
        per_second_packets_.resize(bin + 1, 0);
      }
      ++per_second_packets_[bin];
    }
  });

  // Subscribe immediately and keep the subscription warm; the server
  // streams toward the interface's current address.
  auto subscribe = [this, &vif, flow] {
    wire::CbrDatagram d;
    d.flow_id = flow;
    d.subscribe = true;
    d.payload_bytes = 16;
    vif.send_packet(wire::make_cbr_packet(vif.ip(), server_ip_, d));
  };
  subscribe();
  call.subscribe_timer =
      std::make_unique<sim::PeriodicTimer>(sim_, sec(2), subscribe);
  call.subscribe_timer->start();

  active_[&vif] = std::move(call);
}

void VoipHarness::finish_call(core::VirtualInterface& vif, ActiveCall& call) {
  CallRecord rec;
  rec.started = call.started;
  rec.ended = sim_.now();
  rec.packets = call.sink->received();
  rec.delivery_ratio = call.sink->delivery_ratio();
  rec.mean_delay_s = call.sink->delay_stats().mean();
  rec.jitter_s = call.sink->jitter_s();
  rec.longest_gap = call.sink->longest_gap();
  finished_.push_back(rec);
  vif.set_app_handler(nullptr);
}

void VoipHarness::link_down(core::VirtualInterface& vif) {
  auto it = active_.find(&vif);
  if (it == active_.end()) return;
  finish_call(vif, it->second);
  active_.erase(it);
}

VoipHarness::Summary VoipHarness::summarize(Time duration,
                                            double voice_ok_fraction) {
  // Close out still-active calls without tearing down the links.
  for (auto& [vif, call] : active_) {
    finish_call(*const_cast<core::VirtualInterface*>(vif), call);
  }
  active_.clear();

  Summary s;
  s.calls = finished_.size();
  double expected_total = 0.0, delivered_total = 0.0;
  OnlineStats delay, jitter;
  for (const auto& rec : finished_) {
    s.packets_received += rec.packets;
    if (rec.delivery_ratio > 0.0) {
      const double expected = rec.packets / rec.delivery_ratio;
      expected_total += expected;
      delivered_total += rec.packets;
    }
    if (rec.packets > 0) {
      delay.add(rec.mean_delay_s);
      jitter.add(rec.jitter_s);
    }
    s.longest_gap = std::max(s.longest_gap, rec.longest_gap);
  }
  s.mean_delivery_ratio =
      expected_total > 0.0 ? delivered_total / expected_total : 0.0;
  s.mean_delay_s = delay.mean();
  s.mean_jitter_s = jitter.mean();

  const auto seconds = static_cast<std::size_t>(duration.count() / 1'000'000);
  per_second_packets_.resize(std::max(per_second_packets_.size(), seconds), 0);
  const double nominal =
      1.0 / to_seconds(config_.packet_interval);  // packets per second
  std::size_t ok = 0;
  for (std::size_t i = 0; i < seconds; ++i) {
    if (per_second_packets_[i] >= voice_ok_fraction * nominal) ++ok;
  }
  s.voice_availability =
      seconds == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(seconds);
  return s;
}

}  // namespace spider::trace
