#include "trace/sweep.hpp"

#include "util/thread_pool.hpp"

namespace spider::trace {

SweepRunner::SweepRunner(SweepOptions options)
    : jobs_(options.jobs != 0 ? options.jobs : util::ThreadPool::default_jobs()) {}

std::vector<ScenarioResult> SweepRunner::run(
    const std::vector<ScenarioConfig>& configs) const {
  return util::parallel_map(jobs_, configs.size(), [&configs](std::size_t i) {
    return run_scenario(configs[i]);
  });
}

std::vector<ScenarioResult> SweepRunner::run_averaged(
    const std::vector<ScenarioConfig>& configs, int runs) const {
  if (runs < 1) runs = 1;
  // Flatten to (config, repetition) pairs so repetitions of different
  // configs overlap on the pool instead of serialising per config.
  std::vector<ScenarioConfig> expanded;
  expanded.reserve(configs.size() * static_cast<std::size_t>(runs));
  for (const ScenarioConfig& config : configs) {
    for (int r = 0; r < runs; ++r) {
      expanded.push_back(config);
      expanded.back().seed = config.seed + static_cast<std::uint64_t>(r);
    }
  }
  const std::vector<ScenarioResult> flat = run(expanded);

  std::vector<ScenarioResult> pooled;
  pooled.reserve(configs.size());
  for (std::size_t g = 0; g < configs.size(); ++g) {
    const auto first = flat.begin() + static_cast<std::ptrdiff_t>(g * runs);
    pooled.push_back(pool_results(std::vector<ScenarioResult>(
        first, first + static_cast<std::ptrdiff_t>(runs))));
  }
  return pooled;
}

}  // namespace spider::trace
