#include "trace/sweep.hpp"

#include "util/thread_pool.hpp"

namespace spider::trace {

SweepRunner::SweepRunner(SweepOptions options) {
  options_.jobs = options.jobs != 0 ? options.jobs
                                    : util::ThreadPool::default_jobs();
  options_.tracing = options.tracing;
  options_.tracer = options.tracer;
  options_.sinks = options.sinks;
  options_.cancel = options.cancel;
}

std::vector<ScenarioResult> SweepRunner::run(
    const std::vector<ScenarioConfig>& configs) const {
  return ScenarioRunner(options_).run_many(configs);
}

std::vector<ScenarioResult> SweepRunner::run_averaged(
    const std::vector<ScenarioConfig>& configs, int runs) const {
  RunnerOptions options = options_;
  options.repetitions = runs;
  return ScenarioRunner(options).run_many_averaged(configs);
}

}  // namespace spider::trace
