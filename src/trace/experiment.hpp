#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "baseline/fatvap.hpp"
#include "baseline/stock_wifi.hpp"
#include "core/config.hpp"
#include "core/adaptive.hpp"
#include "core/link_manager.hpp"
#include "fault/fault.hpp"
#include "mobility/deployment.hpp"
#include "trace/client_profile.hpp"
#include "trace/impairment.hpp"
#include "net/dhcp_server.hpp"
#include "obs/metrics.hpp"
#include "sim/cancel.hpp"
#include "sim/perf.hpp"
#include "trace/error.hpp"
#include "trace/testbed.hpp"
#include "util/stats.hpp"

namespace spider::obs {
class Tracer;
}  // namespace spider::obs

namespace spider::trace {

enum class DriverKind { kSpider, kStock, kFatVap };
const char* to_string(DriverKind k);

/// A full outdoor drive: the §4.1 vehicular experiment. One client drives
/// back and forth along a road lined with generated open APs, downloading
/// through every live connection. Everything the evaluation section varies
/// is a field here.
struct ScenarioConfig {
  std::uint64_t seed = 1;
  Time duration = sec(1800);
  double speed_mps = 10.0;
  /// Independent vehicles sharing the medium and AP population. Along the
  /// road they start evenly staggered on the same loop; in a city each
  /// draws its own block tour. Every client runs its own driver stack and
  /// download harness; result fields pool across clients (join logs
  /// concatenate in client order, switches sum, latency stats merge).
  /// Ignored when `client_mix` is non-empty — the mix then defines both
  /// the population size and each client's behaviour profile.
  int clients = 1;
  /// Heterogeneous population: ordered (profile, count) slices expanded
  /// mix-order-major at rig assembly (see ClientProfile). Empty keeps the
  /// homogeneous `clients`-sized rig, byte-identical to pre-mix builds.
  ClientMix client_mix;

  /// Client count this config actually runs: the mix's total when one is
  /// given, `clients` otherwise (always >= 1).
  int resolved_clients() const;

  mob::DeploymentConfig deployment;
  /// When set, the AP population and client routes come from a 2-D city
  /// street mesh (mob::generate_city_deployment) instead of the single
  /// road. `deployment` is then ignored; `fixed_sites` still wins.
  std::optional<mob::CityGridConfig> city;
  /// When non-empty, replay these sites instead of generating a deployment
  /// (e.g. loaded from a wardriving CSV via mob::read_sites_csv_file).
  std::vector<mob::ApSite> fixed_sites;
  phy::PropagationConfig propagation;
  /// Medium neighbor search: the spatial grid by default; brute force is
  /// the differential-test oracle; kAuto picks grid or brute per transmit
  /// from the channel's cohort density (results are byte-identical in all
  /// three modes — the choice is purely a cost decision).
  phy::NeighborIndex neighbor_index = phy::NeighborIndex::kGrid;
  /// Explicit grid cell edge in meters (0 derives it from the propagation
  /// range). Non-zero values below the range are a config error — the
  /// medium would silently clamp them — and are rejected by validate().
  double grid_cell_m = 0.0;
  net::DhcpServerConfig dhcp_server;
  Time backhaul_delay = msec(10);

  /// Intra-run parallelism (DESIGN.md §12): partition this one run's
  /// radios across `shards` event loops synchronized conservatively by
  /// channel/stripe ownership. 1 (default) is the plain serial engine,
  /// byte-identical to every pre-shard build; 0 resolves automatically
  /// from the workload (machine-independent, so results stay reproducible
  /// across hosts); >1 forces a formation of that width. Sharded results
  /// are deterministic per (config, seed, shards) but not byte-identical
  /// across different shard counts. Impairment sources (synthetic or
  /// trace-backed) run at any width: the schedule compiles into per-shard
  /// sub-schedules at partition time (DESIGN.md §12, fault routing across
  /// shards), with resilience counters exact-summing back to the serial
  /// injector's.
  int shards = 1;

  DriverKind driver = DriverKind::kSpider;
  core::SpiderConfig spider;     ///< stack for Spider and FatVAP
  base::StockConfig stock;
  base::FatVapConfig fatvap;
  /// Spider only: enable the §4.8 speed-adaptive mode controller (the
  /// scenario's constant speed feeds it; the initial mode comes from
  /// `spider.mode`).
  bool adaptive = false;
  core::AdaptiveConfig adaptive_config;

  /// What impairs this run: a synthetic fault timeline, a recorded
  /// channel-occupancy trace file, or an inline timeline (see
  /// ImpairmentSource). The resolved schedule is replayed against the
  /// assembled APs and medium (a "none" source = no injector,
  /// byte-identical to pre-fault runs). FaultSpec targets index into the
  /// scenario's AP list (mod its size).
  ImpairmentSource impairments;

  Time metrics_bin = sec(1);

  /// Structural sanity check, run before any simulator state is built:
  /// non-positive durations/rates/counts, a grid cell below the
  /// propagation range, malformed city geometry, degenerate channel mixes.
  /// Empty result means the config is runnable; callers that cannot
  /// continue (benches, the scenario server) surface the issues as an
  /// RunErrorKind::kInvalidConfig instead of asserting mid-run.
  std::vector<ConfigIssue> validate() const;
};

/// Everything the evaluation section reports about one run.
struct ScenarioResult {
  double avg_throughput_kBps = 0.0;
  double connectivity = 0.0;
  Cdf connection_durations;
  Cdf disruption_durations;
  Cdf instantaneous_kBps;
  std::vector<core::JoinRecord> join_log;
  std::uint64_t switches = 0;
  OnlineStats switch_latency_ms;
  std::uint64_t total_bytes = 0;

  // Join-log digests.
  std::size_t joins_attempted = 0;
  std::size_t assoc_succeeded = 0;
  std::size_t dhcp_succeeded = 0;
  std::size_t e2e_succeeded = 0;
  double dhcp_failure_fraction() const;  ///< of attempts that associated

  // Resilience digests (all zero when the scenario injected no faults).
  std::uint64_t faults_injected = 0;
  std::uint64_t outages = 0;
  std::uint64_t recoveries = 0;
  Cdf recovery_times;  ///< seconds, one sample per recovered outage

  /// False when the run was interrupted by a cancel/deadline token (the
  /// result then holds whatever was harvested at the interruption point —
  /// partial output, flushed, never silently discarded). Pooled results
  /// are complete only when every constituent run completed.
  bool completed = true;

  /// Engine counters for the run (events popped/cancelled, heap peak,
  /// wall-clock, sim rate). Wall-clock fields are host-dependent and never
  /// appear in deterministic bench output; see write_perf_csv.
  sim::PerfCounters perf;

  /// Derived per-layer counters from the flight recorder (empty unless the
  /// run was traced). Pooled results merge these: counters sum, gauges max.
  obs::MetricsRegistry metrics;
  /// The raw flight recorders, one per traced run, in seed order. Pooled
  /// results concatenate them so sinks can render every repetition.
  std::vector<std::shared_ptr<const obs::Tracer>> traces;
};

namespace detail {
/// The single scenario kernel every entrypoint funnels into: assembles the
/// testbed, installs `tracer` on the simulator when given, runs, harvests.
/// When `cancel` is non-null the simulator polls it (DESIGN.md §11): a
/// tripped token interrupts the run and the partial result comes back with
/// `completed == false`. Completed runs are byte-identical with or without
/// a token installed.
ScenarioResult execute_scenario(const ScenarioConfig& config,
                                std::shared_ptr<obs::Tracer> tracer,
                                sim::CancelToken* cancel = nullptr);

/// Shard count a config actually runs with: `shards` verbatim when >= 1,
/// the workload-derived automatic choice when 0. Pure function of the
/// config (never of the host), so auto-sharded results are reproducible
/// across machines. ScenarioRunner divides its --jobs budget by the
/// resolved width so a campaign of sharded runs never oversubscribes.
int resolve_shards(const ScenarioConfig& config);

/// The sharded twin of execute_scenario (experiment_sharded.cpp): one
/// testbed per shard, APs on their stripe owners, clients homed round-robin
/// with proxy presences on their channel owners, all advanced in lockstep
/// by sim::ShardedSimulator. Dispatched to by execute_scenario when
/// resolve_shards > 1.
ScenarioResult execute_scenario_sharded(const ScenarioConfig& config,
                                        int shards,
                                        std::shared_ptr<obs::Tracer> tracer,
                                        sim::CancelToken* cancel);

/// Fills the join-log digests (attempted/assoc/dhcp/e2e) from result.join_log.
void digest_join_log(ScenarioResult& result);
}  // namespace detail

/// One untraced run. Forwarder over ScenarioRunner (trace/runner.hpp),
/// which adds repetitions, worker pools, and observer sinks.
ScenarioResult run_scenario(const ScenarioConfig& config);

/// Merges per-seed repetitions into one pooled result: scalar metrics are
/// averaged, counts summed, join logs and CDF samples concatenated in
/// order, perf counters and trace metrics merged. Shared by every averaged
/// entrypoint so serial and parallel sweeps agree to the byte.
ScenarioResult pool_results(const std::vector<ScenarioResult>& runs);

/// Averages `runs` seeded repetitions (seed, seed+1, ...) of the scalar
/// metrics and pools the join logs/CDF samples. Forwarder over
/// ScenarioRunner{repetitions = runs}.
ScenarioResult run_scenario_averaged(ScenarioConfig config, int runs);

}  // namespace spider::trace
