#pragma once

#include <optional>
#include <string>
#include <utility>

#include "fault/fault.hpp"
#include "tracein/occupancy.hpp"
#include "tracein/replay.hpp"

namespace spider::trace {

/// The one declarative answer to "what impairs this run?". Before this
/// existed the fault schedule, the (planned) trace path, and their knobs
/// were scattered ad-hoc fields; every consumer (validate, the serial and
/// sharded engines, the serve protocol, spider_campaign, benches) now
/// reads this single source, so a recorded occupancy trace is a
/// first-class scenario input everywhere a synthetic schedule is.
///
/// Three kinds:
///   kSynthetic       a hand-built fault::FaultSchedule (the historical
///                    path; an empty schedule means "no impairments")
///   kTraceFile       a CSV/JSONL channel-occupancy recording on disk,
///                    ingested and compiled at run start
///   kInlineTimeline  an in-memory tracein::OccupancyTimeline (tests,
///                    wire-transported recordings)
///
/// Trace-backed kinds compile through tracein::compile_schedule under
/// `replay`, so replayed runs reuse the fault injector and resilience
/// metrics unchanged, and the determinism contract is inherited: the same
/// trace file + seed is byte-identical across --jobs and across
/// re-ingests of the same file.
struct ImpairmentSource {
  enum class Kind { kSynthetic, kTraceFile, kInlineTimeline };

  Kind kind = Kind::kSynthetic;
  /// kSynthetic's timeline. Default-constructed sources are synthetic and
  /// empty, so `config.impairments.schedule.ap_blackout(...)` keeps the
  /// old builder ergonomics.
  fault::FaultSchedule schedule;
  std::string trace_path;                ///< kTraceFile
  tracein::OccupancyTimeline timeline;   ///< kInlineTimeline
  /// Occupancy -> impairment compilation knobs (trace-backed kinds only).
  tracein::ReplayOptions replay;

  static ImpairmentSource synthetic(fault::FaultSchedule s) {
    ImpairmentSource out;
    out.kind = Kind::kSynthetic;
    out.schedule = std::move(s);
    return out;
  }
  static ImpairmentSource trace_file(std::string path,
                                     tracein::ReplayOptions options = {}) {
    ImpairmentSource out;
    out.kind = Kind::kTraceFile;
    out.trace_path = std::move(path);
    out.replay = options;
    return out;
  }
  static ImpairmentSource inline_timeline(tracein::OccupancyTimeline t,
                                          tracein::ReplayOptions options = {}) {
    ImpairmentSource out;
    out.kind = Kind::kInlineTimeline;
    out.timeline = std::move(t);
    out.replay = options;
    return out;
  }

  /// True when this source can impair nothing: a synthetic empty schedule
  /// or an inline empty timeline. A trace file is never "none" without
  /// ingesting it, so it always counts as impairing (armed through the
  /// injector — serial, or routed per shard in a formation).
  bool none() const {
    switch (kind) {
      case Kind::kSynthetic: return schedule.empty();
      case Kind::kTraceFile: return false;
      case Kind::kInlineTimeline: return timeline.empty();
    }
    return true;
  }

  /// The validate()/protocol field this source's problems are reported
  /// against: "impairments.schedule", "impairments.trace_path", or
  /// "impairments.timeline".
  const char* field_name() const;
  /// Wire name: "synthetic" | "trace-file" | "inline-timeline".
  const char* kind_name() const;

  /// Resolves to the schedule the injector arms. kSynthetic returns the
  /// schedule verbatim; trace-backed kinds ingest (kTraceFile) and
  /// compile. Failure (unreadable file, malformed rows with their line
  /// numbers, bad inline timeline) lands in `error`; callers that ran
  /// validate() first never see one.
  std::optional<fault::FaultSchedule> resolve(std::string* error) const;
};

bool impairment_kind_from_string(const std::string& name,
                                 ImpairmentSource::Kind* out);

}  // namespace spider::trace
