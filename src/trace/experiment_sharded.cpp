#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/spider_driver.hpp"
#include "fault/fault.hpp"
#include "mobility/mobility.hpp"
#include "obs/tracer.hpp"
#include "phy/shard_fabric.hpp"
#include "phy/shard_link.hpp"
#include "sim/sharded.hpp"
#include "trace/experiment.hpp"

namespace spider::trace::detail {

namespace {

/// Per-shard testbed seed: a splitmix-style scramble of (seed, shard) so
/// sibling shards draw independent streams while staying a pure function
/// of the scenario seed.
std::uint64_t shard_seed(std::uint64_t seed, int shard) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull *
                               (static_cast<std::uint64_t>(shard) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

int resolve_shards(const ScenarioConfig& config) {
  if (config.shards != 0) return std::max(1, config.shards);
  // Automatic width, decided purely from the workload (never from the
  // host) so every machine resolves — and reproduces — the same formation.
  // Only city-scale populations amortise the window barriers. Impairment
  // sources no longer pin the run to the serial engine: schedules compile
  // into per-shard sub-schedules at partition time (DESIGN.md §12).
  const bool city_scale =
      config.city.has_value() && config.resolved_clients() >= 16;
  return city_scale ? 4 : 1;
}

ScenarioResult execute_scenario_sharded(const ScenarioConfig& config,
                                        int shards,
                                        std::shared_ptr<obs::Tracer> tracer,
                                        sim::CancelToken* cancel) {
  const auto wall_start = std::chrono::steady_clock::now();
  const int S = std::max(2, shards);

  // Impairment timeline, resolved exactly as the serial engine does it
  // (same throw-on-error contract for direct callers that skipped
  // validate()). Routing happens later, once stripe ownership exists.
  fault::FaultSchedule faults;
  if (!config.impairments.none()) {
    std::string error;
    std::optional<fault::FaultSchedule> resolved =
        config.impairments.resolve(&error);
    if (!resolved) {
      throw std::runtime_error(std::string(config.impairments.field_name()) +
                               ": " + error);
    }
    faults = std::move(*resolved);
  }

  // The physical world (AP sites, client routes) comes from a master RNG
  // forked in exactly the serial order — deployment first, then one route
  // fork per city client — so a sharded run drives the serial run's world.
  Rng master(config.seed);
  Rng deploy_rng = master.fork();
  const auto sites =
      !config.fixed_sites.empty()
          ? config.fixed_sites
          : config.city
              ? mob::generate_city_deployment(*config.city, deploy_rng)
              : mob::generate_deployment(config.deployment, deploy_rng);

  // Channel/stripe ownership from the AP population.
  std::vector<std::pair<wire::Channel, double>> ap_xs;
  ap_xs.reserve(sites.size());
  for (const auto& site : sites) {
    ap_xs.push_back({site.channel, site.position.x});
  }
  phy::ShardPartition partition =
      phy::build_shard_partition(ap_xs, S, config.propagation.range_m);

  // One testbed per shard: its own simulator, medium, wired core and
  // download server. Event ids are seeded into disjoint per-shard spaces —
  // TCP connection ids travel across shards inside packets, so two home
  // shards must never mint the same id.
  std::vector<std::unique_ptr<Testbed>> beds;
  std::vector<phy::Medium*> mediums;
  std::vector<sim::Simulator*> sims;
  beds.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    TestbedConfig tb_config;
    tb_config.seed = shard_seed(config.seed, s);
    tb_config.propagation = config.propagation;
    tb_config.medium.neighbor_index = config.neighbor_index;
    tb_config.medium.grid_cell_m = config.grid_cell_m;
    beds.push_back(std::make_unique<Testbed>(tb_config));
    beds.back()->sim.seed_ids(static_cast<std::uint64_t>(s) << 48);
    mediums.push_back(&beds.back()->medium);
    sims.push_back(&beds.back()->sim);
  }
  // One flight recorder cannot span event loops; shard 0's timeline is
  // traced (metrics counters below still aggregate every medium).
  if (tracer) beds[0]->sim.set_tracer(tracer.get());

  sim::ShardedSimulator bus(sims, phy::kShardLookahead);
  phy::ShardFabric fabric(bus, mediums, std::move(partition),
                          [](wire::MacAddress mac) {
                            return mac.raw() >= Testbed::kClientMacBase;
                          });

  // APs go to their stripe owners, carrying their deployment-global index
  // so BSSIDs and subnets match the serial assembly. The owner/local-index
  // maps feed fault routing: an entity-scoped fault addressed to global AP
  // g must land on g's owner shard, re-targeted to g's position in that
  // shard's injector registration order.
  std::vector<int> ap_owner_shard(sites.size(), 0);
  std::vector<int> ap_local_index(sites.size(), 0);
  std::vector<int> ap_count(static_cast<std::size_t>(S), 0);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto& site = sites[i];
    Testbed::ApSpec spec;
    spec.channel = site.channel;
    spec.position = site.position;
    spec.backhaul = site.backhaul;
    spec.backhaul_delay = config.backhaul_delay;
    spec.internet_connected = site.internet_connected;
    spec.dhcp = config.dhcp_server;
    spec.index = i;
    const int owner =
        fabric.partition().owner(site.channel, site.position.x);
    beds[static_cast<std::size_t>(owner)]->add_ap(spec);
    ap_owner_shard[i] = owner;
    ap_local_index[i] = ap_count[static_cast<std::size_t>(owner)]++;
  }

  struct ClientRig {
    std::unique_ptr<mob::MobilityModel> route;
    Time offset{0};
    std::unique_ptr<core::SpiderDriver> spider;
    std::unique_ptr<base::StockWifiDriver> stock;
    std::unique_ptr<base::FatVapDriver> fatvap;
    std::unique_ptr<core::LinkManager> manager;
    std::unique_ptr<core::AdaptiveModeController> adaptive;
  };
  const int clients = config.resolved_clients();
  const std::vector<ClientProfile> profiles =
      expand_client_mix(config.client_mix, clients);
  std::vector<ClientRig> rigs(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    ClientRig& rig = rigs[static_cast<std::size_t>(c)];
    if (config.city) {
      Rng route_rng = master.fork();
      rig.route = std::make_unique<mob::WaypointLoop>(
          mob::city_route_waypoints(*config.city, route_rng),
          config.speed_mps);
    } else {
      rig.route = std::make_unique<mob::BackAndForthRoad>(
          config.deployment.road_length_m, config.speed_mps);
      if (config.speed_mps > 0.0) {
        rig.offset = sec(config.deployment.road_length_m * c /
                         (clients * config.speed_mps));
      }
    }
  }

  // Goodput timelines are per shard — each recorder is fed only from its
  // own event loop — and merge bin-by-bin after the run.
  std::vector<std::unique_ptr<ThroughputRecorder>> recorders;
  std::vector<std::unique_ptr<DownloadHarness>> harnesses;
  for (int s = 0; s < S; ++s) {
    Testbed& bed = *beds[static_cast<std::size_t>(s)];
    recorders.push_back(
        std::make_unique<ThroughputRecorder>(config.metrics_bin));
    harnesses.push_back(std::make_unique<DownloadHarness>(
        bed.sim, bed.server_ip(), *recorders.back()));
  }
  ScenarioResult result;

  // Shard-aware fault injection (DESIGN.md §12): the schedule compiles into
  // per-shard sub-schedules at partition time — channel faults to every
  // stripe owner of the channel, entity faults to the target AP's owner
  // shard, global faults to every AP-bearing shard — with one shard per
  // spec designated onset accountant so resilience counters exact-sum like
  // PerfCounters::merge_shard. Every injector posts its transitions at the
  // spec's own sim time before the lockstep starts, so replicated faults
  // flip state at the identical instant on every shard; all cross-shard
  // consequences still travel through the mailbox fabric.
  std::vector<ResilienceRecorder> resilience(static_cast<std::size_t>(S));
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors(
      static_cast<std::size_t>(S));
  if (!faults.empty()) {
    fault::FaultRouter router;
    router.shards = S;
    router.total_aps = sites.size();
    router.channel_owners = [&fabric](int channel) {
      int buf[phy::kMaxShards];
      const int n = fabric.partition().stripe_owners(
          static_cast<wire::Channel>(channel), buf);
      return std::vector<int>(buf, buf + n);
    };
    router.ap_owner = [&ap_owner_shard, &ap_local_index](std::size_t g) {
      return std::pair<int, int>(ap_owner_shard[g], ap_local_index[g]);
    };
    std::vector<std::vector<fault::RoutedFault>> routed =
        fault::partition_schedule(
            faults, Rng(fault::fault_stream_seed(config.seed)), router);
    for (int s = 0; s < S; ++s) {
      Testbed& bed = *beds[static_cast<std::size_t>(s)];
      ResilienceRecorder& rec = resilience[static_cast<std::size_t>(s)];
      // Each shard's harness reports its clients' link churn into the
      // shard-local recorder (every event fires on that shard's thread);
      // client identity keys the outage bookkeeping, so the post-run merge
      // equals the serial recorder client-for-client.
      harnesses[static_cast<std::size_t>(s)]->set_extra_callbacks({
          .on_link_up =
              [&rec, &sim = bed.sim](core::VirtualInterface& vif) {
                rec.note_link_up(sim.now(), vif.mac().raw() >> 8);
              },
          .on_link_down =
              [&rec, &sim = bed.sim](core::VirtualInterface& vif) {
                rec.note_link_down(sim.now(), vif.mac().raw() >> 8);
              },
      });
      if (routed[static_cast<std::size_t>(s)].empty()) continue;
      // The ctor stream is never drawn for routed specs (each carries its
      // own); seed it from the shard for hygiene.
      injectors[static_cast<std::size_t>(s)] =
          std::make_unique<fault::FaultInjector>(
              bed.sim, Rng(shard_seed(config.seed, s)));
      fault::FaultInjector& injector =
          *injectors[static_cast<std::size_t>(s)];
      injector.attach_medium(bed.medium);
      for (auto& bundle : bed.aps()) {
        injector.add_ap(*bundle.ap, bundle.network.get());
      }
      injector.set_fault_observer(
          [&rec, &sim = bed.sim](const fault::FaultSpec&) {
            rec.note_fault(sim.now());
          });
      injector.arm_routed(std::move(routed[static_cast<std::size_t>(s)]));
    }
  }

  core::SpiderConfig spider_cfg = config.spider;
  spider_cfg.radio.max_speed_mps = config.speed_mps;
  base::StockConfig stock_cfg = config.stock;
  stock_cfg.stack.radio.max_speed_mps = config.speed_mps;

  // Client stacks, in serial construction order, homed round-robin. The
  // MAC block is the client's deployment-global identity; the fabric
  // places the phy proxy on the owner of the boot-channel stripe.
  for (int c = 0; c < clients; ++c) {
    ClientRig& rig = rigs[static_cast<std::size_t>(c)];
    const int home = c % S;
    Testbed& bed = *beds[static_cast<std::size_t>(home)];
    DownloadHarness& harness = *harnesses[static_cast<std::size_t>(home)];
    const std::uint64_t block =
        Testbed::client_mac_block(static_cast<std::uint64_t>(c));
    auto position = [route = rig.route.get(), offset = rig.offset,
                     &sim = bed.sim] {
      return route->position_at(sim.now() + offset);
    };
    // Per-client profile on top of the shared tuned copy — the same
    // application point as the serial engine, so a mix-bearing config runs
    // the same per-client knobs whichever engine hosts it.
    const ClientProfile& profile = profiles[static_cast<std::size_t>(c)];
    phy::Radio* radio = nullptr;
    switch (config.driver) {
      case DriverKind::kSpider: {
        core::SpiderConfig rig_cfg = spider_cfg;
        profile.apply(rig_cfg);
        rig.spider = std::make_unique<core::SpiderDriver>(
            bed.sim, bed.medium, block, position, rig_cfg);
        rig.manager =
            std::make_unique<core::LinkManager>(*rig.spider, bed.server_ip());
        harness.attach(*rig.manager);
        rig.spider->start();
        rig.manager->start();
        if (config.adaptive) {
          rig.adaptive = std::make_unique<core::AdaptiveModeController>(
              *rig.spider, [speed = config.speed_mps] { return speed; },
              config.adaptive_config);
          rig.adaptive->start();
        }
        radio = &rig.spider->radio();
        break;
      }
      case DriverKind::kStock: {
        base::StockConfig rig_cfg = stock_cfg;
        profile.apply(rig_cfg);
        rig.stock = std::make_unique<base::StockWifiDriver>(
            bed.sim, bed.medium, block, position, rig_cfg, bed.server_ip());
        harness.attach(*rig.stock);
        rig.stock->start();
        radio = &rig.stock->radio();
        break;
      }
      case DriverKind::kFatVap: {
        core::SpiderConfig rig_cfg = spider_cfg;
        profile.apply(rig_cfg);
        rig.fatvap = std::make_unique<base::FatVapDriver>(
            bed.sim, bed.medium, block, position, rig_cfg, config.fatvap);
        rig.manager =
            std::make_unique<core::LinkManager>(*rig.fatvap, bed.server_ip());
        harness.attach(*rig.manager);
        rig.fatvap->start();
        radio = &rig.fatvap->radio();
        break;
      }
    }
    fabric.register_client(
        home, *radio,
        [route = rig.route.get(), offset = rig.offset](Time t) {
          return route->position_at(t + offset);
        },
        config.speed_mps, block, block + 0x100ULL);
  }

  // Place the initial proxies, run the formation in lockstep windows, then
  // flush in-flight exchange (forwarded deliveries from the final window).
  bus.drain_initial();
  result.completed = bus.run_until(config.duration, cancel);
  bus.drain_final();

  // Harvest in global client order — identical bookkeeping to the serial
  // path, so pooled sweeps treat sharded and serial runs uniformly.
  for (ClientRig& rig : rigs) {
    switch (config.driver) {
      case DriverKind::kSpider: {
        const auto& log = rig.manager->join_log();
        result.join_log.insert(result.join_log.end(), log.begin(), log.end());
        result.switches += rig.spider->switches();
        result.switch_latency_ms.merge(rig.spider->switch_latency_stats());
        break;
      }
      case DriverKind::kStock: {
        const auto& log = rig.stock->join_log();
        result.join_log.insert(result.join_log.end(), log.begin(), log.end());
        result.switches += rig.stock->radio().switches_performed();
        break;
      }
      case DriverKind::kFatVap: {
        const auto& log = rig.manager->join_log();
        result.join_log.insert(result.join_log.end(), log.begin(), log.end());
        result.switches += rig.fatvap->radio().switches_performed();
        break;
      }
    }
  }

  // Shard timelines close at their own clocks (an interrupted formation
  // stops at a window boundary; the tripped shard may be mid-window) and
  // merge into the run's single goodput timeline.
  ThroughputRecorder merged(config.metrics_bin);
  for (int s = 0; s < S; ++s) {
    recorders[static_cast<std::size_t>(s)]->finalize(
        beds[static_cast<std::size_t>(s)]->sim.now());
    merged.merge(*recorders[static_cast<std::size_t>(s)]);
  }
  result.avg_throughput_kBps = merged.average_throughput_kBps();
  result.connectivity = merged.connectivity_fraction();
  result.connection_durations = Cdf(merged.connection_durations());
  result.disruption_durations = Cdf(merged.disruption_durations());
  result.instantaneous_kBps = Cdf(merged.instantaneous_kBps());
  result.total_bytes = merged.total_bytes();

  // Resilience counters exact-sum: onset accounting ran on one shard per
  // spec, outage bookkeeping is per client, and the merged TTR vector is
  // (time, client)-ordered — all byte-identical to the serial recorder.
  ResilienceRecorder resilience_total;
  for (int s = 0; s < S; ++s) {
    resilience_total.merge(resilience[static_cast<std::size_t>(s)]);
  }
  result.faults_injected = resilience_total.faults_injected();
  result.outages = resilience_total.outages();
  result.recoveries = resilience_total.recoveries();
  result.recovery_times = resilience_total.time_to_recover();
  digest_join_log(result);

  // Exact-sum aggregation: event totals add across shards, heap peaks add
  // (the heaps coexist), the simulated horizon is the max — summing it
  // would erase the speedup sim_per_wall exists to measure.
  for (int s = 0; s < S; ++s) {
    const sim::PerfCounters shard_perf =
        beds[static_cast<std::size_t>(s)]->sim.perf();
    if (s == 0) {
      result.perf = shard_perf;
    } else {
      result.perf.merge_shard(shard_perf);
    }
    beds[static_cast<std::size_t>(s)]->medium.add_perf(result.perf);
  }
  result.perf.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (tracer) {
    beds[0]->sim.set_tracer(nullptr);
    result.metrics = tracer->metrics();
    std::uint64_t cells = 0, rebuckets = 0, auto_grid = 0, auto_brute = 0;
    for (phy::Medium* m : mediums) {
      cells += m->grid_cells_scanned();
      rebuckets += m->grid_rebuckets();
      auto_grid += m->neighbor_auto_grid_tx();
      auto_brute += m->neighbor_auto_brute_tx();
    }
    result.metrics.count("phy.grid_cells_scanned", cells);
    result.metrics.count("phy.grid_rebuckets", rebuckets);
    result.metrics.count("phy.neighbor_auto_grid_tx", auto_grid);
    result.metrics.count("phy.neighbor_auto_brute_tx", auto_brute);
    result.traces.push_back(std::move(tracer));
  }
  // Formation diagnostics ride every sharded result, traced or not (the
  // perf CSV reads shard.width). Width is a gauge so pooled repetitions
  // keep the formation width instead of summing it; the volume counters
  // pool into fleet totals like every other counter.
  result.metrics.gauge("shard.width", static_cast<double>(S));
  result.metrics.count("shard.windows",
                       static_cast<double>(bus.windows_run()));
  result.metrics.count("shard.messages",
                       static_cast<double>(bus.messages_sent()));
  result.metrics.count("shard.migrations",
                       static_cast<double>(fabric.migrations()));
  return result;
}

}  // namespace spider::trace::detail
