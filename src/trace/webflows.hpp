#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/link_manager.hpp"
#include "sim/simulator.hpp"
#include "transport/download.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace spider::trace {

/// Web-browsing workload: a user fetches objects of heavy-tailed sizes,
/// one at a time, with think-time between fetches. A fetch runs over
/// whichever Spider link is up; if the link dies mid-transfer the fetch is
/// aborted (and retried as the next fetch, as a browser reload would).
///
/// This turns the paper's §4.7 distribution comparison into a behavioural
/// experiment: what fraction of typical user transfers actually complete
/// under each Spider configuration?
struct WebFlowConfig {
  /// Object size ~ lognormal(median, sigma), clamped. Median ~30 KB with a
  /// long tail matches late-2000s web measurement studies.
  double size_median_bytes = 30e3;
  double size_sigma = 1.6;
  double size_cap_bytes = 5e6;
  /// Think time between fetches ~ exponential(mean).
  Time think_mean = sec(2);
};

class WebFlowHarness {
 public:
  struct FlowRecord {
    std::size_t size_bytes = 0;
    Time started{0};
    Time finished{0};   ///< zero when aborted
    bool completed = false;
  };

  struct Summary {
    std::size_t attempted = 0;
    std::size_t completed = 0;
    std::size_t aborted = 0;
    double completion_rate = 0.0;
    Cdf completion_times_s;       ///< completed fetches only
    double median_completion_s = 0.0;
  };

  WebFlowHarness(sim::Simulator& simulator, wire::Ipv4 server_ip,
                 WebFlowConfig config, Rng rng);

  void attach(core::LinkManager& manager);

  Summary summarize();
  const std::vector<FlowRecord>& flows() const { return log_; }

 private:
  void link_up(core::VirtualInterface& vif);
  void link_down(core::VirtualInterface& vif);
  void maybe_start_flow();
  void start_flow(core::VirtualInterface& vif);
  void flow_completed();
  std::size_t draw_size();

  sim::Simulator& sim_;
  wire::Ipv4 server_ip_;
  WebFlowConfig config_;
  Rng rng_;

  std::vector<core::VirtualInterface*> up_;
  core::VirtualInterface* current_vif_ = nullptr;
  std::unique_ptr<tcp::DownloadClient> current_;
  std::optional<std::size_t> pending_size_;  ///< retry payload after abort
  std::vector<FlowRecord> log_;
  sim::EventHandle think_timer_;
  bool thinking_ = false;
};

}  // namespace spider::trace
