#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "baseline/stock_wifi.hpp"
#include "core/link_manager.hpp"
#include "mac/ap.hpp"
#include "net/ap_network.hpp"
#include "net/wired.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "trace/metrics.hpp"
#include "transport/download.hpp"
#include "util/random.hpp"

namespace spider::trace {

/// Assembles the common fixture of every experiment: simulator, medium,
/// wired core with one download/ping server, and any number of APs (MAC +
/// DHCP + gateway + rate-limited backhaul). Tests and benches build their
/// topologies on top of this instead of hand-wiring eight objects each.
struct TestbedConfig {
  std::uint64_t seed = 1;
  phy::PropagationConfig propagation;
  wire::Ipv4 server_ip = wire::Ipv4(1, 1, 1, 1);
  tcp::TcpConfig tcp;
  /// Medium knobs (neighbor index, grid cell size, ARQ retry budget),
  /// forwarded verbatim. Defaults keep the spatial grid on; experiments
  /// flip `medium.neighbor_index` to brute force for differential runs.
  phy::MediumConfig medium;
};

class Testbed {
 public:
  struct ApSpec {
    std::string ssid = "open-ap";
    wire::Channel channel = 6;
    Position position{0.0, 0.0};
    BitRate backhaul = mbps(1.5);
    Time backhaul_delay = msec(10);
    bool internet_connected = true;
    net::DhcpServerConfig dhcp;
    mac::ApConfig mac;
    /// Explicit AP identity (BSSID 0xA00000+index, subnet 10.x.y.0/24).
    /// Unset: assigned sequentially per testbed. Sharded formations pass
    /// the deployment-global index so an AP keeps the identity it would
    /// have in a serial run regardless of which shard hosts it.
    std::optional<std::uint64_t> index;
  };

  struct ApBundle {
    std::unique_ptr<mac::AccessPoint> ap;
    std::unique_ptr<net::ApNetwork> network;
  };

  explicit Testbed(TestbedConfig config = {});
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// Adds and starts an AP; subnets 10.0.x.0/24 are assigned in order.
  /// The returned reference stays valid for the Testbed's lifetime
  /// (bundles live in a deque).
  ApBundle& add_ap(const ApSpec& spec);

  /// Base of the client MAC-address space; AP BSSIDs (0xA00000+) and
  /// anything else live below it, so `mac >= kClientMacBase` classifies a
  /// radio as a client (the sharded fabric's shadow predicate).
  static constexpr std::uint64_t kClientMacBase = 0xC0'0000ULL;
  /// MAC block of client `i` (radio + virtual interfaces): a deployment
  /// -global identity, independent of which testbed builds the client.
  static constexpr std::uint64_t client_mac_block(std::uint64_t i) {
    return kClientMacBase + 0x100ULL * i;
  }

  /// Fresh MAC-address block for a client (radio + interfaces).
  std::uint64_t next_client_mac_block();

  wire::Ipv4 server_ip() const { return config_.server_ip; }
  std::deque<ApBundle>& aps() { return aps_; }
  Rng fork_rng() { return rng_.fork(); }

  sim::Simulator sim;
  phy::Medium medium;
  net::WiredNetwork wired;
  net::Host server;
  tcp::DownloadServer downloads;

 private:
  TestbedConfig config_;
  Rng rng_;
  std::deque<ApBundle> aps_;
  std::uint64_t next_subnet_ = 0;
  std::uint64_t next_client_block_ = 0;
};

/// Binds bulk-download applications to a driver's links: on every link-up
/// a fresh TCP download starts through that interface; delivered bytes
/// feed the ThroughputRecorder. Works for Spider/FatVAP (via LinkManager)
/// and the stock driver alike.
class DownloadHarness {
 public:
  DownloadHarness(sim::Simulator& simulator, wire::Ipv4 server_ip,
                  ThroughputRecorder& recorder);

  void attach(core::LinkManager& manager);
  void attach(base::StockWifiDriver& stock);

  /// Optional additional callbacks, invoked after the harness's own
  /// handling (install before or after attach; the harness owns the
  /// driver-side slot and forwards).
  void set_extra_callbacks(core::LinkManager::Callbacks extra) {
    extra_ = std::move(extra);
  }

  std::size_t active_downloads() const { return clients_.size(); }
  std::uint64_t links_seen() const { return links_seen_; }

 private:
  void link_up(core::VirtualInterface& vif);
  void link_down(core::VirtualInterface& vif);

  sim::Simulator& sim_;
  wire::Ipv4 server_ip_;
  ThroughputRecorder& recorder_;
  core::LinkManager::Callbacks extra_;
  // Keyed by interface identity (not index): a harness may be attached to
  // several drivers whose interfaces share index values.
  std::unordered_map<const core::VirtualInterface*,
                     std::unique_ptr<tcp::DownloadClient>> clients_;
  std::uint64_t links_seen_ = 0;
};

}  // namespace spider::trace
