#include "trace/handoff.hpp"

namespace spider::trace {

void HandoffTracker::attach(core::LinkManager& manager) {
  manager.set_callbacks({
      .on_link_up = [this](core::VirtualInterface&) { record_link_up(); },
      .on_link_down = [this](core::VirtualInterface&) { record_link_down(); },
  });
}

void HandoffTracker::attach(base::StockWifiDriver& stock) {
  stock.set_callbacks({
      .on_link_up = [this](core::VirtualInterface&) { record_link_up(); },
      .on_link_down = [this](core::VirtualInterface&) { record_link_down(); },
  });
}

void HandoffTracker::record_link_up() {
  ++ups_;
  ++live_;
  events_.push_back({sim_.now(), true});
}

void HandoffTracker::record_link_down() {
  --live_;
  events_.push_back({sim_.now(), false});
}

HandoffTracker::Summary HandoffTracker::summarize() const {
  Summary s;
  std::vector<double> gaps;
  int live = 0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (e.up) {
      ++live;
      continue;
    }
    --live;
    if (live > 0) {
      // Another link was already carrying traffic: seamless hand-off.
      ++s.handoffs;
      ++s.soft;
      continue;
    }
    // Hard hand-off: measure the outage until the next link-up (a trailing
    // teardown with no later link is an outage, not a hand-off).
    for (std::size_t j = i + 1; j < events_.size(); ++j) {
      if (events_[j].up) {
        ++s.handoffs;
        gaps.push_back(to_seconds(events_[j].at - e.at));
        break;
      }
    }
  }
  s.gap_seconds = Cdf(std::move(gaps));
  s.soft_fraction =
      s.handoffs == 0 ? 0.0 : static_cast<double>(s.soft) / s.handoffs;
  return s;
}

}  // namespace spider::trace
