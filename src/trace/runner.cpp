#include "trace/runner.hpp"

#include <algorithm>
#include <cstdio>

#include "trace/export.hpp"
#include "util/thread_pool.hpp"

namespace spider::trace {

ScenarioRunner::ScenarioRunner(RunnerOptions options)
    : options_(options),
      jobs_(options.jobs != 0 ? options.jobs
                              : util::ThreadPool::default_jobs()),
      tracing_(options.tracing || options.sinks.any()) {}

std::vector<ScenarioResult> ScenarioRunner::execute(
    const std::vector<ScenarioConfig>& expanded) const {
  // One --jobs budget covers both parallelism axes: a campaign of sharded
  // runs narrows the run pool by the widest formation it contains, so
  // runs * shards never oversubscribes the configured budget.
  std::size_t widest = 1;
  for (const ScenarioConfig& config : expanded) {
    widest = std::max(
        widest, static_cast<std::size_t>(detail::resolve_shards(config)));
  }
  const std::size_t pool_jobs = std::max<std::size_t>(1, jobs_ / widest);
  return util::parallel_map(pool_jobs, expanded.size(), [&](std::size_t i) {
    // A tripped token skips runs that have not started yet — the sweep
    // returns promptly with every remaining slot marked incomplete
    // instead of grinding through the backlog after a ^C.
    if (options_.cancel != nullptr && options_.cancel->should_stop()) {
      ScenarioResult skipped;
      skipped.completed = false;
      return skipped;
    }
    std::shared_ptr<obs::Tracer> tracer;
    if (tracing_) {
      obs::TracerConfig tc = options_.tracer;
      tc.seed = expanded[i].seed;
      tracer = std::make_shared<obs::Tracer>(tc);
    }
    return detail::execute_scenario(expanded[i], std::move(tracer),
                                    options_.cancel);
  });
}

RunOutcome ScenarioRunner::run_bounded(const ScenarioConfig& config,
                                       sim::CancelToken* cancel) const {
  RunOutcome outcome;
  const std::vector<ConfigIssue> issues = config.validate();
  if (!issues.empty()) {
    outcome.error =
        RunError{RunErrorKind::kInvalidConfig, join_issues(issues)};
    return outcome;
  }
  sim::CancelToken* token = cancel != nullptr ? cancel : options_.cancel;
  try {
    std::shared_ptr<obs::Tracer> tracer;
    if (tracing_) {
      obs::TracerConfig tc = options_.tracer;
      tc.seed = config.seed;
      tracer = std::make_shared<obs::Tracer>(tc);
    }
    ScenarioResult result =
        detail::execute_scenario(config, std::move(tracer), token);
    const bool completed = result.completed;
    outcome.result = std::move(result);
    if (!completed) {
      const sim::CancelReason reason =
          token != nullptr ? token->reason() : sim::CancelReason::kCancelled;
      outcome.error = RunError{
          reason == sim::CancelReason::kDeadlineExceeded
              ? RunErrorKind::kDeadlineExceeded
              : RunErrorKind::kCancelled,
          std::string("run interrupted (") + sim::to_string(reason) +
              ") at sim time " +
              std::to_string(outcome.result->perf.sim_seconds) + " s"};
    }
  } catch (const std::exception& e) {
    outcome.result.reset();
    outcome.error = RunError{RunErrorKind::kInternal, e.what()};
  } catch (...) {
    outcome.result.reset();
    outcome.error =
        RunError{RunErrorKind::kInternal, "unknown exception in runner"};
  }
  return outcome;
}

void ScenarioRunner::write_sinks(
    const std::vector<ScenarioResult>& results) const {
  const auto emit = [&](const std::string& path, bool ok) {
    if (!path.empty() && !ok) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
  };
  if (!options_.sinks.jsonl_path.empty()) {
    emit(options_.sinks.jsonl_path,
         write_trace_jsonl(options_.sinks.jsonl_path, results));
  }
  if (!options_.sinks.chrome_path.empty()) {
    emit(options_.sinks.chrome_path,
         write_trace_chrome(options_.sinks.chrome_path, results));
  }
  if (!options_.sinks.metrics_path.empty()) {
    emit(options_.sinks.metrics_path,
         write_metrics_csv(options_.sinks.metrics_path, results));
  }
}

ScenarioResult ScenarioRunner::run_one(const ScenarioConfig& config) const {
  std::vector<ScenarioResult> results = execute({config});
  write_sinks(results);
  return std::move(results.front());
}

ScenarioResult ScenarioRunner::run_averaged(const ScenarioConfig& config) const {
  std::vector<ScenarioResult> pooled = run_many_averaged({config});
  return std::move(pooled.front());
}

std::vector<ScenarioResult> ScenarioRunner::run_many(
    const std::vector<ScenarioConfig>& configs) const {
  std::vector<ScenarioResult> results = execute(configs);
  write_sinks(results);
  return results;
}

std::vector<ScenarioResult> ScenarioRunner::run_many_averaged(
    const std::vector<ScenarioConfig>& configs) const {
  const int runs = options_.repetitions < 1 ? 1 : options_.repetitions;
  std::vector<ScenarioConfig> expanded;
  expanded.reserve(configs.size() * static_cast<std::size_t>(runs));
  for (const ScenarioConfig& config : configs) {
    for (int r = 0; r < runs; ++r) {
      expanded.push_back(config);
      expanded.back().seed = config.seed + static_cast<std::uint64_t>(r);
    }
  }
  const std::vector<ScenarioResult> flat = execute(expanded);

  std::vector<ScenarioResult> pooled;
  pooled.reserve(configs.size());
  for (std::size_t g = 0; g < configs.size(); ++g) {
    const auto first = flat.begin() + static_cast<std::ptrdiff_t>(
                                          g * static_cast<std::size_t>(runs));
    pooled.push_back(pool_results(std::vector<ScenarioResult>(
        first, first + static_cast<std::ptrdiff_t>(runs))));
  }
  write_sinks(pooled);
  return pooled;
}

}  // namespace spider::trace
