#pragma once

#include <string>
#include <vector>

namespace spider::trace {

/// Structured failure taxonomy for scenario execution. Every way a run can
/// fail maps to one of these, both over the server wire protocol and from
/// the library API (ScenarioRunner::run_bounded) — bad input is reported,
/// never asserted on.
enum class RunErrorKind {
  kInvalidConfig,      ///< ScenarioConfig::validate() rejected the request
  kDeadlineExceeded,   ///< wall-clock deadline tripped mid-run (watchdog/lazy)
  kCancelled,          ///< explicit cancellation (client gone, shutdown, ^C)
  kInternal,           ///< unexpected exception inside the runner
};

/// Stable wire identifier ("invalid-config", "deadline-exceeded", ...).
const char* to_string(RunErrorKind kind);

struct RunError {
  RunErrorKind kind = RunErrorKind::kInternal;
  std::string message;
};

/// One problem found by ScenarioConfig::validate(): the offending field
/// (dotted path, e.g. "city.block_m") plus a human-readable explanation.
struct ConfigIssue {
  std::string field;
  std::string message;
};

/// Joins issues into one "field: message; field: message" line for error
/// payloads and CLI diagnostics.
std::string join_issues(const std::vector<ConfigIssue>& issues);

}  // namespace spider::trace
