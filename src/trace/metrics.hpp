#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace spider::trace {

/// Time-binned goodput collector computing the paper's four §4.3 metrics:
///
///  1. average throughput  — bytes delivered / experiment duration;
///  2. average connectivity — fraction of bins with non-zero delivery;
///  3. disruption lengths   — maximal runs of zero bins;
///  4. instantaneous bandwidth — per-bin rate over non-zero bins.
///
/// Bins are 1 s by default, matching the paper's definition of
/// connectivity as "the percentage of time that a non-zero amount of data
/// was transferred".
class ThroughputRecorder {
 public:
  explicit ThroughputRecorder(Time bin = sec(1)) : bin_(bin) {}

  void record(Time now, std::size_t bytes);

  /// Extends the timeline with trailing zero bins up to `end`.
  void finalize(Time end);

  /// Adds `other`'s timeline bin-by-bin (same bin width required). Sharded
  /// runs keep one recorder per shard — each fed only from its own event
  /// loop — and merge them afterwards into the run's single timeline.
  void merge(const ThroughputRecorder& other);

  std::uint64_t total_bytes() const { return total_; }
  std::size_t bins() const { return bins_.size(); }
  Time bin_width() const { return bin_; }

  double average_throughput_kBps() const;
  double connectivity_fraction() const;

  /// Maximal runs of consecutive non-zero bins, in seconds (Fig. 11).
  std::vector<double> connection_durations() const;
  /// Maximal runs of consecutive zero bins, in seconds (Fig. 12).
  std::vector<double> disruption_durations() const;
  /// KB/s of each non-zero bin (Fig. 13).
  std::vector<double> instantaneous_kBps() const;

  const std::vector<std::uint64_t>& raw_bins() const { return bins_; }

 private:
  Time bin_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Resilience bookkeeping for fault-injection experiments: counts faults
/// as they fire and watches the client's live-link population. An outage
/// is a window in which a client that previously had connectivity has no
/// link at all; the time from outage start to the next link-up is one
/// time-to-recover sample. The initial join (never had a link yet) is not
/// an outage, and an outage still open at experiment end counts as
/// unrecovered.
class ResilienceRecorder {
 public:
  void note_fault(Time now);
  void note_link_up(Time now);
  void note_link_down(Time now);

  std::uint64_t faults_injected() const { return faults_; }
  std::uint64_t outages() const { return outages_; }
  std::uint64_t recoveries() const { return recoveries_; }
  /// Seconds from losing the last link to the next link-up.
  Cdf& time_to_recover() { return ttr_; }
  const Cdf& time_to_recover() const { return ttr_; }
  Time last_fault_at() const { return last_fault_; }

 private:
  std::uint64_t faults_ = 0;
  std::uint64_t outages_ = 0;
  std::uint64_t recoveries_ = 0;
  std::size_t links_ = 0;
  bool had_link_ = false;
  bool in_outage_ = false;
  Time outage_start_{0};
  Time last_fault_{0};
  Cdf ttr_;
};

}  // namespace spider::trace
