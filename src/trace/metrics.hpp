#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace spider::trace {

/// Time-binned goodput collector computing the paper's four §4.3 metrics:
///
///  1. average throughput  — bytes delivered / experiment duration;
///  2. average connectivity — fraction of bins with non-zero delivery;
///  3. disruption lengths   — maximal runs of zero bins;
///  4. instantaneous bandwidth — per-bin rate over non-zero bins.
///
/// Bins are 1 s by default, matching the paper's definition of
/// connectivity as "the percentage of time that a non-zero amount of data
/// was transferred".
class ThroughputRecorder {
 public:
  explicit ThroughputRecorder(Time bin = sec(1)) : bin_(bin) {}

  void record(Time now, std::size_t bytes);

  /// Extends the timeline with trailing zero bins up to `end`.
  void finalize(Time end);

  std::uint64_t total_bytes() const { return total_; }
  std::size_t bins() const { return bins_.size(); }
  Time bin_width() const { return bin_; }

  double average_throughput_kBps() const;
  double connectivity_fraction() const;

  /// Maximal runs of consecutive non-zero bins, in seconds (Fig. 11).
  std::vector<double> connection_durations() const;
  /// Maximal runs of consecutive zero bins, in seconds (Fig. 12).
  std::vector<double> disruption_durations() const;
  /// KB/s of each non-zero bin (Fig. 13).
  std::vector<double> instantaneous_kBps() const;

  const std::vector<std::uint64_t>& raw_bins() const { return bins_; }

 private:
  Time bin_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace spider::trace
