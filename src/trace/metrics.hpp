#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace spider::trace {

/// Time-binned goodput collector computing the paper's four §4.3 metrics:
///
///  1. average throughput  — bytes delivered / experiment duration;
///  2. average connectivity — fraction of bins with non-zero delivery;
///  3. disruption lengths   — maximal runs of zero bins;
///  4. instantaneous bandwidth — per-bin rate over non-zero bins.
///
/// Bins are 1 s by default, matching the paper's definition of
/// connectivity as "the percentage of time that a non-zero amount of data
/// was transferred".
class ThroughputRecorder {
 public:
  explicit ThroughputRecorder(Time bin = sec(1)) : bin_(bin) {}

  void record(Time now, std::size_t bytes);

  /// Extends the timeline with trailing zero bins up to `end`.
  void finalize(Time end);

  /// Adds `other`'s timeline bin-by-bin (same bin width required). Sharded
  /// runs keep one recorder per shard — each fed only from its own event
  /// loop — and merge them afterwards into the run's single timeline.
  void merge(const ThroughputRecorder& other);

  std::uint64_t total_bytes() const { return total_; }
  std::size_t bins() const { return bins_.size(); }
  Time bin_width() const { return bin_; }

  double average_throughput_kBps() const;
  double connectivity_fraction() const;

  /// Maximal runs of consecutive non-zero bins, in seconds (Fig. 11).
  std::vector<double> connection_durations() const;
  /// Maximal runs of consecutive zero bins, in seconds (Fig. 12).
  std::vector<double> disruption_durations() const;
  /// KB/s of each non-zero bin (Fig. 13).
  std::vector<double> instantaneous_kBps() const;

  const std::vector<std::uint64_t>& raw_bins() const { return bins_; }

 private:
  Time bin_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Resilience bookkeeping for fault-injection experiments: counts faults
/// as they fire and watches each client's live-link population. An outage
/// is a window in which a client that previously had connectivity has no
/// link at all; the time from outage start to that client's next link-up
/// is one time-to-recover sample. The initial join (never had a link yet)
/// is not an outage, and an outage still open at experiment end counts as
/// unrecovered.
///
/// Link events carry the client's deployment-global identity (the engines
/// pass the MAC block), so outage detection is per client and independent
/// of which event loop observes which client: a formation keeps one
/// recorder per shard and merge()s them afterwards, and the totals
/// exact-sum to the serial recorder's counts (the merge_shard contract).
class ResilienceRecorder {
 public:
  void note_fault(Time now);
  void note_link_up(Time now, std::uint64_t client = 0);
  void note_link_down(Time now, std::uint64_t client = 0);

  /// Folds `other` in: counters add, recovery samples pool. Post-run only
  /// (in-flight outage state does not transfer across recorders).
  void merge(const ResilienceRecorder& other);

  std::uint64_t faults_injected() const { return faults_; }
  std::uint64_t outages() const { return outages_; }
  std::uint64_t recoveries() const { return recoveries_; }
  /// Seconds from losing the last link to the next link-up, ordered by
  /// (recovery time, client) — a total order every engine reproduces, so
  /// serial and merged sharded runs emit byte-identical sample vectors.
  Cdf time_to_recover() const;
  Time last_fault_at() const { return last_fault_; }

 private:
  struct ClientLinks {
    std::size_t links = 0;
    bool had_link = false;
    bool in_outage = false;
    Time outage_start{0};
  };
  struct TtrSample {
    Time at{0};
    std::uint64_t client = 0;
    double seconds = 0.0;
  };

  std::uint64_t faults_ = 0;
  std::uint64_t outages_ = 0;
  std::uint64_t recoveries_ = 0;
  Time last_fault_{0};
  std::unordered_map<std::uint64_t, ClientLinks> clients_;
  std::vector<TtrSample> ttr_;
};

}  // namespace spider::trace
