#include "trace/metrics.hpp"

namespace spider::trace {

void ThroughputRecorder::record(Time now, std::size_t bytes) {
  const auto index = static_cast<std::size_t>(now.count() / bin_.count());
  if (bins_.size() <= index) bins_.resize(index + 1, 0);
  bins_[index] += bytes;
  total_ += bytes;
}

void ThroughputRecorder::finalize(Time end) {
  const auto bins_needed = static_cast<std::size_t>(
      (end.count() + bin_.count() - 1) / bin_.count());
  if (bins_.size() < bins_needed) bins_.resize(bins_needed, 0);
}

void ThroughputRecorder::merge(const ThroughputRecorder& other) {
  if (bins_.size() < other.bins_.size()) bins_.resize(other.bins_.size(), 0);
  for (std::size_t i = 0; i < other.bins_.size(); ++i) {
    bins_[i] += other.bins_[i];
  }
  total_ += other.total_;
}

double ThroughputRecorder::average_throughput_kBps() const {
  if (bins_.empty()) return 0.0;
  const double seconds = static_cast<double>(bins_.size()) * to_seconds(bin_);
  return static_cast<double>(total_) / seconds / 1e3;
}

double ThroughputRecorder::connectivity_fraction() const {
  if (bins_.empty()) return 0.0;
  std::size_t nonzero = 0;
  for (auto b : bins_) nonzero += b > 0 ? 1 : 0;
  return static_cast<double>(nonzero) / static_cast<double>(bins_.size());
}

std::vector<double> ThroughputRecorder::connection_durations() const {
  std::vector<double> out;
  std::size_t run = 0;
  for (auto b : bins_) {
    if (b > 0) {
      ++run;
    } else if (run > 0) {
      out.push_back(static_cast<double>(run) * to_seconds(bin_));
      run = 0;
    }
  }
  if (run > 0) out.push_back(static_cast<double>(run) * to_seconds(bin_));
  return out;
}

std::vector<double> ThroughputRecorder::disruption_durations() const {
  std::vector<double> out;
  std::size_t run = 0;
  for (auto b : bins_) {
    if (b == 0) {
      ++run;
    } else if (run > 0) {
      out.push_back(static_cast<double>(run) * to_seconds(bin_));
      run = 0;
    }
  }
  if (run > 0) out.push_back(static_cast<double>(run) * to_seconds(bin_));
  return out;
}

std::vector<double> ThroughputRecorder::instantaneous_kBps() const {
  std::vector<double> out;
  for (auto b : bins_) {
    if (b > 0) {
      out.push_back(static_cast<double>(b) / to_seconds(bin_) / 1e3);
    }
  }
  return out;
}

void ResilienceRecorder::note_fault(Time now) {
  ++faults_;
  last_fault_ = now;
}

void ResilienceRecorder::note_link_up(Time now) {
  ++links_;
  had_link_ = true;
  if (in_outage_) {
    in_outage_ = false;
    ++recoveries_;
    ttr_.add(to_seconds(now - outage_start_));
  }
}

void ResilienceRecorder::note_link_down(Time now) {
  if (links_ > 0) --links_;
  if (links_ == 0 && had_link_ && !in_outage_) {
    in_outage_ = true;
    outage_start_ = now;
    ++outages_;
  }
}

}  // namespace spider::trace
