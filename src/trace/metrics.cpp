#include "trace/metrics.hpp"

#include <algorithm>

namespace spider::trace {

void ThroughputRecorder::record(Time now, std::size_t bytes) {
  const auto index = static_cast<std::size_t>(now.count() / bin_.count());
  if (bins_.size() <= index) bins_.resize(index + 1, 0);
  bins_[index] += bytes;
  total_ += bytes;
}

void ThroughputRecorder::finalize(Time end) {
  const auto bins_needed = static_cast<std::size_t>(
      (end.count() + bin_.count() - 1) / bin_.count());
  if (bins_.size() < bins_needed) bins_.resize(bins_needed, 0);
}

void ThroughputRecorder::merge(const ThroughputRecorder& other) {
  if (bins_.size() < other.bins_.size()) bins_.resize(other.bins_.size(), 0);
  for (std::size_t i = 0; i < other.bins_.size(); ++i) {
    bins_[i] += other.bins_[i];
  }
  total_ += other.total_;
}

double ThroughputRecorder::average_throughput_kBps() const {
  if (bins_.empty()) return 0.0;
  const double seconds = static_cast<double>(bins_.size()) * to_seconds(bin_);
  return static_cast<double>(total_) / seconds / 1e3;
}

double ThroughputRecorder::connectivity_fraction() const {
  if (bins_.empty()) return 0.0;
  std::size_t nonzero = 0;
  for (auto b : bins_) nonzero += b > 0 ? 1 : 0;
  return static_cast<double>(nonzero) / static_cast<double>(bins_.size());
}

std::vector<double> ThroughputRecorder::connection_durations() const {
  std::vector<double> out;
  std::size_t run = 0;
  for (auto b : bins_) {
    if (b > 0) {
      ++run;
    } else if (run > 0) {
      out.push_back(static_cast<double>(run) * to_seconds(bin_));
      run = 0;
    }
  }
  if (run > 0) out.push_back(static_cast<double>(run) * to_seconds(bin_));
  return out;
}

std::vector<double> ThroughputRecorder::disruption_durations() const {
  std::vector<double> out;
  std::size_t run = 0;
  for (auto b : bins_) {
    if (b == 0) {
      ++run;
    } else if (run > 0) {
      out.push_back(static_cast<double>(run) * to_seconds(bin_));
      run = 0;
    }
  }
  if (run > 0) out.push_back(static_cast<double>(run) * to_seconds(bin_));
  return out;
}

std::vector<double> ThroughputRecorder::instantaneous_kBps() const {
  std::vector<double> out;
  for (auto b : bins_) {
    if (b > 0) {
      out.push_back(static_cast<double>(b) / to_seconds(bin_) / 1e3);
    }
  }
  return out;
}

void ResilienceRecorder::note_fault(Time now) {
  ++faults_;
  last_fault_ = now;
}

void ResilienceRecorder::note_link_up(Time now, std::uint64_t client) {
  ClientLinks& c = clients_[client];
  ++c.links;
  c.had_link = true;
  if (c.in_outage) {
    c.in_outage = false;
    ++recoveries_;
    ttr_.push_back({now, client, to_seconds(now - c.outage_start)});
  }
}

void ResilienceRecorder::note_link_down(Time now, std::uint64_t client) {
  ClientLinks& c = clients_[client];
  if (c.links > 0) --c.links;
  if (c.links == 0 && c.had_link && !c.in_outage) {
    c.in_outage = true;
    c.outage_start = now;
    ++outages_;
  }
}

void ResilienceRecorder::merge(const ResilienceRecorder& other) {
  faults_ += other.faults_;
  outages_ += other.outages_;
  recoveries_ += other.recoveries_;
  last_fault_ = std::max(last_fault_, other.last_fault_);
  ttr_.insert(ttr_.end(), other.ttr_.begin(), other.ttr_.end());
}

Cdf ResilienceRecorder::time_to_recover() const {
  // (time, client) is a total order over recoveries — the serial engine and
  // any merged formation emit the identical sample vector, which the
  // differential suites hash verbatim.
  std::vector<TtrSample> sorted = ttr_;
  std::sort(sorted.begin(), sorted.end(),
            [](const TtrSample& a, const TtrSample& b) {
              return a.at != b.at ? a.at < b.at : a.client < b.client;
            });
  Cdf out;
  for (const TtrSample& s : sorted) out.add(s.seconds);
  return out;
}

}  // namespace spider::trace
