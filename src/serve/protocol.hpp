#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "trace/runner.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace spider::serve {

/// Wire protocol of the resident scenario server (DESIGN.md §11): newline-
/// delimited JSON over a local stream socket. One request object per line,
/// one response object per line; responses stream back as runs finish and
/// are matched to requests by the client-chosen "id". Doubles travel in
/// exact-round-trip form, which is what lets the campaign runner's merged
/// statistics equal a serial in-process sweep bit for bit.

/// Everything of one run's result that crosses the wire (and lands in the
/// campaign journal): the scalar metrics plus the switch-latency moments,
/// enough to reconstruct the OnlineStats accumulator exactly.
struct RunStats {
  bool completed = true;
  double avg_throughput_kBps = 0.0;
  double connectivity = 0.0;
  std::uint64_t total_bytes = 0;
  std::uint64_t switches = 0;
  std::uint64_t joins_attempted = 0;
  std::uint64_t assoc_succeeded = 0;
  std::uint64_t dhcp_succeeded = 0;
  std::uint64_t e2e_succeeded = 0;
  OnlineStats switch_latency_ms;
  double sim_seconds = 0.0;
  std::uint64_t events_popped = 0;

  static RunStats from_result(const trace::ScenarioResult& result);
  void write_json(std::ostream& os) const;
  static std::optional<RunStats> from_json(const util::Json& json);
};

/// Scenario serde: forwarders over the one shared round trip in
/// trace/scenario_json.hpp (also used by spider_campaign and the trace
/// tooling), covering the protocol subset of ScenarioConfig plus the
/// client_mix/impairments extensions. parse is strict — an unknown
/// scenario key or malformed value fails with a field-named error, so a
/// client typo cannot silently diverge from the intended experiment (the
/// campaign merge-equals-serial check depends on nothing being dropped).
bool parse_scenario(const util::Json& json, trace::ScenarioConfig* config,
                    std::string* error);
void write_scenario_json(std::ostream& os,
                         const trace::ScenarioConfig& config);
std::string scenario_to_json(const trace::ScenarioConfig& config);

/// Response envelopes. Every response carries the request id (empty string
/// when the request was too malformed to have one).
std::string make_ok_run_response(const std::string& id, const RunStats& stats);
std::string make_error_response(const std::string& id,
                                const trace::RunError& error,
                                double retry_after_ms = 0.0,
                                const RunStats* partial = nullptr);
/// Server-level rejections that never reached the runner: protocol errors
/// ("invalid-request"), backpressure ("overloaded", with a retry_after_ms
/// hint), and drain-mode refusals ("shutting-down").
std::string make_reject_response(const std::string& id, const char* kind,
                                 const std::string& message,
                                 double retry_after_ms = 0.0);
std::string make_pong_response(const std::string& id);

}  // namespace spider::serve
