#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include <condition_variable>

#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "sim/cancel.hpp"
#include "trace/runner.hpp"

namespace spider::serve {

/// Knobs of the resident scenario server. Paths must fit in sun_path
/// (108 bytes) — keep socket paths short and relative to the run
/// directory when possible.
struct ServerConfig {
  std::string socket_path;   ///< Unix stream socket to listen on
  std::size_t workers = 2;   ///< scenario worker threads (min 1)
  std::size_t queue_depth = 16;  ///< admitted-but-not-started bound
  /// Wall-clock budget applied to runs whose request carries no
  /// deadline_ms. 0 = unbounded (a stuck run then needs shutdown(true)).
  double default_deadline_ms = 0.0;
  /// Hint returned with "overloaded" rejections.
  double retry_after_ms = 50.0;
  /// Watchdog scan period for expired deadlines.
  double watchdog_period_ms = 5.0;
  bool tracing = false;  ///< flight-record each run (server-side only)

  /// Fault-injection hooks for tests: the first admitted run whose seed
  /// equals stall_seed sleeps up to stall_ms before executing, leaving
  /// the stall only when its token is cancelled. The sleeper checks the
  /// cancellation *flag* only — never the deadline clock — so the
  /// watchdog thread is deterministically the one that trips the
  /// deadline ("serve.watchdog_reaps" counts exactly it).
  std::uint64_t stall_seed = 0;  ///< 0 disables the hook
  double stall_ms = 0.0;
};

/// A resident scenario server: newline-delimited JSON requests over a
/// local stream socket, executed on a bounded worker pool through
/// trace::ScenarioRunner::run_bounded, responses streamed back as runs
/// finish (DESIGN.md §11).
///
///   {"op":"ping","id":"1"}
///   {"op":"metrics","id":"2"}
///   {"op":"run","id":"3","deadline_ms":5000,"scenario":{...}}
///
/// Robustness contract:
///  - admission is bounded: beyond queue_depth the request is rejected
///    with kind "overloaded" and a retry_after_ms hint, never queued
///    without bound;
///  - every admitted run carries a CancelToken; a deadline (request's or
///    the server default) is armed when a worker picks the run up, and a
///    watchdog thread reaps expired runs ("deadline-exceeded" on the
///    wire, partial result attached when one exists);
///  - a client disconnect cancels that client's queued and in-flight
///    runs so abandoned work never occupies the pool;
///  - shutdown() drains admitted runs, answers new ones with
///    "shutting-down", flushes outboxes, then tears down; shutdown(true)
///    additionally cancels queued and in-flight runs first.
class ScenarioServer {
 public:
  explicit ScenarioServer(ServerConfig config);
  ~ScenarioServer();

  ScenarioServer(const ScenarioServer&) = delete;
  ScenarioServer& operator=(const ScenarioServer&) = delete;

  /// Binds, listens, and spawns the front/worker/watchdog threads.
  /// False (with the reason in *error) when the socket cannot be set up.
  bool start(std::string* error = nullptr);

  /// Graceful stop; see class comment. Idempotent.
  void shutdown(bool cancel_inflight = false);

  bool running() const { return running_; }
  const ServerConfig& config() const { return config_; }

  /// Point-in-time copy of the server's counters ("serve.*").
  obs::MetricsRegistry metrics_snapshot() const;

 private:
  struct Job {
    std::uint64_t conn_id = 0;
    std::string request_id;
    trace::ScenarioConfig scenario;
    double deadline_ms = 0.0;
    std::shared_ptr<sim::CancelToken> token;
  };

  struct Connection {
    int fd = -1;
    std::string inbox;
    std::string outbox;
  };

  void front_loop();
  void worker_loop();
  void watchdog_loop();

  void handle_line(std::uint64_t conn_id, Connection& conn,
                   const std::string& line);
  void close_connection(std::uint64_t conn_id);
  void push_response(std::uint64_t conn_id, std::string line);
  void wake_front();
  void count(std::string_view name, double v = 1.0);
  void gauge_max(std::string_view name, double v);

  ServerConfig config_;
  trace::ScenarioRunner runner_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};

  std::vector<std::thread> workers_;
  std::thread front_;
  std::thread watchdog_;

  // Admission queue + in-flight registry (one mutex guards both, plus the
  // per-connection token index used for disconnect cancellation).
  mutable std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<Job> queue_;
  std::size_t inflight_ = 0;
  std::vector<std::shared_ptr<sim::CancelToken>> inflight_tokens_;
  std::unordered_map<std::uint64_t,
                     std::vector<std::weak_ptr<sim::CancelToken>>>
      conn_tokens_;

  // Worker-produced response lines, merged into outboxes by the front.
  std::mutex responses_mu_;
  std::deque<std::pair<std::uint64_t, std::string>> responses_;

  mutable std::mutex metrics_mu_;
  obs::MetricsRegistry metrics_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> workers_stop_{false};
  std::atomic<bool> front_stop_{false};
  std::atomic<bool> watchdog_stop_{false};
  std::atomic<bool> stall_consumed_{false};
  bool shut_down_ = false;
  std::mutex shutdown_mu_;

  std::unordered_map<std::uint64_t, Connection> conns_;  // front thread only
  std::uint64_t next_conn_id_ = 1;                       // front thread only
};

}  // namespace spider::serve
