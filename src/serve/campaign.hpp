#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "sim/cancel.hpp"
#include "trace/experiment.hpp"

namespace spider::serve {

/// Aggregate statistics of a seed campaign. absorb() must be called in
/// ascending-seed order — OnlineStats::merge is order-sensitive in the
/// last bits, and the campaign's merge-equals-serial guarantee is defined
/// against the serial pass's ascending order.
struct CampaignStats {
  std::size_t runs = 0;
  OnlineStats throughput_kBps;  ///< across runs' average throughput
  OnlineStats connectivity;     ///< across runs' connectivity fraction
  OnlineStats switch_latency_ms;  ///< merged per-run accumulators
  std::uint64_t total_bytes = 0;
  std::uint64_t switches = 0;
  std::uint64_t joins_attempted = 0;
  std::uint64_t assoc_succeeded = 0;
  std::uint64_t dhcp_succeeded = 0;
  std::uint64_t e2e_succeeded = 0;

  void absorb(const RunStats& run);

  /// Exact-round-trip textual digest of every aggregate — two campaigns
  /// (or a campaign and a serial sweep) agree iff their digests are
  /// byte-identical.
  std::string digest() const;
};

/// One seed that exhausted its attempts (or was cancelled / rejected).
struct SeedFailure {
  std::uint64_t seed = 0;
  std::string kind;     ///< wire error kind or "unreachable"/"cancelled"
  std::string message;
};

struct CampaignConfig {
  /// Socket paths of the scenario servers to shard across (≥ 1). Each
  /// server gets `clients_per_server` worker threads, all feeding from one
  /// shared seed queue, so a dead server's share fails over to the rest.
  std::vector<std::string> servers;
  std::size_t clients_per_server = 1;

  trace::ScenarioConfig base;   ///< template; seed is overridden per run
  std::uint64_t first_seed = 1;
  std::size_t num_seeds = 0;    ///< seeds first_seed .. first_seed+num-1

  double deadline_ms = 0.0;     ///< per-run server-side deadline (0 = none)
  /// Client-side wait for a response before the seed is re-dispatched
  /// (covers both slow servers and dead ones).
  double response_timeout_ms = 60000.0;
  int max_attempts = 5;         ///< per seed, across all servers
  double backoff_initial_ms = 10.0;  ///< doubles per attempt, capped below
  double backoff_max_ms = 500.0;

  /// JSONL journal: one {"seed":N,"result":{...}} line per completed seed,
  /// appended and flushed as results arrive. On start, seeds already in
  /// the journal are not re-run (resume after a crash or ^C). Empty
  /// disables journaling.
  std::string journal_path;

  /// Campaign-wide stop (e.g. SIGINT): pending seeds are reported as
  /// "cancelled" failures and workers return promptly. Not owned.
  sim::CancelToken* cancel = nullptr;
};

struct CampaignReport {
  std::size_t completed = 0;  ///< seeds with a result (including resumed)
  std::size_t resumed = 0;    ///< of those, satisfied from the journal
  std::size_t retries = 0;    ///< re-dispatch count across all seeds
  std::vector<SeedFailure> failures;
  CampaignStats merged;       ///< ascending-seed merge of all results

  bool ok() const { return failures.empty(); }
};

/// Runs the seed campaign described by `config` against the given servers.
/// Fault-tolerance contract (DESIGN.md §11): per-seed retry with
/// exponential backoff, "overloaded" rejections honoured via their
/// retry_after hint, timed-out / failed / unreachable dispatches re-queued
/// for any live server, and completed seeds journaled so an interrupted
/// campaign resumes instead of recomputing.
CampaignReport run_campaign(const CampaignConfig& config);

/// The serial oracle: the same seeds run in-process through
/// trace::ScenarioRunner and merged in ascending order. A campaign over
/// any number of servers/workers must produce a byte-identical digest.
CampaignStats serial_campaign_stats(const trace::ScenarioConfig& base,
                                    std::uint64_t first_seed,
                                    std::size_t num_seeds,
                                    std::size_t jobs = 0);

}  // namespace spider::serve
