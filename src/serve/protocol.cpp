#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "trace/scenario_json.hpp"

namespace spider::serve {

using util::Json;
using util::json_escape;
using util::json_number;

RunStats RunStats::from_result(const trace::ScenarioResult& result) {
  RunStats s;
  s.completed = result.completed;
  s.avg_throughput_kBps = result.avg_throughput_kBps;
  s.connectivity = result.connectivity;
  s.total_bytes = result.total_bytes;
  s.switches = result.switches;
  s.joins_attempted = result.joins_attempted;
  s.assoc_succeeded = result.assoc_succeeded;
  s.dhcp_succeeded = result.dhcp_succeeded;
  s.e2e_succeeded = result.e2e_succeeded;
  s.switch_latency_ms = result.switch_latency_ms;
  s.sim_seconds = result.perf.sim_seconds;
  s.events_popped = result.perf.events_popped;
  return s;
}

void RunStats::write_json(std::ostream& os) const {
  os << "{\"completed\":" << (completed ? "true" : "false")
     << ",\"avg_throughput_kBps\":" << json_number(avg_throughput_kBps)
     << ",\"connectivity\":" << json_number(connectivity)
     << ",\"total_bytes\":" << total_bytes << ",\"switches\":" << switches
     << ",\"joins_attempted\":" << joins_attempted
     << ",\"assoc_succeeded\":" << assoc_succeeded
     << ",\"dhcp_succeeded\":" << dhcp_succeeded
     << ",\"e2e_succeeded\":" << e2e_succeeded << ",\"switch_latency_ms\":{"
     << "\"n\":" << switch_latency_ms.count()
     << ",\"mean\":" << json_number(switch_latency_ms.mean())
     << ",\"m2\":" << json_number(switch_latency_ms.m2())
     << ",\"min\":" << json_number(switch_latency_ms.min())
     << ",\"max\":" << json_number(switch_latency_ms.max())
     << ",\"sum\":" << json_number(switch_latency_ms.sum()) << '}'
     << ",\"sim_seconds\":" << json_number(sim_seconds)
     << ",\"events_popped\":" << events_popped << '}';
}

std::optional<RunStats> RunStats::from_json(const Json& json) {
  if (!json.is_object()) return std::nullopt;
  RunStats s;
  const auto number = [&json](const char* key, double fallback) {
    const Json* v = json.find(key);
    return v != nullptr ? v->number_or(fallback) : fallback;
  };
  const Json* completed = json.find("completed");
  s.completed = completed != nullptr && completed->bool_or(false);
  s.avg_throughput_kBps = number("avg_throughput_kBps", 0.0);
  s.connectivity = number("connectivity", 0.0);
  s.total_bytes = static_cast<std::uint64_t>(number("total_bytes", 0.0));
  s.switches = static_cast<std::uint64_t>(number("switches", 0.0));
  s.joins_attempted =
      static_cast<std::uint64_t>(number("joins_attempted", 0.0));
  s.assoc_succeeded =
      static_cast<std::uint64_t>(number("assoc_succeeded", 0.0));
  s.dhcp_succeeded = static_cast<std::uint64_t>(number("dhcp_succeeded", 0.0));
  s.e2e_succeeded = static_cast<std::uint64_t>(number("e2e_succeeded", 0.0));
  s.sim_seconds = number("sim_seconds", 0.0);
  s.events_popped = static_cast<std::uint64_t>(number("events_popped", 0.0));
  const Json* lat = json.find("switch_latency_ms");
  if (lat != nullptr && lat->is_object()) {
    const auto lat_num = [lat](const char* key) {
      const Json* v = lat->find(key);
      return v != nullptr ? v->number_or(0.0) : 0.0;
    };
    s.switch_latency_ms = OnlineStats::from_moments(
        static_cast<std::size_t>(lat_num("n")), lat_num("mean"),
        lat_num("m2"), lat_num("min"), lat_num("max"), lat_num("sum"));
  }
  return s;
}

// Scenario serde lives in trace/scenario_json.{hpp,cpp} — one shared
// round trip for the server, the campaign runner, and the trace tooling.
// These forwarders keep the serve-facing names stable.
void write_scenario_json(std::ostream& os,
                         const trace::ScenarioConfig& config) {
  trace::write_scenario_json(os, config);
}

std::string scenario_to_json(const trace::ScenarioConfig& config) {
  return trace::scenario_to_json(config);
}

bool parse_scenario(const Json& json, trace::ScenarioConfig* config,
                    std::string* error) {
  return trace::parse_scenario_json(json, config, error);
}

std::string make_ok_run_response(const std::string& id,
                                 const RunStats& stats) {
  std::ostringstream os;
  os << "{\"id\":\"" << json_escape(id) << "\",\"ok\":true,\"result\":";
  stats.write_json(os);
  os << '}';
  return os.str();
}

namespace {

std::string error_envelope(const std::string& id, const char* kind,
                           const std::string& message, double retry_after_ms,
                           const RunStats* partial) {
  std::ostringstream os;
  os << "{\"id\":\"" << json_escape(id)
     << "\",\"ok\":false,\"error\":{\"kind\":\"" << kind << "\",\"message\":\""
     << json_escape(message) << "\"}";
  if (retry_after_ms > 0.0) {
    os << ",\"retry_after_ms\":" << json_number(retry_after_ms);
  }
  if (partial != nullptr) {
    os << ",\"partial\":";
    partial->write_json(os);
  }
  os << '}';
  return os.str();
}

}  // namespace

std::string make_error_response(const std::string& id,
                                const trace::RunError& error,
                                double retry_after_ms,
                                const RunStats* partial) {
  return error_envelope(id, to_string(error.kind), error.message,
                        retry_after_ms, partial);
}

std::string make_reject_response(const std::string& id, const char* kind,
                                 const std::string& message,
                                 double retry_after_ms) {
  return error_envelope(id, kind, message, retry_after_ms, nullptr);
}

std::string make_pong_response(const std::string& id) {
  return "{\"id\":\"" + json_escape(id) + "\",\"ok\":true,\"pong\":true}";
}

}  // namespace spider::serve
