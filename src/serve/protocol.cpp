#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

namespace spider::serve {

using util::Json;
using util::json_escape;
using util::json_number;

RunStats RunStats::from_result(const trace::ScenarioResult& result) {
  RunStats s;
  s.completed = result.completed;
  s.avg_throughput_kBps = result.avg_throughput_kBps;
  s.connectivity = result.connectivity;
  s.total_bytes = result.total_bytes;
  s.switches = result.switches;
  s.joins_attempted = result.joins_attempted;
  s.assoc_succeeded = result.assoc_succeeded;
  s.dhcp_succeeded = result.dhcp_succeeded;
  s.e2e_succeeded = result.e2e_succeeded;
  s.switch_latency_ms = result.switch_latency_ms;
  s.sim_seconds = result.perf.sim_seconds;
  s.events_popped = result.perf.events_popped;
  return s;
}

void RunStats::write_json(std::ostream& os) const {
  os << "{\"completed\":" << (completed ? "true" : "false")
     << ",\"avg_throughput_kBps\":" << json_number(avg_throughput_kBps)
     << ",\"connectivity\":" << json_number(connectivity)
     << ",\"total_bytes\":" << total_bytes << ",\"switches\":" << switches
     << ",\"joins_attempted\":" << joins_attempted
     << ",\"assoc_succeeded\":" << assoc_succeeded
     << ",\"dhcp_succeeded\":" << dhcp_succeeded
     << ",\"e2e_succeeded\":" << e2e_succeeded << ",\"switch_latency_ms\":{"
     << "\"n\":" << switch_latency_ms.count()
     << ",\"mean\":" << json_number(switch_latency_ms.mean())
     << ",\"m2\":" << json_number(switch_latency_ms.m2())
     << ",\"min\":" << json_number(switch_latency_ms.min())
     << ",\"max\":" << json_number(switch_latency_ms.max())
     << ",\"sum\":" << json_number(switch_latency_ms.sum()) << '}'
     << ",\"sim_seconds\":" << json_number(sim_seconds)
     << ",\"events_popped\":" << events_popped << '}';
}

std::optional<RunStats> RunStats::from_json(const Json& json) {
  if (!json.is_object()) return std::nullopt;
  RunStats s;
  const auto number = [&json](const char* key, double fallback) {
    const Json* v = json.find(key);
    return v != nullptr ? v->number_or(fallback) : fallback;
  };
  const Json* completed = json.find("completed");
  s.completed = completed != nullptr && completed->bool_or(false);
  s.avg_throughput_kBps = number("avg_throughput_kBps", 0.0);
  s.connectivity = number("connectivity", 0.0);
  s.total_bytes = static_cast<std::uint64_t>(number("total_bytes", 0.0));
  s.switches = static_cast<std::uint64_t>(number("switches", 0.0));
  s.joins_attempted =
      static_cast<std::uint64_t>(number("joins_attempted", 0.0));
  s.assoc_succeeded =
      static_cast<std::uint64_t>(number("assoc_succeeded", 0.0));
  s.dhcp_succeeded = static_cast<std::uint64_t>(number("dhcp_succeeded", 0.0));
  s.e2e_succeeded = static_cast<std::uint64_t>(number("e2e_succeeded", 0.0));
  s.sim_seconds = number("sim_seconds", 0.0);
  s.events_popped = static_cast<std::uint64_t>(number("events_popped", 0.0));
  const Json* lat = json.find("switch_latency_ms");
  if (lat != nullptr && lat->is_object()) {
    const auto lat_num = [lat](const char* key) {
      const Json* v = lat->find(key);
      return v != nullptr ? v->number_or(0.0) : 0.0;
    };
    s.switch_latency_ms = OnlineStats::from_moments(
        static_cast<std::size_t>(lat_num("n")), lat_num("mean"),
        lat_num("m2"), lat_num("min"), lat_num("max"), lat_num("sum"));
  }
  return s;
}

namespace {

const char* to_wire(trace::DriverKind kind) {
  switch (kind) {
    case trace::DriverKind::kSpider: return "spider";
    case trace::DriverKind::kStock: return "stock";
    case trace::DriverKind::kFatVap: return "fatvap";
  }
  return "?";
}

bool driver_from_wire(const std::string& name, trace::DriverKind* out) {
  if (name == "spider") *out = trace::DriverKind::kSpider;
  else if (name == "stock") *out = trace::DriverKind::kStock;
  else if (name == "fatvap") *out = trace::DriverKind::kFatVap;
  else return false;
  return true;
}

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

void write_scenario_json(std::ostream& os,
                         const trace::ScenarioConfig& config) {
  os << "{\"seed\":" << config.seed
     << ",\"duration_s\":" << json_number(to_seconds(config.duration))
     << ",\"speed_mps\":" << json_number(config.speed_mps)
     << ",\"clients\":" << config.clients
     << ",\"shards\":" << config.shards
     << ",\"metrics_bin_s\":" << json_number(to_seconds(config.metrics_bin))
     << ",\"driver\":\"" << to_wire(config.driver) << '"'
     << ",\"adaptive\":" << (config.adaptive ? "true" : "false")
     << ",\"num_interfaces\":" << config.spider.num_interfaces
     << ",\"mode\":{\"period_ms\":"
     << json_number(to_millis(config.spider.mode.period)) << ",\"fractions\":[";
  bool first = true;
  for (const auto& [channel, fraction] : config.spider.mode.fractions) {
    if (!first) os << ',';
    first = false;
    os << '[' << channel << ',' << json_number(fraction) << ']';
  }
  os << "]}"
     << ",\"neighbor_index\":\""
     << (config.neighbor_index == phy::NeighborIndex::kGrid   ? "grid"
         : config.neighbor_index == phy::NeighborIndex::kAuto ? "auto"
                                                              : "brute")
     << '"' << ",\"grid_cell_m\":" << json_number(config.grid_cell_m);
  if (config.city) {
    os << ",\"city\":{\"width_m\":" << json_number(config.city->width_m)
       << ",\"height_m\":" << json_number(config.city->height_m)
       << ",\"block_m\":" << json_number(config.city->block_m)
       << ",\"aps_per_km2\":" << json_number(config.city->aps_per_km2) << '}';
  } else {
    os << ",\"road_length_m\":" << json_number(config.deployment.road_length_m)
       << ",\"aps_per_km\":" << json_number(config.deployment.aps_per_km);
  }
  os << '}';
}

std::string scenario_to_json(const trace::ScenarioConfig& config) {
  std::ostringstream os;
  write_scenario_json(os, config);
  return os.str();
}

bool parse_scenario(const Json& json, trace::ScenarioConfig* config,
                    std::string* error) {
  if (!json.is_object()) {
    return set_error(error, "scenario must be a JSON object");
  }
  trace::ScenarioConfig out;  // protocol defaults = library defaults
  for (const auto& [key, value] : json.members()) {
    if (key == "seed") {
      out.seed = static_cast<std::uint64_t>(value.number_or(1.0));
    } else if (key == "duration_s") {
      out.duration = sec(value.number_or(0.0));
    } else if (key == "speed_mps") {
      out.speed_mps = value.number_or(-1.0);
    } else if (key == "clients") {
      out.clients = static_cast<int>(value.number_or(0.0));
    } else if (key == "shards") {
      // Non-numeric values resolve to -1 so validate() rejects them as
      // invalid_config instead of silently running a different formation.
      out.shards = static_cast<int>(value.number_or(-1.0));
    } else if (key == "metrics_bin_s") {
      out.metrics_bin = sec(value.number_or(0.0));
    } else if (key == "driver") {
      if (!value.is_string() ||
          !driver_from_wire(value.string_value(), &out.driver)) {
        return set_error(error, "driver must be spider|stock|fatvap");
      }
    } else if (key == "adaptive") {
      out.adaptive = value.bool_or(false);
    } else if (key == "num_interfaces") {
      out.spider.num_interfaces =
          static_cast<std::size_t>(value.number_or(0.0));
    } else if (key == "mode") {
      const Json* period = value.find("period_ms");
      const Json* fractions = value.find("fractions");
      if (!value.is_object() || period == nullptr || fractions == nullptr ||
          !fractions->is_array()) {
        return set_error(error, "mode needs period_ms and fractions");
      }
      core::OperationMode mode;
      mode.period = msec(static_cast<std::int64_t>(period->number_or(0.0)));
      for (const Json& pair : fractions->elements()) {
        if (!pair.is_array() || pair.elements().size() != 2) {
          return set_error(error, "mode fraction entries are [channel,frac]");
        }
        mode.fractions.emplace_back(
            static_cast<wire::Channel>(pair.elements()[0].number_or(0.0)),
            pair.elements()[1].number_or(0.0));
      }
      out.spider.mode = mode;
    } else if (key == "neighbor_index") {
      const std::string name = value.string_or("");
      if (name == "grid") {
        out.neighbor_index = phy::NeighborIndex::kGrid;
      } else if (name == "brute") {
        out.neighbor_index = phy::NeighborIndex::kBruteForce;
      } else if (name == "auto") {
        out.neighbor_index = phy::NeighborIndex::kAuto;
      } else {
        return set_error(error, "neighbor_index must be grid|brute|auto");
      }
    } else if (key == "grid_cell_m") {
      out.grid_cell_m = value.number_or(-1.0);
    } else if (key == "road_length_m") {
      out.deployment.road_length_m = value.number_or(0.0);
    } else if (key == "aps_per_km") {
      out.deployment.aps_per_km = value.number_or(-1.0);
    } else if (key == "city") {
      mob::CityGridConfig city;
      if (!value.is_object()) {
        return set_error(error, "city must be a JSON object");
      }
      for (const auto& [ckey, cvalue] : value.members()) {
        if (ckey == "width_m") city.width_m = cvalue.number_or(0.0);
        else if (ckey == "height_m") city.height_m = cvalue.number_or(0.0);
        else if (ckey == "block_m") city.block_m = cvalue.number_or(0.0);
        else if (ckey == "aps_per_km2") {
          city.aps_per_km2 = cvalue.number_or(-1.0);
        } else {
          return set_error(error, "unknown city key '" + ckey + "'");
        }
      }
      out.city = city;
    } else {
      // Strict: a dropped key would silently run a different experiment
      // than the client intended.
      return set_error(error, "unknown scenario key '" + key + "'");
    }
  }
  *config = std::move(out);
  return true;
}

std::string make_ok_run_response(const std::string& id,
                                 const RunStats& stats) {
  std::ostringstream os;
  os << "{\"id\":\"" << json_escape(id) << "\",\"ok\":true,\"result\":";
  stats.write_json(os);
  os << '}';
  return os.str();
}

namespace {

std::string error_envelope(const std::string& id, const char* kind,
                           const std::string& message, double retry_after_ms,
                           const RunStats* partial) {
  std::ostringstream os;
  os << "{\"id\":\"" << json_escape(id)
     << "\",\"ok\":false,\"error\":{\"kind\":\"" << kind << "\",\"message\":\""
     << json_escape(message) << "\"}";
  if (retry_after_ms > 0.0) {
    os << ",\"retry_after_ms\":" << json_number(retry_after_ms);
  }
  if (partial != nullptr) {
    os << ",\"partial\":";
    partial->write_json(os);
  }
  os << '}';
  return os.str();
}

}  // namespace

std::string make_error_response(const std::string& id,
                                const trace::RunError& error,
                                double retry_after_ms,
                                const RunStats* partial) {
  return error_envelope(id, to_string(error.kind), error.message,
                        retry_after_ms, partial);
}

std::string make_reject_response(const std::string& id, const char* kind,
                                 const std::string& message,
                                 double retry_after_ms) {
  return error_envelope(id, kind, message, retry_after_ms, nullptr);
}

std::string make_pong_response(const std::string& id) {
  return "{\"id\":\"" + json_escape(id) + "\",\"ok\":true,\"pong\":true}";
}

}  // namespace spider::serve
