#include "serve/client.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

namespace spider::serve {

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), inbox_(std::move(other.inbox_)) {}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    disconnect();
    fd_ = std::exchange(other.fd_, -1);
    inbox_ = std::move(other.inbox_);
  }
  return *this;
}

bool LineClient::connect_to(const std::string& socket_path,
                            std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    disconnect();
    return false;
  };
  disconnect();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path empty or longer than sun_path");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("socket(): " + std::string(strerror(errno)));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("connect(" + socket_path +
                "): " + std::string(strerror(errno)));
  }
  return true;
}

void LineClient::disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  inbox_.clear();
}

bool LineClient::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed += '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    disconnect();
    return false;
  }
  return true;
}

std::optional<std::string> LineClient::recv_line(double timeout_ms) {
  using clock = std::chrono::steady_clock;
  const bool bounded = timeout_ms >= 0.0;
  const clock::time_point deadline =
      clock::now() + std::chrono::microseconds(
                         static_cast<std::int64_t>(timeout_ms * 1e3));
  for (;;) {
    const std::size_t nl = inbox_.find('\n');
    if (nl != std::string::npos) {
      std::string line = inbox_.substr(0, nl);
      inbox_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (fd_ < 0) return std::nullopt;

    int wait_ms = -1;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - clock::now());
      if (left.count() <= 0) return std::nullopt;  // timeout, still connected
      wait_ms = static_cast<int>(left.count()) + 1;
    }
    pollfd p{fd_, POLLIN, 0};
    const int ready = ::poll(&p, 1, wait_ms);
    if (ready == 0) return std::nullopt;  // timeout
    if (ready < 0) {
      if (errno == EINTR) continue;
      disconnect();
      return std::nullopt;
    }
    char buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      inbox_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    disconnect();  // EOF or hard error; a buffered line may still be left
    if (inbox_.find('\n') != std::string::npos) continue;
    return std::nullopt;
  }
}

}  // namespace spider::serve
