#include "serve/server.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

namespace spider::serve {

namespace {

constexpr std::size_t kReadChunk = 4096;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Best-effort non-blocking send of as much of `buf` as the socket takes;
/// returns false when the connection is dead.
bool flush_some(int fd, std::string& buf) {
  while (!buf.empty()) {
    const ssize_t n = ::send(fd, buf.data(), buf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      buf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string string_field(const util::Json& json, const char* key) {
  const util::Json* v = json.find(key);
  return v != nullptr ? v->string_or("") : std::string();
}

}  // namespace

ScenarioServer::ScenarioServer(ServerConfig config)
    : config_(std::move(config)),
      runner_(trace::RunnerOptions{.repetitions = 1,
                                   .jobs = 1,
                                   .tracing = config_.tracing}) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.queue_depth == 0) config_.queue_depth = 1;
}

ScenarioServer::~ScenarioServer() { shutdown(/*cancel_inflight=*/true); }

bool ScenarioServer::start(std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : wake_fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    return false;
  };
  if (running_) return fail("server already running");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path empty or longer than sun_path");
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket(): " + std::string(strerror(errno)));
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind(" + config_.socket_path +
                "): " + std::string(strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return fail("listen(): " + std::string(strerror(errno)));
  }
  if (::pipe(wake_fds_) != 0) {
    return fail("pipe(): " + std::string(strerror(errno)));
  }
  if (!set_nonblocking(listen_fd_) || !set_nonblocking(wake_fds_[0]) ||
      !set_nonblocking(wake_fds_[1])) {
    return fail("fcntl(O_NONBLOCK): " + std::string(strerror(errno)));
  }

  draining_ = false;
  workers_stop_ = false;
  front_stop_ = false;
  watchdog_stop_ = false;
  shut_down_ = false;
  running_ = true;
  front_ = std::thread([this] { front_loop(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void ScenarioServer::shutdown(bool cancel_inflight) {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shut_down_ || !running_) return;
  shut_down_ = true;

  // 1. Stop admitting: the front answers new runs with "shutting-down".
  draining_ = true;
  if (cancel_inflight) {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (const Job& job : queue_) job.token->request_cancel();
    for (const auto& token : inflight_tokens_) token->request_cancel();
  }

  // 2. Drain: workers exit once the admitted queue is empty.
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    workers_stop_ = true;
  }
  jobs_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  // 3. Flush: the front keeps polling until the outboxes are empty (or a
  //    short grace period expires for clients that stopped reading).
  front_stop_ = true;
  wake_front();
  front_.join();

  watchdog_stop_ = true;
  watchdog_.join();

  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  ::unlink(config_.socket_path.c_str());
  running_ = false;
}

obs::MetricsRegistry ScenarioServer::metrics_snapshot() const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  return metrics_;
}

void ScenarioServer::count(std::string_view name, double v) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  metrics_.count(name, v);
}

void ScenarioServer::gauge_max(std::string_view name, double v) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  if (v > metrics_.value(name)) metrics_.gauge(name, v);
}

void ScenarioServer::wake_front() {
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

void ScenarioServer::push_response(std::uint64_t conn_id, std::string line) {
  {
    std::lock_guard<std::mutex> lock(responses_mu_);
    responses_.emplace_back(conn_id, std::move(line));
  }
  wake_front();
}

// ---------------------------------------------------------------------------
// Front thread: accept, read, parse, admit, write.
// ---------------------------------------------------------------------------

void ScenarioServer::handle_line(std::uint64_t conn_id, Connection& conn,
                                 const std::string& line) {
  count("serve.requests");
  std::string parse_error;
  const std::optional<util::Json> json = util::Json::parse(line, &parse_error);
  if (!json.has_value() || !json->is_object()) {
    count("serve.invalid_requests");
    conn.outbox += make_reject_response(
        "", "invalid-request",
        parse_error.empty() ? "request is not a JSON object" : parse_error);
    conn.outbox += '\n';
    return;
  }
  const std::string id = string_field(*json, "id");
  const std::string op = string_field(*json, "op");

  if (op == "ping") {
    conn.outbox += make_pong_response(id);
    conn.outbox += '\n';
    return;
  }
  if (op == "metrics") {
    std::ostringstream os;
    os << "{\"id\":\"" << util::json_escape(id)
       << "\",\"ok\":true,\"metrics\":";
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      metrics_.write_json(os);
    }
    os << "}\n";
    conn.outbox += os.str();
    return;
  }
  if (op != "run") {
    count("serve.invalid_requests");
    conn.outbox += make_reject_response(id, "invalid-request",
                                        "unknown op '" + op + "'");
    conn.outbox += '\n';
    return;
  }

  const util::Json* scenario_json = json->find("scenario");
  Job job;
  job.conn_id = conn_id;
  job.request_id = id;
  std::string scenario_error;
  if (scenario_json == nullptr ||
      !parse_scenario(*scenario_json, &job.scenario, &scenario_error)) {
    count("serve.invalid_requests");
    conn.outbox += make_reject_response(
        id, "invalid-request",
        scenario_error.empty() ? "missing scenario object" : scenario_error);
    conn.outbox += '\n';
    return;
  }
  if (const util::Json* deadline = json->find("deadline_ms")) {
    job.deadline_ms = deadline->number_or(0.0);
  }
  // Surface config errors at admission so a bad sweep fails fast instead
  // of occupying queue slots (run_bounded re-validates regardless).
  if (const std::vector<trace::ConfigIssue> issues = job.scenario.validate();
      !issues.empty()) {
    count("serve.rejected_invalid_config");
    conn.outbox += make_error_response(
        id, trace::RunError{trace::RunErrorKind::kInvalidConfig,
                            trace::join_issues(issues)});
    conn.outbox += '\n';
    return;
  }
  if (draining_) {
    count("serve.rejected_shutdown");
    conn.outbox +=
        make_reject_response(id, "shutting-down", "server is draining");
    conn.outbox += '\n';
    return;
  }

  job.token = std::make_shared<sim::CancelToken>();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    if (queue_.size() >= config_.queue_depth) {
      count("serve.rejected_overload");
      conn.outbox += make_reject_response(id, "overloaded",
                                          "admission queue full",
                                          config_.retry_after_ms);
      conn.outbox += '\n';
      return;
    }
    conn_tokens_[conn_id].push_back(job.token);
    queue_.push_back(std::move(job));
    gauge_max("serve.queue_peak", static_cast<double>(queue_.size()));
  }
  count("serve.admitted");
  jobs_cv_.notify_one();
}

void ScenarioServer::close_connection(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  conns_.erase(it);
  // Abandoned work is cancelled so it never occupies the pool.
  std::lock_guard<std::mutex> lock(jobs_mu_);
  auto tokens = conn_tokens_.find(conn_id);
  if (tokens != conn_tokens_.end()) {
    for (const std::weak_ptr<sim::CancelToken>& weak : tokens->second) {
      if (const std::shared_ptr<sim::CancelToken> token = weak.lock()) {
        if (token->request_cancel()) count("serve.cancelled_disconnect");
      }
    }
    conn_tokens_.erase(tokens);
  }
}

void ScenarioServer::front_loop() {
  using clock = std::chrono::steady_clock;
  std::optional<clock::time_point> flush_deadline;
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per fds[] entry (0 = none)

  while (true) {
    // Merge worker responses into connection outboxes; responses for
    // connections that went away are dropped.
    {
      std::lock_guard<std::mutex> lock(responses_mu_);
      while (!responses_.empty()) {
        auto& [conn_id, line] = responses_.front();
        auto it = conns_.find(conn_id);
        if (it != conns_.end()) {
          it->second.outbox += line;
          it->second.outbox += '\n';
        }
        responses_.pop_front();
      }
    }

    if (front_stop_) {
      bool pending = false;
      for (const auto& [conn_id, conn] : conns_) {
        pending = pending || !conn.outbox.empty();
      }
      if (!flush_deadline.has_value()) {
        flush_deadline = clock::now() + std::chrono::seconds(2);
      }
      if (!pending || clock::now() > *flush_deadline) break;
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    fd_conn.push_back(0);
    // Keep accepting while draining: late clients get an explicit
    // "shutting-down" rejection instead of a connection that hangs.
    if (listen_fd_ >= 0 && !front_stop_) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (const auto& [conn_id, conn] : conns_) {
      short events = POLLIN;
      if (!conn.outbox.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      fd_conn.push_back(conn_id);
    }

    const int ready = ::poll(fds.data(), fds.size(), 50);
    if (ready < 0 && errno != EINTR) break;

    std::vector<std::uint64_t> dead;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      const pollfd& p = fds[i];
      if (p.revents == 0) continue;
      if (p.fd == wake_fds_[0]) {
        char drain[64];
        while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {}
        continue;
      }
      if (p.fd == listen_fd_) {
        for (;;) {
          const int cfd = ::accept(listen_fd_, nullptr, nullptr);
          if (cfd < 0) break;
          if (!set_nonblocking(cfd)) {
            ::close(cfd);
            continue;
          }
          const std::uint64_t conn_id = next_conn_id_++;
          conns_.emplace(conn_id, Connection{cfd, {}, {}});
          count("serve.connections");
        }
        continue;
      }
      const std::uint64_t conn_id = fd_conn[i];
      auto it = conns_.find(conn_id);
      if (it == conns_.end()) continue;
      Connection& conn = it->second;
      bool alive = true;
      if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (p.revents & POLLIN) == 0) {
        alive = false;
      }
      if (alive && (p.revents & POLLIN) != 0) {
        char buf[kReadChunk];
        for (;;) {
          const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
          if (n > 0) {
            conn.inbox.append(buf, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) alive = false;  // orderly EOF
          if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
              errno != EINTR) {
            alive = false;
          }
          break;
        }
        std::size_t nl;
        while ((nl = conn.inbox.find('\n')) != std::string::npos) {
          std::string line = conn.inbox.substr(0, nl);
          conn.inbox.erase(0, nl + 1);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          if (!line.empty()) handle_line(conn_id, conn, line);
        }
      }
      if (alive && (p.revents & POLLOUT) != 0) {
        alive = flush_some(conn.fd, conn.outbox);
      }
      if (!alive) dead.push_back(conn_id);
    }
    for (const std::uint64_t conn_id : dead) close_connection(conn_id);
  }

  for (auto& [conn_id, conn] : conns_) ::close(conn.fd);
  conns_.clear();
}

// ---------------------------------------------------------------------------
// Worker threads: pop, arm, (maybe stall), run, respond.
// ---------------------------------------------------------------------------

void ScenarioServer::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock,
                    [this] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // workers_stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      const double effective = job.deadline_ms > 0.0
                                   ? job.deadline_ms
                                   : config_.default_deadline_ms;
      if (effective > 0.0) {
        job.token->arm_deadline_after(std::chrono::nanoseconds(
            static_cast<std::int64_t>(effective * 1e6)));
      }
      ++inflight_;
      inflight_tokens_.push_back(job.token);
      gauge_max("serve.inflight_peak", static_cast<double>(inflight_));
    }

    // Fault-injection stall (tests only): hold the run without touching
    // the deadline clock so the watchdog is the thread that trips it.
    if (config_.stall_seed != 0 && job.scenario.seed == config_.stall_seed &&
        !stall_consumed_.exchange(true)) {
      count("serve.stalls_injected");
      const auto slice = std::chrono::milliseconds(1);
      const int slices = static_cast<int>(config_.stall_ms);
      for (int s = 0; s < slices && !job.token->cancel_requested(); ++s) {
        std::this_thread::sleep_for(slice);
      }
    }

    const trace::RunOutcome outcome =
        runner_.run_bounded(job.scenario, job.token.get());

    std::string response;
    if (outcome.ok()) {
      count("serve.runs_ok");
      response = make_ok_run_response(job.request_id,
                                      RunStats::from_result(*outcome.result));
    } else {
      count("serve.runs_failed");
      std::optional<RunStats> partial;
      if (outcome.result.has_value()) {
        partial = RunStats::from_result(*outcome.result);
      }
      response = make_error_response(
          job.request_id, *outcome.error, /*retry_after_ms=*/0.0,
          partial.has_value() ? &*partial : nullptr);
    }
    // Retire the token BEFORE publishing the response: once the client
    // can see the result it may disconnect immediately, and a finished
    // run must not be counted as cancelled-by-disconnect.
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      --inflight_;
      inflight_tokens_.erase(
          std::find(inflight_tokens_.begin(), inflight_tokens_.end(),
                    job.token));
      auto tokens = conn_tokens_.find(job.conn_id);
      if (tokens != conn_tokens_.end()) {
        auto& list = tokens->second;
        list.erase(std::remove_if(
                       list.begin(), list.end(),
                       [&](const std::weak_ptr<sim::CancelToken>& weak) {
                         const auto token = weak.lock();
                         return token == nullptr || token == job.token;
                       }),
                   list.end());
        if (list.empty()) conn_tokens_.erase(tokens);
      }
    }

    push_response(job.conn_id, std::move(response));
  }
}

// ---------------------------------------------------------------------------
// Watchdog: the only thread that polls in-flight deadline clocks.
// ---------------------------------------------------------------------------

void ScenarioServer::watchdog_loop() {
  const auto period = std::chrono::microseconds(
      static_cast<std::int64_t>(config_.watchdog_period_ms * 1e3));
  while (!watchdog_stop_) {
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      for (const std::shared_ptr<sim::CancelToken>& token : inflight_tokens_) {
        if (token->trip_if_expired()) count("serve.watchdog_reaps");
      }
    }
    std::this_thread::sleep_for(period);
  }
}

}  // namespace spider::serve
