// spider_served: the resident scenario server (DESIGN.md §11).
//
//   spider_served --socket run.sock [--workers N] [--queue-depth N]
//                 [--deadline-ms X] [--retry-after-ms X] [--tracing]
//                 [--stall-seed N --stall-ms X]   (fault injection, tests)
//
// Serves newline-delimited JSON requests ({"op":"run"|"ping"|"metrics"})
// until SIGINT/SIGTERM, then drains in-flight runs, flushes responses,
// and exits 0. Malformed CLI usage exits 2.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--workers N] [--queue-depth N]\n"
               "          [--deadline-ms X] [--retry-after-ms X] [--tracing]\n"
               "          [--stall-seed N --stall-ms X]\n",
               argv0);
  std::exit(2);
}

double parse_number(const char* argv0, const char* flag, const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "%s: %s needs a number, got '%s'\n", argv0, flag,
                 value);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  spider::serve::ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(flag, "--socket") == 0) {
      config.socket_path = value();
    } else if (std::strcmp(flag, "--workers") == 0) {
      config.workers =
          static_cast<std::size_t>(parse_number(argv[0], flag, value()));
    } else if (std::strcmp(flag, "--queue-depth") == 0) {
      config.queue_depth =
          static_cast<std::size_t>(parse_number(argv[0], flag, value()));
    } else if (std::strcmp(flag, "--deadline-ms") == 0) {
      config.default_deadline_ms = parse_number(argv[0], flag, value());
    } else if (std::strcmp(flag, "--retry-after-ms") == 0) {
      config.retry_after_ms = parse_number(argv[0], flag, value());
    } else if (std::strcmp(flag, "--tracing") == 0) {
      config.tracing = true;
    } else if (std::strcmp(flag, "--stall-seed") == 0) {
      config.stall_seed =
          static_cast<std::uint64_t>(parse_number(argv[0], flag, value()));
    } else if (std::strcmp(flag, "--stall-ms") == 0) {
      config.stall_ms = parse_number(argv[0], flag, value());
    } else if (std::strcmp(flag, "--help") == 0) {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], flag);
      usage(argv[0]);
    }
  }
  if (config.socket_path.empty()) {
    std::fprintf(stderr, "%s: --socket is required\n", argv[0]);
    usage(argv[0]);
  }

  spider::serve::ScenarioServer server(config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    return 1;
  }
  std::fprintf(stderr, "spider_served: listening on %s (%zu workers)\n",
               config.socket_path.c_str(), server.config().workers);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "spider_served: draining...\n");
  server.shutdown();
  std::ostringstream metrics;
  server.metrics_snapshot().write_json(metrics);
  std::fprintf(stderr, "spider_served: %s\n", metrics.str().c_str());
  return 0;
}
