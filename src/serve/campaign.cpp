#include "serve/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "serve/client.hpp"
#include "trace/runner.hpp"
#include "util/json.hpp"

namespace spider::serve {

using util::Json;
using util::json_number;

void CampaignStats::absorb(const RunStats& run) {
  ++runs;
  throughput_kBps.add(run.avg_throughput_kBps);
  connectivity.add(run.connectivity);
  switch_latency_ms.merge(run.switch_latency_ms);
  total_bytes += run.total_bytes;
  switches += run.switches;
  joins_attempted += run.joins_attempted;
  assoc_succeeded += run.assoc_succeeded;
  dhcp_succeeded += run.dhcp_succeeded;
  e2e_succeeded += run.e2e_succeeded;
}

std::string CampaignStats::digest() const {
  const auto stats = [](const OnlineStats& s) {
    return std::to_string(s.count()) + ':' + json_number(s.mean()) + ':' +
           json_number(s.m2()) + ':' + json_number(s.min()) + ':' +
           json_number(s.max()) + ':' + json_number(s.sum());
  };
  std::ostringstream os;
  os << "runs=" << runs << " tput=" << stats(throughput_kBps)
     << " conn=" << stats(connectivity)
     << " lat=" << stats(switch_latency_ms) << " bytes=" << total_bytes
     << " switches=" << switches << " joins=" << joins_attempted
     << " assoc=" << assoc_succeeded << " dhcp=" << dhcp_succeeded
     << " e2e=" << e2e_succeeded;
  return os.str();
}

CampaignStats serial_campaign_stats(const trace::ScenarioConfig& base,
                                    std::uint64_t first_seed,
                                    std::size_t num_seeds, std::size_t jobs) {
  std::vector<trace::ScenarioConfig> configs(num_seeds, base);
  for (std::size_t i = 0; i < num_seeds; ++i) {
    configs[i].seed = first_seed + i;
  }
  trace::RunnerOptions options;
  options.jobs = jobs == 0 ? 1 : jobs;
  const trace::ScenarioRunner runner(options);
  const std::vector<trace::ScenarioResult> results = runner.run_many(configs);
  CampaignStats merged;
  for (const trace::ScenarioResult& result : results) {
    merged.absorb(RunStats::from_result(result));
  }
  return merged;
}

namespace {

/// Wire error kinds worth another attempt: the run may succeed on a
/// retry (or on another server). invalid-config never will.
bool retryable_kind(const std::string& kind) {
  return kind == "deadline-exceeded" || kind == "cancelled" ||
         kind == "internal" || kind == "overloaded" ||
         kind == "shutting-down";
}

struct Pending {
  std::uint64_t seed = 0;
  int attempts = 0;
};

struct Shared {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Pending> queue;
  std::size_t outstanding = 0;  ///< unresolved seeds (queued or in flight)
  std::size_t active_workers = 0;
  std::map<std::uint64_t, RunStats> results;  ///< ascending-seed merge order
  std::vector<SeedFailure> failures;
  std::size_t retries = 0;
  std::FILE* journal = nullptr;
  std::mutex journal_mu;
};

void journal_append(Shared& shared, std::uint64_t seed,
                    const RunStats& stats) {
  if (shared.journal == nullptr) return;
  std::ostringstream os;
  os << "{\"seed\":" << seed << ",\"result\":";
  stats.write_json(os);
  os << "}\n";
  const std::string line = os.str();
  std::lock_guard<std::mutex> lock(shared.journal_mu);
  std::fwrite(line.data(), 1, line.size(), shared.journal);
  std::fflush(shared.journal);
}

bool cancelled(const CampaignConfig& config) {
  return config.cancel != nullptr && config.cancel->should_stop();
}

/// One campaign worker, pinned to one server socket. Dispatches seeds from
/// the shared queue; on any retryable trouble the seed goes back to the
/// queue (for any worker), and a worker whose server stops answering
/// connects its way out or exits so the rest of the fleet absorbs the load.
void campaign_worker(const CampaignConfig& config, const std::string& socket,
                     Shared& shared) {
  LineClient client;
  int connect_failures = 0;
  constexpr int kMaxConnectFailures = 5;

  const auto resolve_ok = [&](std::uint64_t seed, const RunStats& stats) {
    journal_append(shared, seed, stats);
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.results.emplace(seed, stats);
    --shared.outstanding;
    shared.cv.notify_all();
  };
  const auto resolve_failed = [&](const Pending& p, std::string kind,
                                  std::string message) {
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.failures.push_back(
        SeedFailure{p.seed, std::move(kind), std::move(message)});
    --shared.outstanding;
    shared.cv.notify_all();
  };
  const auto requeue = [&](Pending p) {
    std::lock_guard<std::mutex> lock(shared.mu);
    ++shared.retries;
    shared.queue.push_back(p);
    shared.cv.notify_all();
  };
  const auto backoff_for = [&](int attempts) {
    double ms = config.backoff_initial_ms;
    for (int i = 1; i < attempts; ++i) ms *= 2.0;
    return std::min(ms, config.backoff_max_ms);
  };
  // A failed dispatch either goes around again or exhausts the seed.
  const auto retry_or_fail = [&](Pending p, const std::string& kind,
                                 const std::string& message,
                                 double wait_ms) {
    if (p.attempts >= config.max_attempts) {
      resolve_failed(p, kind, message);
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<std::int64_t>(std::max(wait_ms, 0.0) * 1e3)));
    requeue(p);
  };

  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(shared.mu);
      shared.cv.wait(lock, [&] {
        return !shared.queue.empty() || shared.outstanding == 0 ||
               cancelled(config);
      });
      if (shared.outstanding == 0) return;
      if (cancelled(config)) return;
      if (shared.queue.empty()) continue;  // others still in flight
      pending = shared.queue.front();
      shared.queue.pop_front();
    }
    ++pending.attempts;

    if (!client.connected()) {
      std::string error;
      if (!client.connect_to(socket, &error)) {
        ++connect_failures;
        // Give the seed back before deciding whether to keep trying.
        {
          std::lock_guard<std::mutex> lock(shared.mu);
          ++shared.retries;
          Pending back = pending;
          --back.attempts;  // a dead server is not the seed's fault
          shared.queue.push_back(back);
          shared.cv.notify_all();
        }
        if (connect_failures >= kMaxConnectFailures) return;
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<std::int64_t>(backoff_for(connect_failures) * 1e3)));
        continue;
      }
      connect_failures = 0;
    }

    trace::ScenarioConfig scenario = config.base;
    scenario.seed = pending.seed;
    std::ostringstream request;
    request << "{\"op\":\"run\",\"id\":\"s" << pending.seed << "\"";
    if (config.deadline_ms > 0.0) {
      request << ",\"deadline_ms\":" << json_number(config.deadline_ms);
    }
    request << ",\"scenario\":" << scenario_to_json(scenario) << '}';

    if (!client.send_line(request.str())) {
      retry_or_fail(pending, "unreachable", "send failed to " + socket,
                    backoff_for(pending.attempts));
      continue;
    }
    const std::optional<std::string> line =
        client.recv_line(config.response_timeout_ms);
    if (!line.has_value()) {
      // Timeout or disconnect. Drop the connection either way — a late
      // response must not be mistaken for the next seed's.
      client.disconnect();
      retry_or_fail(pending, "unreachable",
                    "no response from " + socket + " within " +
                        std::to_string(config.response_timeout_ms) + " ms",
                    backoff_for(pending.attempts));
      continue;
    }

    const std::optional<Json> json = Json::parse(*line);
    if (!json.has_value() || !json->is_object()) {
      retry_or_fail(pending, "protocol", "unparsable response from " + socket,
                    backoff_for(pending.attempts));
      continue;
    }
    const Json* ok = json->find("ok");
    if (ok != nullptr && ok->bool_or(false)) {
      const Json* result = json->find("result");
      std::optional<RunStats> stats;
      if (result != nullptr) stats = RunStats::from_json(*result);
      if (!stats.has_value() || !stats->completed) {
        retry_or_fail(pending, "protocol",
                      "ok response without a completed result",
                      backoff_for(pending.attempts));
        continue;
      }
      resolve_ok(pending.seed, *stats);
      continue;
    }

    const Json* error = json->find("error");
    std::string kind = "internal";
    std::string message;
    if (error != nullptr) {
      if (const Json* k = error->find("kind")) kind = k->string_or(kind);
      if (const Json* m = error->find("message")) {
        message = m->string_or("");
      }
    }
    if (!retryable_kind(kind)) {
      resolve_failed(pending, kind, message);
      continue;
    }
    double wait_ms = backoff_for(pending.attempts);
    if (const Json* retry_after = json->find("retry_after_ms")) {
      wait_ms = std::max(wait_ms, retry_after->number_or(0.0));
      --pending.attempts;  // backpressure is not the seed's fault
    }
    retry_or_fail(pending, kind, message, wait_ms);
  }
}

/// Loads completed seeds from an existing journal into `results`.
std::size_t load_journal(const std::string& path, std::uint64_t first_seed,
                         std::size_t num_seeds,
                         std::map<std::uint64_t, RunStats>& results) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  std::size_t loaded = 0;
  std::string line;
  int c;
  const auto flush_line = [&] {
    if (line.empty()) return;
    const std::optional<Json> json = Json::parse(line);
    line.clear();
    if (!json.has_value() || !json->is_object()) return;
    const Json* seed = json->find("seed");
    const Json* result = json->find("result");
    if (seed == nullptr || result == nullptr) return;
    const auto s = static_cast<std::uint64_t>(seed->number_or(0.0));
    if (s < first_seed || s >= first_seed + num_seeds) return;
    const std::optional<RunStats> stats = RunStats::from_json(*result);
    if (!stats.has_value() || !stats->completed) return;
    if (results.emplace(s, *stats).second) ++loaded;
  };
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      flush_line();
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  flush_line();
  std::fclose(f);
  return loaded;
}

}  // namespace

CampaignReport run_campaign(const CampaignConfig& config) {
  CampaignReport report;
  Shared shared;

  if (!config.journal_path.empty()) {
    report.resumed = load_journal(config.journal_path, config.first_seed,
                                  config.num_seeds, shared.results);
    shared.journal = std::fopen(config.journal_path.c_str(), "a");
  }

  for (std::size_t i = 0; i < config.num_seeds; ++i) {
    const std::uint64_t seed = config.first_seed + i;
    if (shared.results.find(seed) != shared.results.end()) continue;
    shared.queue.push_back(Pending{seed, 0});
  }
  shared.outstanding = shared.queue.size();

  if (shared.outstanding > 0 && !config.servers.empty()) {
    std::vector<std::thread> workers;
    const std::size_t per_server = std::max<std::size_t>(
        std::size_t{1}, config.clients_per_server);
    shared.active_workers = config.servers.size() * per_server;
    workers.reserve(shared.active_workers);
    for (const std::string& socket : config.servers) {
      for (std::size_t k = 0; k < per_server; ++k) {
        workers.emplace_back([&config, &socket, &shared] {
          campaign_worker(config, socket, shared);
          std::lock_guard<std::mutex> lock(shared.mu);
          if (--shared.active_workers == 0) shared.cv.notify_all();
        });
      }
    }
    // If every worker gives up (all servers unreachable) or the campaign
    // is cancelled, resolve what's left as failures so join() terminates.
    {
      std::unique_lock<std::mutex> lock(shared.mu);
      const auto fail_queued = [&shared, &config] {
        const bool was_cancelled = cancelled(config);
        for (const Pending& p : shared.queue) {
          shared.failures.push_back(SeedFailure{
              p.seed, was_cancelled ? "cancelled" : "unreachable",
              was_cancelled ? "campaign cancelled"
                            : "no server could run this seed"});
        }
        shared.outstanding -=
            std::min(shared.outstanding, shared.queue.size());
        shared.queue.clear();
      };
      shared.cv.wait(lock, [&] {
        return shared.outstanding == 0 || shared.active_workers == 0 ||
               cancelled(config);
      });
      fail_queued();
      // Seeds held by still-running workers resolve, fail, or requeue on
      // their own; wait for them, then sweep whatever they put back.
      shared.cv.wait(lock, [&] {
        return shared.outstanding == 0 || shared.active_workers == 0;
      });
      fail_queued();
      shared.outstanding = 0;  // release any worker still waiting
    }
    shared.cv.notify_all();
    for (std::thread& w : workers) w.join();
  } else if (shared.outstanding > 0) {
    std::lock_guard<std::mutex> lock(shared.mu);
    for (const Pending& p : shared.queue) {
      shared.failures.push_back(
          SeedFailure{p.seed, "unreachable", "no servers configured"});
    }
    shared.queue.clear();
    shared.outstanding = 0;
  }

  if (shared.journal != nullptr) std::fclose(shared.journal);

  report.completed = shared.results.size();
  report.retries = shared.retries;
  report.failures = std::move(shared.failures);
  std::sort(report.failures.begin(), report.failures.end(),
            [](const SeedFailure& a, const SeedFailure& b) {
              return a.seed < b.seed;
            });
  for (const auto& [seed, stats] : shared.results) {
    report.merged.absorb(stats);  // std::map iterates seeds ascending
  }
  return report;
}

}  // namespace spider::serve
