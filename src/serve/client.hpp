#pragma once

#include <optional>
#include <string>

namespace spider::serve {

/// Blocking newline-delimited-JSON client for a ScenarioServer socket.
/// One connection, one thread: the campaign runner opens one LineClient
/// per server worker thread. recv_line carries a timeout so a client can
/// distinguish a slow run from a dead server and re-dispatch the seed.
class LineClient {
 public:
  LineClient() = default;
  ~LineClient() { disconnect(); }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;

  /// Connects to the Unix stream socket at `socket_path`.
  bool connect_to(const std::string& socket_path, std::string* error = nullptr);
  void disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Sends `line` + '\n'. False when the connection is dead.
  bool send_line(const std::string& line);

  /// Blocks up to timeout_ms (<0 = forever) for one complete line.
  /// nullopt on timeout or connection death — connected() tells which.
  std::optional<std::string> recv_line(double timeout_ms = -1.0);

 private:
  int fd_ = -1;
  std::string inbox_;
};

}  // namespace spider::serve
