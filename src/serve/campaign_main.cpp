// spider_campaign: fault-tolerant seed-campaign client (DESIGN.md §11).
//
//   spider_campaign --server a.sock [--server b.sock ...] --seeds N
//                   [--first-seed N] [--conns N] [--deadline-ms X]
//                   [--timeout-ms X] [--max-attempts N] [--journal PATH]
//                   [--scenario-json JSON] [--duration-s X] [--speed-mps X]
//                   [--clients N] [--shards N] [--trace PATH]
//                   [--check-serial]
//
// Shards seeds first-seed .. first-seed+N-1 across the given servers,
// retries failed or timed-out seeds with exponential backoff, journals
// completed seeds for resume, and prints the ascending-seed merged
// statistics digest. --check-serial additionally runs the same seeds
// in-process and verifies the digests are byte-identical.
//
// --scenario-json seeds the base scenario from the shared scenario JSON
// round trip (the same format the serve protocol speaks, including
// client_mix and impairments); later flags override its fields. --trace
// replays a recorded channel-occupancy file (CSV/JSONL) as the campaign's
// impairment source.
//
// Exit codes: 0 all seeds completed (and digests match when checked),
// 1 some seeds failed or the serial check mismatched, 2 usage error,
// 130 interrupted by SIGINT/SIGTERM (journal left for resume).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/campaign.hpp"
#include "trace/scenario_json.hpp"

namespace {

spider::sim::CancelToken g_cancel;

void on_signal(int) { g_cancel.request_cancel(); }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --server PATH [--server PATH ...] --seeds N\n"
      "          [--first-seed N] [--conns N] [--deadline-ms X]\n"
      "          [--timeout-ms X] [--max-attempts N] [--journal PATH]\n"
      "          [--scenario-json JSON] [--duration-s X] [--speed-mps X]\n"
      "          [--clients N] [--shards N] [--trace PATH]\n"
      "          [--check-serial]\n",
      argv0);
  std::exit(2);
}

double parse_number(const char* argv0, const char* flag, const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "%s: %s needs a number, got '%s'\n", argv0, flag,
                 value);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  spider::serve::CampaignConfig config;
  config.cancel = &g_cancel;
  bool check_serial = false;
  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(flag, "--server") == 0) {
      config.servers.emplace_back(value());
    } else if (std::strcmp(flag, "--seeds") == 0) {
      config.num_seeds =
          static_cast<std::size_t>(parse_number(argv[0], flag, value()));
    } else if (std::strcmp(flag, "--first-seed") == 0) {
      config.first_seed =
          static_cast<std::uint64_t>(parse_number(argv[0], flag, value()));
    } else if (std::strcmp(flag, "--conns") == 0) {
      config.clients_per_server =
          static_cast<std::size_t>(parse_number(argv[0], flag, value()));
    } else if (std::strcmp(flag, "--deadline-ms") == 0) {
      config.deadline_ms = parse_number(argv[0], flag, value());
    } else if (std::strcmp(flag, "--timeout-ms") == 0) {
      config.response_timeout_ms = parse_number(argv[0], flag, value());
    } else if (std::strcmp(flag, "--max-attempts") == 0) {
      config.max_attempts =
          static_cast<int>(parse_number(argv[0], flag, value()));
    } else if (std::strcmp(flag, "--journal") == 0) {
      config.journal_path = value();
    } else if (std::strcmp(flag, "--scenario-json") == 0) {
      // The whole base scenario in one shot, via the shared serde; later
      // scenario flags override individual fields.
      std::string error;
      if (!spider::trace::parse_scenario_json(value(), &config.base, &error)) {
        std::fprintf(stderr, "%s: --scenario-json: %s\n", argv[0],
                     error.c_str());
        return 2;
      }
    } else if (std::strcmp(flag, "--trace") == 0) {
      config.base.impairments =
          spider::trace::ImpairmentSource::trace_file(value());
    } else if (std::strcmp(flag, "--duration-s") == 0) {
      config.base.duration = spider::sec(parse_number(argv[0], flag, value()));
    } else if (std::strcmp(flag, "--speed-mps") == 0) {
      config.base.speed_mps = parse_number(argv[0], flag, value());
    } else if (std::strcmp(flag, "--clients") == 0) {
      config.base.clients =
          static_cast<int>(parse_number(argv[0], flag, value()));
    } else if (std::strcmp(flag, "--shards") == 0) {
      // 0 = auto, 1 = serial, >1 = forced formation width; range-checked
      // by validate() below like every other scenario field.
      config.base.shards =
          static_cast<int>(parse_number(argv[0], flag, value()));
    } else if (std::strcmp(flag, "--check-serial") == 0) {
      check_serial = true;
    } else if (std::strcmp(flag, "--help") == 0) {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], flag);
      usage(argv[0]);
    }
  }
  if (config.servers.empty() || config.num_seeds == 0) {
    std::fprintf(stderr, "%s: --server and --seeds are required\n", argv[0]);
    usage(argv[0]);
  }
  const std::vector<spider::trace::ConfigIssue> issues =
      config.base.validate();
  if (!issues.empty()) {
    std::fprintf(stderr, "%s: invalid scenario: %s\n", argv[0],
                 spider::trace::join_issues(issues).c_str());
    return 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  const spider::serve::CampaignReport report =
      spider::serve::run_campaign(config);
  std::fprintf(stderr,
               "spider_campaign: %zu/%zu seeds completed "
               "(%zu from journal, %zu retries, %zu failed)\n",
               report.completed, config.num_seeds, report.resumed,
               report.retries, report.failures.size());
  for (const spider::serve::SeedFailure& failure : report.failures) {
    std::fprintf(stderr, "  seed %llu: %s (%s)\n",
                 static_cast<unsigned long long>(failure.seed),
                 failure.kind.c_str(), failure.message.c_str());
  }
  std::printf("%s\n", report.merged.digest().c_str());

  if (g_cancel.cancel_requested()) return 130;
  if (!report.ok()) return 1;
  if (check_serial) {
    const spider::serve::CampaignStats oracle =
        spider::serve::serial_campaign_stats(config.base, config.first_seed,
                                             config.num_seeds);
    if (oracle.digest() != report.merged.digest()) {
      std::fprintf(stderr, "spider_campaign: serial check MISMATCH\n  %s\n",
                   oracle.digest().c_str());
      return 1;
    }
    std::fprintf(stderr, "spider_campaign: serial check ok\n");
  }
  return 0;
}
