#include "wire/frame.hpp"

namespace spider::wire {

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kBeacon: return "Beacon";
    case FrameType::kProbeRequest: return "ProbeReq";
    case FrameType::kProbeResponse: return "ProbeResp";
    case FrameType::kAuthRequest: return "Auth";
    case FrameType::kAuthResponse: return "AuthResp";
    case FrameType::kAssocRequest: return "AssocReq";
    case FrameType::kAssocResponse: return "AssocResp";
    case FrameType::kDisassoc: return "Disassoc";
    case FrameType::kDeauth: return "Deauth";
    case FrameType::kData: return "Data";
    case FrameType::kNullData: return "NullData";
    case FrameType::kPsPoll: return "PsPoll";
  }
  return "?";
}

Frame make_data_frame(MacAddress src, MacAddress dst, Bssid bssid, PacketPtr packet) {
  Frame f;
  f.type = FrameType::kData;
  f.src = src;
  f.dst = dst;
  f.bssid = bssid;
  f.size_bytes = kDataHeaderBytes + (packet ? packet->size_bytes : 0);
  f.packet = std::move(packet);
  return f;
}

}  // namespace spider::wire
