#include "wire/packet.hpp"

namespace spider::wire {

const char* to_string(DhcpMessage::Type t) {
  switch (t) {
    case DhcpMessage::Type::kDiscover: return "DISCOVER";
    case DhcpMessage::Type::kOffer: return "OFFER";
    case DhcpMessage::Type::kRequest: return "REQUEST";
    case DhcpMessage::Type::kAck: return "ACK";
    case DhcpMessage::Type::kNak: return "NAK";
    case DhcpMessage::Type::kRelease: return "RELEASE";
  }
  return "?";
}

PacketPtr make_dhcp_packet(Ipv4 src, Ipv4 dst, DhcpMessage msg) {
  auto p = std::make_shared<Packet>();
  p->src = src;
  p->dst = dst;
  p->payload = msg;
  p->size_bytes = kIpHeaderBytes + kUdpHeaderBytes + kDhcpBodyBytes;
  return p;
}

PacketPtr make_icmp_packet(Ipv4 src, Ipv4 dst, IcmpEcho echo) {
  auto p = std::make_shared<Packet>();
  p->src = src;
  p->dst = dst;
  p->payload = echo;
  p->size_bytes = kIpHeaderBytes + kIcmpHeaderBytes + 56;  // standard ping
  return p;
}

PacketPtr make_tcp_packet(Ipv4 src, Ipv4 dst, TcpSegment segment) {
  auto p = std::make_shared<Packet>();
  p->src = src;
  p->dst = dst;
  p->size_bytes = kIpHeaderBytes + kTcpHeaderBytes + segment.payload_bytes;
  p->payload = segment;
  return p;
}

PacketPtr make_cbr_packet(Ipv4 src, Ipv4 dst, CbrDatagram datagram) {
  auto p = std::make_shared<Packet>();
  p->src = src;
  p->dst = dst;
  p->size_bytes = kIpHeaderBytes + kUdpHeaderBytes + datagram.payload_bytes;
  p->payload = datagram;
  return p;
}

}  // namespace spider::wire
