#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>

#include "util/time.hpp"
#include "wire/address.hpp"

namespace spider::wire {

/// ---- Layer-3+ payloads ------------------------------------------------
///
/// The simulator does not serialise bytes; packets carry typed payloads and
/// an explicit wire size used for transmission-time accounting. Each payload
/// struct mirrors only the protocol fields the reproduced behaviour depends
/// on.

/// DHCP message (RFC 2131 subset). The four-way DISCOVER/OFFER/REQUEST/ACK
/// exchange plus NAK is modelled; options beyond lease/server-id are not.
struct DhcpMessage {
  enum class Type { kDiscover, kOffer, kRequest, kAck, kNak, kRelease };

  Type type = Type::kDiscover;
  std::uint32_t xid = 0;           ///< transaction id chosen by the client
  MacAddress client_mac;
  Ipv4 offered_ip;                 ///< OFFER/REQUEST/ACK: the lease address
  Ipv4 server_id;                  ///< identifies the offering server
  Ipv4 gateway;                    ///< default route handed to the client
  Time lease_duration{0};
};

const char* to_string(DhcpMessage::Type t);

/// ICMP echo request/reply used by Spider's link-liveness prober.
struct IcmpEcho {
  bool reply = false;
  std::uint32_t id = 0;   ///< prober instance
  std::uint32_t seq = 0;
};

/// TCP segment. Sequence/ack numbers count bytes as in real TCP; the
/// payload itself is synthetic (only its length exists).
struct TcpSegment {
  std::uint64_t conn_id = 0;  ///< demultiplexing key (src/dst ports folded in)
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  bool syn = false;
  bool fin = false;
  bool is_ack = false;
  std::uint32_t payload_bytes = 0;
};

/// Opaque filler traffic (used by a few tests and workload generators).
struct RawBytes {
  std::size_t size = 0;
};

/// Constant-bit-rate datagram (VoIP-like traffic over UDP). Sequence
/// numbers detect loss; the send timestamp measures one-way delay/jitter.
struct CbrDatagram {
  std::uint32_t flow_id = 0;
  std::uint32_t seq = 0;
  Time sent_at{0};
  std::uint32_t payload_bytes = 0;
  bool subscribe = false;  ///< client->server: request the stream
};

using PacketPayload =
    std::variant<RawBytes, DhcpMessage, IcmpEcho, TcpSegment, CbrDatagram>;

/// An IP packet. `size_bytes` is the on-the-wire size including headers and
/// is what links and radios charge for.
struct Packet {
  Ipv4 src;
  Ipv4 dst;
  PacketPayload payload;
  std::size_t size_bytes = 0;

  template <typename T>
  const T* as() const {
    return std::get_if<T>(&payload);
  }
};

using PacketPtr = std::shared_ptr<const Packet>;

/// Canonical header sizes used when composing packets.
inline constexpr std::size_t kIpHeaderBytes = 20;
inline constexpr std::size_t kUdpHeaderBytes = 8;
inline constexpr std::size_t kTcpHeaderBytes = 20;
inline constexpr std::size_t kIcmpHeaderBytes = 8;
inline constexpr std::size_t kDhcpBodyBytes = 300;  ///< typical BOOTP frame
inline constexpr std::size_t kTcpMss = 1460;

PacketPtr make_dhcp_packet(Ipv4 src, Ipv4 dst, DhcpMessage msg);
PacketPtr make_icmp_packet(Ipv4 src, Ipv4 dst, IcmpEcho echo);
PacketPtr make_tcp_packet(Ipv4 src, Ipv4 dst, TcpSegment segment);
PacketPtr make_cbr_packet(Ipv4 src, Ipv4 dst, CbrDatagram datagram);

}  // namespace spider::wire
