#include "wire/address.hpp"

#include <cstdio>

namespace spider::wire {

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((raw_ >> 40) & 0xFF),
                static_cast<unsigned>((raw_ >> 32) & 0xFF),
                static_cast<unsigned>((raw_ >> 24) & 0xFF),
                static_cast<unsigned>((raw_ >> 16) & 0xFF),
                static_cast<unsigned>((raw_ >> 8) & 0xFF),
                static_cast<unsigned>(raw_ & 0xFF));
  return buf;
}

std::string Ipv4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (raw_ >> 24) & 0xFF,
                (raw_ >> 16) & 0xFF, (raw_ >> 8) & 0xFF, raw_ & 0xFF);
  return buf;
}

}  // namespace spider::wire
