#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace spider::wire {

/// 48-bit MAC address stored in the low bits of a u64. Addresses are
/// allocated sequentially by the test/experiment builders; the broadcast
/// address is all-ones as on real hardware.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::uint64_t raw) : raw_(raw & 0xFFFF'FFFF'FFFFULL) {}

  static constexpr MacAddress broadcast() { return MacAddress(0xFFFF'FFFF'FFFFULL); }
  constexpr bool is_broadcast() const { return raw_ == 0xFFFF'FFFF'FFFFULL; }
  constexpr bool is_null() const { return raw_ == 0; }
  constexpr std::uint64_t raw() const { return raw_; }

  std::string to_string() const;

  constexpr auto operator<=>(const MacAddress&) const = default;

 private:
  std::uint64_t raw_ = 0;
};

/// A BSSID is the MAC address of the AP-side interface of a BSS.
using Bssid = MacAddress;

/// IPv4 address (host byte order).
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t raw) : raw_(raw) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : raw_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
             (std::uint32_t{c} << 8) | d) {}

  constexpr bool is_null() const { return raw_ == 0; }
  constexpr std::uint32_t raw() const { return raw_; }

  /// Address with the host part replaced by `host` within a /24.
  constexpr Ipv4 with_host(std::uint8_t host) const {
    return Ipv4((raw_ & 0xFFFFFF00u) | host);
  }
  constexpr bool same_subnet24(Ipv4 other) const {
    return (raw_ & 0xFFFFFF00u) == (other.raw_ & 0xFFFFFF00u);
  }

  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4&) const = default;

 private:
  std::uint32_t raw_ = 0;
};

}  // namespace spider::wire

template <>
struct std::hash<spider::wire::MacAddress> {
  std::size_t operator()(const spider::wire::MacAddress& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.raw());
  }
};

template <>
struct std::hash<spider::wire::Ipv4> {
  std::size_t operator()(const spider::wire::Ipv4& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.raw());
  }
};
