#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wire/address.hpp"
#include "wire/packet.hpp"

namespace spider::wire {

/// 802.11 channel number (1-11 in the 2.4 GHz band). The paper schedules
/// over the orthogonal set {1, 6, 11}; the medium treats non-identical
/// channels as non-communicating.
using Channel = int;

inline constexpr Channel kOrthogonalChannels[] = {1, 6, 11};

/// Frame subtypes the reproduction models. Management frames cover the
/// scan/auth/assoc handshake; NullData carries the PSM bit; PsPoll retrieves
/// AP-buffered frames after a channel switch.
enum class FrameType {
  kBeacon,
  kProbeRequest,
  kProbeResponse,
  kAuthRequest,
  kAuthResponse,
  kAssocRequest,
  kAssocResponse,
  kDisassoc,
  kDeauth,
  kData,
  kNullData,
  kPsPoll,
};

const char* to_string(FrameType t);

/// An 802.11 MAC frame. As with packets, no bytes are serialised; the
/// explicit `size_bytes` drives airtime accounting.
struct Frame {
  FrameType type = FrameType::kData;
  MacAddress src;
  MacAddress dst;           ///< broadcast for beacons/probe requests
  Bssid bssid;
  std::size_t size_bytes = 0;

  bool power_mgmt = false;  ///< client->AP: "I am entering power-save"
  bool more_data = false;   ///< AP->client: more buffered frames pending

  std::string ssid;         ///< beacons / probe responses
  std::uint16_t status = 0; ///< auth/assoc response status (0 = success)
  std::uint16_t aid = 0;    ///< association id in AssocResponse
  /// Beacons: the TIM — association ids with frames buffered at the AP.
  std::vector<std::uint16_t> tim_aids;

  PacketPtr packet;         ///< payload of Data frames

  // Filled in by the medium at reception time.
  Channel channel = 0;
  double rssi_dbm = -100.0;
};

/// Canonical frame sizes (bytes, incl. MAC header) for airtime accounting.
inline constexpr std::size_t kMgmtFrameBytes = 60;
inline constexpr std::size_t kBeaconFrameBytes = 120;
inline constexpr std::size_t kNullFrameBytes = 30;
inline constexpr std::size_t kPsPollFrameBytes = 20;
inline constexpr std::size_t kDataHeaderBytes = 34;

/// Builds a data frame wrapping `packet` (adds the MAC header size).
Frame make_data_frame(MacAddress src, MacAddress dst, Bssid bssid, PacketPtr packet);

}  // namespace spider::wire
