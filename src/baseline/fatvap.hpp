#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "core/driver_base.hpp"
#include "core/virtual_iface.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "util/stats.hpp"

namespace spider::base {

/// FatVAP-style scheduling parameters.
struct FatVapConfig {
  /// Scheduling period (FatVAP keeps it under ~100 ms x APs; we default to
  /// the same D as Spider's experiments for comparability).
  Time period = msec(400);
  /// Channels the driver may scan/join (candidate set).
  std::vector<wire::Channel> channels = {1, 6, 11};
  /// Weight slots by measured per-AP goodput (FatVAP's f_i = R_i/W idea);
  /// equal slots otherwise.
  bool rate_weighted = true;
  /// EWMA factor for goodput estimation.
  double goodput_alpha = 0.3;
  /// Minimum slot share so a starved AP can still make progress.
  double min_share = 0.10;
  /// Dwell per channel while no AP is active (scan rotation).
  Time scan_dwell = msec(150);
  /// Insert a background scan slot every N data slots even while APs are
  /// active, so new APs on other channels can still be discovered.
  std::size_t scan_every = 8;
};

/// A FatVAP/Juggler-like driver (the prior work Spider argues against for
/// mobile use): time is sliced across *APs*, not channels. Each active
/// interface owns the card exclusively during its slot — even against a
/// sibling interface on the same channel — and sleeping interfaces rely on
/// AP-side PSM buffering. Joins therefore compete with data slots, which
/// is precisely the pathology §2 quantifies for mobile clients.
///
/// Scheduling discipline aside, the stack is identical to Spider's
/// (same MLME/DHCP/prober, same LinkManager policy), so benchmark deltas
/// isolate Design Choice 1 (channel- vs AP-based scheduling).
class FatVapDriver final : public core::DriverBase {
 public:
  FatVapDriver(sim::Simulator& simulator, phy::Medium& medium,
               std::uint64_t mac_base, phy::Radio::PositionFn position,
               core::SpiderConfig stack, FatVapConfig config);

  void start();

  // DriverBase surface.
  sim::Simulator& simulator() override { return sim_; }
  const core::SpiderConfig& config() const override { return stack_; }
  const core::OperationMode& mode() const override { return mode_; }
  mac::Scanner& scanner() override { return scanner_; }
  core::VirtualInterface& iface(std::size_t i) override { return *vifs_[i]; }
  std::size_t num_interfaces() const override { return vifs_.size(); }
  bool send_mgmt(wire::Frame frame, wire::Channel channel) override;
  void send_data(core::VirtualInterface& vif, wire::PacketPtr packet) override;

  phy::Radio& radio() { return radio_; }
  std::uint64_t slot_cycles() const { return cycles_; }
  std::uint64_t queue_drops() const { return queue_drops_; }

 private:
  static constexpr std::size_t kNoOwner = static_cast<std::size_t>(-1);

  void next_slot();
  void enter_vif_slot(std::size_t vif_index, Time dwell);
  void enter_scan_slot(Time dwell);
  std::vector<std::size_t> active_vifs() const;
  double share_of(std::size_t vif_index,
                  const std::vector<std::size_t>& active) const;
  void update_goodput();
  void drain_queue(std::size_t vif_index);
  void on_radio_frame(const wire::Frame& frame);
  void send_ps_frame(core::VirtualInterface& vif, bool power_save);

  sim::Simulator& sim_;
  core::SpiderConfig stack_;
  FatVapConfig config_;
  phy::Radio radio_;
  mac::Scanner scanner_;
  core::OperationMode mode_;
  std::vector<std::unique_ptr<core::VirtualInterface>> vifs_;
  std::vector<std::deque<wire::PacketPtr>> queues_;       // per interface
  std::vector<double> goodput_ewma_;                      // bytes per slot
  std::vector<std::uint64_t> rx_bytes_last_;

  bool started_ = false;
  std::size_t slot_owner_ = kNoOwner;
  std::size_t slot_cursor_ = 0;  ///< rotates through active interfaces
  std::size_t scan_cursor_ = 0;  ///< rotates through channels when idle
  std::uint64_t cycles_ = 0;
  std::uint64_t queue_drops_ = 0;
  sim::EventHandle slot_timer_;
};

}  // namespace spider::base
