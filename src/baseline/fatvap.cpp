#include "baseline/fatvap.hpp"

#include <algorithm>

namespace spider::base {

FatVapDriver::FatVapDriver(sim::Simulator& simulator, phy::Medium& medium,
                           std::uint64_t mac_base,
                           phy::Radio::PositionFn position,
                           core::SpiderConfig stack, FatVapConfig config)
    : sim_(simulator),
      stack_(std::move(stack)),
      config_(std::move(config)),
      radio_(medium, wire::MacAddress(mac_base), std::move(position),
             stack_.radio),
      scanner_(simulator, stack_.scanner),
      mode_(core::OperationMode::equal_split(config_.channels, config_.period)) {
  radio_.set_receiver([this](const wire::Frame& f) { on_radio_frame(f); });
  radio_.set_address_filter([this](wire::MacAddress a) {
    for (const auto& vif : vifs_) {
      if (vif->mac() == a) return true;
    }
    return false;
  });
  scanner_.set_prober([this] {
    if (radio_.switching()) return;
    wire::Frame probe;
    probe.type = wire::FrameType::kProbeRequest;
    probe.src = radio_.mac();
    probe.dst = wire::MacAddress::broadcast();
    probe.size_bytes = wire::kMgmtFrameBytes;
    radio_.send(std::move(probe));
  });

  vifs_.reserve(stack_.num_interfaces);
  queues_.resize(stack_.num_interfaces);
  goodput_ewma_.assign(stack_.num_interfaces, 0.0);
  rx_bytes_last_.assign(stack_.num_interfaces, 0);
  for (std::size_t i = 0; i < stack_.num_interfaces; ++i) {
    vifs_.push_back(std::make_unique<core::VirtualInterface>(
        simulator, *this, i, wire::MacAddress(mac_base + 1 + i), stack_));
  }
}

void FatVapDriver::start() {
  if (started_) return;
  started_ = true;
  scanner_.start();
  next_slot();
}

std::vector<std::size_t> FatVapDriver::active_vifs() const {
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < vifs_.size(); ++i) {
    if (!vifs_[i]->idle()) active.push_back(i);
  }
  return active;
}

double FatVapDriver::share_of(std::size_t vif_index,
                              const std::vector<std::size_t>& active) const {
  if (!config_.rate_weighted) return 1.0 / static_cast<double>(active.size());
  double total = 0.0;
  for (std::size_t i : active) total += std::max(1.0, goodput_ewma_[i]);
  const double raw = std::max(1.0, goodput_ewma_[vif_index]) / total;
  return std::max(config_.min_share, raw);
}

void FatVapDriver::update_goodput() {
  for (std::size_t i = 0; i < vifs_.size(); ++i) {
    const std::uint64_t now_bytes = vifs_[i]->rx_bytes();
    const double delta = static_cast<double>(now_bytes - rx_bytes_last_[i]);
    rx_bytes_last_[i] = now_bytes;
    goodput_ewma_[i] = config_.goodput_alpha * delta +
                       (1.0 - config_.goodput_alpha) * goodput_ewma_[i];
  }
}

void FatVapDriver::next_slot() {
  // Close the departing slot: its owner (if associated) goes to power-save
  // so the AP buffers for it. Same-channel siblings are *also* asleep —
  // that is the per-AP reservation Spider's Design Choice 1 removes.
  if (slot_owner_ != kNoOwner && vifs_[slot_owner_]->mlme().associated()) {
    send_ps_frame(*vifs_[slot_owner_], /*power_save=*/true);
  }
  slot_owner_ = kNoOwner;
  update_goodput();

  const auto active = active_vifs();
  if (active.empty() ||
      (config_.scan_every > 0 && cycles_ > 0 &&
       cycles_ % config_.scan_every == 0 &&
       active.size() < vifs_.size())) {
    // Either nothing is joined, or it is time for a background scan slot
    // (only while spare interfaces could still use new APs).
    ++cycles_;
    enter_scan_slot(config_.scan_dwell);
    return;
  }
  ++cycles_;
  slot_cursor_ = (slot_cursor_ + 1) % active.size();
  const std::size_t owner = active[slot_cursor_];
  const double share = share_of(owner, active);
  const Time dwell = std::max(
      msec(5), Time{static_cast<std::int64_t>(
                   share * static_cast<double>(config_.period.count()))});
  enter_vif_slot(owner, dwell);
}

void FatVapDriver::enter_vif_slot(std::size_t vif_index, Time dwell) {
  core::VirtualInterface& vif = *vifs_[vif_index];
  const wire::Channel channel = vif.channel() != 0
                                    ? vif.channel()
                                    : config_.channels[scan_cursor_];
  auto arrived = [this, vif_index, dwell] {
    slot_owner_ = vif_index;
    core::VirtualInterface& owner = *vifs_[vif_index];
    if (owner.mlme().associated()) {
      send_ps_frame(owner, /*power_save=*/false);  // wake: flush AP buffer
    }
    drain_queue(vif_index);
    slot_timer_ = sim_.schedule(dwell, [this] { next_slot(); });
  };
  if (!radio_.switching() && radio_.channel() == channel) {
    arrived();
  } else {
    radio_.tune(channel, arrived);
  }
}

void FatVapDriver::enter_scan_slot(Time dwell) {
  scan_cursor_ = (scan_cursor_ + 1) % config_.channels.size();
  radio_.tune(config_.channels[scan_cursor_], [this, dwell] {
    slot_owner_ = kNoOwner;
    slot_timer_ = sim_.schedule(dwell, [this] { next_slot(); });
  });
}

void FatVapDriver::send_ps_frame(core::VirtualInterface& vif, bool power_save) {
  wire::Frame f;
  f.type = wire::FrameType::kNullData;
  f.src = vif.mac();
  f.dst = vif.bssid();
  f.bssid = vif.bssid();
  f.power_mgmt = power_save;
  f.size_bytes = wire::kNullFrameBytes;
  radio_.send(std::move(f));
}

bool FatVapDriver::send_mgmt(wire::Frame frame, wire::Channel channel) {
  if (radio_.switching() || radio_.channel() != channel) return false;
  // Per-AP reservation: only the slot owner may talk, even to a
  // same-channel AP. (The scan slot, with no owner, is open.)
  if (slot_owner_ != kNoOwner && frame.src != vifs_[slot_owner_]->mac()) {
    return false;
  }
  radio_.send(std::move(frame));
  return true;
}

void FatVapDriver::send_data(core::VirtualInterface& vif,
                             wire::PacketPtr packet) {
  if (vif.bssid().is_null()) {
    ++queue_drops_;
    return;
  }
  const bool owns_air = slot_owner_ == vif.index() && !radio_.switching() &&
                        radio_.channel() == vif.channel();
  if (owns_air) {
    radio_.send(wire::make_data_frame(vif.mac(), vif.bssid(), vif.bssid(),
                                      std::move(packet)));
    return;
  }
  auto& queue = queues_[vif.index()];
  if (queue.size() >= stack_.channel_queue_limit) {
    ++queue_drops_;
    return;
  }
  queue.push_back(std::move(packet));
}

void FatVapDriver::drain_queue(std::size_t vif_index) {
  core::VirtualInterface& vif = *vifs_[vif_index];
  auto& queue = queues_[vif_index];
  while (!queue.empty()) {
    wire::PacketPtr packet = std::move(queue.front());
    queue.pop_front();
    if (vif.bssid().is_null()) {
      ++queue_drops_;
      continue;
    }
    radio_.send(wire::make_data_frame(vif.mac(), vif.bssid(), vif.bssid(),
                                      std::move(packet)));
  }
}

void FatVapDriver::on_radio_frame(const wire::Frame& frame) {
  scanner_.on_frame(frame);
  if (frame.dst.is_broadcast()) return;
  for (auto& vif : vifs_) {
    if (frame.dst == vif->mac()) {
      vif->on_frame(frame);
      return;
    }
  }
}

}  // namespace spider::base
