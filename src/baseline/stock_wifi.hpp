#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/driver_base.hpp"
#include "core/link_manager.hpp"
#include "core/virtual_iface.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"

namespace spider::base {

/// Behavioural parameters of the stock driver + supplicant + dhclient
/// stack the paper compares against ("unmodified MadWiFi driver").
struct StockConfig {
  /// Full scan sweep order; stock drivers probe every channel.
  std::vector<wire::Channel> scan_channels = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  Time scan_dwell = msec(150);
  /// Pause before re-scanning after a failure or link loss.
  Time rescan_backoff = msec(500);
  /// Station stack with stock timers: 1 s link-layer timeout, 1 s DHCP
  /// retransmit x3 (the "3 seconds" attempt), liveness identical to
  /// Spider's prober so the comparison is about scheduling, not detection.
  core::SpiderConfig stack = [] {
    core::SpiderConfig c;
    c.num_interfaces = 1;
    c.mlme = {.ll_timeout = sec(1), .max_retries = 5};
    c.dhcp = {.retx_timeout = sec(1), .max_sends = 3};
    c.use_lease_cache = false;  // stock dhclient re-discovers
    // Stock stacks are slow to notice a dead AP: drivers hang on to a
    // fading association and applications only see failures after many
    // seconds (~10 s here), unlike Spider's aggressive 10 Hz prober.
    c.ping = {.interval = sec(1), .fail_threshold = 10};
    return c;
  }();
  /// Restrict operation to one channel (the paper's "stock on channel 6"
  /// comparison in Cambridge). Scanning then only probes this channel.
  std::optional<wire::Channel> lock_channel;
};

/// Stock Wi-Fi behaviour: sequential full-band scan, associate to the
/// strongest AP, stay with it until the link dies, then scan again. One
/// interface, one AP at a time, no PSM tricks, no per-channel queues.
class StockWifiDriver final : public core::DriverBase {
 public:
  struct Callbacks {
    std::function<void(core::VirtualInterface&)> on_link_up;
    std::function<void(core::VirtualInterface&)> on_link_down;
  };

  StockWifiDriver(sim::Simulator& simulator, phy::Medium& medium,
                  std::uint64_t mac_base, phy::Radio::PositionFn position,
                  StockConfig config, wire::Ipv4 ping_target);

  void start();
  void set_callbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }

  // DriverBase surface.
  sim::Simulator& simulator() override { return sim_; }
  const core::SpiderConfig& config() const override { return config_.stack; }
  const core::OperationMode& mode() const override { return mode_; }
  mac::Scanner& scanner() override { return scanner_; }
  core::VirtualInterface& iface(std::size_t) override { return *vif_; }
  std::size_t num_interfaces() const override { return 1; }
  bool send_mgmt(wire::Frame frame, wire::Channel channel) override;
  void send_data(core::VirtualInterface& vif, wire::PacketPtr packet) override;

  bool link_up() const { return vif_->up(); }
  const std::vector<core::JoinRecord>& join_log() const { return join_log_; }
  std::uint64_t scans_performed() const { return scans_; }
  phy::Radio& radio() { return radio_; }

 private:
  enum class Phase { kIdle, kScanning, kJoining, kUp };

  void begin_scan();
  void scan_step(std::size_t scan_index);
  void finish_scan();
  void begin_join(const mac::ApObservation& obs);
  void fail_join(core::JoinOutcome outcome);
  void on_link_dead();
  void on_radio_frame(const wire::Frame& frame);
  core::JoinRecord& record() { return join_log_.back(); }

  sim::Simulator& sim_;
  StockConfig config_;
  phy::Radio radio_;
  mac::Scanner scanner_;
  core::OperationMode mode_;
  std::unique_ptr<core::VirtualInterface> vif_;
  wire::Ipv4 ping_target_;
  Callbacks callbacks_;

  Phase phase_ = Phase::kIdle;
  std::vector<core::JoinRecord> join_log_;
  std::uint64_t scans_ = 0;
  sim::EventHandle timer_;
};

}  // namespace spider::base
