#include "baseline/stock_wifi.hpp"

namespace spider::base {

StockWifiDriver::StockWifiDriver(sim::Simulator& simulator, phy::Medium& medium,
                                 std::uint64_t mac_base,
                                 phy::Radio::PositionFn position,
                                 StockConfig config, wire::Ipv4 ping_target)
    : sim_(simulator),
      config_(std::move(config)),
      radio_(medium, wire::MacAddress(mac_base), std::move(position),
             config_.stack.radio),
      scanner_(simulator, config_.stack.scanner),
      mode_(core::OperationMode::single(
          config_.lock_channel.value_or(config_.scan_channels.front()))),
      ping_target_(ping_target) {
  if (config_.lock_channel) {
    config_.scan_channels = {*config_.lock_channel};
  }
  radio_.set_receiver([this](const wire::Frame& f) { on_radio_frame(f); });
  radio_.set_address_filter(
      [this](wire::MacAddress a) { return vif_ && vif_->mac() == a; });
  vif_ = std::make_unique<core::VirtualInterface>(
      simulator, *this, 0, wire::MacAddress(mac_base + 1), config_.stack);

  vif_->mlme().set_callbacks({
      .on_associated =
          [this](std::uint16_t) {
            if (phase_ != Phase::kJoining) return;
            record().assoc_delay = sim_.now() - record().started;
            vif_->set_link_state(core::LinkState::kDhcp);
            vif_->dhcp().start();
          },
      .on_failed = [this](mac::JoinPhase) {
        fail_join(core::JoinOutcome::kAssocFailed);
      },
      .on_link_lost = [this] { on_link_dead(); },
  });
  vif_->dhcp().set_callbacks({
      .on_bound =
          [this](const net::Lease& lease) {
            if (phase_ != Phase::kJoining) return;
            record().dhcp_delay = sim_.now() - record().started;
            vif_->set_lease(lease);
            vif_->set_link_state(core::LinkState::kUp);
            record().finished = true;
            record().outcome = core::JoinOutcome::kEndToEnd;
            record().e2e_delay = record().dhcp_delay;
            phase_ = Phase::kUp;
            // Stock stacks have no join-time connectivity test; the prober
            // only watches for link death afterwards.
            const wire::Ipv4 target =
                ping_target_.is_null() ? lease.gateway : ping_target_;
            vif_->prober().start(lease.ip, target);
            if (callbacks_.on_link_up) callbacks_.on_link_up(*vif_);
          },
      .on_failed = [this] { fail_join(core::JoinOutcome::kAssocOnly); },
  });
  vif_->prober().set_callbacks({
      .on_dead = [this] { on_link_dead(); },
  });
}

void StockWifiDriver::start() { begin_scan(); }

void StockWifiDriver::begin_scan() {
  phase_ = Phase::kScanning;
  ++scans_;
  scan_step(0);
}

void StockWifiDriver::scan_step(std::size_t scan_index) {
  if (scan_index >= config_.scan_channels.size()) {
    finish_scan();
    return;
  }
  radio_.tune(config_.scan_channels[scan_index], [this, scan_index] {
    // Active scan: one broadcast probe, then listen for the dwell.
    wire::Frame probe;
    probe.type = wire::FrameType::kProbeRequest;
    probe.src = radio_.mac();
    probe.dst = wire::MacAddress::broadcast();
    probe.size_bytes = wire::kMgmtFrameBytes;
    radio_.send(std::move(probe));
    timer_ = sim_.schedule(config_.scan_dwell,
                           [this, scan_index] { scan_step(scan_index + 1); });
  });
}

void StockWifiDriver::finish_scan() {
  // Strongest signal wins — stock association policy.
  const auto seen = scanner_.current();
  if (seen.empty()) {
    phase_ = Phase::kIdle;
    timer_ = sim_.schedule(config_.rescan_backoff, [this] { begin_scan(); });
    return;
  }
  begin_join(seen.front());
}

void StockWifiDriver::begin_join(const mac::ApObservation& obs) {
  phase_ = Phase::kJoining;
  core::JoinRecord rec;
  rec.bssid = obs.bssid;
  rec.channel = obs.channel;
  rec.started = sim_.now();
  join_log_.push_back(rec);

  mode_ = core::OperationMode::single(obs.channel);
  radio_.tune(obs.channel, [this, obs] {
    vif_->set_link_state(core::LinkState::kAssociating);
    vif_->mlme().start_join(obs.bssid, obs.channel);
  });
}

void StockWifiDriver::fail_join(core::JoinOutcome outcome) {
  if (phase_ != Phase::kJoining) return;
  record().finished = true;
  record().outcome = outcome;
  vif_->dhcp().abort();
  vif_->mlme().abort();
  vif_->set_lease(std::nullopt);
  vif_->set_link_state(core::LinkState::kIdle);
  phase_ = Phase::kIdle;
  timer_ = sim_.schedule(config_.rescan_backoff, [this] { begin_scan(); });
}

void StockWifiDriver::on_link_dead() {
  if (phase_ != Phase::kUp) return;
  if (callbacks_.on_link_down) callbacks_.on_link_down(*vif_);
  vif_->prober().stop();
  vif_->dhcp().abort();
  vif_->mlme().disassociate();
  vif_->set_lease(std::nullopt);
  vif_->set_link_state(core::LinkState::kIdle);
  phase_ = Phase::kIdle;
  timer_ = sim_.schedule(config_.rescan_backoff, [this] { begin_scan(); });
}

bool StockWifiDriver::send_mgmt(wire::Frame frame, wire::Channel channel) {
  if (radio_.switching() || radio_.channel() != channel) return false;
  radio_.send(std::move(frame));
  return true;
}

void StockWifiDriver::send_data(core::VirtualInterface& vif,
                                wire::PacketPtr packet) {
  if (vif.bssid().is_null() || radio_.switching() ||
      radio_.channel() != vif.channel()) {
    return;  // no multi-channel queues in a stock driver: traffic is lost
  }
  radio_.send(wire::make_data_frame(vif.mac(), vif.bssid(), vif.bssid(),
                                    std::move(packet)));
}

void StockWifiDriver::on_radio_frame(const wire::Frame& frame) {
  scanner_.on_frame(frame);
  if (frame.dst == vif_->mac()) vif_->on_frame(frame);
}

}  // namespace spider::base
