#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mac/ap.hpp"
#include "net/ap_network.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "util/time.hpp"

namespace spider::fault {

/// The fault taxonomy, one entry per misbehaviour the paper's testbed ran
/// into (Table 3's DHCP failures, lost handshakes, dead backhauls) plus the
/// channel impairments trace-driven Wi-Fi emulation work singles out.
///
/// Layers: kChannel* target the PHY medium, kAp*/kBeacon*/kPsm* the AP MAC,
/// kDhcp*/kGateway* the network behind the AP's Ethernet port.
enum class FaultKind {
  /// Gilbert-Elliott burst loss on one channel: the injector alternates
  /// good/bad episodes (exponential dwells) for the fault's duration; in a
  /// bad episode every frame on the channel suffers `intensity` extra loss.
  kChannelBurstLoss,
  /// Constant extra loss on one channel for the whole window (e.g. a
  /// microwave oven or a co-channel neighbour saturating the band).
  kChannelInterference,
  /// AP loses power: beacons stop, the association table and PSM buffers
  /// are wiped, every frame is ignored until power returns.
  kApBlackout,
  /// Power cycle: like kApBlackout, but the DHCP server also forgets all
  /// leases (consumer gateways keep the pool in RAM), so clients holding
  /// cached leases come back to a server that no longer knows them.
  kApReboot,
  /// The AP stops beaconing but still answers probes/auth/assoc/data —
  /// passive scanners go blind while existing links keep working.
  kBeaconSilence,
  /// Instantaneous: all PSM-buffered downlink frames are discarded
  /// (firmware buffer reclaim); TCP sees a burst of loss after the switch.
  kPsmFlush,
  /// DHCP daemon stops responding entirely (overloaded gateway).
  kDhcpStall,
  /// Server OFFERs normally but NAKs every REQUEST (allocation races /
  /// upstream address checks), the classic NAK-after-OFFER failure.
  kDhcpNakStorm,
  /// Instantaneous: all leases forgotten mid-lease without a reboot.
  kDhcpPoolReset,
  /// The WAN side drops: gateway pings go unanswered and nothing is
  /// forwarded in either direction, killing the end-to-end path while
  /// association and DHCP stay healthy.
  kGatewayFlap,
};

const char* to_string(FaultKind kind);
/// Inverse of to_string (exact wire names, e.g. "ap-blackout"); false on an
/// unknown name. Used by scenario serde to carry schedules across the wire.
bool fault_kind_from_string(const std::string& name, FaultKind* out);

/// One scheduled fault: at `at`, start `kind` on `target` for `duration`.
/// Instantaneous kinds (kPsmFlush, kDhcpPoolReset) ignore `duration`.
struct FaultSpec {
  FaultKind kind = FaultKind::kApBlackout;
  Time at{0};
  Time duration{0};
  /// AP faults: index into the injector's AP list, taken modulo the list
  /// size so sweeps can be written without knowing the deployment. Channel
  /// faults: the 802.11 channel number itself.
  int target = 0;
  /// Extra loss probability for channel faults (bad-state loss for bursts).
  double intensity = 0.9;
  /// Gilbert-Elliott mean dwell times (kChannelBurstLoss only).
  Time burst_mean = msec(250);
  Time gap_mean = msec(750);
};

/// A scriptable fault timeline. Build it once, hand it to a FaultInjector;
/// the same schedule + the same seed reproduces the identical run.
class FaultSchedule {
 public:
  FaultSchedule& add(const FaultSpec& spec) {
    specs_.push_back(spec);
    return *this;
  }

  FaultSchedule& ap_blackout(Time at, Time outage, int ap) {
    return add({.kind = FaultKind::kApBlackout, .at = at, .duration = outage,
                .target = ap});
  }
  FaultSchedule& ap_reboot(Time at, Time outage, int ap) {
    return add({.kind = FaultKind::kApReboot, .at = at, .duration = outage,
                .target = ap});
  }
  FaultSchedule& beacon_silence(Time at, Time duration, int ap) {
    return add({.kind = FaultKind::kBeaconSilence, .at = at,
                .duration = duration, .target = ap});
  }
  FaultSchedule& psm_flush(Time at, int ap) {
    return add({.kind = FaultKind::kPsmFlush, .at = at, .target = ap});
  }
  FaultSchedule& dhcp_stall(Time at, Time duration, int ap) {
    return add({.kind = FaultKind::kDhcpStall, .at = at, .duration = duration,
                .target = ap});
  }
  FaultSchedule& dhcp_nak_storm(Time at, Time duration, int ap) {
    return add({.kind = FaultKind::kDhcpNakStorm, .at = at,
                .duration = duration, .target = ap});
  }
  FaultSchedule& dhcp_pool_reset(Time at, int ap) {
    return add({.kind = FaultKind::kDhcpPoolReset, .at = at, .target = ap});
  }
  FaultSchedule& gateway_flap(Time at, Time outage, int ap) {
    return add({.kind = FaultKind::kGatewayFlap, .at = at, .duration = outage,
                .target = ap});
  }
  FaultSchedule& channel_interference(Time at, Time duration,
                                      wire::Channel channel, double extra) {
    return add({.kind = FaultKind::kChannelInterference, .at = at,
                .duration = duration, .target = channel, .intensity = extra});
  }
  FaultSchedule& burst_loss(Time at, Time duration, wire::Channel channel,
                            double bad_loss, Time burst_mean = msec(250),
                            Time gap_mean = msec(750)) {
    return add({.kind = FaultKind::kChannelBurstLoss, .at = at,
                .duration = duration, .target = channel,
                .intensity = bad_loss, .burst_mean = burst_mean,
                .gap_mean = gap_mean});
  }

  bool empty() const { return specs_.empty(); }
  std::size_t size() const { return specs_.size(); }
  const std::vector<FaultSpec>& specs() const { return specs_; }

 private:
  std::vector<FaultSpec> specs_;
};

/// One fault as actually injected (the log entry for metrics/export).
struct InjectedFault {
  FaultSpec spec;
  Time started{0};
  Time cleared{0};
  bool active = false;
};

/// Drives a FaultSchedule against live simulation objects.
///
/// Targets are registered up front (the medium, then each AP with its
/// network); arm() schedules every start/stop transition on the simulator.
/// All randomness (burst dwells) comes from the injector's own forked Rng,
/// so adding faults never perturbs the stochastic streams of the stack
/// under test, and the same seed + schedule replays byte-identically.
class FaultInjector {
 public:
  FaultInjector(sim::Simulator& simulator, Rng rng);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void attach_medium(phy::Medium& medium) { medium_ = &medium; }
  /// Registers an AP target; `network` may be null when only MAC-layer
  /// faults will address this AP. Returns the target's index.
  std::size_t add_ap(mac::AccessPoint& ap, net::ApNetwork* network);

  /// Invoked at each fault onset (metrics hook).
  void set_fault_observer(std::function<void(const FaultSpec&)> observer) {
    observer_ = std::move(observer);
  }

  /// Schedules the whole timeline. May be called once per injector.
  void arm(const FaultSchedule& schedule);

  const std::vector<InjectedFault>& log() const { return log_; }
  std::uint64_t injected() const { return injected_; }
  std::uint64_t active_faults() const { return active_; }

 private:
  struct ApTarget {
    mac::AccessPoint* ap;
    net::ApNetwork* network;
  };

  ApTarget* resolve_ap(int target);
  void begin(std::size_t log_index);
  void end(std::size_t log_index);
  /// One Gilbert-Elliott state transition; re-arms itself until the
  /// fault's end time passes.
  void burst_tick(std::size_t log_index, bool bad);

  sim::Simulator& sim_;
  Rng rng_;
  phy::Medium* medium_ = nullptr;
  std::vector<ApTarget> aps_;
  std::function<void(const FaultSpec&)> observer_;
  std::vector<InjectedFault> log_;
  std::uint64_t injected_ = 0;
  std::uint64_t active_ = 0;
};

}  // namespace spider::fault
