#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "mac/ap.hpp"
#include "net/ap_network.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "util/time.hpp"

namespace spider::fault {

/// The fault taxonomy, one entry per misbehaviour the paper's testbed ran
/// into (Table 3's DHCP failures, lost handshakes, dead backhauls) plus the
/// channel impairments trace-driven Wi-Fi emulation work singles out.
///
/// Layers: kChannel* target the PHY medium, kAp*/kBeacon*/kPsm* the AP MAC,
/// kDhcp*/kGateway* the network behind the AP's Ethernet port.
enum class FaultKind {
  /// Gilbert-Elliott burst loss on one channel: the injector alternates
  /// good/bad episodes (exponential dwells) for the fault's duration; in a
  /// bad episode every frame on the channel suffers `intensity` extra loss.
  kChannelBurstLoss,
  /// Constant extra loss on one channel for the whole window (e.g. a
  /// microwave oven or a co-channel neighbour saturating the band).
  kChannelInterference,
  /// AP loses power: beacons stop, the association table and PSM buffers
  /// are wiped, every frame is ignored until power returns.
  kApBlackout,
  /// Power cycle: like kApBlackout, but the DHCP server also forgets all
  /// leases (consumer gateways keep the pool in RAM), so clients holding
  /// cached leases come back to a server that no longer knows them.
  kApReboot,
  /// The AP stops beaconing but still answers probes/auth/assoc/data —
  /// passive scanners go blind while existing links keep working.
  kBeaconSilence,
  /// Instantaneous: all PSM-buffered downlink frames are discarded
  /// (firmware buffer reclaim); TCP sees a burst of loss after the switch.
  kPsmFlush,
  /// DHCP daemon stops responding entirely (overloaded gateway).
  kDhcpStall,
  /// Server OFFERs normally but NAKs every REQUEST (allocation races /
  /// upstream address checks), the classic NAK-after-OFFER failure.
  kDhcpNakStorm,
  /// Instantaneous: all leases forgotten mid-lease without a reboot.
  kDhcpPoolReset,
  /// The WAN side drops: gateway pings go unanswered and nothing is
  /// forwarded in either direction, killing the end-to-end path while
  /// association and DHCP stay healthy.
  kGatewayFlap,
};

const char* to_string(FaultKind kind);
/// Inverse of to_string (exact wire names, e.g. "ap-blackout"); false on an
/// unknown name. Used by scenario serde to carry schedules across the wire.
bool fault_kind_from_string(const std::string& name, FaultKind* out);

/// Sentinel target for entity-kind faults: the fault applies to every
/// registered AP at once (a shared backhaul dying takes every gateway with
/// it). Any negative target means "all"; this name is the canonical one.
inline constexpr int kAllAps = -1;

/// One scheduled fault: at `at`, start `kind` on `target` for `duration`.
/// Instantaneous kinds (kPsmFlush, kDhcpPoolReset) ignore `duration`.
struct FaultSpec {
  FaultKind kind = FaultKind::kApBlackout;
  Time at{0};
  Time duration{0};
  /// AP faults: index into the injector's AP list, taken modulo the list
  /// size so sweeps can be written without knowing the deployment, or
  /// kAllAps for a deployment-wide fault. Channel faults: the 802.11
  /// channel number itself.
  int target = 0;
  /// Extra loss probability for channel faults (bad-state loss for bursts).
  double intensity = 0.9;
  /// Gilbert-Elliott mean dwell times (kChannelBurstLoss only).
  Time burst_mean = msec(250);
  Time gap_mean = msec(750);
};

/// A scriptable fault timeline. Build it once, hand it to a FaultInjector;
/// the same schedule + the same seed reproduces the identical run.
class FaultSchedule {
 public:
  FaultSchedule& add(const FaultSpec& spec) {
    specs_.push_back(spec);
    return *this;
  }

  FaultSchedule& ap_blackout(Time at, Time outage, int ap) {
    return add({.kind = FaultKind::kApBlackout, .at = at, .duration = outage,
                .target = ap});
  }
  FaultSchedule& ap_reboot(Time at, Time outage, int ap) {
    return add({.kind = FaultKind::kApReboot, .at = at, .duration = outage,
                .target = ap});
  }
  FaultSchedule& beacon_silence(Time at, Time duration, int ap) {
    return add({.kind = FaultKind::kBeaconSilence, .at = at,
                .duration = duration, .target = ap});
  }
  FaultSchedule& psm_flush(Time at, int ap) {
    return add({.kind = FaultKind::kPsmFlush, .at = at, .target = ap});
  }
  FaultSchedule& dhcp_stall(Time at, Time duration, int ap) {
    return add({.kind = FaultKind::kDhcpStall, .at = at, .duration = duration,
                .target = ap});
  }
  FaultSchedule& dhcp_nak_storm(Time at, Time duration, int ap) {
    return add({.kind = FaultKind::kDhcpNakStorm, .at = at,
                .duration = duration, .target = ap});
  }
  FaultSchedule& dhcp_pool_reset(Time at, int ap) {
    return add({.kind = FaultKind::kDhcpPoolReset, .at = at, .target = ap});
  }
  FaultSchedule& gateway_flap(Time at, Time outage, int ap) {
    return add({.kind = FaultKind::kGatewayFlap, .at = at, .duration = outage,
                .target = ap});
  }
  FaultSchedule& channel_interference(Time at, Time duration,
                                      wire::Channel channel, double extra) {
    return add({.kind = FaultKind::kChannelInterference, .at = at,
                .duration = duration, .target = channel, .intensity = extra});
  }
  FaultSchedule& burst_loss(Time at, Time duration, wire::Channel channel,
                            double bad_loss, Time burst_mean = msec(250),
                            Time gap_mean = msec(750)) {
    return add({.kind = FaultKind::kChannelBurstLoss, .at = at,
                .duration = duration, .target = channel,
                .intensity = bad_loss, .burst_mean = burst_mean,
                .gap_mean = gap_mean});
  }

  bool empty() const { return specs_.empty(); }
  std::size_t size() const { return specs_.size(); }
  const std::vector<FaultSpec>& specs() const { return specs_; }

 private:
  std::vector<FaultSpec> specs_;
};

/// One fault as actually injected (the log entry for metrics/export).
struct InjectedFault {
  FaultSpec spec;
  Time started{0};
  Time cleared{0};
  bool active = false;
};

/// Routing class of a spec (DESIGN.md §12, fault routing across shards):
/// channel faults follow the channel's stripe owners, entity faults follow
/// the target AP's owner shard, global faults (target < 0) replicate to
/// every AP-bearing shard.
enum class FaultScope { kChannel, kEntity, kGlobal };
FaultScope fault_scope(const FaultSpec& spec);

/// The fault subsystem's RNG root for a scenario: a splitmix scramble of
/// the scenario seed under a fixed salt. Both engines derive the injector
/// master from this — never from assembly-order forks — so a spec's dwell
/// stream is a pure function of (scenario seed, position in the schedule)
/// and identical whether the serial engine or any shard replays it.
std::uint64_t fault_stream_seed(std::uint64_t scenario_seed);

/// One spec as routed to one shard of a formation: the spec (entity
/// targets rewritten to the shard's local AP index), the per-spec RNG
/// stream (identical copies on every shard sharing the spec), and whether
/// this shard is the spec's onset accountant. Exactly one shard per spec
/// counts it toward injected()/the fault observer, so resilience counters
/// exact-sum across a formation like PerfCounters::merge_shard.
struct RoutedFault {
  FaultSpec spec;
  Rng rng;
  bool count_onset = true;
};

/// Shard-routing callbacks supplied by the engine (stripe ownership and AP
/// placement live in phy/trace, not here).
struct FaultRouter {
  int shards = 1;
  /// Deployment-global AP population size (entity targets reduce mod this).
  std::size_t total_aps = 0;
  /// Every shard owning a stripe of `channel` (deduplicated; the first
  /// entry becomes the onset accountant).
  std::function<std::vector<int>(int channel)> channel_owners;
  /// Owner shard and shard-local injector index of deployment-global AP g.
  std::function<std::pair<int, int>(std::size_t global_ap)> ap_owner;
};

/// Compiles a schedule into per-shard sub-schedules at partition time.
/// Forks `master` once per spec in schedule order — the serial injector's
/// exact fork discipline — so serial and every formation width hand each
/// spec the identical stream regardless of where it routes.
std::vector<std::vector<RoutedFault>> partition_schedule(
    const FaultSchedule& schedule, Rng master, const FaultRouter& router);

/// Drives a FaultSchedule against live simulation objects.
///
/// Targets are registered up front (the medium, then each AP with its
/// network); arm() schedules every start/stop transition on the simulator.
/// All randomness (burst dwells) comes from per-spec streams forked off the
/// injector's own Rng in schedule order, so adding faults never perturbs
/// the stochastic streams of the stack under test, skipped specs never
/// shift a later spec's dwells, and a spec replays the identical timeline
/// wherever it is armed — serial or any shard of a formation.
class FaultInjector {
 public:
  FaultInjector(sim::Simulator& simulator, Rng rng);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void attach_medium(phy::Medium& medium) { medium_ = &medium; }
  /// Registers an AP target; `network` may be null when only MAC-layer
  /// faults will address this AP. Returns the target's index.
  std::size_t add_ap(mac::AccessPoint& ap, net::ApNetwork* network);

  /// Invoked at each fault onset (metrics hook).
  void set_fault_observer(std::function<void(const FaultSpec&)> observer) {
    observer_ = std::move(observer);
  }

  /// Schedules the whole timeline. May be called once per injector.
  void arm(const FaultSchedule& schedule);
  /// Schedules one shard's slice of a partitioned timeline (see
  /// partition_schedule). Specs arrive with their per-spec RNG streams
  /// already forked; onset accounting follows each entry's count_onset.
  void arm_routed(std::vector<RoutedFault> routed);

  const std::vector<InjectedFault>& log() const { return log_; }
  std::uint64_t injected() const { return injected_; }
  std::uint64_t active_faults() const { return active_; }

 private:
  struct ApTarget {
    mac::AccessPoint* ap;
    net::ApNetwork* network;
  };
  /// Per-armed-spec state riding next to the log entry: the spec's own
  /// dwell stream and whether this injector accounts its onset.
  struct Armed {
    Rng rng;
    bool count_onset = true;
  };

  ApTarget* resolve_ap(int target);
  bool any_applicable(const FaultSpec& spec) const;
  /// Applies `f` to the spec's AP target, or to every applicable AP for a
  /// global (target < 0) spec.
  template <typename F>
  void for_targets(const FaultSpec& spec, F&& f);
  void arm_one(const FaultSpec& spec, Rng rng, bool count_onset);
  void begin(std::size_t log_index);
  void end(std::size_t log_index);
  /// One Gilbert-Elliott state transition; re-arms itself until the
  /// fault's end time passes.
  void burst_tick(std::size_t log_index, bool bad);

  sim::Simulator& sim_;
  Rng rng_;
  phy::Medium* medium_ = nullptr;
  std::vector<ApTarget> aps_;
  std::function<void(const FaultSpec&)> observer_;
  std::vector<InjectedFault> log_;
  std::vector<Armed> armed_;
  std::uint64_t injected_ = 0;
  std::uint64_t active_ = 0;
};

}  // namespace spider::fault
