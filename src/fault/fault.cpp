#include "fault/fault.hpp"

#include <algorithm>

#include "obs/tracer.hpp"

namespace spider::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kChannelBurstLoss: return "channel-burst-loss";
    case FaultKind::kChannelInterference: return "channel-interference";
    case FaultKind::kApBlackout: return "ap-blackout";
    case FaultKind::kApReboot: return "ap-reboot";
    case FaultKind::kBeaconSilence: return "beacon-silence";
    case FaultKind::kPsmFlush: return "psm-flush";
    case FaultKind::kDhcpStall: return "dhcp-stall";
    case FaultKind::kDhcpNakStorm: return "dhcp-nak-storm";
    case FaultKind::kDhcpPoolReset: return "dhcp-pool-reset";
    case FaultKind::kGatewayFlap: return "gateway-flap";
  }
  return "?";
}

bool fault_kind_from_string(const std::string& name, FaultKind* out) {
  static constexpr FaultKind kAll[] = {
      FaultKind::kChannelBurstLoss, FaultKind::kChannelInterference,
      FaultKind::kApBlackout,       FaultKind::kApReboot,
      FaultKind::kBeaconSilence,    FaultKind::kPsmFlush,
      FaultKind::kDhcpStall,        FaultKind::kDhcpNakStorm,
      FaultKind::kDhcpPoolReset,    FaultKind::kGatewayFlap,
  };
  for (FaultKind kind : kAll) {
    if (name == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

namespace {

bool instantaneous(FaultKind kind) {
  return kind == FaultKind::kPsmFlush || kind == FaultKind::kDhcpPoolReset;
}

bool needs_network(FaultKind kind) {
  switch (kind) {
    case FaultKind::kApReboot:
    case FaultKind::kDhcpStall:
    case FaultKind::kDhcpNakStorm:
    case FaultKind::kDhcpPoolReset:
    case FaultKind::kGatewayFlap:
      return true;
    default:
      return false;
  }
}

bool is_channel_fault(FaultKind kind) {
  return kind == FaultKind::kChannelBurstLoss ||
         kind == FaultKind::kChannelInterference;
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& simulator, Rng rng)
    : sim_(simulator), rng_(rng) {}

std::size_t FaultInjector::add_ap(mac::AccessPoint& ap,
                                  net::ApNetwork* network) {
  aps_.push_back({&ap, network});
  return aps_.size() - 1;
}

FaultInjector::ApTarget* FaultInjector::resolve_ap(int target) {
  if (aps_.empty() || target < 0) return nullptr;
  return &aps_[static_cast<std::size_t>(target) % aps_.size()];
}

void FaultInjector::arm(const FaultSchedule& schedule) {
  for (const FaultSpec& spec : schedule.specs()) {
    // Skip specs whose target layer was never registered: a schedule can be
    // reused across topologies (e.g. a medium-only test ignores AP faults).
    if (is_channel_fault(spec.kind) && !medium_) continue;
    if (!is_channel_fault(spec.kind) && !resolve_ap(spec.target)) continue;
    if (needs_network(spec.kind) && !resolve_ap(spec.target)->network) continue;

    const std::size_t index = log_.size();
    log_.push_back(InjectedFault{spec});
    sim_.post_at(spec.at, [this, index] { begin(index); });
  }
}

void FaultInjector::begin(std::size_t log_index) {
  InjectedFault& entry = log_[log_index];
  const FaultSpec& spec = entry.spec;
  entry.started = sim_.now();
  entry.active = true;
  ++injected_;
  ++active_;
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kFaultBegin,
               .aux = static_cast<std::uint8_t>(spec.kind),
               .channel = static_cast<std::int16_t>(
                   is_channel_fault(spec.kind) ? spec.target : 0),
               .track = obs::track::fault(),
               .id = static_cast<std::uint64_t>(spec.target),
               .value = to_seconds(spec.duration));
  if (observer_) observer_(spec);

  ApTarget* t = is_channel_fault(spec.kind) ? nullptr : resolve_ap(spec.target);
  switch (spec.kind) {
    case FaultKind::kChannelBurstLoss:
      burst_tick(log_index, /*bad=*/true);
      return;  // burst_tick owns the end transition
    case FaultKind::kChannelInterference:
      medium_->set_channel_impairment(static_cast<wire::Channel>(spec.target),
                                      spec.intensity);
      break;
    case FaultKind::kApBlackout:
      t->ap->power_off();
      break;
    case FaultKind::kApReboot:
      t->ap->power_off();
      t->network->dhcp().reset_pool();
      break;
    case FaultKind::kBeaconSilence:
      t->ap->set_beacon_silence(true);
      break;
    case FaultKind::kPsmFlush:
      t->ap->purge_psm_buffers();
      break;
    case FaultKind::kDhcpStall:
      t->network->dhcp().set_stalled(true);
      break;
    case FaultKind::kDhcpNakStorm:
      t->network->dhcp().set_nak_requests(true);
      break;
    case FaultKind::kDhcpPoolReset:
      t->network->dhcp().reset_pool();
      break;
    case FaultKind::kGatewayFlap:
      t->network->set_gateway_up(false);
      break;
  }

  if (instantaneous(spec.kind)) {
    end(log_index);
  } else {
    sim_.post(spec.duration, [this, log_index] { end(log_index); });
  }
}

void FaultInjector::end(std::size_t log_index) {
  InjectedFault& entry = log_[log_index];
  if (!entry.active) return;
  const FaultSpec& spec = entry.spec;
  entry.cleared = sim_.now();
  entry.active = false;
  --active_;
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kFaultEnd,
               .aux = static_cast<std::uint8_t>(spec.kind),
               .channel = static_cast<std::int16_t>(
                   is_channel_fault(spec.kind) ? spec.target : 0),
               .track = obs::track::fault(),
               .id = static_cast<std::uint64_t>(spec.target),
               .value = to_seconds(entry.cleared - entry.started));

  ApTarget* t = is_channel_fault(spec.kind) ? nullptr : resolve_ap(spec.target);
  switch (spec.kind) {
    case FaultKind::kChannelBurstLoss:
    case FaultKind::kChannelInterference:
      medium_->clear_channel_impairment(static_cast<wire::Channel>(spec.target));
      break;
    case FaultKind::kApBlackout:
    case FaultKind::kApReboot:
      t->ap->power_on();
      break;
    case FaultKind::kBeaconSilence:
      t->ap->set_beacon_silence(false);
      break;
    case FaultKind::kPsmFlush:
    case FaultKind::kDhcpPoolReset:
      break;  // instantaneous: nothing to undo
    case FaultKind::kDhcpStall:
      t->network->dhcp().set_stalled(false);
      break;
    case FaultKind::kDhcpNakStorm:
      t->network->dhcp().set_nak_requests(false);
      break;
    case FaultKind::kGatewayFlap:
      t->network->set_gateway_up(true);
      break;
  }
}

void FaultInjector::burst_tick(std::size_t log_index, bool bad) {
  InjectedFault& entry = log_[log_index];
  const FaultSpec& spec = entry.spec;
  const wire::Channel channel = static_cast<wire::Channel>(spec.target);
  const Time fault_end = entry.started + spec.duration;

  if (sim_.now() >= fault_end) {
    end(log_index);
    return;
  }

  if (bad) {
    medium_->set_channel_impairment(channel, spec.intensity);
  } else {
    medium_->clear_channel_impairment(channel);
  }

  const Time mean = bad ? spec.burst_mean : spec.gap_mean;
  const Time dwell = sec(rng_.exponential(to_seconds(std::max(mean, usec(1)))));
  const Time next = std::min(sim_.now() + std::max(dwell, usec(1)), fault_end);
  sim_.post_at(next, [this, log_index, bad] { burst_tick(log_index, !bad); });
}

}  // namespace spider::fault
