#include "fault/fault.hpp"

#include <algorithm>

#include "obs/tracer.hpp"

namespace spider::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kChannelBurstLoss: return "channel-burst-loss";
    case FaultKind::kChannelInterference: return "channel-interference";
    case FaultKind::kApBlackout: return "ap-blackout";
    case FaultKind::kApReboot: return "ap-reboot";
    case FaultKind::kBeaconSilence: return "beacon-silence";
    case FaultKind::kPsmFlush: return "psm-flush";
    case FaultKind::kDhcpStall: return "dhcp-stall";
    case FaultKind::kDhcpNakStorm: return "dhcp-nak-storm";
    case FaultKind::kDhcpPoolReset: return "dhcp-pool-reset";
    case FaultKind::kGatewayFlap: return "gateway-flap";
  }
  return "?";
}

bool fault_kind_from_string(const std::string& name, FaultKind* out) {
  static constexpr FaultKind kAll[] = {
      FaultKind::kChannelBurstLoss, FaultKind::kChannelInterference,
      FaultKind::kApBlackout,       FaultKind::kApReboot,
      FaultKind::kBeaconSilence,    FaultKind::kPsmFlush,
      FaultKind::kDhcpStall,        FaultKind::kDhcpNakStorm,
      FaultKind::kDhcpPoolReset,    FaultKind::kGatewayFlap,
  };
  for (FaultKind kind : kAll) {
    if (name == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

namespace {

bool instantaneous(FaultKind kind) {
  return kind == FaultKind::kPsmFlush || kind == FaultKind::kDhcpPoolReset;
}

bool needs_network(FaultKind kind) {
  switch (kind) {
    case FaultKind::kApReboot:
    case FaultKind::kDhcpStall:
    case FaultKind::kDhcpNakStorm:
    case FaultKind::kDhcpPoolReset:
    case FaultKind::kGatewayFlap:
      return true;
    default:
      return false;
  }
}

bool is_channel_fault(FaultKind kind) {
  return kind == FaultKind::kChannelBurstLoss ||
         kind == FaultKind::kChannelInterference;
}

}  // namespace

FaultScope fault_scope(const FaultSpec& spec) {
  if (is_channel_fault(spec.kind)) return FaultScope::kChannel;
  return spec.target < 0 ? FaultScope::kGlobal : FaultScope::kEntity;
}

std::uint64_t fault_stream_seed(std::uint64_t scenario_seed) {
  // Splitmix finalizer under a fixed salt: decoupled from every
  // assembly-order fork chain so serial and sharded engines derive the
  // same injector master from the same scenario seed.
  std::uint64_t z = scenario_seed + 0xD1B54A32D192ED03ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::vector<std::vector<RoutedFault>> partition_schedule(
    const FaultSchedule& schedule, Rng master, const FaultRouter& router) {
  const int shards = std::max(1, router.shards);
  std::vector<std::vector<RoutedFault>> out(static_cast<std::size_t>(shards));

  // Shards owning at least one AP, ascending: the replication set for
  // global specs. The smallest owner is the onset accountant.
  std::vector<int> ap_shards;
  if (router.ap_owner) {
    for (std::size_t g = 0; g < router.total_aps; ++g) {
      const int s = router.ap_owner(g).first;
      if (std::find(ap_shards.begin(), ap_shards.end(), s) == ap_shards.end()) {
        ap_shards.push_back(s);
      }
    }
    std::sort(ap_shards.begin(), ap_shards.end());
  }

  for (const FaultSpec& spec : schedule.specs()) {
    // One fork per spec in schedule order, before any routing decision —
    // the serial arm()'s exact discipline — so the stream a spec receives
    // is independent of where (or whether) it lands.
    Rng spec_rng = master.fork();
    switch (fault_scope(spec)) {
      case FaultScope::kChannel: {
        const std::vector<int> owners =
            router.channel_owners ? router.channel_owners(spec.target)
                                  : std::vector<int>{0};
        for (std::size_t i = 0; i < owners.size(); ++i) {
          out[static_cast<std::size_t>(owners[i])].push_back(
              {spec, spec_rng, i == 0});
        }
        break;
      }
      case FaultScope::kEntity: {
        // No APs anywhere: the serial injector would skip the spec too.
        if (router.total_aps == 0 || !router.ap_owner) break;
        const auto [shard, local] = router.ap_owner(
            static_cast<std::size_t>(spec.target) % router.total_aps);
        FaultSpec local_spec = spec;
        local_spec.target = local;
        out[static_cast<std::size_t>(shard)].push_back(
            {local_spec, spec_rng, true});
        break;
      }
      case FaultScope::kGlobal: {
        for (std::size_t i = 0; i < ap_shards.size(); ++i) {
          out[static_cast<std::size_t>(ap_shards[i])].push_back(
              {spec, spec_rng, i == 0});
        }
        break;
      }
    }
  }
  return out;
}

FaultInjector::FaultInjector(sim::Simulator& simulator, Rng rng)
    : sim_(simulator), rng_(rng) {}

std::size_t FaultInjector::add_ap(mac::AccessPoint& ap,
                                  net::ApNetwork* network) {
  aps_.push_back({&ap, network});
  return aps_.size() - 1;
}

FaultInjector::ApTarget* FaultInjector::resolve_ap(int target) {
  if (aps_.empty() || target < 0) return nullptr;
  return &aps_[static_cast<std::size_t>(target) % aps_.size()];
}

bool FaultInjector::any_applicable(const FaultSpec& spec) const {
  for (const ApTarget& t : aps_) {
    if (!needs_network(spec.kind) || t.network != nullptr) return true;
  }
  return false;
}

template <typename F>
void FaultInjector::for_targets(const FaultSpec& spec, F&& f) {
  if (spec.target < 0) {
    // Global: every registered AP, skipping network-less registrations for
    // network-layer kinds (a MAC-only target has no DHCP/gateway to fail).
    for (ApTarget& t : aps_) {
      if (needs_network(spec.kind) && t.network == nullptr) continue;
      f(t);
    }
  } else {
    f(*resolve_ap(spec.target));
  }
}

void FaultInjector::arm(const FaultSchedule& schedule) {
  for (const FaultSpec& spec : schedule.specs()) {
    // One fork per spec in schedule order, before the skip decisions, so a
    // skipped spec never shifts a later spec's dwell stream and the sharded
    // router (which forks in the same order) hands out identical streams.
    Rng spec_rng = rng_.fork();
    arm_one(spec, std::move(spec_rng), /*count_onset=*/true);
  }
}

void FaultInjector::arm_routed(std::vector<RoutedFault> routed) {
  for (RoutedFault& rf : routed) {
    arm_one(rf.spec, std::move(rf.rng), rf.count_onset);
  }
}

void FaultInjector::arm_one(const FaultSpec& spec, Rng rng, bool count_onset) {
  // Skip specs whose target layer was never registered: a schedule can be
  // reused across topologies (e.g. a medium-only test ignores AP faults).
  if (is_channel_fault(spec.kind)) {
    if (!medium_) return;
  } else if (spec.target < 0) {
    if (!any_applicable(spec)) return;
  } else {
    if (!resolve_ap(spec.target)) return;
    if (needs_network(spec.kind) && !resolve_ap(spec.target)->network) return;
  }

  const std::size_t index = log_.size();
  log_.push_back(InjectedFault{spec});
  armed_.push_back({std::move(rng), count_onset});
  sim_.post_at(spec.at, [this, index] { begin(index); });
}

void FaultInjector::begin(std::size_t log_index) {
  InjectedFault& entry = log_[log_index];
  const FaultSpec& spec = entry.spec;
  entry.started = sim_.now();
  entry.active = true;
  // Onset accounting follows the accountant flag: in a formation exactly
  // one shard counts a replicated spec, so per-shard sums equal the serial
  // injector's counts (the merge_shard contract).
  if (armed_[log_index].count_onset) ++injected_;
  ++active_;
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kFaultBegin,
               .aux = static_cast<std::uint8_t>(spec.kind),
               .channel = static_cast<std::int16_t>(
                   is_channel_fault(spec.kind) ? spec.target : 0),
               .track = obs::track::fault(),
               .id = static_cast<std::uint64_t>(spec.target),
               .value = to_seconds(spec.duration));
  if (observer_ && armed_[log_index].count_onset) observer_(spec);

  switch (spec.kind) {
    case FaultKind::kChannelBurstLoss:
      burst_tick(log_index, /*bad=*/true);
      return;  // burst_tick owns the end transition
    case FaultKind::kChannelInterference:
      medium_->set_channel_impairment(static_cast<wire::Channel>(spec.target),
                                      spec.intensity);
      break;
    case FaultKind::kApBlackout:
      for_targets(spec, [](ApTarget& t) { t.ap->power_off(); });
      break;
    case FaultKind::kApReboot:
      for_targets(spec, [](ApTarget& t) {
        t.ap->power_off();
        t.network->dhcp().reset_pool();
      });
      break;
    case FaultKind::kBeaconSilence:
      for_targets(spec, [](ApTarget& t) { t.ap->set_beacon_silence(true); });
      break;
    case FaultKind::kPsmFlush:
      for_targets(spec, [](ApTarget& t) { t.ap->purge_psm_buffers(); });
      break;
    case FaultKind::kDhcpStall:
      for_targets(spec, [](ApTarget& t) { t.network->dhcp().set_stalled(true); });
      break;
    case FaultKind::kDhcpNakStorm:
      for_targets(spec,
                  [](ApTarget& t) { t.network->dhcp().set_nak_requests(true); });
      break;
    case FaultKind::kDhcpPoolReset:
      for_targets(spec, [](ApTarget& t) { t.network->dhcp().reset_pool(); });
      break;
    case FaultKind::kGatewayFlap:
      for_targets(spec, [](ApTarget& t) { t.network->set_gateway_up(false); });
      break;
  }

  if (instantaneous(spec.kind)) {
    end(log_index);
  } else {
    sim_.post(spec.duration, [this, log_index] { end(log_index); });
  }
}

void FaultInjector::end(std::size_t log_index) {
  InjectedFault& entry = log_[log_index];
  if (!entry.active) return;
  const FaultSpec& spec = entry.spec;
  entry.cleared = sim_.now();
  entry.active = false;
  --active_;
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kFaultEnd,
               .aux = static_cast<std::uint8_t>(spec.kind),
               .channel = static_cast<std::int16_t>(
                   is_channel_fault(spec.kind) ? spec.target : 0),
               .track = obs::track::fault(),
               .id = static_cast<std::uint64_t>(spec.target),
               .value = to_seconds(entry.cleared - entry.started));

  switch (spec.kind) {
    case FaultKind::kChannelBurstLoss:
    case FaultKind::kChannelInterference:
      medium_->clear_channel_impairment(static_cast<wire::Channel>(spec.target));
      break;
    case FaultKind::kApBlackout:
    case FaultKind::kApReboot:
      for_targets(spec, [](ApTarget& t) { t.ap->power_on(); });
      break;
    case FaultKind::kBeaconSilence:
      for_targets(spec, [](ApTarget& t) { t.ap->set_beacon_silence(false); });
      break;
    case FaultKind::kPsmFlush:
    case FaultKind::kDhcpPoolReset:
      break;  // instantaneous: nothing to undo
    case FaultKind::kDhcpStall:
      for_targets(spec,
                  [](ApTarget& t) { t.network->dhcp().set_stalled(false); });
      break;
    case FaultKind::kDhcpNakStorm:
      for_targets(spec,
                  [](ApTarget& t) { t.network->dhcp().set_nak_requests(false); });
      break;
    case FaultKind::kGatewayFlap:
      for_targets(spec, [](ApTarget& t) { t.network->set_gateway_up(true); });
      break;
  }
}

void FaultInjector::burst_tick(std::size_t log_index, bool bad) {
  InjectedFault& entry = log_[log_index];
  const FaultSpec& spec = entry.spec;
  const wire::Channel channel = static_cast<wire::Channel>(spec.target);
  const Time fault_end = entry.started + spec.duration;

  if (sim_.now() >= fault_end) {
    end(log_index);
    return;
  }

  if (bad) {
    medium_->set_channel_impairment(channel, spec.intensity);
  } else {
    medium_->clear_channel_impairment(channel);
  }

  const Time mean = bad ? spec.burst_mean : spec.gap_mean;
  // Dwells come from the spec's own stream, so a replicated burst walks the
  // identical good/bad timeline on every shard holding a copy.
  Rng& rng = armed_[log_index].rng;
  const Time dwell = sec(rng.exponential(to_seconds(std::max(mean, usec(1)))));
  const Time next = std::min(sim_.now() + std::max(dwell, usec(1)), fault_end);
  sim_.post_at(next, [this, log_index, bad] { burst_tick(log_index, !bad); });
}

}  // namespace spider::fault
