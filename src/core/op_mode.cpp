#include "core/op_mode.hpp"

#include <algorithm>
#include <cstdio>

namespace spider::core {

void OperationMode::normalize() {
  std::erase_if(fractions, [](const auto& e) { return e.second <= 0.0; });
  double total = 0.0;
  for (const auto& [ch, f] : fractions) total += f;
  if (total <= 0.0) return;
  for (auto& [ch, f] : fractions) f /= total;
}

std::vector<wire::Channel> OperationMode::channels() const {
  std::vector<wire::Channel> out;
  out.reserve(fractions.size());
  for (const auto& [ch, f] : fractions) out.push_back(ch);
  return out;
}

double OperationMode::fraction_of(wire::Channel channel) const {
  for (const auto& [ch, f] : fractions) {
    if (ch == channel) return f;
  }
  return 0.0;
}

bool OperationMode::includes(wire::Channel channel) const {
  return fraction_of(channel) > 0.0;
}

std::string OperationMode::describe() const {
  std::string out = "D=" + format_time(period) + " {";
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "ch%d:%.0f%%", fractions[i].first,
                  fractions[i].second * 100.0);
    out += buf;
    if (i + 1 < fractions.size()) out += ", ";
  }
  return out + "}";
}

OperationMode OperationMode::single(wire::Channel channel) {
  OperationMode m;
  m.fractions = {{channel, 1.0}};
  return m;
}

OperationMode OperationMode::equal_split(std::vector<wire::Channel> channels,
                                         Time period) {
  OperationMode m;
  m.period = period;
  const double f = 1.0 / static_cast<double>(channels.size());
  for (wire::Channel ch : channels) m.fractions.emplace_back(ch, f);
  return m;
}

OperationMode OperationMode::weighted(
    std::vector<std::pair<wire::Channel, double>> fractions, Time period) {
  OperationMode m;
  m.period = period;
  m.fractions = std::move(fractions);
  m.normalize();
  return m;
}

}  // namespace spider::core
