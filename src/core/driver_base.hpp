#pragma once

#include <cstddef>

#include "core/config.hpp"
#include "core/op_mode.hpp"
#include "mac/scanner.hpp"
#include "sim/simulator.hpp"
#include "wire/frame.hpp"
#include "wire/packet.hpp"

namespace spider::core {

class VirtualInterface;

/// The contract between a wireless driver and the layers above it
/// (virtual interfaces, link management, applications). SpiderDriver is
/// the paper's channel-scheduled driver; the baselines (FatVAP-style
/// AP-sliced scheduling, stock single-AP behaviour) implement the same
/// surface so that selection policy and measurement code are shared.
class DriverBase {
 public:
  virtual ~DriverBase() = default;

  virtual sim::Simulator& simulator() = 0;
  virtual const SpiderConfig& config() const = 0;

  /// The channels this driver will consider (for Spider: the schedule).
  virtual const OperationMode& mode() const = 0;

  virtual mac::Scanner& scanner() = 0;
  virtual VirtualInterface& iface(std::size_t i) = 0;
  virtual std::size_t num_interfaces() const = 0;

  /// Immediate management transmission on `channel`; false if the card is
  /// not currently serving that channel (the caller retries later).
  virtual bool send_mgmt(wire::Frame frame, wire::Channel channel) = 0;

  /// Data-path transmission for `vif`; the driver may queue.
  virtual void send_data(VirtualInterface& vif, wire::PacketPtr packet) = 0;
};

}  // namespace spider::core
