#pragma once

#include <cstddef>

#include "core/op_mode.hpp"
#include "mac/client_mlme.hpp"
#include "mac/scanner.hpp"
#include "net/dhcp_client.hpp"
#include "net/ping.hpp"
#include "phy/radio.hpp"
#include "util/time.hpp"

namespace spider::core {

/// Utility bookkeeping for AP selection (§3.1, Design Choice 2).
struct SelectorConfig {
  /// Values assigned per join attempt by how far it progressed:
  /// association-only < dhcp-bound < end-to-end verified. Failures during
  /// link-layer association score zero.
  double va = 0.3;   ///< associated but DHCP failed
  double vb = 0.6;   ///< DHCP bound but no end-to-end connectivity
  double vc = 1.0;   ///< full join (the bootstrap value for unseen APs)
  /// Weight of the newest outcome in the utility average ("recent joins
  /// are given larger weights").
  double recency_weight = 0.6;
  /// Utilities within this margin are ties, broken by signal strength.
  double tie_margin = 0.05;
  /// How long a failed AP is kept out of consideration. The stock DHCP
  /// behaviour idles 60 s after a failure; Spider retries much sooner —
  /// at vehicular speed a long blacklist would outlive the encounter.
  /// With escalation this is the base (first-failure) duration.
  Time blacklist_duration = sec(2);
  /// Escalating blacklist: each consecutive failure multiplies the
  /// duration by this factor (duration = blacklist_duration ×
  /// blacklist_backoff^streak), capped at blacklist_max. The streak decays
  /// one step per blacklist_decay of quiet and resets on a full join.
  double blacklist_backoff = 2.0;
  Time blacklist_max = sec(30);
  Time blacklist_decay = sec(20);
  /// Flap detection: link deaths shortly after coming up that land within
  /// flap_window of each other stack an extra flap_penalty per flap, so a
  /// bouncing AP is sidelined faster than its join failures alone would.
  Time flap_window = sec(60);
  Time flap_penalty = sec(4);
};

/// How the driver retrieves AP-buffered traffic after a channel switch.
/// Spider's choice (`kWakeNull`) clears the PSM bit with a NullData so the
/// AP flushes its whole buffer at line rate; `kPsPoll` is the standard
/// 802.11 power-save discipline — stay in PSM, watch beacon TIMs, and pull
/// one frame per PS-Poll. The ablation bench quantifies the difference.
enum class PsmRetrieval { kWakeNull, kPsPoll };

/// Everything configurable about a Spider client. Field defaults are the
/// tuned mobile configuration from §4 (7 interfaces, 100 ms link-layer
/// timers); experiments override what they sweep.
struct SpiderConfig {
  std::size_t num_interfaces = 7;
  OperationMode mode = OperationMode::single(6);

  phy::RadioConfig radio;
  mac::MlmeConfig mlme{.ll_timeout = msec(100), .max_retries = 5};
  net::DhcpClientConfig dhcp{.retx_timeout = sec(1), .max_sends = 3};
  net::PingProberConfig ping;
  mac::ScannerConfig scanner;
  SelectorConfig selector;

  /// Link-manager policy loop.
  Time evaluate_interval = msec(100);
  /// Deadline for the post-DHCP end-to-end connectivity test.
  Time e2e_timeout = sec(3);
  /// Hard cap on one join attempt end-to-end.
  Time join_deadline = sec(15);
  bool use_lease_cache = true;

  /// Hardened link management: escalating blacklists with flap detection,
  /// lease-cache invalidation the moment a cached lease is disproven, and
  /// a watchdog that abandons desynchronised join state machines. False
  /// reproduces the original flat-blacklist / sticky-cache behaviour (kept
  /// for the resilience comparison benches).
  bool resilient_link_policy = true;
  /// A link that dies within this much uptime counts as a flap.
  Time flap_uptime_threshold = sec(5);
  /// Cadence of the join-watchdog consistency check.
  Time watchdog_interval = sec(1);

  /// Per-channel outgoing packet queue bound (Design Choice 1).
  std::size_t channel_queue_limit = 256;

  PsmRetrieval psm_retrieval = PsmRetrieval::kWakeNull;
};

}  // namespace spider::core
