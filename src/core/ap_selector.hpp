#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.hpp"
#include "mac/scanner.hpp"
#include "util/time.hpp"

namespace spider::core {

/// Terminal outcome of one join attempt, ordered by progress.
enum class JoinOutcome { kAssocFailed, kAssocOnly, kDhcpBound, kEndToEnd };
const char* to_string(JoinOutcome o);

/// Spider's utility-driven AP selection (§3.1, Design Choice 2).
///
/// Choosing the optimal AP subset is NP-hard (Appendix A), so Spider keeps
/// a per-BSSID utility: a recency-weighted average of how far past join
/// attempts progressed (0 for association failures, va/vb/vc beyond).
/// Unseen APs bootstrap at the maximum utility so each gets at least one
/// try; ties break on signal strength; failed APs are blacklisted briefly.
class ApSelector {
 public:
  explicit ApSelector(SelectorConfig config) : config_(config) {}

  /// Folds a finished attempt into the AP's utility.
  void record_outcome(wire::Bssid bssid, JoinOutcome outcome);

  void blacklist(wire::Bssid bssid, Time now);
  bool blacklisted(wire::Bssid bssid, Time now) const;

  /// Current utility (bootstrap value for unknown APs).
  double utility(wire::Bssid bssid) const;

  /// Picks the best join candidate: highest utility, RSSI tiebreak,
  /// skipping in-use and blacklisted APs.
  std::optional<mac::ApObservation> select(
      const std::vector<mac::ApObservation>& candidates,
      const std::unordered_set<wire::Bssid>& in_use, Time now) const;

  std::size_t known_aps() const { return utilities_.size(); }

 private:
  double outcome_value(JoinOutcome outcome) const;

  SelectorConfig config_;
  std::unordered_map<wire::Bssid, double> utilities_;
  std::unordered_map<wire::Bssid, Time> blacklist_until_;
};

}  // namespace spider::core
