#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.hpp"
#include "mac/scanner.hpp"
#include "util/time.hpp"

namespace spider::sim {
class Simulator;
}  // namespace spider::sim

namespace spider::core {

/// Terminal outcome of one join attempt, ordered by progress.
enum class JoinOutcome { kAssocFailed, kAssocOnly, kDhcpBound, kEndToEnd };
const char* to_string(JoinOutcome o);

/// Spider's utility-driven AP selection (§3.1, Design Choice 2).
///
/// Choosing the optimal AP subset is NP-hard (Appendix A), so Spider keeps
/// a per-BSSID utility: a recency-weighted average of how far past join
/// attempts progressed (0 for association failures, va/vb/vc beyond).
/// Unseen APs bootstrap at the maximum utility so each gets at least one
/// try; ties break on signal strength; failed APs are blacklisted briefly.
class ApSelector {
 public:
  explicit ApSelector(SelectorConfig config) : config_(config) {}

  /// The selector has no simulator of its own; its owner (LinkManager)
  /// lends one so utility updates and blacklist decisions reach the flight
  /// recorder. Null (the default) keeps the selector silent.
  void bind_tracer(sim::Simulator* simulator) { trace_sim_ = simulator; }

  /// Folds a finished attempt into the AP's utility. A full join also
  /// clears the AP's failure streak and flap count.
  void record_outcome(wire::Bssid bssid, JoinOutcome outcome);

  /// Sidelines the AP. With `escalate` each consecutive failure grows the
  /// duration geometrically (base × backoff^streak, capped; the streak
  /// decays one step per `blacklist_decay` of quiet). Without it the flat
  /// legacy behaviour applies: always exactly `blacklist_duration`.
  void blacklist(wire::Bssid bssid, Time now, bool escalate = true);
  bool blacklisted(wire::Bssid bssid, Time now) const;

  /// Notes a short-uptime link death. Flaps within `flap_window` of each
  /// other stack an extra `flap_penalty` per flap onto the blacklist.
  void record_flap(wire::Bssid bssid, Time now);

  // Introspection for tests and metrics.
  int failure_streak(wire::Bssid bssid) const;
  int flap_count(wire::Bssid bssid) const;
  Time blacklisted_until(wire::Bssid bssid) const;

  /// Current utility (bootstrap value for unknown APs).
  double utility(wire::Bssid bssid) const;

  /// Picks the best join candidate: highest utility, RSSI tiebreak,
  /// skipping in-use and blacklisted APs.
  std::optional<mac::ApObservation> select(
      const std::vector<mac::ApObservation>& candidates,
      const std::unordered_set<wire::Bssid>& in_use, Time now) const;

  std::size_t known_aps() const { return utilities_.size(); }

 private:
  struct Penalty {
    Time until{0};         ///< blacklisted while now < until
    int streak = 0;        ///< consecutive failures feeding the backoff
    Time last_failure{0};  ///< for streak decay
    int flaps = 0;         ///< flaps inside the current window
    Time last_flap{0};
  };

  double outcome_value(JoinOutcome outcome) const;

  SelectorConfig config_;
  sim::Simulator* trace_sim_ = nullptr;
  std::unordered_map<wire::Bssid, double> utilities_;
  std::unordered_map<wire::Bssid, Penalty> penalties_;
};

}  // namespace spider::core
