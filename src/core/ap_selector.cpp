#include "core/ap_selector.hpp"

namespace spider::core {

const char* to_string(JoinOutcome o) {
  switch (o) {
    case JoinOutcome::kAssocFailed: return "assoc-failed";
    case JoinOutcome::kAssocOnly: return "assoc-only";
    case JoinOutcome::kDhcpBound: return "dhcp-bound";
    case JoinOutcome::kEndToEnd: return "end-to-end";
  }
  return "?";
}

double ApSelector::outcome_value(JoinOutcome outcome) const {
  switch (outcome) {
    case JoinOutcome::kAssocFailed: return 0.0;
    case JoinOutcome::kAssocOnly: return config_.va;
    case JoinOutcome::kDhcpBound: return config_.vb;
    case JoinOutcome::kEndToEnd: return config_.vc;
  }
  return 0.0;
}

void ApSelector::record_outcome(wire::Bssid bssid, JoinOutcome outcome) {
  const double value = outcome_value(outcome);
  auto [it, inserted] = utilities_.try_emplace(bssid, value);
  if (!inserted) {
    it->second = (1.0 - config_.recency_weight) * it->second +
                 config_.recency_weight * value;
  }
}

void ApSelector::blacklist(wire::Bssid bssid, Time now) {
  blacklist_until_[bssid] = now + config_.blacklist_duration;
}

bool ApSelector::blacklisted(wire::Bssid bssid, Time now) const {
  auto it = blacklist_until_.find(bssid);
  return it != blacklist_until_.end() && it->second > now;
}

double ApSelector::utility(wire::Bssid bssid) const {
  auto it = utilities_.find(bssid);
  // "Every new open AP that has sufficient signal strength is assigned the
  // maximum utility so that the AP is considered for association at least
  // once."
  return it == utilities_.end() ? config_.vc : it->second;
}

std::optional<mac::ApObservation> ApSelector::select(
    const std::vector<mac::ApObservation>& candidates,
    const std::unordered_set<wire::Bssid>& in_use, Time now) const {
  const mac::ApObservation* best = nullptr;
  double best_utility = -1.0;
  for (const auto& obs : candidates) {
    if (in_use.contains(obs.bssid) || blacklisted(obs.bssid, now)) continue;
    const double u = utility(obs.bssid);
    if (!best || u > best_utility + config_.tie_margin ||
        (u > best_utility - config_.tie_margin &&
         obs.rssi_dbm > best->rssi_dbm)) {
      best = &obs;
      best_utility = std::max(best_utility, u);
    }
  }
  if (!best) return std::nullopt;
  return *best;
}

}  // namespace spider::core
