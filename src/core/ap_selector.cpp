#include "core/ap_selector.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "obs/tracer.hpp"
#include "sim/simulator.hpp"

namespace spider::core {

const char* to_string(JoinOutcome o) {
  switch (o) {
    case JoinOutcome::kAssocFailed: return "assoc-failed";
    case JoinOutcome::kAssocOnly: return "assoc-only";
    case JoinOutcome::kDhcpBound: return "dhcp-bound";
    case JoinOutcome::kEndToEnd: return "end-to-end";
  }
  return "?";
}

double ApSelector::outcome_value(JoinOutcome outcome) const {
  switch (outcome) {
    case JoinOutcome::kAssocFailed: return 0.0;
    case JoinOutcome::kAssocOnly: return config_.va;
    case JoinOutcome::kDhcpBound: return config_.vb;
    case JoinOutcome::kEndToEnd: return config_.vc;
  }
  return 0.0;
}

void ApSelector::record_outcome(wire::Bssid bssid, JoinOutcome outcome) {
  const double value = outcome_value(outcome);
  auto [it, inserted] = utilities_.try_emplace(bssid, value);
  if (!inserted) {
    it->second = (1.0 - config_.recency_weight) * it->second +
                 config_.recency_weight * value;
  }
  if (trace_sim_) {
    SPIDER_TRACE(*trace_sim_, .kind = obs::TraceKind::kUtility,
                 .aux = static_cast<std::uint8_t>(outcome),
                 .track = obs::track::ap(bssid.raw()), .id = bssid.raw(),
                 .value = it->second);
  }
  if (outcome == JoinOutcome::kEndToEnd) {
    // The AP proved itself end-to-end: forgive its history.
    if (auto pit = penalties_.find(bssid); pit != penalties_.end()) {
      pit->second.streak = 0;
      pit->second.flaps = 0;
    }
  }
}

void ApSelector::blacklist(wire::Bssid bssid, Time now, bool escalate) {
  Penalty& p = penalties_[bssid];
  if (!escalate) {
    // Legacy flat behaviour: overwrite, never grow.
    p.until = now + config_.blacklist_duration;
    p.last_failure = now;
    if (trace_sim_) {
      SPIDER_TRACE(*trace_sim_, .kind = obs::TraceKind::kBlacklist,
                   .track = obs::track::ap(bssid.raw()), .id = bssid.raw(),
                   .value = to_seconds(p.until));
    }
    return;
  }
  if (p.streak > 0 && config_.blacklist_decay > Time{0}) {
    const auto quiet_steps = (now - p.last_failure) / config_.blacklist_decay;
    p.streak = quiet_steps >= p.streak ? 0
                                       : p.streak - static_cast<int>(quiet_steps);
  }
  const double scale = std::pow(config_.blacklist_backoff, p.streak);
  const auto base = static_cast<double>(config_.blacklist_duration.count());
  // The cap never undercuts the configured base duration.
  const Time cap = std::max(config_.blacklist_max, config_.blacklist_duration);
  const Time duration = std::min(
      cap, Time{static_cast<std::int64_t>(std::min(
               base * scale, static_cast<double>(cap.count())))});
  p.until = std::max(p.until, now + duration);
  p.last_failure = now;
  ++p.streak;
  if (trace_sim_) {
    SPIDER_TRACE(*trace_sim_, .kind = obs::TraceKind::kBlacklist,
                 .aux = static_cast<std::uint8_t>(std::min(p.streak, 255)),
                 .track = obs::track::ap(bssid.raw()), .id = bssid.raw(),
                 .value = to_seconds(p.until));
  }
}

bool ApSelector::blacklisted(wire::Bssid bssid, Time now) const {
  auto it = penalties_.find(bssid);
  return it != penalties_.end() && it->second.until > now;
}

void ApSelector::record_flap(wire::Bssid bssid, Time now) {
  Penalty& p = penalties_[bssid];
  if (p.flaps > 0 && now - p.last_flap <= config_.flap_window) {
    ++p.flaps;
  } else {
    p.flaps = 1;
  }
  p.last_flap = now;
  const Time extra =
      Time{config_.flap_penalty.count() * static_cast<std::int64_t>(p.flaps)};
  p.until = std::max(p.until, now + extra);
  if (trace_sim_) {
    SPIDER_TRACE(*trace_sim_, .kind = obs::TraceKind::kBlacklist,
                 .aux = static_cast<std::uint8_t>(std::min(p.flaps, 255)),
                 .track = obs::track::ap(bssid.raw()), .id = bssid.raw(),
                 .value = to_seconds(p.until));
  }
}

int ApSelector::failure_streak(wire::Bssid bssid) const {
  auto it = penalties_.find(bssid);
  return it == penalties_.end() ? 0 : it->second.streak;
}

int ApSelector::flap_count(wire::Bssid bssid) const {
  auto it = penalties_.find(bssid);
  return it == penalties_.end() ? 0 : it->second.flaps;
}

Time ApSelector::blacklisted_until(wire::Bssid bssid) const {
  auto it = penalties_.find(bssid);
  return it == penalties_.end() ? Time{0} : it->second.until;
}

double ApSelector::utility(wire::Bssid bssid) const {
  auto it = utilities_.find(bssid);
  // "Every new open AP that has sufficient signal strength is assigned the
  // maximum utility so that the AP is considered for association at least
  // once."
  return it == utilities_.end() ? config_.vc : it->second;
}

std::optional<mac::ApObservation> ApSelector::select(
    const std::vector<mac::ApObservation>& candidates,
    const std::unordered_set<wire::Bssid>& in_use, Time now) const {
  const mac::ApObservation* best = nullptr;
  double best_utility = -1.0;
  for (const auto& obs : candidates) {
    if (in_use.contains(obs.bssid) || blacklisted(obs.bssid, now)) continue;
    const double u = utility(obs.bssid);
    if (!best || u > best_utility + config_.tie_margin ||
        (u > best_utility - config_.tie_margin &&
         obs.rssi_dbm > best->rssi_dbm)) {
      best = &obs;
      best_utility = std::max(best_utility, u);
    }
  }
  if (!best) return std::nullopt;
  return *best;
}

}  // namespace spider::core
