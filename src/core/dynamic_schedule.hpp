#pragma once

#include <optional>
#include <vector>

#include "core/spider_driver.hpp"
#include "sim/simulator.hpp"

namespace spider::core {

/// Goodput-weighted multi-channel scheduling — the second half of §4.8's
/// future work ("Spider's AP selection has to incorporate a suite of other
/// criteria such as end-to-end bandwidth estimates").
///
/// While the driver runs a multi-channel mode, this controller measures
/// the bytes each channel delivered over a sliding window and reweights
/// the channel fractions proportionally (with a floor, so starved channels
/// can still host joins and scans). The FatVAP f_i = R_i/W idea, applied
/// at channel granularity instead of AP granularity.
struct DynamicScheduleConfig {
  Time window = sec(5);         ///< measurement + adjustment period
  double min_fraction = 0.10;   ///< floor per scheduled channel
  /// Smoothing on the per-channel byte estimate.
  double alpha = 0.5;
  /// Fraction change below this does not trigger a reschedule (the mode
  /// swap costs a resynchronisation of the slot cycle).
  double rebalance_threshold = 0.05;
};

class DynamicScheduleController {
 public:
  DynamicScheduleController(SpiderDriver& driver,
                            DynamicScheduleConfig config = {});

  void start();
  void stop();

  std::uint64_t rebalances() const { return rebalances_; }
  /// Exposed for tests: one measurement/adjustment step.
  void tick();

 private:
  SpiderDriver& driver_;
  DynamicScheduleConfig config_;
  std::vector<std::uint64_t> last_rx_;          ///< per interface
  std::vector<std::pair<wire::Channel, double>> ewma_;  ///< per channel
  std::uint64_t rebalances_ = 0;
  std::optional<sim::PeriodicTimer> timer_;
};

}  // namespace spider::core
