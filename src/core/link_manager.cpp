#include "core/link_manager.hpp"

#include "obs/tracer.hpp"

namespace spider::core {

LinkManager::LinkManager(DriverBase& driver, wire::Ipv4 ping_target)
    : driver_(driver),
      sim_(driver.simulator()),
      ping_target_(ping_target),
      selector_(driver.config().selector) {
  selector_.bind_tracer(&sim_);
  contexts_.resize(driver_.num_interfaces());
  for (std::size_t i = 0; i < driver_.num_interfaces(); ++i) {
    VirtualInterface& vif = driver_.iface(i);
    vif.mlme().set_callbacks({
        .on_associated = [this, i](std::uint16_t) { on_associated(i); },
        .on_failed = [this, i](mac::JoinPhase p) { on_join_failed(i, p); },
        .on_link_lost = [this, i] { on_link_dead(i); },
    });
    vif.dhcp().set_callbacks({
        .on_bound = [this, i](const net::Lease& l) { on_dhcp_bound(i, l); },
        .on_failed = [this, i] { on_dhcp_failed(i); },
        .on_lease_lost = [this, i] { on_link_dead(i); },
        .on_cache_rejected =
            [this, i] {
              // The server NAKed our remembered address: it rebooted or
              // reassigned it. Drop the entry now so sibling interfaces do
              // not keep replaying the same dead INIT-REBOOT.
              if (!driver_.config().resilient_link_policy) return;
              lease_cache_.invalidate(driver_.iface(i).bssid());
              ++cache_invalidations_;
            },
    });
    vif.prober().set_callbacks({
        .on_first_reply = [this, i] { on_e2e_confirmed(i); },
        .on_dead = [this, i] { on_link_dead(i); },
    });
  }
}

void LinkManager::start() {
  evaluate_timer_.emplace(sim_, driver_.config().evaluate_interval,
                          [this] { evaluate(); });
  evaluate_timer_->start();
  if (driver_.config().resilient_link_policy) {
    watchdog_timer_.emplace(sim_, driver_.config().watchdog_interval,
                            [this] { watchdog(); });
    watchdog_timer_->start();
  }
}

void LinkManager::watchdog() {
  // Consistency check: an interface whose LinkState says "mid-join" while
  // the underlying state machine has silently returned to idle/failed is
  // stuck — no callback is ever coming (e.g. the AP powered off between a
  // handshake step and its response). Abandon it so the interface rejoins
  // the pool instead of waiting out the full join deadline.
  for (std::size_t i = 0; i < driver_.num_interfaces(); ++i) {
    VirtualInterface& vif = driver_.iface(i);
    bool stuck = false;
    JoinOutcome outcome = JoinOutcome::kAssocFailed;
    switch (vif.link_state()) {
      case LinkState::kAssociating:
        stuck = vif.mlme().state() == mac::ClientMlme::State::kIdle;
        outcome = JoinOutcome::kAssocFailed;
        break;
      case LinkState::kDhcp:
        stuck = vif.dhcp().state() == net::DhcpClient::State::kIdle ||
                vif.dhcp().state() == net::DhcpClient::State::kFailed;
        outcome = JoinOutcome::kAssocOnly;
        break;
      case LinkState::kTesting:
        stuck = !vif.prober().running();
        outcome = JoinOutcome::kDhcpBound;
        break;
      default:
        break;  // idle and up need no supervision here
    }
    if (stuck) {
      ++watchdog_aborts_;
      finish_attempt(i, outcome, /*stays_up=*/false);
    }
  }
}

std::size_t LinkManager::links_up() {
  std::size_t n = 0;
  for (std::size_t i = 0; i < driver_.num_interfaces(); ++i) {
    n += driver_.iface(i).up() ? 1 : 0;
  }
  return n;
}

std::unordered_set<wire::Bssid> LinkManager::in_use() const {
  std::unordered_set<wire::Bssid> used;
  for (const auto& ctx : contexts_) {
    if (!ctx.target.is_null()) used.insert(ctx.target);
  }
  return used;
}

JoinRecord& LinkManager::record_of(std::size_t vif_index) {
  return join_log_[contexts_[vif_index].record];
}

void LinkManager::evaluate() {
  auto used = in_use();
  const Time now = sim_.now();

  for (std::size_t i = 0; i < driver_.num_interfaces(); ++i) {
    VirtualInterface& vif = driver_.iface(i);

    // Abort in-flight joins whose AP has vanished from the scan cache —
    // the car has driven past it; timers alone would waste seconds.
    if (!vif.idle() && !vif.up() &&
        !driver_.scanner().in_range(contexts_[i].target)) {
      const JoinOutcome outcome =
          vif.link_state() == LinkState::kAssociating ? JoinOutcome::kAssocFailed
          : vif.link_state() == LinkState::kDhcp      ? JoinOutcome::kAssocOnly
                                                      : JoinOutcome::kDhcpBound;
      finish_attempt(i, outcome, /*stays_up=*/false);
      continue;
    }

    if (!vif.idle()) continue;

    // Candidate APs: fresh observations on scheduled channels, not already
    // claimed by a sibling interface, not blacklisted.
    std::vector<mac::ApObservation> candidates;
    for (const auto& obs : driver_.scanner().current()) {
      if (driver_.mode().includes(obs.channel)) candidates.push_back(obs);
    }
    if (auto choice = selector_.select(candidates, used, now)) {
      begin_join(i, *choice);
      used.insert(choice->bssid);  // siblings must not claim the same AP
    }
  }
}

void LinkManager::begin_join(std::size_t vif_index,
                             const mac::ApObservation& obs) {
  VirtualInterface& vif = driver_.iface(vif_index);
  VifContext& ctx = contexts_[vif_index];

  ctx.target = obs.bssid;
  JoinRecord record;
  record.bssid = obs.bssid;
  record.channel = obs.channel;
  record.started = sim_.now();
  ctx.record = join_log_.size();
  join_log_.push_back(record);

  SPIDER_TRACE(sim_, .kind = spider::obs::TraceKind::kJoinStart,
               .channel = static_cast<std::int16_t>(obs.channel),
               .track = spider::obs::track::client(vif_index),
               .id = obs.bssid.raw());

  vif.set_link_state(LinkState::kAssociating);
  vif.mlme().start_join(obs.bssid, obs.channel);

  ctx.join_deadline.cancel();
  ctx.join_deadline = sim_.schedule(driver_.config().join_deadline,
                                    [this, vif_index] { on_join_deadline(vif_index); });
}

void LinkManager::on_associated(std::size_t vif_index) {
  VirtualInterface& vif = driver_.iface(vif_index);
  if (vif.link_state() != LinkState::kAssociating) return;
  record_of(vif_index).assoc_delay = sim_.now() - record_of(vif_index).started;

  vif.set_link_state(LinkState::kDhcp);
  std::optional<net::Lease> cached;
  if (driver_.config().use_lease_cache) {
    cached = lease_cache_.find(vif.bssid(), sim_.now());
  }
  record_of(vif_index).used_lease_cache = cached.has_value();
  vif.dhcp().start(cached);
}

void LinkManager::on_join_failed(std::size_t vif_index, mac::JoinPhase) {
  finish_attempt(vif_index, JoinOutcome::kAssocFailed, /*stays_up=*/false);
}

void LinkManager::on_dhcp_bound(std::size_t vif_index, const net::Lease& lease) {
  VirtualInterface& vif = driver_.iface(vif_index);
  if (vif.link_state() != LinkState::kDhcp) return;
  record_of(vif_index).dhcp_delay = sim_.now() - record_of(vif_index).started;

  vif.set_lease(lease);
  lease_cache_.store(vif.bssid(), lease);

  // Rare IP collision across interfaces: keep the most recent assignment
  // (§3.2.2) and tear the older interface down.
  for (std::size_t j = 0; j < driver_.num_interfaces(); ++j) {
    if (j != vif_index && driver_.iface(j).ip() == lease.ip &&
        !driver_.iface(j).idle()) {
      finish_attempt(j, JoinOutcome::kDhcpBound, /*stays_up=*/false);
    }
  }

  vif.set_link_state(LinkState::kTesting);
  const wire::Ipv4 target =
      ping_target_.is_null() ? lease.gateway : ping_target_;
  vif.prober().start(lease.ip, target);

  VifContext& ctx = contexts_[vif_index];
  ctx.e2e_deadline.cancel();
  ctx.e2e_deadline = sim_.schedule(driver_.config().e2e_timeout,
                                   [this, vif_index] { on_e2e_timeout(vif_index); });
}

void LinkManager::on_dhcp_failed(std::size_t vif_index) {
  VirtualInterface& vif = driver_.iface(vif_index);
  if (vif.link_state() != LinkState::kDhcp) return;
  if (driver_.config().resilient_link_policy &&
      record_of(vif_index).used_lease_cache) {
    // An INIT-REBOOT attempt burned its whole retransmit budget without
    // even a NAK (rebooted gateways often just stay silent). The cached
    // lease is evidence against itself — drop it so the next attempt goes
    // straight to DISCOVER.
    lease_cache_.invalidate(vif.bssid());
    ++cache_invalidations_;
  }
  finish_attempt(vif_index, JoinOutcome::kAssocOnly, /*stays_up=*/false);
}

void LinkManager::on_e2e_confirmed(std::size_t vif_index) {
  VirtualInterface& vif = driver_.iface(vif_index);
  if (vif.link_state() != LinkState::kTesting) return;
  contexts_[vif_index].e2e_deadline.cancel();
  contexts_[vif_index].join_deadline.cancel();
  record_of(vif_index).e2e_delay = sim_.now() - record_of(vif_index).started;
  finish_attempt(vif_index, JoinOutcome::kEndToEnd, /*stays_up=*/true);
}

void LinkManager::on_e2e_timeout(std::size_t vif_index) {
  VirtualInterface& vif = driver_.iface(vif_index);
  if (vif.link_state() != LinkState::kTesting) return;
  finish_attempt(vif_index, JoinOutcome::kDhcpBound, /*stays_up=*/false);
}

void LinkManager::on_join_deadline(std::size_t vif_index) {
  VirtualInterface& vif = driver_.iface(vif_index);
  switch (vif.link_state()) {
    case LinkState::kAssociating:
      finish_attempt(vif_index, JoinOutcome::kAssocFailed, false);
      return;
    case LinkState::kDhcp:
      finish_attempt(vif_index, JoinOutcome::kAssocOnly, false);
      return;
    case LinkState::kTesting:
      finish_attempt(vif_index, JoinOutcome::kDhcpBound, false);
      return;
    default:
      return;  // already up or idle
  }
}

void LinkManager::on_link_dead(std::size_t vif_index) {
  VirtualInterface& vif = driver_.iface(vif_index);
  if (vif.link_state() == LinkState::kUp) {
    // The join itself succeeded and was already recorded; this is a later
    // loss (drove out of range). Tear down and re-enter the pool.
    const Time uptime = sim_.now() - contexts_[vif_index].up_since;
    SPIDER_TRACE(sim_, .kind = obs::TraceKind::kLinkDown,
                 .channel = static_cast<std::int16_t>(vif.channel()),
                 .track = obs::track::client(vif_index),
                 .id = vif.bssid().raw(), .value = to_seconds(uptime));
    if (callbacks_.on_link_down) callbacks_.on_link_down(vif);
    const bool resilient = driver_.config().resilient_link_policy;
    if (resilient) {
      if (uptime < driver_.config().flap_uptime_threshold) {
        // Came up only to die straight away: that is a flapping AP, not a
        // drive-past. Penalise beyond the ordinary blacklist.
        selector_.record_flap(vif.bssid(), sim_.now());
        ++flaps_detected_;
      }
    }
    selector_.blacklist(vif.bssid(), sim_.now(), /*escalate=*/resilient);
    vif.prober().stop();
    vif.dhcp().abort();  // out of range: a RELEASE could not be delivered
    vif.mlme().disassociate();
    vif.set_lease(std::nullopt);
    vif.set_link_state(LinkState::kIdle);
    contexts_[vif_index].target = wire::Bssid();
  }
}

void LinkManager::finish_attempt(std::size_t vif_index, JoinOutcome outcome,
                                 bool stays_up) {
  VirtualInterface& vif = driver_.iface(vif_index);
  VifContext& ctx = contexts_[vif_index];

  JoinRecord& record = record_of(vif_index);
  if (!record.finished) {
    record.finished = true;
    record.outcome = outcome;
    SPIDER_TRACE(sim_, .kind = obs::TraceKind::kJoinOutcome,
                 .aux = static_cast<std::uint8_t>(outcome),
                 .channel = static_cast<std::int16_t>(record.channel),
                 .track = obs::track::client(vif_index),
                 .id = ctx.target.raw(),
                 .value = to_seconds(sim_.now() - record.started));
    selector_.record_outcome(ctx.target, outcome);
  }

  if (stays_up) {
    vif.set_link_state(LinkState::kUp);
    ctx.up_since = sim_.now();
    SPIDER_TRACE(sim_, .kind = obs::TraceKind::kLinkUp,
                 .channel = static_cast<std::int16_t>(vif.channel()),
                 .track = obs::track::client(vif_index),
                 .id = vif.bssid().raw());
    if (callbacks_.on_link_up) callbacks_.on_link_up(vif);
    return;
  }

  ctx.join_deadline.cancel();
  ctx.e2e_deadline.cancel();
  selector_.blacklist(ctx.target, sim_.now(),
                      /*escalate=*/driver_.config().resilient_link_policy);
  vif.prober().stop();
  vif.dhcp().release();  // polite: hand unused addresses back
  vif.mlme().disassociate();
  vif.set_lease(std::nullopt);
  vif.set_link_state(LinkState::kIdle);
  ctx.target = wire::Bssid();
}

}  // namespace spider::core
