#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/spider_driver.hpp"
#include "sim/simulator.hpp"

namespace spider::core {

/// Speed-adaptive scheduling — the extension sketched in §4.8: "an
/// augmented design would encompass both mobile and nomadic scenarios by
/// alternating between staying on one channel at high speeds and managing
/// multiple channels when moving slowly."
///
/// The dividing speed comes from the paper's optimisation framework
/// (~10 m/s for typical parameter values, Fig. 4). Above it, the
/// controller parks the card on the single channel where the scanner
/// currently sees the most (strongest) APs; below it, it spreads the
/// schedule across the orthogonal channels. Hysteresis prevents flapping
/// around the threshold.
struct AdaptiveConfig {
  double speed_threshold_mps = 10.0;
  double hysteresis_mps = 1.0;
  Time check_interval = sec(1);
  /// Channels considered in slow (multi-channel) mode.
  std::vector<wire::Channel> channels = {1, 6, 11};
  Time multi_channel_period = msec(600);
  /// Minimum dwell in a mode before another flip is allowed.
  Time min_mode_hold = sec(5);
  /// In single-channel mode with no fresh APs heard on that channel, fall
  /// back to the multi-channel schedule to rediscover coverage (a parked
  /// card cannot hear other channels at all).
  bool rediscover_when_dark = true;
};

class AdaptiveModeController {
 public:
  using SpeedFn = std::function<double()>;  ///< current speed, m/s

  AdaptiveModeController(SpiderDriver& driver, SpeedFn speed,
                         AdaptiveConfig config = {});

  void start();
  void stop();

  bool in_single_channel_mode() const { return single_mode_; }
  std::uint64_t mode_switches() const { return mode_switches_; }

  /// Exposed for tests: one evaluation step.
  void tick();

 private:
  wire::Channel busiest_channel() const;

  SpiderDriver& driver_;
  SpeedFn speed_;
  AdaptiveConfig config_;
  bool single_mode_ = false;
  Time last_flip_{Time::min() / 2};
  std::uint64_t mode_switches_ = 0;
  std::optional<sim::PeriodicTimer> timer_;
};

}  // namespace spider::core
