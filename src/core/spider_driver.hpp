#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/driver_base.hpp"
#include "core/virtual_iface.hpp"
#include "mac/scanner.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace spider::core {

/// Spider's wireless driver (§3.2.1): schedules the physical card among
/// 802.11 *channels* (not APs — Design Choice 1), keeps one outgoing
/// packet queue per channel, performs the PSM dance on every switch, and
/// scans opportunistically in the background.
///
/// Switch sequence, as in the paper: (1) outgoing traffic for the old
/// channel is already isolated in its per-channel queue; (2) a NullData
/// frame with the PSM bit set is sent to every associated AP on the old
/// channel, asking it to buffer; (3) the hardware reset retunes the card;
/// (4) interfaces on the new channel are woken with a PSM-clear NullData,
/// which also flushes the APs' buffers; (5) the new channel's queue drains.
class SpiderDriver final : public DriverBase {
 public:
  SpiderDriver(sim::Simulator& simulator, phy::Medium& medium,
               std::uint64_t mac_base, phy::Radio::PositionFn position,
               SpiderConfig config);

  /// Brings up the schedule and background scanning.
  void start();

  const SpiderConfig& config() const override { return config_; }
  sim::Simulator& simulator() override { return sim_; }

  /// Replaces the operation mode at runtime (user-space reconfiguration;
  /// the adaptive extension uses this).
  void set_mode(OperationMode mode);
  const OperationMode& mode() const override { return mode_; }

  mac::Scanner& scanner() override { return scanner_; }
  phy::Radio& radio() { return radio_; }

  std::vector<std::unique_ptr<VirtualInterface>>& interfaces() { return vifs_; }
  VirtualInterface& iface(std::size_t i) override { return *vifs_[i]; }
  std::size_t num_interfaces() const override { return vifs_.size(); }

  /// True when the card currently serves `channel` (tuned and not mid
  /// reset). MLME sends and queue drains are gated on this.
  bool channel_active(wire::Channel channel) const;

  /// Direct transmission of a management frame on `channel`; returns false
  /// (frame not sent) when the card is elsewhere.
  bool send_mgmt(wire::Frame frame, wire::Channel channel) override;

  /// Sends a data packet on behalf of `vif`; queues it per channel when
  /// the card is elsewhere.
  void send_data(VirtualInterface& vif, wire::PacketPtr packet) override;

  // --- statistics ----------------------------------------------------
  std::uint64_t switches() const { return switch_count_; }
  const OnlineStats& switch_latency_stats() const { return switch_latency_; }
  /// Discards accumulated latency samples (benches measure steady state
  /// after the join warm-up, as the paper's Table 1 does).
  void reset_switch_stats() { switch_latency_ = OnlineStats{}; }
  std::uint64_t queue_drops() const { return queue_drops_; }

 private:
  struct QueuedPacket {
    std::size_t vif_index;
    wire::PacketPtr packet;
  };

  void begin_slot(std::size_t slot_index);
  void end_slot_and_switch(std::size_t next_slot);
  void on_channel_entered(bool record_latency);
  void drain_queue(wire::Channel channel);
  void on_radio_frame(const wire::Frame& frame);
  void send_ps_frame(VirtualInterface& vif, bool power_save);
  void send_ps_poll(VirtualInterface& vif);
  Time slot_duration(std::size_t slot_index) const;
  void send_probe_request();

  sim::Simulator& sim_;
  SpiderConfig config_;
  phy::Radio radio_;
  mac::Scanner scanner_;
  OperationMode mode_;
  std::vector<std::unique_ptr<VirtualInterface>> vifs_;
  std::map<wire::Channel, std::deque<QueuedPacket>> channel_queues_;

  bool started_ = false;
  std::size_t current_slot_ = 0;
  sim::EventHandle slot_timer_;

  std::uint64_t switch_count_ = 0;
  OnlineStats switch_latency_;
  Time switch_started_{0};
  std::uint64_t queue_drops_ = 0;
};

}  // namespace spider::core
