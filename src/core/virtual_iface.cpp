#include "core/virtual_iface.hpp"

#include "obs/tracer.hpp"

namespace spider::core {

const char* to_string(LinkState s) {
  switch (s) {
    case LinkState::kIdle: return "idle";
    case LinkState::kAssociating: return "associating";
    case LinkState::kDhcp: return "dhcp";
    case LinkState::kTesting: return "testing";
    case LinkState::kUp: return "up";
  }
  return "?";
}

VirtualInterface::VirtualInterface(sim::Simulator& simulator,
                                   DriverBase& driver, std::size_t index,
                                   wire::MacAddress mac,
                                   const SpiderConfig& config)
    : sim_(simulator),
      driver_(driver),
      index_(index),
      mac_(mac),
      mlme_(simulator, mac, config.mlme),
      dhcp_(simulator, mac, config.dhcp),
      prober_(simulator, static_cast<std::uint32_t>(index) + 1, config.ping) {
  // Both state machines report onto this interface's timeline lane.
  mlme_.set_trace_track(obs::track::client(index));
  dhcp_.set_trace_track(obs::track::client(index));
  // Management frames go straight to the air, gated on the schedule.
  mlme_.set_send([this](wire::Frame f) {
    return driver_.send_mgmt(std::move(f), mlme_.channel());
  });
  // DHCP and ICMP ride the per-channel data queues.
  dhcp_.set_send([this](wire::PacketPtr p) { send_packet(std::move(p)); });
  prober_.set_send([this](wire::PacketPtr p) { send_packet(std::move(p)); });
}

void VirtualInterface::send_packet(wire::PacketPtr packet) {
  driver_.send_data(*this, std::move(packet));
}

void VirtualInterface::on_frame(const wire::Frame& frame) {
  switch (frame.type) {
    case wire::FrameType::kAuthResponse:
    case wire::FrameType::kAssocResponse:
    case wire::FrameType::kDeauth:
    case wire::FrameType::kDisassoc:
      mlme_.on_frame(frame);
      return;
    case wire::FrameType::kData:
      if (frame.packet) {
        ++rx_packets_;
        rx_bytes_ += frame.packet->size_bytes;
        dispatch_packet(*frame.packet);
      }
      return;
    default:
      return;
  }
}

void VirtualInterface::dispatch_packet(const wire::Packet& packet) {
  if (packet.as<wire::DhcpMessage>()) {
    dhcp_.on_packet(packet);
    return;
  }
  if (packet.as<wire::IcmpEcho>()) {
    prober_.on_packet(packet);
    return;
  }
  if (app_handler_) app_handler_(packet);
}

}  // namespace spider::core
