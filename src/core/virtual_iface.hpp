#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/config.hpp"
#include "core/driver_base.hpp"
#include "mac/client_mlme.hpp"
#include "net/dhcp_client.hpp"
#include "net/ping.hpp"
#include "sim/simulator.hpp"
#include "wire/frame.hpp"
#include "wire/packet.hpp"

namespace spider::core {



/// Lifecycle of one interface's connection (driven by the LinkManager).
enum class LinkState { kIdle, kAssociating, kDhcp, kTesting, kUp };
const char* to_string(LinkState s);

/// One "Linux network interface" (§3.1, Design Choice 3): Spider exposes a
/// separate interface per AP connection, each with its own MAC address,
/// MLME, DHCP client and liveness prober. The interface does not own the
/// radio — all airtime goes through the driver, which gates it on the
/// channel schedule.
class VirtualInterface {
 public:
  VirtualInterface(sim::Simulator& simulator, DriverBase& driver,
                   std::size_t index, wire::MacAddress mac,
                   const SpiderConfig& config);

  std::size_t index() const { return index_; }
  wire::MacAddress mac() const { return mac_; }
  LinkState link_state() const { return state_; }
  void set_link_state(LinkState s) { state_ = s; }

  mac::ClientMlme& mlme() { return mlme_; }
  net::DhcpClient& dhcp() { return dhcp_; }
  net::PingProber& prober() { return prober_; }

  bool up() const { return state_ == LinkState::kUp; }
  bool idle() const { return state_ == LinkState::kIdle; }
  wire::Bssid bssid() const { return mlme_.bssid(); }
  wire::Channel channel() const { return mlme_.channel(); }

  const std::optional<net::Lease>& lease() const { return lease_; }
  void set_lease(std::optional<net::Lease> lease) { lease_ = std::move(lease); }
  wire::Ipv4 ip() const { return lease_ ? lease_->ip : wire::Ipv4(); }

  /// Sends an IP packet through this interface (queued per channel by the
  /// driver when the card is elsewhere).
  void send_packet(wire::PacketPtr packet);

  /// Driver upcall for frames addressed to this interface.
  void on_frame(const wire::Frame& frame);

  /// Handler for transport-layer packets (installed by the application).
  void set_app_handler(std::function<void(const wire::Packet&)> handler) {
    app_handler_ = std::move(handler);
  }

  std::uint64_t rx_packets() const { return rx_packets_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }

 private:
  void dispatch_packet(const wire::Packet& packet);

  sim::Simulator& sim_;
  DriverBase& driver_;
  std::size_t index_;
  wire::MacAddress mac_;

  mac::ClientMlme mlme_;
  net::DhcpClient dhcp_;
  net::PingProber prober_;
  LinkState state_ = LinkState::kIdle;
  std::optional<net::Lease> lease_;
  std::function<void(const wire::Packet&)> app_handler_;

  std::uint64_t rx_packets_ = 0;
  std::uint64_t rx_bytes_ = 0;
};

}  // namespace spider::core
