#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/ap_selector.hpp"
#include "core/driver_base.hpp"
#include "core/virtual_iface.hpp"
#include "net/dhcp_client.hpp"
#include "sim/simulator.hpp"

namespace spider::core {

/// One join attempt, as logged for the evaluation figures. All timestamps
/// are durations from the attempt start.
struct JoinRecord {
  wire::Bssid bssid;
  wire::Channel channel = 0;
  Time started{0};
  std::optional<Time> assoc_delay;   ///< Fig. 5's "time to associate"
  std::optional<Time> dhcp_delay;    ///< from attempt start to lease (Fig. 14)
  std::optional<Time> e2e_delay;     ///< full join incl. connectivity test
  JoinOutcome outcome = JoinOutcome::kAssocFailed;
  bool finished = false;
  bool used_lease_cache = false;
};

/// Spider's user-space link management module (§3.2.2): applies the AP
/// selection policy across the interface pool, drives each interface
/// through association -> DHCP -> end-to-end test, watches liveness with
/// the ping prober, and re-targets interfaces as APs come and go.
class LinkManager {
 public:
  struct Callbacks {
    std::function<void(VirtualInterface&)> on_link_up;
    std::function<void(VirtualInterface&)> on_link_down;
  };

  /// `ping_target`: end-to-end liveness destination; a null address makes
  /// the prober fall back to the interface's gateway.
  LinkManager(DriverBase& driver, wire::Ipv4 ping_target);

  void set_callbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }

  /// Begins the policy loop (the driver must also be started).
  void start();

  ApSelector& selector() { return selector_; }
  net::LeaseCache& lease_cache() { return lease_cache_; }
  const std::vector<JoinRecord>& join_log() const { return join_log_; }

  std::size_t links_up();
  std::uint64_t joins_attempted() const { return join_log_.size(); }

  // Resilience counters (hardened policy only).
  std::uint64_t watchdog_aborts() const { return watchdog_aborts_; }
  std::uint64_t cache_invalidations() const { return cache_invalidations_; }
  std::uint64_t flaps_detected() const { return flaps_detected_; }

 private:
  struct VifContext {
    wire::Bssid target;
    std::size_t record = 0;  ///< index into join_log_
    Time up_since{0};        ///< when the link last reached kUp
    sim::EventHandle join_deadline;
    sim::EventHandle e2e_deadline;
  };

  void evaluate();
  void watchdog();
  void begin_join(std::size_t vif_index, const mac::ApObservation& obs);
  void on_associated(std::size_t vif_index);
  void on_join_failed(std::size_t vif_index, mac::JoinPhase phase);
  void on_dhcp_bound(std::size_t vif_index, const net::Lease& lease);
  void on_dhcp_failed(std::size_t vif_index);
  void on_e2e_confirmed(std::size_t vif_index);
  void on_e2e_timeout(std::size_t vif_index);
  void on_link_dead(std::size_t vif_index);
  void on_join_deadline(std::size_t vif_index);

  /// Terminates the current attempt (or live link), records the outcome,
  /// blacklists on failure and returns the interface to idle.
  void finish_attempt(std::size_t vif_index, JoinOutcome outcome, bool stays_up);

  std::unordered_set<wire::Bssid> in_use() const;
  JoinRecord& record_of(std::size_t vif_index);

  DriverBase& driver_;
  sim::Simulator& sim_;
  wire::Ipv4 ping_target_;
  ApSelector selector_;
  net::LeaseCache lease_cache_;
  Callbacks callbacks_;
  std::vector<VifContext> contexts_;
  std::vector<JoinRecord> join_log_;
  std::optional<sim::PeriodicTimer> evaluate_timer_;
  std::optional<sim::PeriodicTimer> watchdog_timer_;
  std::uint64_t watchdog_aborts_ = 0;
  std::uint64_t cache_invalidations_ = 0;
  std::uint64_t flaps_detected_ = 0;
};

}  // namespace spider::core
