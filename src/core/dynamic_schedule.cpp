#include "core/dynamic_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "obs/tracer.hpp"

namespace spider::core {

DynamicScheduleController::DynamicScheduleController(
    SpiderDriver& driver, DynamicScheduleConfig config)
    : driver_(driver), config_(config) {
  last_rx_.assign(driver_.num_interfaces(), 0);
}

void DynamicScheduleController::start() {
  timer_.emplace(driver_.simulator(), config_.window, [this] { tick(); });
  timer_->start();
}

void DynamicScheduleController::stop() { timer_.reset(); }

void DynamicScheduleController::tick() {
  const OperationMode& mode = driver_.mode();
  if (mode.single_channel()) return;  // nothing to rebalance

  // Per-channel bytes delivered since the last tick, attributed through
  // each interface's current channel.
  std::vector<std::pair<wire::Channel, double>> window_bytes;
  for (wire::Channel ch : mode.channels()) window_bytes.emplace_back(ch, 0.0);
  for (std::size_t i = 0; i < driver_.num_interfaces(); ++i) {
    VirtualInterface& vif = driver_.iface(i);
    const std::uint64_t now_rx = vif.rx_bytes();
    const double delta = static_cast<double>(now_rx - last_rx_[i]);
    last_rx_[i] = now_rx;
    for (auto& [ch, bytes] : window_bytes) {
      if (vif.channel() == ch) bytes += delta;
    }
  }

  // EWMA per channel (channels can come and go with mode changes).
  for (const auto& [ch, bytes] : window_bytes) {
    auto it = std::find_if(ewma_.begin(), ewma_.end(),
                           [ch = ch](const auto& e) { return e.first == ch; });
    if (it == ewma_.end()) {
      ewma_.emplace_back(ch, bytes);
    } else {
      it->second = config_.alpha * bytes + (1.0 - config_.alpha) * it->second;
    }
  }

  // New fractions: proportional to smoothed goodput, floored.
  double total = 0.0;
  for (const auto& [ch, est] : ewma_) {
    if (mode.includes(ch)) total += std::max(1.0, est);
  }
  if (total <= 0.0) return;

  std::vector<std::pair<wire::Channel, double>> fractions;
  for (wire::Channel ch : mode.channels()) {
    const auto it = std::find_if(ewma_.begin(), ewma_.end(),
                                 [ch](const auto& e) { return e.first == ch; });
    const double est = it == ewma_.end() ? 1.0 : std::max(1.0, it->second);
    fractions.emplace_back(ch, std::max(config_.min_fraction, est / total));
  }
  OperationMode next = OperationMode::weighted(fractions, mode.period);

  // Skip no-op reschedules: a mode swap resets the slot cycle.
  double max_change = 0.0;
  for (const auto& [ch, f] : next.fractions) {
    max_change = std::max(max_change, std::abs(f - mode.fraction_of(ch)));
  }
  if (max_change < config_.rebalance_threshold) return;

  for (const auto& [ch, f] : next.fractions) {
    SPIDER_TRACE(driver_.simulator(), .kind = obs::TraceKind::kSlotFraction,
                 .channel = static_cast<std::int16_t>(ch),
                 .track = obs::track::scheduler(), .value = f);
  }
  driver_.set_mode(std::move(next));
  ++rebalances_;
}

}  // namespace spider::core
