#include "core/adaptive.hpp"

#include <unordered_map>

namespace spider::core {

AdaptiveModeController::AdaptiveModeController(SpiderDriver& driver,
                                               SpeedFn speed,
                                               AdaptiveConfig config)
    : driver_(driver), speed_(std::move(speed)), config_(std::move(config)) {}

void AdaptiveModeController::start() {
  timer_.emplace(driver_.simulator(), config_.check_interval, [this] { tick(); });
  timer_->start();
  tick();  // pick the right mode immediately
}

void AdaptiveModeController::stop() { timer_.reset(); }

wire::Channel AdaptiveModeController::busiest_channel() const {
  // Prefer the channel where the scanner currently hears the most APs;
  // total RSSI breaks ties so a single strong AP beats a single weak one.
  std::unordered_map<wire::Channel, std::pair<int, double>> score;
  for (const auto& obs : driver_.scanner().current()) {
    auto& [count, rssi_sum] = score[obs.channel];
    ++count;
    rssi_sum += obs.rssi_dbm + 100.0;  // shift so the sum is positive
  }
  wire::Channel best = config_.channels.empty() ? 6 : config_.channels.front();
  std::pair<int, double> best_score{-1, 0.0};
  for (wire::Channel ch : config_.channels) {
    const auto it = score.find(ch);
    const auto s = it == score.end() ? std::pair<int, double>{0, 0.0} : it->second;
    if (s.first > best_score.first ||
        (s.first == best_score.first && s.second > best_score.second)) {
      best = ch;
      best_score = s;
    }
  }
  return best;
}

void AdaptiveModeController::tick() {
  sim::Simulator& sim = driver_.simulator();
  if (sim.now() - last_flip_ < config_.min_mode_hold) return;

  const double v = speed_();
  if (!single_mode_ && v >= config_.speed_threshold_mps + config_.hysteresis_mps) {
    driver_.set_mode(OperationMode::single(busiest_channel()));
    single_mode_ = true;
    ++mode_switches_;
    last_flip_ = sim.now();
  } else if (single_mode_ &&
             v <= config_.speed_threshold_mps - config_.hysteresis_mps) {
    driver_.set_mode(OperationMode::equal_split(config_.channels,
                                                config_.multi_channel_period));
    single_mode_ = false;
    ++mode_switches_;
    last_flip_ = sim.now();
  } else if (single_mode_) {
    // Stay single-channel but follow the AP population as it shifts; if
    // the chosen channel has gone completely dark, widen the schedule so
    // the scanner can find where the APs went.
    if (config_.rediscover_when_dark &&
        driver_.scanner()
            .current_on(driver_.mode().fractions.front().first)
            .empty() &&
        driver_.scanner().current().empty()) {
      driver_.set_mode(OperationMode::equal_split(config_.channels,
                                                  config_.multi_channel_period));
      single_mode_ = false;  // a later tick re-parks on the busiest channel
      last_flip_ = sim.now();
      return;
    }
    const wire::Channel target = busiest_channel();
    if (!driver_.mode().includes(target)) {
      driver_.set_mode(OperationMode::single(target));
      last_flip_ = sim.now();
    }
  }
}

}  // namespace spider::core
