#pragma once

#include <string>
#include <vector>

#include "util/time.hpp"
#include "wire/frame.hpp"

namespace spider::core {

/// An operation mode (§3.2.2): "the total amount of time to be scheduled
/// among channels and the fraction of time spent on each channel".
/// Fractions are normalised; a single-entry mode means the card parks on
/// that channel with no switching at all.
struct OperationMode {
  Time period = msec(600);  ///< D, the scheduling period
  std::vector<std::pair<wire::Channel, double>> fractions;

  bool single_channel() const { return fractions.size() == 1; }

  /// Rescales fractions to sum to 1 and drops non-positive entries.
  void normalize();

  /// Channels with non-zero schedule time.
  std::vector<wire::Channel> channels() const;
  double fraction_of(wire::Channel channel) const;
  bool includes(wire::Channel channel) const;

  std::string describe() const;

  /// The whole period on one channel.
  static OperationMode single(wire::Channel channel);
  /// Equal split of `period` across `channels` (e.g. 1/3 each on 1,6,11).
  static OperationMode equal_split(std::vector<wire::Channel> channels,
                                   Time period);
  /// Arbitrary weights, e.g. {{1, 0.5}, {11, 0.5}} with D = 200 ms.
  static OperationMode weighted(
      std::vector<std::pair<wire::Channel, double>> fractions, Time period);
};

}  // namespace spider::core
