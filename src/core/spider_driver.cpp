#include "core/spider_driver.hpp"

#include <cassert>

#include "obs/tracer.hpp"

namespace spider::core {

SpiderDriver::SpiderDriver(sim::Simulator& simulator, phy::Medium& medium,
                           std::uint64_t mac_base,
                           phy::Radio::PositionFn position, SpiderConfig config)
    : sim_(simulator),
      config_(std::move(config)),
      radio_(medium, wire::MacAddress(mac_base), std::move(position),
             config_.radio),
      scanner_(simulator, config_.scanner),
      mode_(config_.mode) {
  mode_.normalize();
  assert(!mode_.fractions.empty());

  radio_.set_receiver([this](const wire::Frame& f) { on_radio_frame(f); });
  radio_.set_address_filter([this](wire::MacAddress a) {
    for (const auto& vif : vifs_) {
      if (vif->mac() == a) return true;
    }
    return false;
  });
  scanner_.set_prober([this] { send_probe_request(); });

  vifs_.reserve(config_.num_interfaces);
  for (std::size_t i = 0; i < config_.num_interfaces; ++i) {
    vifs_.push_back(std::make_unique<VirtualInterface>(
        simulator, *this, i, wire::MacAddress(mac_base + 1 + i), config_));
  }
}

void SpiderDriver::start() {
  if (started_) return;
  started_ = true;
  scanner_.start();
  current_slot_ = 0;
  begin_slot(0);
}

void SpiderDriver::set_mode(OperationMode mode) {
  mode.normalize();
  assert(!mode.fractions.empty());
  slot_timer_.cancel();
  // Queued traffic for channels the new mode abandons will never drain.
  for (auto& [channel, queue] : channel_queues_) {
    if (!mode.includes(channel)) {
      queue_drops_ += queue.size();
      queue.clear();
    }
  }
  mode_ = std::move(mode);
  if (started_) {
    current_slot_ = 0;
    begin_slot(0);
  }
}

bool SpiderDriver::channel_active(wire::Channel channel) const {
  return !radio_.switching() && radio_.channel() == channel;
}

Time SpiderDriver::slot_duration(std::size_t slot_index) const {
  const double f = mode_.fractions[slot_index].second;
  const auto nominal = Time{static_cast<std::int64_t>(
      f * static_cast<double>(mode_.period.count()))};
  // The hardware reset eats into the slot so the full cycle stays ~D
  // (constraint (10) of the optimisation framework).
  const Time dwell = nominal - config_.radio.switch_latency;
  return std::max(dwell, msec(5));
}

void SpiderDriver::begin_slot(std::size_t slot_index) {
  current_slot_ = slot_index;
  const wire::Channel target = mode_.fractions[slot_index].first;
  SPIDER_TRACE(sim_, .kind = obs::TraceKind::kSlotBegin,
               .aux = static_cast<std::uint8_t>(slot_index),
               .channel = static_cast<std::int16_t>(target),
               .track = obs::track::scheduler(),
               .value = to_seconds(slot_duration(slot_index)));
  switch_started_ = sim_.now();
  if (channel_active(target)) {
    on_channel_entered(/*record_latency=*/false);
  } else {
    SPIDER_TRACE(sim_, .kind = obs::TraceKind::kChannelSwitchStart,
                 .channel = static_cast<std::int16_t>(target),
                 .track = obs::track::scheduler());
    radio_.tune(target, [this] { on_channel_entered(/*record_latency=*/true); });
  }
}

void SpiderDriver::on_channel_entered(bool record_latency) {
  const wire::Channel channel = radio_.channel();

  // Wake every associated interface on this channel: a PSM-clear NullData
  // tells the AP to flush its power-save buffer and resume direct delivery.
  // (In PS-Poll mode the card stays in power-save and pulls frames via the
  // beacon TIM instead.)
  std::size_t woken = 0;
  if (config_.psm_retrieval == PsmRetrieval::kWakeNull) {
    for (auto& vif : vifs_) {
      if (vif->mlme().associated() && vif->channel() == channel) {
        send_ps_frame(*vif, /*power_save=*/false);
        ++woken;
      }
    }
  }
  if (record_latency) {
    // Latency sample: PSM drain + reset + wake frames (their airtime is
    // known, the frames were just queued).
    const Time wake_air =
        woken * phy::Medium::airtime(wire::kNullFrameBytes, config_.radio.phy_rate);
    const double latency_ms = to_millis(sim_.now() - switch_started_ + wake_air);
    switch_latency_.add(latency_ms);
    SPIDER_TRACE(sim_, .kind = obs::TraceKind::kChannelSwitchEnd,
                 .channel = static_cast<std::int16_t>(channel),
                 .track = obs::track::scheduler(), .value = latency_ms);
  }

  drain_queue(channel);

  if (!mode_.single_channel()) {
    slot_timer_.cancel();
    slot_timer_ = sim_.schedule(slot_duration(current_slot_), [this] {
      end_slot_and_switch((current_slot_ + 1) % mode_.fractions.size());
    });
  }
}

void SpiderDriver::end_slot_and_switch(std::size_t next_slot) {
  const wire::Channel old_channel = radio_.channel();
  // Ask every associated AP on the departing channel to buffer for us.
  for (auto& vif : vifs_) {
    if (vif->mlme().associated() && vif->channel() == old_channel) {
      send_ps_frame(*vif, /*power_save=*/true);
    }
  }
  ++switch_count_;
  begin_slot(next_slot);
}

void SpiderDriver::send_ps_frame(VirtualInterface& vif, bool power_save) {
  wire::Frame f;
  f.type = wire::FrameType::kNullData;
  f.src = vif.mac();
  f.dst = vif.bssid();
  f.bssid = vif.bssid();
  f.power_mgmt = power_save;
  f.size_bytes = wire::kNullFrameBytes;
  radio_.send(std::move(f));
}

bool SpiderDriver::send_mgmt(wire::Frame frame, wire::Channel channel) {
  if (!channel_active(channel)) return false;
  radio_.send(std::move(frame));
  return true;
}

void SpiderDriver::send_data(VirtualInterface& vif, wire::PacketPtr packet) {
  const wire::Channel channel = vif.channel();
  if (vif.bssid().is_null() || !mode_.includes(channel)) {
    ++queue_drops_;
    return;
  }
  if (channel_active(channel)) {
    wire::Frame f = wire::make_data_frame(vif.mac(), vif.bssid(), vif.bssid(),
                                          std::move(packet));
    // In PS-Poll mode every uplink frame re-asserts power-save so the AP
    // keeps buffering for us.
    f.power_mgmt = config_.psm_retrieval == PsmRetrieval::kPsPoll;
    radio_.send(std::move(f));
    return;
  }
  auto& queue = channel_queues_[channel];
  if (queue.size() >= config_.channel_queue_limit) {
    ++queue_drops_;
    return;
  }
  queue.push_back(QueuedPacket{vif.index(), std::move(packet)});
}

void SpiderDriver::drain_queue(wire::Channel channel) {
  auto it = channel_queues_.find(channel);
  if (it == channel_queues_.end()) return;
  auto& queue = it->second;
  while (!queue.empty()) {
    QueuedPacket entry = std::move(queue.front());
    queue.pop_front();
    VirtualInterface& vif = *vifs_[entry.vif_index];
    if (vif.bssid().is_null() || vif.channel() != channel) {
      ++queue_drops_;  // association died while the packet waited
      continue;
    }
    wire::Frame f = wire::make_data_frame(vif.mac(), vif.bssid(), vif.bssid(),
                                          std::move(entry.packet));
    f.power_mgmt = config_.psm_retrieval == PsmRetrieval::kPsPoll;
    radio_.send(std::move(f));
  }
}

void SpiderDriver::on_radio_frame(const wire::Frame& frame) {
  scanner_.on_frame(frame);
  if (frame.dst.is_broadcast()) {
    // PS-Poll mode: the beacon TIM tells us which interfaces have traffic
    // waiting; pull it one PS-Poll at a time.
    if (config_.psm_retrieval == PsmRetrieval::kPsPoll &&
        frame.type == wire::FrameType::kBeacon && !frame.tim_aids.empty()) {
      for (auto& vif : vifs_) {
        if (!vif->mlme().associated() || vif->bssid() != frame.bssid) continue;
        for (std::uint16_t aid : frame.tim_aids) {
          if (aid == vif->mlme().aid()) {
            send_ps_poll(*vif);
            break;
          }
        }
      }
    }
    return;
  }
  for (auto& vif : vifs_) {
    if (frame.dst == vif->mac()) {
      // more_data: the AP holds further buffered frames — keep pulling.
      if (config_.psm_retrieval == PsmRetrieval::kPsPoll && frame.more_data &&
          frame.type == wire::FrameType::kData &&
          channel_active(vif->channel())) {
        send_ps_poll(*vif);
      }
      vif->on_frame(frame);
      return;
    }
  }
}

void SpiderDriver::send_ps_poll(VirtualInterface& vif) {
  wire::Frame poll;
  poll.type = wire::FrameType::kPsPoll;
  poll.src = vif.mac();
  poll.dst = vif.bssid();
  poll.bssid = vif.bssid();
  poll.size_bytes = wire::kPsPollFrameBytes;
  radio_.send(std::move(poll));
}

void SpiderDriver::send_probe_request() {
  if (radio_.switching()) return;
  wire::Frame probe;
  probe.type = wire::FrameType::kProbeRequest;
  probe.src = radio_.mac();
  probe.dst = wire::MacAddress::broadcast();
  probe.size_bytes = wire::kMgmtFrameBytes;
  radio_.send(std::move(probe));
}

}  // namespace spider::core
