#include "transport/cbr.hpp"

#include <cmath>

namespace spider::tcp {

CbrSource::CbrSource(sim::Simulator& simulator, std::uint32_t flow_id,
                     wire::Ipv4 src, wire::Ipv4 dst, SendFn send,
                     CbrConfig config)
    : sim_(simulator),
      flow_id_(flow_id),
      src_(src),
      dst_(dst),
      send_(std::move(send)),
      config_(config) {}

CbrSource::~CbrSource() { timer_.cancel(); }

void CbrSource::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void CbrSource::stop() {
  running_ = false;
  timer_.cancel();
}

void CbrSource::tick() {
  if (!running_) return;
  wire::CbrDatagram d;
  d.flow_id = flow_id_;
  d.seq = next_seq_++;
  d.sent_at = sim_.now();
  d.payload_bytes = config_.payload_bytes;
  if (send_) send_(wire::make_cbr_packet(src_, dst_, d));
  timer_ = sim_.schedule(config_.packet_interval, [this] { tick(); });
}

CbrSink::CbrSink(sim::Simulator& simulator, std::uint32_t flow_id)
    : sim_(simulator), flow_id_(flow_id) {}

void CbrSink::on_packet(const wire::Packet& packet) {
  const auto* d = packet.as<wire::CbrDatagram>();
  if (!d || d->flow_id != flow_id_ || d->subscribe) return;

  if (seen_.contains(d->seq)) {
    ++duplicates_;
    return;
  }
  seen_[d->seq] = true;
  ++received_;
  highest_seq_ = std::max<std::int64_t>(highest_seq_, d->seq);

  const double transit_s = to_seconds(sim_.now() - d->sent_at);
  delay_.add(transit_s);
  if (!first_) {
    // RFC 3550 interarrival jitter estimator.
    const double delta = std::abs(transit_s - last_transit_s_);
    jitter_s_ += (delta - jitter_s_) / 16.0;
    longest_gap_ = std::max(longest_gap_, sim_.now() - last_arrival_);
  }
  last_transit_s_ = transit_s;
  last_arrival_ = sim_.now();
  first_ = false;
}

double CbrSink::delivery_ratio() const {
  if (highest_seq_ < 0) return 0.0;
  return static_cast<double>(received_) /
         static_cast<double>(highest_seq_ + 1);
}

CbrServer::CbrServer(sim::Simulator& simulator, net::Host& host,
                     CbrConfig config, Time subscriber_timeout)
    : sim_(simulator),
      host_(host),
      config_(config),
      subscriber_timeout_(subscriber_timeout),
      reap_timer_(simulator, sec(5), [this] { reap(); }) {
  reap_timer_.start();
}

bool CbrServer::on_packet(const wire::Packet& packet) {
  const auto* d = packet.as<wire::CbrDatagram>();
  if (!d) return false;
  if (!d->subscribe) return true;  // data for some sink, not for us

  auto it = sources_.find(d->flow_id);
  if (it == sources_.end()) {
    auto source = std::make_unique<CbrSource>(
        sim_, d->flow_id, host_.ip(), packet.src,
        [this](wire::PacketPtr p) { host_.send(std::move(p)); }, config_);
    source->start();
    it = sources_.emplace(d->flow_id, Entry{std::move(source), sim_.now()}).first;
  }
  it->second.last_heard = sim_.now();
  return true;
}

void CbrServer::reap() {
  for (auto it = sources_.begin(); it != sources_.end();) {
    if (sim_.now() - it->second.last_heard > subscriber_timeout_) {
      it = sources_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace spider::tcp
