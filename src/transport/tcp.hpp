#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "sim/simulator.hpp"
#include "util/time.hpp"
#include "util/units.hpp"
#include "wire/packet.hpp"

namespace spider::tcp {

/// TCP parameters. Defaults approximate a Linux sender of the paper's era:
/// 200 ms minimum RTO, exponential backoff to 60 s, Reno congestion
/// control with fast retransmit on three duplicate ACKs.
struct TcpConfig {
  std::size_t mss = wire::kTcpMss;
  Time min_rto = msec(200);
  Time max_rto = sec(60);
  Time initial_rto = sec(1);
  double initial_cwnd = 2.0;      ///< segments
  double max_window_segments = 44.0;  ///< receiver window (~64 KB)
  int dupack_threshold = 3;
};

/// Server-side bulk sender: streams an unbounded byte sequence to the
/// client as fast as congestion control allows. This models the paper's
/// "downloading large files over HTTP" workload.
///
/// Implemented mechanisms, because the experiments depend on them:
///  - slow start / congestion avoidance (Reno)
///  - RTO per RFC 6298 (SRTT/RTTVAR, Karn's rule, exponential backoff)
///  - fast retransmit on 3 duplicate ACKs
/// A mobile client that leaves the channel longer than the RTO forces a
/// timeout: cwnd collapses to 1 and the backoff doubles — the non-monotonic
/// throughput of Fig. 8 is exactly this effect.
class TcpSender {
 public:
  using SendFn = std::function<void(wire::PacketPtr)>;

  TcpSender(sim::Simulator& simulator, std::uint64_t conn_id, wire::Ipv4 src,
            wire::Ipv4 dst, SendFn send, TcpConfig config = {});
  ~TcpSender();
  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  void start();
  void stop();

  /// Feed ACK segments from the receiver.
  void on_segment(const wire::TcpSegment& segment);

  std::uint64_t conn_id() const { return conn_id_; }
  std::uint64_t bytes_acked() const { return snd_una_; }
  double cwnd_segments() const { return cwnd_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t fast_retransmits() const { return fast_retx_; }
  Time current_rto() const;

 private:
  void transmit_window();
  void send_segment(std::uint32_t seq, bool retransmission);
  void arm_rto();
  void on_rto();
  void ack_advanced(std::uint32_t ack);
  std::uint32_t flight_segments() const;

  sim::Simulator& sim_;
  std::uint64_t conn_id_;
  wire::Ipv4 src_;
  wire::Ipv4 dst_;
  SendFn send_;
  TcpConfig config_;

  bool running_ = false;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  double cwnd_ = 2.0;
  double ssthresh_ = 1e9;
  int dupacks_ = 0;

  // RFC 6298 state. The effective RTO is base_rto_ << backoff_; the
  // backoff clears on any ACK that advances snd_una (as Linux does), so a
  // single post-recovery loss cannot stall the flow for a full backed-off
  // interval.
  bool have_rtt_ = false;
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  Time base_rto_;
  int backoff_ = 0;
  // Karn: time exactly one un-retransmitted segment at a time.
  std::int64_t timed_seq_ = -1;
  Time timed_sent_at_{0};

  std::uint64_t timeouts_ = 0;
  std::uint64_t fast_retx_ = 0;
  bool rto_armed_ = false;
  sim::EventHandle rto_timer_;
};

/// Client-side receiver: delivers in-order bytes, generates immediate
/// cumulative ACKs (whose duplicates drive the sender's fast retransmit),
/// and reports goodput to the metrics layer.
class TcpReceiver {
 public:
  using SendFn = std::function<void(wire::PacketPtr)>;
  /// (newly delivered in-order bytes) — called on every advance.
  using DeliverFn = std::function<void(std::size_t)>;

  TcpReceiver(std::uint64_t conn_id, wire::Ipv4 src, wire::Ipv4 dst,
              SendFn send, DeliverFn deliver);

  /// Feed data segments from the sender.
  void on_segment(const wire::TcpSegment& segment);

  std::uint64_t conn_id() const { return conn_id_; }
  std::uint64_t bytes_delivered() const { return rcv_nxt_; }

 private:
  std::uint64_t conn_id_;
  wire::Ipv4 src_;  ///< our address (ACK source)
  wire::Ipv4 dst_;
  SendFn send_;
  DeliverFn deliver_;

  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, std::uint32_t> out_of_order_;  // seq -> len
};

}  // namespace spider::tcp
