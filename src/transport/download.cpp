#include "transport/download.hpp"

namespace spider::tcp {

DownloadServer::DownloadServer(sim::Simulator& simulator, net::Host& host,
                               TcpConfig config, Time reap_idle_after)
    : sim_(simulator),
      host_(host),
      config_(config),
      reap_idle_after_(reap_idle_after),
      reap_timer_(simulator, sec(30), [this] { reap(); }) {
  host_.set_handler([this](const wire::Packet& p) { on_packet(p); });
  reap_timer_.start();
}

void DownloadServer::on_packet(const wire::Packet& packet) {
  const auto* segment = packet.as<wire::TcpSegment>();
  if (!segment) return;

  auto it = senders_.find(segment->conn_id);
  if (it == senders_.end()) {
    if (!segment->syn) return;  // stray segment for a reaped connection
    ++total_seen_;
    auto sender = std::make_unique<TcpSender>(
        sim_, segment->conn_id, host_.ip(), packet.src,
        [this](wire::PacketPtr p) { host_.send(std::move(p)); }, config_);
    TcpSender* raw = sender.get();
    // Register before starting: on a short path the first data segments
    // can be ACKed within the same event dispatch.
    senders_.emplace(segment->conn_id, Entry{std::move(sender), sim_.now()});
    raw->start();
    return;
  }
  it->second.last_activity = sim_.now();
  if (segment->is_ack) it->second.sender->on_segment(*segment);
}

void DownloadServer::reap() {
  for (auto it = senders_.begin(); it != senders_.end();) {
    if (sim_.now() - it->second.last_activity > reap_idle_after_) {
      it = senders_.erase(it);
    } else {
      ++it;
    }
  }
}

DownloadClient::DownloadClient(sim::Simulator& simulator, std::uint64_t conn_id,
                               wire::Ipv4 self, wire::Ipv4 server, SendFn send,
                               ProgressFn progress, Time syn_retry)
    : sim_(simulator),
      conn_id_(conn_id),
      self_(self),
      server_(server),
      send_(std::move(send)),
      syn_retry_(syn_retry),
      receiver_(conn_id, self, server,
                [this](wire::PacketPtr p) {
                  if (send_) send_(std::move(p));
                },
                [progress = std::move(progress)](std::size_t bytes) {
                  if (progress) progress(bytes);
                }) {}

DownloadClient::~DownloadClient() { syn_timer_.cancel(); }

void DownloadClient::start() {
  if (running_) return;
  running_ = true;
  send_syn();
}

void DownloadClient::stop() {
  running_ = false;
  syn_timer_.cancel();
}

void DownloadClient::send_syn() {
  if (!running_ || saw_data_) return;
  wire::TcpSegment syn;
  syn.conn_id = conn_id_;
  syn.syn = true;
  syn.payload_bytes = 0;
  if (send_) send_(wire::make_tcp_packet(self_, server_, syn));
  syn_timer_ = sim_.schedule(syn_retry_, [this] { send_syn(); });
}

void DownloadClient::set_byte_limit(std::size_t bytes,
                                    std::function<void()> on_complete) {
  byte_limit_ = bytes;
  on_complete_ = std::move(on_complete);
}

void DownloadClient::on_packet(const wire::Packet& packet) {
  const auto* segment = packet.as<wire::TcpSegment>();
  if (!segment || segment->conn_id != conn_id_) return;
  if (!segment->is_ack && !saw_data_) {
    saw_data_ = true;
    syn_timer_.cancel();
  }
  if (!running_) return;  // completed or stopped: ignore the tail
  receiver_.on_segment(*segment);
  if (byte_limit_ > 0 && receiver_.bytes_delivered() >= byte_limit_) {
    stop();
    if (on_complete_) on_complete_();
  }
}

}  // namespace spider::tcp
