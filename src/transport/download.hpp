#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/wired.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp.hpp"

namespace spider::tcp {

/// Server side of the bulk-download workload: listens on a wired host and
/// spawns an unbounded-stream TcpSender for every SYN it sees. Senders for
/// clients that have gone silent are reaped periodically so a 30-60 minute
/// drive does not accumulate dead connections.
class DownloadServer {
 public:
  DownloadServer(sim::Simulator& simulator, net::Host& host,
                 TcpConfig config = {}, Time reap_idle_after = sec(120));

  std::size_t active_connections() const { return senders_.size(); }
  std::uint64_t total_connections_seen() const { return total_seen_; }

  /// Public so composed services can share one host handler: the
  /// constructor installs itself, but an owner that multiplexes several
  /// protocols on the host can re-install a dispatcher that forwards TCP
  /// traffic here.
  void on_packet(const wire::Packet& packet);

 private:
  void reap();

  struct Entry {
    std::unique_ptr<TcpSender> sender;
    Time last_activity{0};
  };

  sim::Simulator& sim_;
  net::Host& host_;
  TcpConfig config_;
  Time reap_idle_after_;
  std::unordered_map<std::uint64_t, Entry> senders_;
  std::uint64_t total_seen_ = 0;
  sim::PeriodicTimer reap_timer_;
};

/// Client side of the bulk-download workload, one per Spider interface:
/// opens a connection as soon as the link comes up (SYN retried on a
/// timer), then counts delivered bytes. The paper's clients "download
/// large files over HTTP" through every live AP in parallel.
class DownloadClient {
 public:
  using SendFn = std::function<void(wire::PacketPtr)>;
  /// (bytes just delivered in order)
  using ProgressFn = std::function<void(std::size_t)>;

  DownloadClient(sim::Simulator& simulator, std::uint64_t conn_id,
                 wire::Ipv4 self, wire::Ipv4 server, SendFn send,
                 ProgressFn progress, Time syn_retry = sec(1));
  ~DownloadClient();
  DownloadClient(const DownloadClient&) = delete;
  DownloadClient& operator=(const DownloadClient&) = delete;

  void start();
  void stop();

  /// Turns the unbounded download into a finite transfer: once `bytes`
  /// have been delivered in order, the client stops and `on_complete`
  /// fires (the web-flow workload uses this; the abandoned server side is
  /// reaped by its idle timer, as a real socket close would be racier to
  /// model than it is worth).
  void set_byte_limit(std::size_t bytes, std::function<void()> on_complete);

  /// Feed TCP packets arriving on the interface.
  void on_packet(const wire::Packet& packet);

  std::uint64_t conn_id() const { return conn_id_; }
  std::uint64_t bytes_received() const { return receiver_.bytes_delivered(); }
  bool saw_data() const { return saw_data_; }

 private:
  void send_syn();

  sim::Simulator& sim_;
  std::uint64_t conn_id_;
  wire::Ipv4 self_;
  wire::Ipv4 server_;
  SendFn send_;
  Time syn_retry_;
  TcpReceiver receiver_;
  bool running_ = false;
  bool saw_data_ = false;
  std::size_t byte_limit_ = 0;  ///< 0 = unbounded
  std::function<void()> on_complete_;
  sim::EventHandle syn_timer_;
};

}  // namespace spider::tcp
