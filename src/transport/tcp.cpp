#include "transport/tcp.hpp"

#include <algorithm>

namespace spider::tcp {

TcpSender::TcpSender(sim::Simulator& simulator, std::uint64_t conn_id,
                     wire::Ipv4 src, wire::Ipv4 dst, SendFn send,
                     TcpConfig config)
    : sim_(simulator),
      conn_id_(conn_id),
      src_(src),
      dst_(dst),
      send_(std::move(send)),
      config_(config),
      cwnd_(config.initial_cwnd),
      base_rto_(config.initial_rto) {}

TcpSender::~TcpSender() { rto_timer_.cancel(); }

void TcpSender::start() {
  if (running_) return;
  running_ = true;
  transmit_window();
}

void TcpSender::stop() {
  running_ = false;
  rto_timer_.cancel();
  rto_armed_ = false;
}

std::uint32_t TcpSender::flight_segments() const {
  return (snd_nxt_ - snd_una_) / static_cast<std::uint32_t>(config_.mss);
}

void TcpSender::transmit_window() {
  if (!running_) return;
  const double window = std::min(cwnd_, config_.max_window_segments);
  while (static_cast<double>(flight_segments()) < window) {
    send_segment(snd_nxt_, /*retransmission=*/false);
    snd_nxt_ += static_cast<std::uint32_t>(config_.mss);
  }
  if (snd_nxt_ > snd_una_ && !rto_armed_) arm_rto();
}

void TcpSender::send_segment(std::uint32_t seq, bool retransmission) {
  wire::TcpSegment segment;
  segment.conn_id = conn_id_;
  segment.seq = seq;
  segment.payload_bytes = static_cast<std::uint32_t>(config_.mss);
  send_(wire::make_tcp_packet(src_, dst_, segment));

  // Karn's rule: only time segments that are not retransmissions, one at
  // a time.
  if (!retransmission && timed_seq_ < 0) {
    timed_seq_ = seq;
    timed_sent_at_ = sim_.now();
  }
}

Time TcpSender::current_rto() const {
  Time rto = base_rto_;
  for (int i = 0; i < backoff_ && rto < config_.max_rto; ++i) rto *= 2;
  return std::min(rto, config_.max_rto);
}

void TcpSender::arm_rto() {
  rto_timer_.cancel();
  rto_armed_ = true;
  rto_timer_ = sim_.schedule(current_rto(), [this] { on_rto(); });
}

void TcpSender::on_rto() {
  rto_armed_ = false;
  if (!running_ || snd_una_ == snd_nxt_) return;
  ++timeouts_;
  // Collapse: multiplicative back-off, cwnd to one segment, go-back-N.
  ssthresh_ = std::max(2.0, static_cast<double>(flight_segments()) / 2.0);
  cwnd_ = 1.0;
  dupacks_ = 0;
  timed_seq_ = -1;
  ++backoff_;
  snd_nxt_ = snd_una_;
  send_segment(snd_nxt_, /*retransmission=*/true);
  snd_nxt_ += static_cast<std::uint32_t>(config_.mss);
  arm_rto();
}

void TcpSender::ack_advanced(std::uint32_t ack) {
  // RTT sample (Karn: only if the timed segment is covered and was never
  // retransmitted — a timeout clears timed_seq_).
  if (timed_seq_ >= 0 && ack > static_cast<std::uint64_t>(timed_seq_)) {
    const double sample = to_seconds(sim_.now() - timed_sent_at_);
    if (!have_rtt_) {
      srtt_s_ = sample;
      rttvar_s_ = sample / 2.0;
      have_rtt_ = true;
    } else {
      rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - sample);
      srtt_s_ = 0.875 * srtt_s_ + 0.125 * sample;
    }
    const double rto_s = std::clamp(srtt_s_ + 4.0 * rttvar_s_,
                                    to_seconds(config_.min_rto),
                                    to_seconds(config_.max_rto));
    base_rto_ = sec(rto_s);
    timed_seq_ = -1;
  }

  const std::uint32_t newly_acked = ack - snd_una_;
  snd_una_ = ack;
  dupacks_ = 0;
  backoff_ = 0;  // forward progress clears exponential backoff

  // Reno growth, per-ACK: slow start below ssthresh, else 1/cwnd.
  const double acked_segments =
      static_cast<double>(newly_acked) / static_cast<double>(config_.mss);
  if (cwnd_ < ssthresh_) {
    cwnd_ += acked_segments;
  } else {
    cwnd_ += acked_segments / std::max(1.0, cwnd_);
  }

  if (snd_una_ == snd_nxt_) {
    rto_timer_.cancel();
    rto_armed_ = false;
  } else {
    arm_rto();  // restart for the remaining flight
  }
  transmit_window();
}

void TcpSender::on_segment(const wire::TcpSegment& segment) {
  if (!segment.is_ack || segment.conn_id != conn_id_) return;
  if (segment.ack > snd_una_) {
    ack_advanced(segment.ack);
    return;
  }
  if (segment.ack == snd_una_ && snd_nxt_ > snd_una_) {
    if (++dupacks_ == config_.dupack_threshold) {
      // Fast retransmit; simplified Reno (no window inflation).
      ++fast_retx_;
      ssthresh_ = std::max(2.0, static_cast<double>(flight_segments()) / 2.0);
      cwnd_ = ssthresh_;
      timed_seq_ = -1;
      send_segment(snd_una_, /*retransmission=*/true);
      arm_rto();
    }
  }
}

TcpReceiver::TcpReceiver(std::uint64_t conn_id, wire::Ipv4 src, wire::Ipv4 dst,
                         SendFn send, DeliverFn deliver)
    : conn_id_(conn_id),
      src_(src),
      dst_(dst),
      send_(std::move(send)),
      deliver_(std::move(deliver)) {}

void TcpReceiver::on_segment(const wire::TcpSegment& segment) {
  if (segment.is_ack || segment.conn_id != conn_id_) return;

  if (segment.seq == rcv_nxt_) {
    std::size_t delivered = segment.payload_bytes;
    rcv_nxt_ += segment.payload_bytes;
    // Drain any buffered continuation.
    for (auto it = out_of_order_.begin();
         it != out_of_order_.end() && it->first <= rcv_nxt_;) {
      const std::uint32_t end = it->first + it->second;
      if (end > rcv_nxt_) {
        delivered += end - rcv_nxt_;
        rcv_nxt_ = end;
      }
      it = out_of_order_.erase(it);
    }
    if (deliver_ && delivered > 0) deliver_(delivered);
  } else if (segment.seq > rcv_nxt_) {
    out_of_order_.emplace(segment.seq, segment.payload_bytes);
  }
  // else: duplicate of already-delivered data; just re-ACK.

  wire::TcpSegment ack;
  ack.conn_id = conn_id_;
  ack.is_ack = true;
  ack.ack = rcv_nxt_;
  ack.payload_bytes = 0;
  send_(wire::make_tcp_packet(src_, dst_, ack));
}

}  // namespace spider::tcp
