#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/wired.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"
#include "wire/packet.hpp"

namespace spider::tcp {

/// Constant-bit-rate stream parameters. Defaults model a G.711-ish VoIP
/// leg: 50 packets/s of 160-byte payloads = 64 kbps plus headers.
struct CbrConfig {
  Time packet_interval = msec(20);
  std::uint32_t payload_bytes = 160;
};

/// Server-side CBR source: streams datagrams to one destination at a fixed
/// cadence until stopped. No congestion control, no retransmission — loss
/// and delay are the signal, as with real-time media.
class CbrSource {
 public:
  using SendFn = std::function<void(wire::PacketPtr)>;

  CbrSource(sim::Simulator& simulator, std::uint32_t flow_id, wire::Ipv4 src,
            wire::Ipv4 dst, SendFn send, CbrConfig config = {});
  ~CbrSource();
  CbrSource(const CbrSource&) = delete;
  CbrSource& operator=(const CbrSource&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }
  std::uint32_t flow_id() const { return flow_id_; }
  std::uint32_t packets_sent() const { return next_seq_; }

 private:
  void tick();

  sim::Simulator& sim_;
  std::uint32_t flow_id_;
  wire::Ipv4 src_;
  wire::Ipv4 dst_;
  SendFn send_;
  CbrConfig config_;
  bool running_ = false;
  std::uint32_t next_seq_ = 0;
  sim::EventHandle timer_;
};

/// Client-side sink: measures what a real-time application experiences —
/// delivery ratio, one-way delay, inter-arrival jitter (RFC 3550 style),
/// and the longest silence. Out-of-order and duplicate datagrams are
/// counted but not replayed.
class CbrSink {
 public:
  explicit CbrSink(sim::Simulator& simulator, std::uint32_t flow_id);

  void on_packet(const wire::Packet& packet);

  std::uint32_t flow_id() const { return flow_id_; }
  std::uint64_t received() const { return received_; }
  std::uint64_t duplicates() const { return duplicates_; }
  /// Highest sequence seen + 1 (an upper bound on what the source sent
  /// toward us while we could hear it).
  std::uint64_t highest_seq_seen() const { return highest_seq_ + 1; }
  double delivery_ratio() const;

  const OnlineStats& delay_stats() const { return delay_; }       ///< seconds
  double jitter_s() const { return jitter_s_; }                   ///< RFC 3550
  Time longest_gap() const { return longest_gap_; }
  Time last_arrival() const { return last_arrival_; }

 private:
  sim::Simulator& sim_;
  std::uint32_t flow_id_;
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_ = 0;
  std::int64_t highest_seq_ = -1;
  std::unordered_map<std::uint32_t, bool> seen_;  // small flows only
  OnlineStats delay_;
  double jitter_s_ = 0.0;
  double last_transit_s_ = 0.0;
  Time last_arrival_{0};
  Time longest_gap_{0};
  bool first_ = true;
};

/// Server-side dispatcher: a subscribe datagram from a client spawns a
/// CbrSource streaming back to it (the media-server end of the call).
/// Sources stop when the subscription goes stale.
class CbrServer {
 public:
  CbrServer(sim::Simulator& simulator, net::Host& host, CbrConfig config = {},
            Time subscriber_timeout = sec(30));

  std::size_t active_flows() const { return sources_.size(); }

  /// Installed as (part of) the host handler by the owner; returns true if
  /// the packet was CBR and consumed.
  bool on_packet(const wire::Packet& packet);

 private:
  void reap();

  struct Entry {
    std::unique_ptr<CbrSource> source;
    Time last_heard{0};
  };

  sim::Simulator& sim_;
  net::Host& host_;
  CbrConfig config_;
  Time subscriber_timeout_;
  std::unordered_map<std::uint32_t, Entry> sources_;
  sim::PeriodicTimer reap_timer_;
};

}  // namespace spider::tcp
