#pragma once

#include <cassert>
#include <cstdint>
#include <functional>

#include "sim/cancel.hpp"
#include "sim/event_queue.hpp"
#include "util/time.hpp"

namespace spider::obs {
class Tracer;
}  // namespace spider::obs

namespace spider::sim {

/// The simulation kernel: a clock plus an event queue.
///
/// Every protocol entity in the repository (radios, MAC state machines,
/// DHCP clients, TCP connections, schedulers, mobility models) is driven
/// exclusively by callbacks scheduled here, so a whole experiment is a
/// single-threaded deterministic replay of one seed.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` after the current time (>= 0).
  EventHandle schedule(Time delay, EventQueue::Callback&& cb);

  /// Schedules `cb` at an absolute timestamp (>= now()).
  EventHandle schedule_at(Time when, EventQueue::Callback&& cb);

  /// Handle-free fast path: like schedule()/schedule_at() but the event can
  /// never be cancelled, so no EventHandle control block is allocated. Use
  /// for fire-and-forget work (frame deliveries, packet hops, deferred
  /// responses); keep schedule() for anything a state machine may cancel.
  /// Ordering is identical to schedule() — both share one sequence counter.
  void post(Time delay, EventQueue::Callback&& cb) {
    assert(delay >= Time{0});
    queue_.push_nocancel(now_ + delay, std::move(cb));
  }
  void post_at(Time when, EventQueue::Callback&& cb) {
    assert(when >= now_);
    queue_.push_nocancel(when, std::move(cb));
  }

  /// Runs events until the queue drains or `deadline` passes. The clock is
  /// left at the later of its current value and the deadline (when given),
  /// so back-to-back run_until calls see a monotonic clock.
  void run_until(Time deadline);

  /// Runs until the queue is empty (use only for bounded workloads).
  void run_all();

  /// Requests that the current run_* call return after the active event.
  void stop() { stopped_ = true; }

  /// Installs a cooperative cancellation/deadline token, polled every
  /// kCancelCheckInterval events by the run_* loops (and once on entry).
  /// Polling reads the token and the wall clock only — it never perturbs
  /// the event stream, so a run that completes is byte-identical with or
  /// without a token installed. Not owned; pass nullptr to detach.
  void set_cancel_token(CancelToken* token) { cancel_ = token; }
  CancelToken* cancel_token() const { return cancel_; }

  /// True when the last run_* call returned early because the cancel token
  /// tripped (the token's reason() says why). Cleared on the next run_*.
  bool interrupted() const { return interrupted_; }

  std::uint64_t events_executed() const { return executed_; }
  bool pending() const { return !queue_.empty(); }

  /// Fresh process-independent identifier (TCP connection ids, CBR flow
  /// ids, ...). Scoped to this simulation so concurrent runs on different
  /// threads stay raceless and every replay of a seed allocates the exact
  /// same ids regardless of what else the process has run.
  std::uint64_t allocate_id() { return ++next_id_; }

  /// Re-bases the id allocator. Sharded runs give each shard's simulator a
  /// disjoint base (shard index in the top bits) so ids stay globally
  /// unique across the formation — the per-shard download servers key
  /// senders by connection id alone. Call before any allocation.
  void seed_ids(std::uint64_t base) {
    assert(next_id_ == 0);
    next_id_ = base;
  }

  /// Engine counters so far: event-queue totals plus the simulated horizon.
  /// Wall-clock fields are zero; the caller timing the run fills them.
  PerfCounters perf() const {
    PerfCounters p = queue_.perf();
    p.sim_seconds = to_seconds(now_);
    return p;
  }

  /// Optional flight recorder (see obs/tracer.hpp). Null by default so the
  /// SPIDER_TRACE emit sites scattered through the stack cost one pointer
  /// load + branch unless a run opts in. Not owned; the installer keeps the
  /// tracer alive for the simulator's lifetime.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  /// Cancel-token poll cadence, in events. Coarse enough that the clock
  /// read vanishes against event dispatch cost, fine enough that a wedged
  /// scenario is reaped within milliseconds of its deadline.
  static constexpr std::uint64_t kCancelCheckInterval = 1024;

  Time now_{0};
  EventQueue queue_;
  bool stopped_ = false;
  bool interrupted_ = false;
  std::uint64_t executed_ = 0;
  std::uint64_t next_id_ = 0;
  obs::Tracer* tracer_ = nullptr;
  CancelToken* cancel_ = nullptr;
};

/// A restartable periodic timer built on the simulator; used for beacons,
/// schedule slots, ping probes, etc. Destroying the timer cancels it.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& simulator, Time period, std::function<void()> tick)
      : sim_(simulator), period_(period), tick_(std::move(tick)) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  void stop() { handle_.cancel(); running_ = false; }
  bool running() const { return running_; }
  void set_period(Time period) { period_ = period; }
  Time period() const { return period_; }

 private:
  void arm();

  Simulator& sim_;
  Time period_;
  std::function<void()> tick_;
  EventHandle handle_;
  bool running_ = false;
};

}  // namespace spider::sim
