#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace spider::sim {
namespace {

/// Below this size a rebuild costs more bookkeeping than the dead entries
/// it would reclaim; lazy top-dropping handles small heaps fine.
constexpr std::size_t kCompactionFloor = 64;

}  // namespace

EventQueue::EventQueue()
    : tally_(std::make_shared<EventHandle::QueueTally>()) {}

EventHandle EventQueue::push(Time when, Callback cb) {
  auto state = std::make_shared<EventHandle::State>();
  state->tally = tally_;
  heap_.push_back(Entry{when, next_seq_++, std::move(cb), state});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
  maybe_compact();
  return EventHandle{std::move(state)};
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && heap_.front().state->cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.back().state->in_heap = false;
    heap_.pop_back();
    --tally_->cancelled_in_heap;
  }
}

void EventQueue::maybe_compact() const {
  if (heap_.size() < kCompactionFloor ||
      tally_->cancelled_in_heap * 2 <= heap_.size()) {
    return;
  }
  // Mark the dead states first: remove_if leaves moved-from entries (with
  // null state pointers) in the tail, so they cannot be marked afterwards.
  for (auto& entry : heap_) {
    if (entry.state->cancelled) entry.state->in_heap = false;
  }
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [](const Entry& e) { return e.state->cancelled; }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  tally_->cancelled_in_heap = 0;
  ++compactions_;
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? Time::max() : heap_.front().when;
}

Time EventQueue::pop_and_run() {
  drop_cancelled();
  assert(!heap_.empty());
  // Detach the entry before running: the callback may push new events
  // (which would reallocate the heap) or cancel anything, including itself.
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Time when = heap_.back().when;
  Callback cb = std::move(heap_.back().cb);
  heap_.back().state->in_heap = false;
  heap_.pop_back();
  ++popped_;
  cb();
  return when;
}

void EventQueue::clear() {
  for (auto& entry : heap_) entry.state->in_heap = false;
  heap_.clear();
  tally_->cancelled_in_heap = 0;
}

PerfCounters EventQueue::perf() const {
  PerfCounters p;
  p.events_popped = popped_;
  p.events_cancelled = tally_->cancelled_total;
  p.heap_peak = heap_peak_;
  p.compactions = compactions_;
  return p;
}

}  // namespace spider::sim
