#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace spider::sim {

EventQueue::EventQueue() : shared_(new detail::QueueShared(this)) {}

EventQueue::~EventQueue() {
  clear();
  shared_->queue = nullptr;
  shared_->release();
}

EventHandle EventQueue::push(Time when, Callback&& cb) {
  ++handles_allocated_;
  const std::uint64_t seq = next_seq_;  // stamped by push_entry
  EventHandle handle;
  handle.payload_ = push_entry(when, std::move(cb));
  handle.seq_ = seq;
  handle.shared_ = shared_;
  shared_->add_ref();
  return handle;
}

void EventQueue::release_payload(std::uint32_t index) const {
  Payload& p = payloads_[index];
  p.cb = Callback{};
  p.seq = kStaleSeq;
  p.cancelled = false;
  free_payloads_.push_back(index);
}

void EventQueue::drop_cancelled_slow() const {
  do {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    release_payload(heap_.back().payload);
    heap_.pop_back();
    --shared_->cancelled_in_heap;
  } while (!heap_.empty() && entry_dead(heap_.front()));
}

void EventQueue::compact() {
  // Two passes: disengage dead payloads first (marking entries with a
  // sentinel), then sweep — remove_if predicates must stay side-effect-free.
  constexpr std::uint32_t kDeadEntry = ~std::uint32_t{0};
  for (Entry& e : heap_) {
    if (entry_dead(e)) {
      release_payload(e.payload);
      e.payload = kDeadEntry;
    }
  }
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [](const Entry& e) { return e.payload == kDeadEntry; }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  shared_->cancelled_in_heap = 0;
  ++compactions_;
}

Time EventQueue::pop_and_run() {
  drop_cancelled();
  assert(!heap_.empty());
  // Detach the callback before running: it may push new events (which
  // would reallocate the slab) or cancel anything, including itself.
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Time when = heap_.back().when;
  const std::uint32_t index = heap_.back().payload;
  Callback cb = std::move(payloads_[index].cb);
  release_payload(index);
  heap_.pop_back();
  ++popped_;
  cb();
  return when;
}

bool EventQueue::pop_and_run_until(Time deadline, Time& clock) {
  drop_cancelled();
  if (heap_.empty() || heap_.front().when > deadline) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Time when = heap_.back().when;
  const std::uint32_t index = heap_.back().payload;
  Callback cb = std::move(payloads_[index].cb);
  release_payload(index);
  heap_.pop_back();
  ++popped_;
  clock = when;  // advance the caller's clock before dispatch
  cb();
  return true;
}

void EventQueue::clear() {
  heap_.clear();
  payloads_.clear();
  free_payloads_.clear();
  shared_->cancelled_in_heap = 0;
}

PerfCounters EventQueue::perf() const {
  PerfCounters p;
  p.events_popped = popped_;
  p.events_cancelled = shared_->cancelled_total;
  p.heap_peak = heap_peak_;
  p.compactions = compactions_;
  p.handles_allocated = handles_allocated_;
  p.callbacks_heap = callbacks_heap_;
  return p;
}

}  // namespace spider::sim
