#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace spider::sim {

EventHandle EventQueue::push(Time when, Callback cb) {
  auto flag = std::make_shared<bool>(false);
  heap_.push(Entry{when, next_seq_++, std::move(cb), flag});
  ++live_;
  return EventHandle{std::move(flag)};
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && *heap_.top().cancelled) {
    heap_.pop();
    --live_;
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? Time::max() : heap_.top().when;
}

Time EventQueue::pop_and_run() {
  drop_cancelled();
  assert(!heap_.empty());
  // Move the callback out before running: the callback may push new events,
  // which can reallocate the heap's storage.
  Entry top = heap_.top();
  heap_.pop();
  --live_;
  top.cb();
  return top.when;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  live_ = 0;
}

}  // namespace spider::sim
