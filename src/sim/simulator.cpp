#include "sim/simulator.hpp"

#include <cassert>

namespace spider::sim {

EventHandle Simulator::schedule(Time delay, EventQueue::Callback&& cb) {
  assert(delay >= Time{0});
  return queue_.push(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(Time when, EventQueue::Callback&& cb) {
  assert(when >= now_);
  return queue_.push(when, std::move(cb));
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  // pop_and_run_until advances now_ before dispatching, so each callback
  // observes its own timestamp through now().
  while (!stopped_ && queue_.pop_and_run_until(deadline, now_)) ++executed_;
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

void Simulator::run_all() {
  stopped_ = false;
  while (!stopped_ && queue_.pop_and_run_until(Time::max(), now_)) ++executed_;
}

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTimer::arm() {
  handle_ = sim_.schedule(period_, [this] {
    if (!running_) return;
    tick_();
    if (running_) arm();
  });
}

}  // namespace spider::sim
