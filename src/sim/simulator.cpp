#include "sim/simulator.hpp"

#include <cassert>

namespace spider::sim {

EventHandle Simulator::schedule(Time delay, EventQueue::Callback&& cb) {
  assert(delay >= Time{0});
  return queue_.push(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(Time when, EventQueue::Callback&& cb) {
  assert(when >= now_);
  return queue_.push(when, std::move(cb));
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  interrupted_ = false;
  // pop_and_run_until advances now_ before dispatching, so each callback
  // observes its own timestamp through now(). The cancel token is polled
  // between events only (never mid-callback): a completed run's event
  // stream is untouched by the polling.
  std::uint64_t until_check = 0;  // poll on entry, then every interval
  while (!stopped_) {
    if (cancel_ != nullptr && until_check-- == 0) {
      until_check = kCancelCheckInterval - 1;
      if (cancel_->should_stop()) {
        interrupted_ = true;
        return;
      }
    }
    if (!queue_.pop_and_run_until(deadline, now_)) break;
    ++executed_;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

void Simulator::run_all() {
  stopped_ = false;
  interrupted_ = false;
  std::uint64_t until_check = 0;
  while (!stopped_) {
    if (cancel_ != nullptr && until_check-- == 0) {
      until_check = kCancelCheckInterval - 1;
      if (cancel_->should_stop()) {
        interrupted_ = true;
        return;
      }
    }
    if (!queue_.pop_and_run_until(Time::max(), now_)) break;
    ++executed_;
  }
}

const char* to_string(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone: return "none";
    case CancelReason::kCancelled: return "cancelled";
    case CancelReason::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTimer::arm() {
  handle_ = sim_.schedule(period_, [this] {
    if (!running_) return;
    tick_();
    if (running_) arm();
  });
}

}  // namespace spider::sim
