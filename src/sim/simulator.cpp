#include "sim/simulator.hpp"

#include <cassert>

namespace spider::sim {

EventHandle Simulator::schedule(Time delay, EventQueue::Callback cb) {
  assert(delay >= Time{0});
  return queue_.push(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(Time when, EventQueue::Callback cb) {
  assert(when >= now_);
  return queue_.push(when, std::move(cb));
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    // Advance the clock before dispatching so the callback observes now().
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++executed_;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

void Simulator::run_all() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++executed_;
  }
}

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTimer::arm() {
  handle_ = sim_.schedule(period_, [this] {
    if (!running_) return;
    tick_();
    if (running_) arm();
  });
}

}  // namespace spider::sim
