#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/cancel.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace spider::sim {

/// Conservative lockstep coordinator for intra-run parallel simulation.
///
/// Each shard is an ordinary single-threaded Simulator advanced on its own
/// worker thread. Time is divided into fixed windows of `window` (the
/// cross-shard lookahead, see phy/shard_link.hpp for the derivation): all
/// shards execute window k, rendezvous at a barrier, exchange the messages
/// produced during that window, rendezvous again, and proceed to window
/// k+1. The protocol is safe — no shard ever receives a message destined
/// for its past — as long as every cross-shard interaction committed while
/// executing window k takes effect strictly after the window boundary k*W,
/// which the caller guarantees by choosing `window` at or below the
/// minimum cross-shard latency (frame airtime, switch latency).
///
/// Messages are closures ("apply thunks") carried in per-(sender,receiver)
/// mailboxes. Each mailbox is double-buffered by window parity: while the
/// receiver drains parity k&1, senders append to parity (k+1)&1, so no
/// buffer is ever read and written concurrently and the only atomics in
/// the whole engine are the stop flag and the cancel token. Drains apply
/// thunks in sender order 0..S-1, FIFO within a sender — a deterministic
/// order per shard count, which is exactly the reproducibility contract of
/// a sharded run (DESIGN.md §12).
///
/// A thunk applied during a drain may itself send (e.g. a forwarded frame
/// delivery whose upcall transmits); those sends target the next window's
/// parity and are picked up one drain later, still ahead of any simulation
/// event that could observe them.
class ShardedSimulator {
 public:
  using Thunk = std::function<void()>;

  /// `shards` are borrowed, one per worker; `window` is the lookahead.
  ShardedSimulator(std::vector<Simulator*> shards, Time window);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  int shards() const { return static_cast<int>(sims_.size()); }
  Time window() const { return window_; }
  Simulator& shard(int s) { return *sims_[static_cast<std::size_t>(s)]; }

  /// Enqueues `thunk` to run on shard `to`'s thread at the next drain
  /// point. Must be called from shard `from`'s thread (or from the
  /// coordinating thread before run_until — see drain_initial).
  void send(int from, int to, Thunk thunk);

  /// Applies every thunk sent before the run starts (assembly-time proxy
  /// registrations). Call from the coordinating thread after the topology
  /// is built and before run_until; loops until no thunk re-sends.
  void drain_initial();

  /// Applies thunks still in flight after run_until returned — messages
  /// sent while draining the final window (e.g. forwarded deliveries that
  /// landed on a proxy in the last lookahead window) have no later drain
  /// point. Call from the coordinating thread; loops until quiescent.
  void drain_final();

  /// Installs a per-window callback for shard `s`, run on its worker
  /// thread after each window's drain (sends made by the hook join the
  /// next window's exchange), replacing any hooks installed earlier. Used
  /// for home-side proxy migration sweeps.
  void set_window_hook(int s, Thunk hook) {
    hooks_[static_cast<std::size_t>(s)].clear();
    add_window_hook(s, std::move(hook));
  }
  /// Appends a per-window callback for shard `s` without displacing hooks
  /// already installed (the migration sweep owns set_window_hook; window
  /// observers — fault bookkeeping probes, future re-partition triggers —
  /// stack behind it in installation order).
  void add_window_hook(int s, Thunk hook) {
    hooks_[static_cast<std::size_t>(s)].push_back(std::move(hook));
  }

  /// Runs every shard to `deadline` in lockstep windows. Installs `cancel`
  /// (may be null) on each shard; if any shard's simulator is interrupted
  /// the whole formation stops at the next window boundary. Returns true
  /// when every shard reached the deadline uninterrupted.
  bool run_until(Time deadline, CancelToken* cancel = nullptr);

  /// Windows executed by the last run_until (diagnostics).
  std::uint64_t windows_run() const { return windows_; }
  /// Total cross-shard thunks sent so far (deterministic per shard count).
  std::uint64_t messages_sent() const;

 private:
  /// Double-buffered SPSC mailbox for one (sender, receiver) pair. The
  /// index loop in drain() tolerates appends mid-drain (self-sends during
  /// drain_initial); clear() keeps capacity, so steady state allocates
  /// only when a window outgrows every previous one.
  struct Mailbox {
    std::vector<Thunk> q[2];
  };
  /// Per-shard sender state, cacheline-separated to keep the hot append
  /// path free of false sharing.
  struct alignas(64) Lane {
    int out_parity = 1;  ///< parity of the window currently being filled
    std::uint64_t sent = 0;
  };

  Mailbox& box(int from, int to) {
    return boxes_[static_cast<std::size_t>(from) *
                      static_cast<std::size_t>(shards()) +
                  static_cast<std::size_t>(to)];
  }
  /// Applies and clears every thunk addressed to `to` at `parity`.
  void drain(int to, int parity);
  void shard_main(int s, Time deadline, void* barrier);

  std::vector<Simulator*> sims_;
  Time window_;
  std::vector<Mailbox> boxes_;  ///< S*S, row-major by sender
  std::vector<Lane> lanes_;     ///< one per shard
  std::vector<std::vector<Thunk>> hooks_;  ///< per-shard window hook stacks
  std::atomic<bool> stop_{false};
  std::uint64_t windows_ = 0;
};

}  // namespace spider::sim
