#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/perf.hpp"
#include "util/time.hpp"

namespace spider::sim {

/// Handle for a scheduled event. Holding one allows cancellation; the
/// handle is cheap to copy (shared ownership of a small control block).
///
/// Cancellation is O(1): the entry stays in the heap but is marked dead,
/// and the queue's live count is decremented immediately through the shared
/// control block — the timer-heavy MAC/DHCP state machines cancel far more
/// timers than ever fire. The queue compacts itself when dead entries
/// dominate, so deep-in-heap cancellations cannot accumulate unboundedly.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  bool valid() const { return state_ != nullptr; }
  bool cancelled() const { return state_ && state_->cancelled; }

 private:
  friend class EventQueue;

  /// Per-queue tally shared by every handle of that queue, so cancel()
  /// can keep the live count accurate without a back-pointer to the queue
  /// (which handles may outlive).
  struct QueueTally {
    std::size_t cancelled_in_heap = 0;  ///< dead entries still in the heap
    std::uint64_t cancelled_total = 0;  ///< lifetime cancellations
  };
  struct State {
    bool cancelled = false;
    bool in_heap = true;  ///< cleared when the entry leaves the heap
    std::shared_ptr<QueueTally> tally;
  };

  explicit EventHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

inline void EventHandle::cancel() {
  if (!state_ || state_->cancelled) return;
  state_->cancelled = true;
  ++state_->tally->cancelled_total;
  if (state_->in_heap) ++state_->tally->cancelled_in_heap;
}

/// Time-ordered queue of callbacks. Ties are broken by insertion order so
/// that same-timestamp events run FIFO — this makes frame delivery and
/// timer interleavings deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue();

  EventHandle push(Time when, Callback cb);

  /// True if no live (non-cancelled) event remains.
  bool empty() const;

  /// Timestamp of the earliest live event; Time::max() when empty.
  Time next_time() const;

  /// Pops and runs the earliest live event, returning its timestamp. The
  /// callback is moved out of the heap (never deep-copied) and the entry is
  /// removed before it runs, so callbacks may freely push or cancel.
  /// Precondition: !empty().
  Time pop_and_run();

  void clear();

  /// Number of scheduled, not-yet-cancelled events (exact — cancellation
  /// is accounted for immediately, not when the entry is lazily dropped).
  std::size_t live_size() const {
    return heap_.size() - tally_->cancelled_in_heap;
  }
  /// Physical heap size including dead (cancelled, undropped) entries.
  std::size_t heap_size() const { return heap_.size(); }

  /// Lifetime engine counters (wall-clock fields are left zero; callers
  /// timing a run fill those themselves).
  PerfCounters perf() const;

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;
  void maybe_compact() const;

  // The heap is a plain vector managed with std::push_heap/pop_heap so the
  // top entry can be moved from and dead entries can be compacted in place
  // (std::priority_queue exposes neither).
  mutable std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::shared_ptr<EventHandle::QueueTally> tally_;
  mutable std::uint64_t popped_ = 0;
  mutable std::uint64_t compactions_ = 0;
  std::size_t heap_peak_ = 0;
};

}  // namespace spider::sim
