#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/perf.hpp"
#include "util/inline_function.hpp"
#include "util/time.hpp"

namespace spider::sim {

class EventQueue;

namespace detail {

/// Small block shared by the queue and every outstanding handle: the
/// cancellation tallies plus a back-pointer to the queue that is nulled
/// when the queue dies, so a handle can always tell whether cancelling is
/// still meaningful. Intrusively refcounted (non-atomically — a queue and
/// its handles belong to one simulation, and each simulation runs on one
/// thread; the sweep runner parallelises across whole simulations, never
/// within one).
struct QueueShared {
  EventQueue* queue;                  ///< null once the queue is destroyed
  std::size_t cancelled_in_heap = 0;  ///< dead entries still in the heap
  std::uint64_t cancelled_total = 0;  ///< lifetime cancellations
  std::uint32_t refs = 1;             ///< queue + live handles

  explicit QueueShared(EventQueue* q) : queue(q) {}

  void add_ref() { ++refs; }
  void release() {
    if (--refs == 0) delete this;
  }
};

}  // namespace detail

/// Handle for a scheduled event. Holding one allows cancellation; the
/// handle is three words — a pointer to the queue's shared block plus the
/// event's slab index and sequence number — and allocates nothing: the
/// cancellation flag lives in the queue's payload slab, and the sequence
/// number distinguishes this event from any later tenant of the same cell.
///
/// Cancellation is O(1): the entry stays in the heap but is marked dead,
/// and the queue's live count is decremented immediately — the timer-heavy
/// MAC/DHCP state machines cancel far more timers than ever fire. The
/// queue compacts itself when dead entries dominate, so deep-in-heap
/// cancellations cannot accumulate unboundedly. Cancelling after the event
/// fired (or after the queue died) is a safe no-op.
///
/// Events that are never cancelled should use the handle-free path
/// (EventQueue::push_nocancel / Simulator::post), which skips handle
/// bookkeeping entirely.
class EventHandle {
 public:
  EventHandle() = default;
  EventHandle(const EventHandle& other)
      : shared_(other.shared_), payload_(other.payload_), seq_(other.seq_) {
    if (shared_) shared_->add_ref();
  }
  EventHandle(EventHandle&& other) noexcept
      : shared_(std::exchange(other.shared_, nullptr)),
        payload_(other.payload_),
        seq_(other.seq_) {}
  EventHandle& operator=(EventHandle other) noexcept {
    std::swap(shared_, other.shared_);
    std::swap(payload_, other.payload_);
    std::swap(seq_, other.seq_);
    return *this;
  }
  ~EventHandle() {
    if (shared_) shared_->release();
  }

  void cancel();
  bool valid() const { return shared_ != nullptr; }
  /// True while the event is scheduled and has been cancelled; false once
  /// the event fired or its entry left the heap.
  bool cancelled() const;

 private:
  friend class EventQueue;
  detail::QueueShared* shared_ = nullptr;
  std::uint32_t payload_ = 0;
  std::uint64_t seq_ = 0;
};

/// Time-ordered queue of callbacks. Ties are broken by insertion order so
/// that same-timestamp events run FIFO — this makes frame delivery and
/// timer interleavings deterministic.
///
/// Layout (see DESIGN.md §8): the binary heap itself holds only 24-byte
/// POD keys {when, seq, payload index}; callbacks live in a free-listed
/// slab beside it. Heap sifts therefore move trivially copyable keys, and
/// each callback is relocated exactly once (slab → stack on pop) instead
/// of O(log n) times through the sift path.
class EventQueue {
 public:
  /// Inline-capacity budget for scheduled callbacks. Large enough for every
  /// hot-path capture in the tree (the medium's delivery record is the
  /// biggest at ~32 bytes); callbacks_heap in PerfCounters counts the
  /// fallbacks, so an outgrown capture shows up in --perf-csv rather than
  /// silently re-introducing per-event mallocs.
  static constexpr std::size_t kCallbackCapacity = 64;
  using Callback = util::InlineFunction<kCallbackCapacity>;

  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules a cancellable event. Allocation-free: the handle indexes the
  /// queue's own slab.
  EventHandle push(Time when, Callback&& cb);

  /// Handle-free fast path: schedules an event that can never be cancelled.
  /// Ordering (including FIFO ties) is identical to push() — both draw
  /// from the same sequence counter. Inline so a call site's lambda is
  /// materialised straight into the slab cell instead of bouncing through
  /// a temporary.
  void push_nocancel(Time when, Callback&& cb) {
    push_entry(when, std::move(cb));
  }

  /// True if no live (non-cancelled) event remains.
  bool empty() const {
    drop_cancelled();
    return heap_.empty();
  }

  /// Timestamp of the earliest live event; Time::max() when empty.
  Time next_time() const {
    drop_cancelled();
    return heap_.empty() ? Time::max() : heap_.front().when;
  }

  /// Pops and runs the earliest live event, returning its timestamp. The
  /// callback is moved out of the slab (never deep-copied) and the entry is
  /// removed before it runs, so callbacks may freely push or cancel.
  /// Precondition: !empty().
  Time pop_and_run();

  /// Fused form of empty()/next_time()/pop_and_run() for dispatch loops:
  /// if a live event exists with timestamp <= deadline, stores its
  /// timestamp in `clock` *before* running it (so the callback observes the
  /// advanced clock) and returns true; otherwise runs nothing and returns
  /// false. One front-of-heap inspection per event instead of three.
  bool pop_and_run_until(Time deadline, Time& clock);

  void clear();

  /// Number of scheduled, not-yet-cancelled events (exact — cancellation
  /// is accounted for immediately, not when the entry is lazily dropped).
  std::size_t live_size() const {
    return heap_.size() - shared_->cancelled_in_heap;
  }
  /// Physical heap size including dead (cancelled, undropped) entries.
  std::size_t heap_size() const { return heap_.size(); }

  /// Lifetime engine counters (wall-clock fields are left zero; callers
  /// timing a run fill those themselves).
  PerfCounters perf() const;

 private:
  friend class EventHandle;

  /// Heap key: trivially copyable so sift operations are plain memmoves.
  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uint32_t payload;  ///< index into payloads_
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  /// A slab cell never holds a fired/cancelled-and-dropped event: seq is
  /// reset to kStaleSeq on release, so a handle whose seq no longer matches
  /// knows its event is gone regardless of who occupies the cell now.
  static constexpr std::uint64_t kStaleSeq = ~std::uint64_t{0};
  struct Payload {
    Callback cb;
    std::uint64_t seq = kStaleSeq;  ///< seq of the occupying entry
    bool cancelled = false;
  };

  /// Below this size a rebuild costs more bookkeeping than the dead
  /// entries it would reclaim; lazy top-dropping handles small heaps fine.
  static constexpr std::size_t kCompactionFloor = 64;

  bool entry_dead(const Entry& e) const { return payloads_[e.payload].cancelled; }
  /// Schedules the callback and returns its slab index (seq stamped).
  std::uint32_t push_entry(Time when, Callback&& cb) {
    if (cb.heap_allocated()) ++callbacks_heap_;
    const std::uint64_t seq = next_seq_++;
    std::uint32_t index;
    if (!free_payloads_.empty()) {
      index = free_payloads_.back();
      free_payloads_.pop_back();
      Payload& p = payloads_[index];
      p.cb = std::move(cb);
      p.seq = seq;
      p.cancelled = false;
    } else {
      index = static_cast<std::uint32_t>(payloads_.size());
      payloads_.push_back(Payload{std::move(cb), seq, false});
    }
    heap_.push_back(Entry{when, seq, index});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
    maybe_compact();
    return index;
  }
  /// Disengages a payload cell and recycles its index.
  void release_payload(std::uint32_t index) const;
  // Inline fast checks with out-of-line slow paths: these run on every
  // push/pop, and almost always decide "nothing to do".
  void drop_cancelled() const {
    if (!heap_.empty() && entry_dead(heap_.front())) drop_cancelled_slow();
  }
  void maybe_compact() {
    if (heap_.size() >= kCompactionFloor &&
        shared_->cancelled_in_heap * 2 > heap_.size()) {
      compact();
    }
  }
  void drop_cancelled_slow() const;
  void compact();

  /// EventHandle entry points (bounds-checked: clear() may have shrunk the
  /// slab since the handle was issued).
  void cancel_event(std::uint32_t payload, std::uint64_t seq) {
    if (payload >= payloads_.size()) return;  // slab shrunk by clear()
    Payload& p = payloads_[payload];
    if (p.seq != seq || p.cancelled) return;  // fired, recycled, or repeated
    p.cancelled = true;
    ++shared_->cancelled_total;
    ++shared_->cancelled_in_heap;
  }
  bool event_cancelled(std::uint32_t payload, std::uint64_t seq) const {
    return payload < payloads_.size() && payloads_[payload].seq == seq &&
           payloads_[payload].cancelled;
  }

  // The heap is a plain vector managed with std::push_heap/pop_heap so the
  // top entry can be inspected/removed and dead entries can be compacted in
  // place (std::priority_queue exposes neither).
  mutable std::vector<Entry> heap_;
  mutable std::vector<Payload> payloads_;
  mutable std::vector<std::uint32_t> free_payloads_;
  std::uint64_t next_seq_ = 0;
  detail::QueueShared* shared_;
  mutable std::uint64_t popped_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t heap_peak_ = 0;
  std::uint64_t handles_allocated_ = 0;
  std::uint64_t callbacks_heap_ = 0;
};

inline void EventHandle::cancel() {
  if (!shared_ || shared_->queue == nullptr) return;
  shared_->queue->cancel_event(payload_, seq_);
}

inline bool EventHandle::cancelled() const {
  return shared_ && shared_->queue &&
         shared_->queue->event_cancelled(payload_, seq_);
}

}  // namespace spider::sim
