#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace spider::sim {

/// Handle for a scheduled event. Holding one allows cancellation; the
/// handle is cheap to copy (shared ownership of a one-word flag).
///
/// Cancellation is lazy: the queue keeps the entry but skips it on pop,
/// which keeps cancel() O(1) — the timer-heavy MAC/DHCP state machines
/// cancel far more timers than ever fire.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  bool valid() const { return cancelled_ != nullptr; }
  bool cancelled() const { return cancelled_ && *cancelled_; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

/// Time-ordered queue of callbacks. Ties are broken by insertion order so
/// that same-timestamp events run FIFO — this makes frame delivery and
/// timer interleavings deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventHandle push(Time when, Callback cb);

  /// True if no live (non-cancelled) event remains.
  bool empty() const;

  /// Timestamp of the earliest live event; Time::max() when empty.
  Time next_time() const;

  /// Pops and runs the earliest live event, returning its timestamp.
  /// Precondition: !empty().
  Time pop_and_run();

  void clear();
  std::size_t live_size() const { return live_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  mutable std::size_t live_ = 0;
};

}  // namespace spider::sim
