#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace spider::sim {

/// Why a run was asked to stop. kNone means the token never tripped.
enum class CancelReason : int {
  kNone = 0,
  kCancelled = 1,         ///< explicit request (client gone, operator stop)
  kDeadlineExceeded = 2,  ///< armed wall-clock deadline passed
};

const char* to_string(CancelReason reason);

/// Cooperative cancellation + wall-clock deadline token.
///
/// A token is shared between the party that bounds a run (server watchdog,
/// signal handler, campaign client) and the simulator executing it: the
/// simulator polls `should_stop()` every few thousand events and returns
/// early when the token trips, leaving the run's partial state harvestable.
/// Polling never touches simulation state, so a run that completes is
/// byte-identical whether or not a token was installed (pinned by tests).
///
/// The trip is set-once (first reason wins) and every member is lock-free,
/// so tokens may be tripped from signal handlers and watchdog threads while
/// the simulator thread polls.
class CancelToken {
 public:
  CancelToken() = default;

  /// Arms (or re-arms) the deadline `after` from now. Zero or negative
  /// durations trip on the next poll.
  void arm_deadline_after(std::chrono::nanoseconds after) {
    deadline_ns_.store(now_ns() + after.count(), std::memory_order_relaxed);
  }
  void disarm_deadline() {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }
  bool deadline_armed() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// Trips the token with `reason`. Returns true when this call performed
  /// the (only) trip; later calls are no-ops so the first reason sticks.
  bool request_cancel(CancelReason reason = CancelReason::kCancelled) {
    int expected = 0;
    return state_.compare_exchange_strong(expected, static_cast<int>(reason),
                                          std::memory_order_relaxed);
  }

  /// True once the token has tripped. Does NOT poll the clock — use this
  /// from wait loops that rely on an external watchdog to enforce
  /// deadlines (keeps the reaper observable and singular).
  bool cancel_requested() const {
    return state_.load(std::memory_order_relaxed) != 0;
  }

  /// Polls the armed deadline, tripping the token (kDeadlineExceeded) when
  /// it has passed. Returns true when this call performed the trip — a
  /// watchdog counts its reaps with this.
  bool trip_if_expired() {
    if (state_.load(std::memory_order_relaxed) != 0) return false;
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == kNoDeadline || now_ns() < d) return false;
    return request_cancel(CancelReason::kDeadlineExceeded);
  }

  /// The simulator's per-check predicate: tripped already, or the armed
  /// deadline has passed (tripping it lazily, so deadlines hold even
  /// without a watchdog thread).
  bool should_stop() {
    if (state_.load(std::memory_order_relaxed) != 0) return true;
    return trip_if_expired();
  }

  CancelReason reason() const {
    return static_cast<CancelReason>(state_.load(std::memory_order_relaxed));
  }

  /// Re-arms a spent token (tests and pooled token reuse). Not safe while
  /// a run is still polling the token.
  void reset() {
    state_.store(0, std::memory_order_relaxed);
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

 private:
  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  static constexpr std::int64_t kNoDeadline = INT64_MAX;

  std::atomic<int> state_{0};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace spider::sim
