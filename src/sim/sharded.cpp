#include "sim/sharded.hpp"

#include <barrier>
#include <cassert>
#include <thread>
#include <utility>

namespace spider::sim {

ShardedSimulator::ShardedSimulator(std::vector<Simulator*> shards, Time window)
    : sims_(std::move(shards)), window_(window) {
  assert(!sims_.empty());
  assert(window_ > Time{0});
  const auto s = sims_.size();
  boxes_.resize(s * s);
  lanes_.resize(s);
  hooks_.resize(s);
}

void ShardedSimulator::send(int from, int to, Thunk thunk) {
  Lane& lane = lanes_[static_cast<std::size_t>(from)];
  box(from, to).q[lane.out_parity].push_back(std::move(thunk));
  ++lane.sent;
}

std::uint64_t ShardedSimulator::messages_sent() const {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.sent;
  return total;
}

void ShardedSimulator::drain(int to, int parity) {
  for (int from = 0; from < shards(); ++from) {
    auto& q = box(from, to).q[parity];
    // Index loop: an applied thunk may append to this very queue (only
    // during drain_initial, where every lane still points at parity 1).
    for (std::size_t i = 0; i < q.size(); ++i) q[i]();
    q.clear();
  }
}

void ShardedSimulator::drain_initial() {
  // Assembly-time sends all carry the initial parity (1, the parity of
  // window 1). Applying one may send again, possibly to a pair already
  // drained this round — loop until the system is quiescent so window 1
  // starts with empty mailboxes.
  bool again = true;
  while (again) {
    for (int to = 0; to < shards(); ++to) drain(to, 1);
    again = false;
    for (const Mailbox& b : boxes_) again = again || !b.q[1].empty();
  }
}

void ShardedSimulator::drain_final() {
  bool again = true;
  while (again) {
    for (int to = 0; to < shards(); ++to) {
      drain(to, 0);
      drain(to, 1);
    }
    again = false;
    for (const Mailbox& b : boxes_) {
      again = again || !b.q[0].empty() || !b.q[1].empty();
    }
  }
}

void ShardedSimulator::shard_main(int s, Time deadline, void* barrier) {
  auto& gate = *static_cast<std::barrier<>*>(barrier);
  Simulator& sim = shard(s);
  Lane& lane = lanes_[static_cast<std::size_t>(s)];
  std::uint64_t k = 0;
  for (;;) {
    ++k;
    const int parity = static_cast<int>(k & 1);
    const Time target = std::min(Time{window_.count() * static_cast<Time::rep>(k)},
                                 deadline);
    // Sends made while executing window k land in parity k&1, which the
    // receivers drain right after barrier A below.
    lane.out_parity = parity;
    sim.run_until(target);
    if (sim.interrupted()) stop_.store(true, std::memory_order_relaxed);
    // Sends made while *draining* window k (a forwarded delivery whose
    // upcall transmits) belong to the next window.
    lane.out_parity = parity ^ 1;
    gate.arrive_and_wait();  // A_k: all window-k sends visible
    if (stop_.load(std::memory_order_relaxed)) break;
    drain(s, parity);
    for (const Thunk& hook : hooks_[static_cast<std::size_t>(s)]) hook();
    gate.arrive_and_wait();  // B_k: all window-k drains applied
    if (target == deadline) break;
  }
  if (s == 0) windows_ = k;
}

bool ShardedSimulator::run_until(Time deadline, CancelToken* cancel) {
  const int s = shards();
  stop_.store(false, std::memory_order_relaxed);
  for (Simulator* sim : sims_) {
    if (cancel != nullptr) sim->set_cancel_token(cancel);
  }
  std::barrier<> gate(s);
  if (s == 1) {
    // Degenerate formation: run inline, no threads (kept for symmetry;
    // callers normally use the plain serial path for one shard).
    shard_main(0, deadline, &gate);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(s));
    for (int i = 0; i < s; ++i) {
      workers.emplace_back([this, i, deadline, &gate] {
        shard_main(i, deadline, &gate);
      });
    }
    for (std::thread& w : workers) w.join();
  }
  bool interrupted = false;
  for (Simulator* sim : sims_) interrupted = interrupted || sim->interrupted();
  return !interrupted;
}

}  // namespace spider::sim
