#pragma once

#include <cstddef>
#include <cstdint>

namespace spider::sim {

/// Engine-level counters for one simulation run. The event-queue fields are
/// filled from EventQueue/Simulator accessors; the medium fields from
/// phy::Medium::add_perf; the wall-clock fields are stamped by whoever timed
/// the run (trace::run_scenario, SweepRunner).
///
/// Wall-clock values vary between machines and runs, so they are exported
/// only through write_perf_csv — never through the deterministic stdout of
/// a bench, which must stay byte-identical across --jobs settings.
struct PerfCounters {
  std::uint64_t events_popped = 0;     ///< callbacks actually dispatched
  std::uint64_t events_cancelled = 0;  ///< handles cancelled before firing
  std::size_t heap_peak = 0;           ///< max physical heap size observed
  std::uint64_t compactions = 0;       ///< cancelled-entry heap rebuilds

  // --- hot-path allocation accounting --------------------------------
  /// Cancellable schedules (EventHandles issued). Handles index the queue's
  /// payload slab, so this tracks bookkeeping volume, not mallocs; the
  /// handle-free path (Simulator::post) contributes nothing here.
  std::uint64_t handles_allocated = 0;
  /// Callbacks whose captures exceeded the inline buffer and fell back to
  /// a heap cell. Zero on the hot path by design; a regression here means a
  /// capture outgrew EventQueue::kCallbackCapacity.
  std::uint64_t callbacks_heap = 0;

  // --- medium fan-out accounting --------------------------------------
  /// Frames put on the air (Medium::transmit calls).
  std::uint64_t frames_tx = 0;
  /// Per-receiver deliveries scheduled by phy::Medium::transmit.
  std::uint64_t frames_fanout = 0;
  /// Same-channel candidate radios examined across all transmits (the
  /// channel index makes this the cohort size, not the whole radio table;
  /// the spatial grid shrinks it further to the 3x3 cell neighborhood).
  std::uint64_t radio_candidates = 0;
  /// *Occupied* grid cells probed by neighborhood queries (at most 9 per
  /// grid-mode transmit; empty or absent cells are answered by the
  /// occupancy bitmap and not counted; 0 under the brute-force index).
  std::uint64_t grid_cells_scanned = 0;
  /// Mobile radios moved between grid cells by the position-epoch sweep.
  std::uint64_t grid_rebuckets = 0;

  double sim_seconds = 0.0;            ///< simulated horizon of the run
  double wall_seconds = 0.0;           ///< host time spent executing it

  /// Simulated-seconds-per-wall-second; 0 when the run was too fast to time.
  double sim_rate() const {
    return wall_seconds > 0.0 ? sim_seconds / wall_seconds : 0.0;
  }

  /// Merge for pooled/averaged runs: totals add, the peak takes the max.
  void merge(const PerfCounters& other) {
    events_popped += other.events_popped;
    events_cancelled += other.events_cancelled;
    if (other.heap_peak > heap_peak) heap_peak = other.heap_peak;
    compactions += other.compactions;
    handles_allocated += other.handles_allocated;
    callbacks_heap += other.callbacks_heap;
    frames_tx += other.frames_tx;
    frames_fanout += other.frames_fanout;
    radio_candidates += other.radio_candidates;
    grid_cells_scanned += other.grid_cells_scanned;
    grid_rebuckets += other.grid_rebuckets;
    sim_seconds += other.sim_seconds;
    wall_seconds += other.wall_seconds;
  }

  /// Merge for the shards of ONE run. Totals add exactly like merge(), but
  /// with two deliberate differences: the heap peaks *sum* (the per-shard
  /// event heaps coexist in memory, so the run's footprint is their total,
  /// not their max), and the simulated horizon takes the max instead of
  /// adding (the shards advance the same clock in parallel — summing would
  /// overstate the horizon S-fold and hide the very speedup sharding
  /// exists to deliver; with the max, sim_rate() > 1 means the formation
  /// outran real time). Wall-clock is stamped once by the coordinator and
  /// left alone here.
  void merge_shard(const PerfCounters& other) {
    events_popped += other.events_popped;
    events_cancelled += other.events_cancelled;
    heap_peak += other.heap_peak;
    compactions += other.compactions;
    handles_allocated += other.handles_allocated;
    callbacks_heap += other.callbacks_heap;
    frames_tx += other.frames_tx;
    frames_fanout += other.frames_fanout;
    radio_candidates += other.radio_candidates;
    grid_cells_scanned += other.grid_cells_scanned;
    grid_rebuckets += other.grid_rebuckets;
    if (other.sim_seconds > sim_seconds) sim_seconds = other.sim_seconds;
  }
};

}  // namespace spider::sim
