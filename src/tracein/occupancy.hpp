#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"
#include "wire/frame.hpp"

namespace spider::tracein {

/// One row of a channel-occupancy recording: over the sampling window that
/// starts at `at`, `occupancy` is the fraction of air time channel
/// `channel` was observed busy (carrier sensed / energy above threshold).
/// This is the unit real monitors emit — a per-window duty cycle, not
/// per-frame events — which is what makes recordings replayable: the
/// window boundary is the finest granularity the replay can honour
/// (DESIGN.md §13 discusses the sampling-granularity pitfall).
struct OccupancySample {
  Time at{0};
  wire::Channel channel = 0;
  double occupancy = 0.0;  ///< busy fraction in [0, 1]

  bool operator==(const OccupancySample& o) const {
    return at == o.at && channel == o.channel && occupancy == o.occupancy;
  }
};

/// A parsed recording: samples in file order (ingest enforces per-channel
/// monotone timestamps, so file order is also a valid replay order). The
/// timeline is plain data — compiling it into an executable impairment
/// schedule is replay.hpp's job, so the same recording can be replayed
/// under different loss mappings without re-ingesting.
struct OccupancyTimeline {
  std::vector<OccupancySample> samples;

  bool empty() const { return samples.empty(); }
  std::size_t size() const { return samples.size(); }

  /// End of the last sample's timestamp (zero when empty). The window of
  /// the final sample extends past this; see replay.hpp.
  Time span() const;

  /// Distinct channels present, ascending.
  std::vector<wire::Channel> channels() const;

  /// Structural re-validation for timelines built in code rather than
  /// ingested (ingest already enforces all of this with line numbers):
  /// non-negative timestamps, per-channel strictly increasing times,
  /// occupancy in [0, 1], channels in the 2.4 GHz band. Returns the first
  /// problem, or nullopt when the timeline is replayable.
  std::optional<std::string> check() const;

  bool operator==(const OccupancyTimeline& o) const {
    return samples == o.samples;
  }
};

/// Channels a recording may legally name: the 2.4 GHz band the testbed
/// models (1..14). A row outside this set is a recorder artefact (5 GHz
/// spill, corrupted column) and fails ingest rather than silently driving
/// impairments on a channel no radio visits.
bool known_channel(wire::Channel channel);

/// Ingests one occupancy recording. Two formats, detected per file from
/// the first data line:
///
///   CSV    header `t_s,channel,occupancy` (optional), then one
///          `<seconds>,<channel>,<busy fraction>` row per sample.
///   JSONL  one `{"t_s":X,"channel":N,"occupancy":F}` object per line
///          (detected by a leading '{').
///
/// Blank lines and `#` comment lines are skipped in both formats. Rows
/// must carry finite non-negative timestamps, strictly increasing per
/// channel (equal timestamps for one channel are duplicates, earlier ones
/// are out of order — both rejected), occupancy in [0, 1], and a known
/// channel. Malformed input throws std::runtime_error whose message names
/// the 1-based line: "occupancy trace line N: ...".
OccupancyTimeline read_occupancy(std::istream& is);
OccupancyTimeline read_occupancy_file(const std::string& path);

/// Non-throwing ingest for validation paths: returns nullopt and fills
/// `error` (same line-numbered message) instead of throwing.
std::optional<OccupancyTimeline> ingest_file(const std::string& path,
                                             std::string* error);

/// Serializes a timeline as the canonical CSV form: full-precision
/// timestamps so ingest -> serialize -> ingest is byte-identical (the
/// determinism contract ext_trace_replay and test_tracein pin).
void write_occupancy_csv(std::ostream& os, const OccupancyTimeline& timeline);
bool write_occupancy_csv(const std::string& path,
                         const OccupancyTimeline& timeline);
std::string occupancy_to_csv(const OccupancyTimeline& timeline);

}  // namespace spider::tracein
