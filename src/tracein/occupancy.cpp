#include "tracein/occupancy.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/json.hpp"

namespace spider::tracein {

namespace {

/// Timestamp parse that survives the print round trip exactly: seconds are
/// printed with %.17g (17 significant digits reproduce the binary64 bit
/// pattern) and converted to microsecond ticks by rounding to nearest —
/// truncation here would walk a tick off every re-ingest.
Time seconds_to_time(double v) { return Time{std::llround(v * 1e6)}; }

std::string num17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw std::runtime_error("occupancy trace line " + std::to_string(line_no) +
                           ": " + message);
}

/// Full-string double parse; rejects trailing garbage ("1.5x") that
/// std::stod would silently accept.
bool parse_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

struct RowChecker {
  /// Last timestamp seen per channel; rows must strictly increase within
  /// their channel (a recorder emits one row per window per channel).
  std::unordered_map<wire::Channel, Time> last_at;

  void admit(std::size_t line_no, double t_s, double channel_raw,
             double occupancy, OccupancyTimeline& out) {
    if (!std::isfinite(t_s) || t_s < 0.0) {
      fail(line_no, "bad timestamp " + num17(t_s) +
                        " (must be finite seconds >= 0)");
    }
    const double channel_floor = std::floor(channel_raw);
    if (!std::isfinite(channel_raw) || channel_floor != channel_raw) {
      fail(line_no, "channel must be an integer");
    }
    const auto channel = static_cast<wire::Channel>(channel_floor);
    if (!known_channel(channel)) {
      fail(line_no, "unknown channel " + std::to_string(channel) +
                        " (2.4 GHz band is 1..14)");
    }
    if (!std::isfinite(occupancy) || occupancy < 0.0 || occupancy > 1.0) {
      fail(line_no, "occupancy " + num17(occupancy) + " outside [0, 1]");
    }
    const Time at = seconds_to_time(t_s);
    const auto it = last_at.find(channel);
    if (it != last_at.end()) {
      if (at < it->second) {
        fail(line_no, "out-of-order sample for channel " +
                          std::to_string(channel) + " (t went backwards)");
      }
      if (at == it->second) {
        fail(line_no, "duplicate timestamp for channel " +
                          std::to_string(channel));
      }
      it->second = at;
    } else {
      last_at.emplace(channel, at);
    }
    out.samples.push_back({at, channel, occupancy});
  }
};

void parse_csv_row(std::size_t line_no, const std::string& line,
                   RowChecker& checker, OccupancyTimeline& out) {
  std::istringstream row(line);
  std::string cell;
  std::vector<std::string> cells;
  while (std::getline(row, cell, ',')) cells.push_back(cell);
  if (cells.size() != 3) {
    fail(line_no, "expected 3 columns (t_s,channel,occupancy), got " +
                      std::to_string(cells.size()));
  }
  double t_s = 0.0, channel = 0.0, occupancy = 0.0;
  if (!parse_double(cells[0], &t_s)) {
    fail(line_no, "bad timestamp '" + cells[0] + "'");
  }
  if (!parse_double(cells[1], &channel)) {
    fail(line_no, "bad channel '" + cells[1] + "'");
  }
  if (!parse_double(cells[2], &occupancy)) {
    fail(line_no, "bad occupancy '" + cells[2] + "'");
  }
  checker.admit(line_no, t_s, channel, occupancy, out);
}

void parse_jsonl_row(std::size_t line_no, const std::string& line,
                     RowChecker& checker, OccupancyTimeline& out) {
  std::string error;
  const std::optional<util::Json> json = util::Json::parse(line, &error);
  if (!json || !json->is_object()) {
    fail(line_no, "bad JSON object" + (error.empty() ? "" : " (" + error + ")"));
  }
  const util::Json* t = json->find("t_s");
  const util::Json* channel = json->find("channel");
  const util::Json* occupancy = json->find("occupancy");
  if (t == nullptr || !t->is_number()) {
    fail(line_no, "missing numeric field 't_s'");
  }
  if (channel == nullptr || !channel->is_number()) {
    fail(line_no, "missing numeric field 'channel'");
  }
  if (occupancy == nullptr || !occupancy->is_number()) {
    fail(line_no, "missing numeric field 'occupancy'");
  }
  for (const auto& [key, value] : json->members()) {
    (void)value;
    if (key != "t_s" && key != "channel" && key != "occupancy") {
      fail(line_no, "unknown field '" + key + "'");
    }
  }
  checker.admit(line_no, t->number_or(0.0), channel->number_or(0.0),
                occupancy->number_or(0.0), out);
}

bool skippable(const std::string& line) {
  return line.empty() || line[0] == '#';
}

bool is_csv_header(const std::string& line) {
  return line.rfind("t_s,", 0) == 0;
}

}  // namespace

bool known_channel(wire::Channel channel) {
  return channel >= 1 && channel <= 14;
}

Time OccupancyTimeline::span() const {
  Time end{0};
  for (const OccupancySample& s : samples) end = std::max(end, s.at);
  return end;
}

std::vector<wire::Channel> OccupancyTimeline::channels() const {
  std::vector<wire::Channel> out;
  for (const OccupancySample& s : samples) {
    if (std::find(out.begin(), out.end(), s.channel) == out.end()) {
      out.push_back(s.channel);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::string> OccupancyTimeline::check() const {
  std::unordered_map<wire::Channel, Time> last_at;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const OccupancySample& s = samples[i];
    const std::string where = "sample " + std::to_string(i);
    if (s.at < Time{0}) return where + ": negative timestamp";
    if (!known_channel(s.channel)) {
      return where + ": unknown channel " + std::to_string(s.channel);
    }
    if (!std::isfinite(s.occupancy) || s.occupancy < 0.0 ||
        s.occupancy > 1.0) {
      return where + ": occupancy outside [0, 1]";
    }
    const auto it = last_at.find(s.channel);
    if (it != last_at.end() && s.at <= it->second) {
      return where + ": timestamps not strictly increasing on channel " +
             std::to_string(s.channel);
    }
    last_at[s.channel] = s.at;
  }
  return std::nullopt;
}

OccupancyTimeline read_occupancy(std::istream& is) {
  OccupancyTimeline out;
  RowChecker checker;
  std::string line;
  std::size_t line_no = 0;
  // kUnknown until the first data line picks the format for the file.
  enum class Format { kUnknown, kCsv, kJsonl } format = Format::kUnknown;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (skippable(line)) continue;
    if (format == Format::kUnknown) {
      format = line[0] == '{' ? Format::kJsonl : Format::kCsv;
      if (format == Format::kCsv && is_csv_header(line)) continue;
    }
    if (format == Format::kCsv) {
      parse_csv_row(line_no, line, checker, out);
    } else {
      parse_jsonl_row(line_no, line, checker, out);
    }
  }
  return out;
}

OccupancyTimeline read_occupancy_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("cannot open occupancy trace: " + path);
  }
  return read_occupancy(f);
}

std::optional<OccupancyTimeline> ingest_file(const std::string& path,
                                             std::string* error) {
  try {
    return read_occupancy_file(path);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

void write_occupancy_csv(std::ostream& os, const OccupancyTimeline& timeline) {
  os << "t_s,channel,occupancy\n";
  for (const OccupancySample& s : timeline.samples) {
    os << num17(to_seconds(s.at)) << ',' << s.channel << ','
       << num17(s.occupancy) << '\n';
  }
}

bool write_occupancy_csv(const std::string& path,
                         const OccupancyTimeline& timeline) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  write_occupancy_csv(f, timeline);
  return static_cast<bool>(f);
}

std::string occupancy_to_csv(const OccupancyTimeline& timeline) {
  std::ostringstream os;
  write_occupancy_csv(os, timeline);
  return os.str();
}

}  // namespace spider::tracein
