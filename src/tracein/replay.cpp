#include "tracein/replay.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace spider::tracein {

const char* to_string(ReplayMapping mapping) {
  switch (mapping) {
    case ReplayMapping::kInterference: return "interference";
    case ReplayMapping::kBurst: return "burst";
  }
  return "?";
}

bool replay_mapping_from_string(const std::string& name, ReplayMapping* out) {
  if (name == "interference") *out = ReplayMapping::kInterference;
  else if (name == "burst") *out = ReplayMapping::kBurst;
  else return false;
  return true;
}

std::optional<std::string> ReplayOptions::check() const {
  if (!std::isfinite(loss_scale) || loss_scale < 0.0) {
    return "loss_scale: must be finite and >= 0";
  }
  if (!std::isfinite(min_occupancy) || min_occupancy < 0.0 ||
      min_occupancy > 1.0) {
    return "min_occupancy: must lie in [0, 1]";
  }
  if (tail_window <= Time{0}) {
    return "tail_window: must be positive";
  }
  if (burst_dwell <= Time{0}) {
    return "burst_dwell: must be positive";
  }
  return std::nullopt;
}

fault::FaultSchedule compile_schedule(const OccupancyTimeline& timeline,
                                      const ReplayOptions& options) {
  fault::FaultSchedule schedule;
  const std::vector<OccupancySample>& samples = timeline.samples;

  // Interior windows close at the channel's next sample; a backwards pass
  // resolves that in O(n) without assuming channels are globally sorted.
  std::vector<Time> window(samples.size(), options.tail_window);
  std::unordered_map<wire::Channel, Time> next_at;
  for (std::size_t i = samples.size(); i-- > 0;) {
    const OccupancySample& s = samples[i];
    const auto it = next_at.find(s.channel);
    if (it != next_at.end()) {
      window[i] = it->second - s.at;
      it->second = s.at;
    } else {
      next_at.emplace(s.channel, s.at);
    }
  }

  for (std::size_t i = 0; i < samples.size(); ++i) {
    const OccupancySample& s = samples[i];
    if (s.occupancy < options.min_occupancy) continue;
    if (window[i] <= Time{0}) continue;
    const double loss = std::min(1.0, s.occupancy * options.loss_scale);
    if (loss <= 0.0) continue;
    switch (options.mapping) {
      case ReplayMapping::kInterference:
        schedule.channel_interference(s.at, window[i], s.channel, loss);
        break;
      case ReplayMapping::kBurst: {
        // Dwells sized so E[busy fraction] == occupancy; a fully busy
        // window degenerates to constant interference (a zero gap dwell
        // would spin the injector's state machine).
        if (s.occupancy >= 1.0) {
          schedule.channel_interference(s.at, window[i], s.channel, loss);
          break;
        }
        const auto dwell = static_cast<double>(options.burst_dwell.count());
        const Time burst_mean{std::max<std::int64_t>(
            1, std::llround(dwell * s.occupancy))};
        const Time gap_mean{std::max<std::int64_t>(
            1, std::llround(dwell * (1.0 - s.occupancy)))};
        schedule.burst_loss(s.at, window[i], s.channel, loss, burst_mean,
                            gap_mean);
        break;
      }
    }
  }
  return schedule;
}

}  // namespace spider::tracein
