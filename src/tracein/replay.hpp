#pragma once

#include <optional>
#include <string>

#include "fault/fault.hpp"
#include "tracein/occupancy.hpp"
#include "util/time.hpp"

namespace spider::tracein {

/// How a recorded busy fraction becomes a medium impairment. Replay reuses
/// the fault injector unchanged (a compiled schedule is just FaultSpecs),
/// so trace-driven runs inherit the injector's determinism contract and
/// the resilience metrics for free.
enum class ReplayMapping {
  /// Each sample window becomes one kChannelInterference fault: constant
  /// extra loss = occupancy * loss_scale over the window. Faithful to the
  /// recording's granularity — sub-window burstiness is averaged away
  /// (the sampling-granularity pitfall, DESIGN.md §13).
  kInterference,
  /// Each sample window becomes one kChannelBurstLoss fault whose
  /// Gilbert-Elliott dwells are sized so the expected busy fraction equals
  /// the recorded occupancy (burst_mean = occupancy * burst_dwell,
  /// gap_mean = (1 - occupancy) * burst_dwell). Re-introduces sub-window
  /// burstiness statistically; the dwell draws come from the injector's
  /// forked stream, so runs stay deterministic per (trace, seed).
  kBurst,
};

const char* to_string(ReplayMapping mapping);
bool replay_mapping_from_string(const std::string& name, ReplayMapping* out);

/// Knobs of the occupancy -> impairment compilation.
struct ReplayOptions {
  ReplayMapping mapping = ReplayMapping::kInterference;
  /// Extra-loss probability per unit occupancy (capped at 1.0). 1.0 says
  /// "a fully busy channel loses everything"; lower values model capture
  /// effect / rate adaptation riding over the interferer.
  double loss_scale = 1.0;
  /// Windows below this busy fraction compile to nothing — recorded noise
  /// floors would otherwise bury the schedule in microscopic faults.
  double min_occupancy = 0.05;
  /// Window length of a channel's final sample (and of single-sample
  /// channels): there is no next row to close it, so this does. Interior
  /// windows always run to the channel's next sample.
  Time tail_window = sec(1);
  /// Mean good+bad cycle length for ReplayMapping::kBurst.
  Time burst_dwell = msec(200);

  /// Structural check used by ScenarioConfig::validate(); returns the
  /// first problem as "field: message" (fields are relative, e.g.
  /// "loss_scale"), or nullopt when compilable.
  std::optional<std::string> check() const;
};

/// Compiles a recording into a deterministic fault schedule: one channel
/// fault per qualifying sample window, emitted in file order. A pure
/// function of (timeline, options) — byte-identical schedules across
/// re-ingests of the same file is the replay determinism contract.
fault::FaultSchedule compile_schedule(const OccupancyTimeline& timeline,
                                      const ReplayOptions& options = {});

}  // namespace spider::tracein
