#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "util/time.hpp"

namespace spider::obs {

struct TracerConfig {
  /// Ring capacity in events (40 B each). On overflow the oldest events
  /// are overwritten — the recorder always holds the newest history — and
  /// `overflowed()` counts what was lost. Zero is clamped to one.
  std::size_t capacity = 1 << 15;
  /// Label only (JSONL `seed` field); the tracer never draws randomness.
  std::uint64_t seed = 0;
};

/// Deterministic flight recorder for one simulation run.
///
/// A pre-sized ring of POD TraceEvents: record() is an index increment,
/// a 40-byte store and a per-kind counter bump — no allocation, no virtual
/// dispatch, no locks (one tracer per Simulator, one Simulator per
/// thread). Timestamps come from the simulation clock only, so a trace is
/// a pure function of (ScenarioConfig, seed) and byte-identical across
/// sweep worker counts.
///
/// When no tracer is installed the SPIDER_TRACE macro below costs one
/// pointer load and branch — measured within noise on perf_smoke.
class Tracer {
 public:
  explicit Tracer(TracerConfig config = {})
      : config_(config), ring_(config.capacity ? config.capacity : 1) {}

  void record(Time t, TraceEvent e) {
    e.t_us = t.count();
    ring_[head_] = e;
    if (++head_ == ring_.size()) head_ = 0;
    if (size_ < ring_.size()) ++size_;
    ++recorded_;
    ++counts_[static_cast<std::size_t>(e.kind)];
  }

  std::size_t capacity() const { return ring_.size(); }
  /// Events currently retained (<= capacity).
  std::size_t size() const { return size_; }
  /// Events ever recorded, including overwritten ones.
  std::uint64_t recorded() const { return recorded_; }
  /// Events lost to ring overflow (oldest-first eviction).
  std::uint64_t overflowed() const { return recorded_ - size_; }
  std::uint64_t seed() const { return config_.seed; }

  /// Times recorded() saw `kind`, counted outside the ring so overflow
  /// never skews the derived metrics.
  std::uint64_t count_of(TraceKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const;

  /// Per-layer counters ("<layer>.<kind>" per non-zero kind) plus the
  /// recorder's own accounting (obs.recorded / obs.overflowed counters,
  /// obs.ring_peak gauge).
  MetricsRegistry metrics() const;

 private:
  TracerConfig config_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::array<std::uint64_t, kTraceKindCount> counts_{};
};

}  // namespace spider::obs

/// Emit a trace event through a Simulator-like object exposing `tracer()`
/// and `now()`. Payload fields use designated initializers, e.g.:
///
///   SPIDER_TRACE(sim_, .kind = obs::TraceKind::kAssocOk,
///                .track = obs::track::client(i), .id = bssid.raw());
///
/// Disabled-tracer cost: one pointer load + branch. Define SPIDER_TRACE_OFF
/// to compile every emit site out entirely (the expression still
/// type-checks against sizeof so sites cannot rot).
#ifndef SPIDER_TRACE_OFF
#define SPIDER_TRACE(sim, ...)                                          \
  do {                                                                  \
    if (::spider::obs::Tracer* spider_trace_t_ = (sim).tracer()) {      \
      spider_trace_t_->record((sim).now(),                              \
                              ::spider::obs::TraceEvent{__VA_ARGS__});  \
    }                                                                   \
  } while (0)
#else
#define SPIDER_TRACE(sim, ...)                                        \
  do {                                                                \
    (void)sizeof(::spider::obs::TraceEvent{__VA_ARGS__});             \
    (void)sizeof(sim);                                                \
  } while (0)
#endif
