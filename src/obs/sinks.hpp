#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace spider::obs {

/// Human-oriented lane label for a track id ("vap 0", "ap 0xa00001",
/// "channel 6", "scheduler", "faults"). Shared by both sinks so the JSONL
/// and the Chrome trace agree on naming.
std::string track_name(std::uint32_t track);

/// One JSON object per line per retained event, oldest first. Every field
/// is always present and numbers are formatted with a fixed printf recipe,
/// so two runs with identical histories produce byte-identical files —
/// the property the determinism tests pin across worker counts.
void write_jsonl(std::ostream& os, const Tracer& tracer, std::size_t run = 0);

/// Streams Chrome trace-event JSON (chrome://tracing / Perfetto "Open
/// trace file"). Each run becomes a process (pid = run index) and each
/// track a named thread inside it, so a sweep loads as side-by-side
/// timelines with one lane per VAP, per AP and per channel. Channel
/// switches render as duration slices (B/E) on the scheduler lane and
/// faults as async spans; everything else is an instant.
///
/// Usage: construct, add_run() per tracer, finish() (or let the
/// destructor close the JSON).
class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::ostream& os);
  ~ChromeTraceWriter();

  void add_run(const Tracer& tracer, std::size_t run);
  void finish();

 private:
  void begin_event();

  std::ostream& os_;
  bool first_ = true;
  bool finished_ = false;
};

/// Single-run convenience over ChromeTraceWriter.
void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// `metric,kind,value` rows in name order.
void write_metrics_csv(std::ostream& os, const MetricsRegistry& metrics);

}  // namespace spider::obs
