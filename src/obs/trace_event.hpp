#pragma once

#include <cstdint>

namespace spider::obs {

/// Everything the flight recorder can witness, one tag per emit site class.
/// The taxonomy follows the stack: phy (channel residency and impairment),
/// mac (scan/auth/assoc and PSM buffering), net (DHCP and backhaul), core
/// (scheduler slots, join lifecycle, AP selection), fault (injector
/// firings). Adding a kind means also adding its name/layer row in
/// trace_event.cpp — to_string() and layer_of() are the single source of
/// truth for sink output and metric names.
enum class TraceKind : std::uint8_t {
  // --- phy -----------------------------------------------------------
  kChannelSwitchStart,  ///< driver leaves a slot; channel = target
  kChannelSwitchEnd,    ///< card usable on `channel`; value = latency ms
  kImpairmentSet,       ///< extra loss on `channel`; value = probability
  kImpairmentClear,     ///< impairment removed from `channel`

  // --- mac -----------------------------------------------------------
  kScanResult,   ///< first sighting of `id` (bssid) on `channel`; value=rssi
  kAuthStart,    ///< MLME begins the auth handshake with `id`
  kAssocStart,   ///< auth accepted, association request sent
  kAssocOk,      ///< associated; value = AID
  kAssocFail,    ///< handshake failed (timeout/denial)
  kMacLinkLost,  ///< deauth/disassoc from the AP
  kPsmSleep,     ///< AP starts buffering for client `id`
  kPsmWake,      ///< PSM-clear flush to client `id`; value = frames flushed
  kPsmPurge,     ///< buffered frames dropped (fault); value = frames lost

  // --- net -----------------------------------------------------------
  kDhcpDiscover,   ///< fresh DISCOVER exchange begins
  kDhcpRequest,    ///< REQUEST sent (aux = 1 for cached INIT-REBOOT)
  kDhcpBound,      ///< lease acquired; value = lease seconds
  kDhcpNak,        ///< server refused; aux = 1 on a renewal NAK
  kDhcpFail,       ///< retransmit budget exhausted
  kDhcpLeaseLost,  ///< bound lease expired or was NAKed on renewal
  kBackhaulDrop,   ///< wired drop-tail queue overflow; value = queue depth

  // --- core ----------------------------------------------------------
  kSlotBegin,      ///< scheduler enters slot aux on `channel`; value = dwell s
  kSlotFraction,   ///< dynamic reschedule: `channel` gets fraction `value`
  kJoinStart,      ///< link manager targets `id` on `channel`
  kJoinOutcome,    ///< attempt finished; aux = core::JoinOutcome
  kLinkUp,         ///< interface reached end-to-end connectivity
  kLinkDown,       ///< established link torn down
  kBlacklist,      ///< `id` penalised until value (seconds); aux = streak
  kUtility,        ///< selector utility of `id` updated to `value`

  // --- fault ---------------------------------------------------------
  kFaultBegin,  ///< injector fires; aux = fault::FaultKind, id = target
  kFaultEnd,    ///< fault cleared

  kCount_,  ///< sentinel, keep last
};

inline constexpr std::size_t kTraceKindCount =
    static_cast<std::size_t>(TraceKind::kCount_);

/// Stable lowercase tag, e.g. "assoc-ok" (sink output, golden tests).
const char* to_string(TraceKind kind);
/// Owning layer, e.g. "mac" (prefix of the derived metric names).
const char* layer_of(TraceKind kind);

/// Track ids locate an event on a timeline lane: one lane per client VAP,
/// one per AP, one per channel, plus fixed lanes for cross-cutting actors.
/// The top byte is the lane family, the low 24 bits the instance.
namespace track {
inline constexpr std::uint32_t client(std::size_t vif) {
  return 0x0100'0000u | static_cast<std::uint32_t>(vif & 0xFF'FFFFu);
}
inline constexpr std::uint32_t ap(std::uint64_t bssid_raw) {
  return 0x0200'0000u | static_cast<std::uint32_t>(bssid_raw & 0xFF'FFFFu);
}
inline constexpr std::uint32_t channel(std::int32_t ch) {
  return 0x0300'0000u | static_cast<std::uint32_t>(ch & 0xFF'FFFF);
}
inline constexpr std::uint32_t scheduler() { return 0x0400'0000u; }
inline constexpr std::uint32_t scanner() { return 0x0400'0001u; }
inline constexpr std::uint32_t backhaul() { return 0x0400'0002u; }
inline constexpr std::uint32_t fault() { return 0x0500'0000u; }
}  // namespace track

/// One recorded event: a 40-byte POD. Field meaning is per-kind (see the
/// TraceKind comments); unused fields stay zero so identical histories are
/// memcmp-identical. `t_us` is stamped by Tracer::record from the
/// simulation clock — never from wall time — which is what makes a trace a
/// pure function of (config, seed).
struct TraceEvent {
  std::int64_t t_us = 0;      ///< simulation time, microseconds
  TraceKind kind{};
  std::uint8_t aux = 0;       ///< small per-kind payload (state/outcome/kind)
  std::int16_t channel = 0;   ///< 802.11 channel, when meaningful
  std::uint32_t track = 0;    ///< timeline lane (see track::)
  std::uint64_t id = 0;       ///< BSSID/MAC raw bits or target index
  double value = 0.0;         ///< per-kind scalar (rssi, latency, fraction)
};

static_assert(sizeof(TraceEvent) <= 40, "keep the ring entry compact");

}  // namespace spider::obs
