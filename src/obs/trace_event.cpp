#include "obs/trace_event.hpp"

namespace spider::obs {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kChannelSwitchStart: return "channel-switch-start";
    case TraceKind::kChannelSwitchEnd: return "channel-switch-end";
    case TraceKind::kImpairmentSet: return "impairment-set";
    case TraceKind::kImpairmentClear: return "impairment-clear";
    case TraceKind::kScanResult: return "scan-result";
    case TraceKind::kAuthStart: return "auth-start";
    case TraceKind::kAssocStart: return "assoc-start";
    case TraceKind::kAssocOk: return "assoc-ok";
    case TraceKind::kAssocFail: return "assoc-fail";
    case TraceKind::kMacLinkLost: return "mac-link-lost";
    case TraceKind::kPsmSleep: return "psm-sleep";
    case TraceKind::kPsmWake: return "psm-wake";
    case TraceKind::kPsmPurge: return "psm-purge";
    case TraceKind::kDhcpDiscover: return "dhcp-discover";
    case TraceKind::kDhcpRequest: return "dhcp-request";
    case TraceKind::kDhcpBound: return "dhcp-bound";
    case TraceKind::kDhcpNak: return "dhcp-nak";
    case TraceKind::kDhcpFail: return "dhcp-fail";
    case TraceKind::kDhcpLeaseLost: return "dhcp-lease-lost";
    case TraceKind::kBackhaulDrop: return "backhaul-drop";
    case TraceKind::kSlotBegin: return "slot-begin";
    case TraceKind::kSlotFraction: return "slot-fraction";
    case TraceKind::kJoinStart: return "join-start";
    case TraceKind::kJoinOutcome: return "join-outcome";
    case TraceKind::kLinkUp: return "link-up";
    case TraceKind::kLinkDown: return "link-down";
    case TraceKind::kBlacklist: return "blacklist";
    case TraceKind::kUtility: return "utility";
    case TraceKind::kFaultBegin: return "fault-begin";
    case TraceKind::kFaultEnd: return "fault-end";
    case TraceKind::kCount_: break;
  }
  return "?";
}

const char* layer_of(TraceKind kind) {
  switch (kind) {
    case TraceKind::kChannelSwitchStart:
    case TraceKind::kChannelSwitchEnd:
    case TraceKind::kImpairmentSet:
    case TraceKind::kImpairmentClear:
      return "phy";
    case TraceKind::kScanResult:
    case TraceKind::kAuthStart:
    case TraceKind::kAssocStart:
    case TraceKind::kAssocOk:
    case TraceKind::kAssocFail:
    case TraceKind::kMacLinkLost:
    case TraceKind::kPsmSleep:
    case TraceKind::kPsmWake:
    case TraceKind::kPsmPurge:
      return "mac";
    case TraceKind::kDhcpDiscover:
    case TraceKind::kDhcpRequest:
    case TraceKind::kDhcpBound:
    case TraceKind::kDhcpNak:
    case TraceKind::kDhcpFail:
    case TraceKind::kDhcpLeaseLost:
    case TraceKind::kBackhaulDrop:
      return "net";
    case TraceKind::kSlotBegin:
    case TraceKind::kSlotFraction:
    case TraceKind::kJoinStart:
    case TraceKind::kJoinOutcome:
    case TraceKind::kLinkUp:
    case TraceKind::kLinkDown:
    case TraceKind::kBlacklist:
    case TraceKind::kUtility:
      return "core";
    case TraceKind::kFaultBegin:
    case TraceKind::kFaultEnd:
      return "fault";
    case TraceKind::kCount_:
      break;
  }
  return "?";
}

}  // namespace spider::obs
