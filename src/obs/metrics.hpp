#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

namespace spider::obs {

/// A small named-metric registry: counters (sum on merge) and gauges (max
/// on merge). Derived per run from the flight recorder's kind counts and
/// pooled across repetitions by trace::pool_results, so averaged sweeps
/// report fleet-wide totals. Entries iterate in name order — exporters
/// inherit determinism for free.
class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge };

  struct Metric {
    double value = 0.0;
    Kind kind = Kind::kCounter;
  };

  /// Adds `v` to the named counter (creating it at zero).
  void count(std::string_view name, double v = 1.0);
  /// Sets the named gauge; merge keeps the maximum.
  void gauge(std::string_view name, double v);

  /// Value of `name`, or 0 when absent.
  double value(std::string_view name) const;
  bool contains(std::string_view name) const;
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Counters add, gauges take the max; disjoint names are inserted.
  void merge(const MetricsRegistry& other);

  /// Name-ordered view (deterministic iteration for exporters).
  const std::map<std::string, Metric, std::less<>>& entries() const {
    return entries_;
  }

  /// One-line JSON object `{"name":value,...}` in name order, doubles in
  /// exact-round-trip form — the scenario server's live metrics endpoint
  /// streams this inside its response envelope.
  void write_json(std::ostream& os) const;

 private:
  std::map<std::string, Metric, std::less<>> entries_;
};

}  // namespace spider::obs
