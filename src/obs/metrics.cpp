#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "util/json.hpp"

namespace spider::obs {

void MetricsRegistry::count(std::string_view name, double v) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    entries_.emplace(std::string(name), Metric{v, Kind::kCounter});
  } else {
    it->second.value += v;
  }
}

void MetricsRegistry::gauge(std::string_view name, double v) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    entries_.emplace(std::string(name), Metric{v, Kind::kGauge});
  } else {
    it->second.value = v;
    it->second.kind = Kind::kGauge;
  }
}

double MetricsRegistry::value(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0.0 : it->second.value;
}

bool MetricsRegistry::contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const auto& [name, metric] : entries_) {
    if (!first) os << ',';
    first = false;
    os << '"' << util::json_escape(name) << "\":"
       << util::json_number(metric.value);
  }
  os << '}';
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, metric] : other.entries_) {
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      entries_.emplace(name, metric);
    } else if (metric.kind == Kind::kGauge) {
      it->second.value = std::max(it->second.value, metric.value);
      it->second.kind = Kind::kGauge;
    } else {
      it->second.value += metric.value;
    }
  }
}

}  // namespace spider::obs
