#include "obs/sinks.hpp"

#include <cstdio>
#include <ostream>
#include <set>

namespace spider::obs {
namespace {

// Fixed formatting recipes: the sinks promise byte-identical output for
// identical histories, so every number goes through one snprintf spec.
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string fmt_hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string track_name(std::uint32_t track) {
  const std::uint32_t family = track >> 24;
  const std::uint32_t inst = track & 0xFF'FFFFu;
  char buf[32];
  switch (family) {
    case 0x01:
      std::snprintf(buf, sizeof buf, "vap %u", inst);
      return buf;
    case 0x02:
      std::snprintf(buf, sizeof buf, "ap 0x%06x", inst);
      return buf;
    case 0x03:
      std::snprintf(buf, sizeof buf, "channel %u", inst);
      return buf;
    case 0x04:
      if (inst == 0) return "scheduler";
      if (inst == 1) return "scanner";
      if (inst == 2) return "backhaul";
      break;
    case 0x05:
      return "faults";
    default:
      break;
  }
  std::snprintf(buf, sizeof buf, "track 0x%08x", track);
  return buf;
}

void write_jsonl(std::ostream& os, const Tracer& tracer, std::size_t run) {
  for (const TraceEvent& e : tracer.events()) {
    os << "{\"t_us\":" << e.t_us                      //
       << ",\"run\":" << run                          //
       << ",\"seed\":" << tracer.seed()               //
       << ",\"layer\":\"" << layer_of(e.kind)         //
       << "\",\"kind\":\"" << to_string(e.kind)       //
       << "\",\"track\":\"" << track_name(e.track)    //
       << "\",\"channel\":" << e.channel              //
       << ",\"aux\":" << static_cast<unsigned>(e.aux) //
       << ",\"id\":\"" << fmt_hex(e.id)               //
       << "\",\"value\":" << fmt_double(e.value)      //
       << "}\n";
  }
}

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(os) {
  os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

ChromeTraceWriter::~ChromeTraceWriter() { finish(); }

void ChromeTraceWriter::begin_event() {
  if (!first_) os_ << ",";
  first_ = false;
  os_ << "\n";
}

void ChromeTraceWriter::add_run(const Tracer& tracer, std::size_t run) {
  begin_event();
  os_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << run
      << ",\"args\":{\"name\":\"run " << run << " (seed " << tracer.seed()
      << ")\"}}";

  const std::vector<TraceEvent> events = tracer.events();

  // One named thread per lane; thread_sort_index keeps lanes grouped by
  // family (clients, APs, channels, infra, faults) instead of by name.
  std::set<std::uint32_t> tracks;
  for (const TraceEvent& e : events) tracks.insert(e.track);
  for (std::uint32_t t : tracks) {
    begin_event();
    os_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << run
        << ",\"tid\":" << t << ",\"args\":{\"name\":\"" << track_name(t)
        << "\"}}";
    begin_event();
    os_ << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":" << run
        << ",\"tid\":" << t << ",\"args\":{\"sort_index\":" << t << "}}";
  }

  for (const TraceEvent& e : events) {
    begin_event();
    switch (e.kind) {
      case TraceKind::kChannelSwitchStart:
        os_ << "{\"name\":\"channel-switch\",\"cat\":\"phy\",\"ph\":\"B\""
            << ",\"ts\":" << e.t_us << ",\"pid\":" << run
            << ",\"tid\":" << e.track << ",\"args\":{\"channel\":" << e.channel
            << "}}";
        break;
      case TraceKind::kChannelSwitchEnd:
        os_ << "{\"name\":\"channel-switch\",\"cat\":\"phy\",\"ph\":\"E\""
            << ",\"ts\":" << e.t_us << ",\"pid\":" << run
            << ",\"tid\":" << e.track << "}";
        break;
      case TraceKind::kFaultBegin:
      case TraceKind::kFaultEnd:
        // Async span keyed on (kind, target) so overlapping faults on the
        // shared lane pair up correctly.
        os_ << "{\"name\":\"fault\",\"cat\":\"fault\",\"ph\":\""
            << (e.kind == TraceKind::kFaultBegin ? 'b' : 'e')
            << "\",\"id\":\"" << static_cast<unsigned>(e.aux) << ":"
            << fmt_hex(e.id) << "\",\"ts\":" << e.t_us << ",\"pid\":" << run
            << ",\"tid\":" << e.track
            << ",\"args\":{\"fault_kind\":" << static_cast<unsigned>(e.aux)
            << ",\"target\":\"" << fmt_hex(e.id) << "\"}}";
        break;
      default:
        os_ << "{\"name\":\"" << to_string(e.kind) << "\",\"cat\":\""
            << layer_of(e.kind) << "\",\"ph\":\"i\",\"s\":\"t\""
            << ",\"ts\":" << e.t_us << ",\"pid\":" << run
            << ",\"tid\":" << e.track << ",\"args\":{\"channel\":" << e.channel
            << ",\"aux\":" << static_cast<unsigned>(e.aux) << ",\"id\":\""
            << fmt_hex(e.id) << "\",\"value\":" << fmt_double(e.value)
            << "}}";
        break;
    }
  }
}

void ChromeTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << "\n]}\n";
}

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  ChromeTraceWriter writer(os);
  writer.add_run(tracer, 0);
  writer.finish();
}

void write_metrics_csv(std::ostream& os, const MetricsRegistry& metrics) {
  os << "metric,kind,value\n";
  for (const auto& [name, m] : metrics.entries()) {
    os << name << ','
       << (m.kind == MetricsRegistry::Kind::kCounter ? "counter" : "gauge")
       << ',' << fmt_double(m.value) << '\n';
  }
}

}  // namespace spider::obs
