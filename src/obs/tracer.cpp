#include "obs/tracer.hpp"

#include <string>

namespace spider::obs {

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start = (size_ == ring_.size()) ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

MetricsRegistry Tracer::metrics() const {
  MetricsRegistry m;
  for (std::size_t k = 0; k < kTraceKindCount; ++k) {
    if (counts_[k] == 0) continue;
    const auto kind = static_cast<TraceKind>(k);
    m.count(std::string(layer_of(kind)) + "." + to_string(kind),
            static_cast<double>(counts_[k]));
  }
  m.count("obs.recorded", static_cast<double>(recorded_));
  m.count("obs.overflowed", static_cast<double>(overflowed()));
  m.gauge("obs.ring_peak", static_cast<double>(size_));
  return m;
}

}  // namespace spider::obs
