#pragma once

#include <functional>
#include <string>

#include "util/time.hpp"

namespace spider {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Minimal leveled logger. The simulator is deterministic and usually runs
/// silent; tests and examples raise the level to watch protocol exchanges.
/// A custom sink can capture lines (used by tests asserting on events).
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level();
  static void set_level(LogLevel level);
  static void set_sink(Sink sink);  // null restores stderr sink

  static void write(LogLevel level, Time now, const std::string& component,
                    const std::string& message);

  static bool enabled(LogLevel level) { return level >= Log::level(); }
};

#define SPIDER_LOG(level, now, component, msg)                        \
  do {                                                                \
    if (::spider::Log::enabled(level)) {                              \
      ::spider::Log::write((level), (now), (component), (msg));       \
    }                                                                 \
  } while (0)

}  // namespace spider
