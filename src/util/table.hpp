#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace spider {

/// Plain-text table formatter used by the bench binaries to print the rows
/// of each paper table/figure. Columns are sized to their widest cell and
/// separated by two spaces; a rule is drawn under the header.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string percent(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a (x, y) series as two aligned columns with a caption; used for
/// figure benches that emit curves rather than tables.
void print_series(std::ostream& os, const std::string& caption,
                  const std::string& x_label, const std::string& y_label,
                  const std::vector<std::pair<double, double>>& points,
                  int precision = 4);

}  // namespace spider
