#pragma once

#include <cstddef>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spider::util {

/// Fixed-size worker pool for embarrassingly parallel work (one isolated
/// simulation per job). Jobs are plain closures; completion is observed
/// with wait_idle(). The pool is intentionally minimal — no futures, no
/// work stealing — because the sweep workload is a static list of
/// long-running, independent tasks.
class ThreadPool {
 public:
  /// `threads == 0` selects default_jobs().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Worker count used when none is requested: the SPIDER_JOBS environment
  /// variable if set to a positive integer, otherwise
  /// hardware_concurrency(), and at least 1.
  static std::size_t default_jobs();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Runs `fn(0) ... fn(n-1)` on up to `jobs` workers and returns the results
/// indexed by `i` — the caller-visible order never depends on completion
/// order, which is what makes parallel sweeps byte-identical to serial
/// ones. `jobs <= 1` runs inline on the calling thread (no pool, identical
/// semantics). The first exception thrown by any job is rethrown after all
/// jobs finish.
template <typename Fn>
auto parallel_map(std::size_t jobs, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  std::vector<Result> results(n);
  if (jobs == 0) jobs = ThreadPool::default_jobs();
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  {
    ThreadPool pool(std::min(jobs, n));
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&, i] {
        try {
          results[i] = fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace spider::util
