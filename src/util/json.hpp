#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spider::util {

/// Minimal JSON document: parsed representation of one value. The
/// scenario-server wire protocol (src/serve) is line-delimited JSON and the
/// container must not grow third-party dependencies, so this is a small
/// recursive-descent parser covering the full JSON grammar (objects,
/// arrays, strings with escapes, numbers, booleans, null) with a depth
/// limit instead of a stack overflow on adversarial input.
///
/// Numbers are stored as double — integers round-trip exactly up to 2^53,
/// far beyond any seed count or counter the protocol carries.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  /// Parses exactly one JSON value (surrounding whitespace allowed;
  /// trailing garbage is an error). On failure returns nullopt and, when
  /// `error` is given, a message with the byte offset.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  /// Typed accessors with fallbacks — the wire protocol treats a missing
  /// or mistyped field as "use the default", and validates semantics at
  /// the scenario layer.
  double number_or(double fallback) const {
    return type_ == Type::kNumber ? number_ : fallback;
  }
  bool bool_or(bool fallback) const {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  const std::string& string_value() const { return string_; }
  std::string string_or(std::string fallback) const {
    return type_ == Type::kString ? string_ : std::move(fallback);
  }

  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }
  const std::vector<Json>& elements() const { return array_; }

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> object_;  // insertion order
  std::vector<Json> array_;
};

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// Formats a double so that parsing it back yields the identical binary64
/// value (%.17g) — the campaign runner's merge-equals-serial guarantee
/// rides on this round trip. Integers up to 2^53 print without an exponent.
std::string json_number(double v);

}  // namespace spider::util
