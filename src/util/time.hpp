#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace spider {

/// Simulation time. All of the simulator runs on a single monotonic clock
/// with microsecond resolution; a signed 64-bit tick count covers ~292k
/// years, far beyond any experiment horizon.
using Time = std::chrono::duration<std::int64_t, std::micro>;

/// Convenience constructors. The paper quotes constants in seconds and
/// milliseconds; these keep call sites readable (`msec(400)`, `sec(4)`).
constexpr Time usec(std::int64_t v) { return Time{v}; }
constexpr Time msec(std::int64_t v) { return Time{v * 1000}; }
constexpr Time sec(double v) {
  return Time{static_cast<std::int64_t>(v * 1e6)};
}

/// Converts a simulation time to floating-point seconds (for statistics
/// and printed output).
constexpr double to_seconds(Time t) {
  return static_cast<double>(t.count()) / 1e6;
}

/// Converts a simulation time to floating-point milliseconds.
constexpr double to_millis(Time t) {
  return static_cast<double>(t.count()) / 1e3;
}

/// Formats a time as a short human-readable string ("1.250s", "37ms").
std::string format_time(Time t);

}  // namespace spider
