#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace spider::util {

/// Move-only `void()` callable with small-buffer optimisation.
///
/// `std::function` in the event-queue hot path costs a heap allocation for
/// any capture larger than its implementation-defined SBO (typically two
/// pointers) plus copy-constructibility of the target. Every scheduled
/// event in a run goes through that path, so the engine replaces it with
/// this wrapper: callables up to `Capacity` bytes are stored inline in the
/// heap entry itself, larger ones fall back to a single heap cell, and the
/// target only needs to be move-constructible (captures may hold
/// `unique_ptr`s).
///
/// `Capacity` is chosen per call site; the event queue uses 64 bytes, which
/// fits every callback the simulator schedules today (the largest — the
/// medium's per-receiver delivery record — is a shared body pointer plus a
/// POD reception record, ~48 bytes). `heap_allocated()` exposes whether the
/// fallback fired so perf counters can prove the hot path allocates nothing.
template <std::size_t Capacity>
class InlineFunction {
 public:
  InlineFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { steal(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the target did not fit in `Capacity` and lives on the heap.
  bool heap_allocated() const noexcept { return ops_ && ops_->heap; }

  /// Compile-time predicate: would a callable of type Fn be stored inline?
  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

 private:
  struct Ops {
    void (*invoke)(void* obj);
    /// Move-constructs dst from src and destroys src (inline) or moves the
    /// heap pointer (heap fallback). Null for trivially relocatable targets:
    /// steal() then does one fixed-size memcpy instead of an indirect call —
    /// the common case, since most scheduled callbacks capture only pointers
    /// and PODs.
    void (*relocate)(void* src, void* dst) noexcept;
    /// Null when destruction is a no-op (trivially destructible target).
    void (*destroy)(void* obj) noexcept;
    bool heap;
  };

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* src, void* dst) noexcept {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
  };

  template <typename Fn>
  struct HeapOps {
    static void invoke(void* p) { (**static_cast<Fn**>(p))(); }
    // No relocate: moving the heap fallback just copies the stored pointer,
    // which the null-relocate memcpy path in steal() already does.
    static void destroy(void* p) noexcept { delete *static_cast<Fn**>(p); }
  };

  template <typename Fn>
  static constexpr bool is_trivial_inline =
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops kInlineOps{
      &InlineOps<Fn>::invoke,
      is_trivial_inline<Fn> ? nullptr : &InlineOps<Fn>::relocate,
      is_trivial_inline<Fn> ? nullptr : &InlineOps<Fn>::destroy, false};
  template <typename Fn>
  static constexpr Ops kHeapOps{&HeapOps<Fn>::invoke, nullptr,
                                &HeapOps<Fn>::destroy, true};

  void steal(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_) {
      if (ops_->relocate == nullptr) {
        // Trivial relocation (or a heap pointer): a fixed-size copy the
        // compiler turns into straight-line moves, no indirect call.
        __builtin_memcpy(buf_, other.buf_, Capacity);
      } else {
        ops_->relocate(other.buf_, buf_);
      }
    }
    other.ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace spider::util
