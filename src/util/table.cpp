#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace spider {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void print_series(std::ostream& os, const std::string& caption,
                  const std::string& x_label, const std::string& y_label,
                  const std::vector<std::pair<double, double>>& points,
                  int precision) {
  os << caption << '\n';
  TextTable t({x_label, y_label});
  for (const auto& [x, y] : points) {
    t.add_row({TextTable::num(x, precision), TextTable::num(y, precision)});
  }
  t.print(os);
}

}  // namespace spider
