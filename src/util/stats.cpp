#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace spider {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

OnlineStats OnlineStats::from_moments(std::size_t n, double mean, double m2,
                                      double min, double max, double sum) {
  OnlineStats s;
  if (n == 0) return s;
  s.n_ = n;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  s.sum_ = sum;
  return s;
}

double OnlineStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)), sorted_(false) {
  finalize();
}

void Cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Cdf::finalize() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::fraction_at_or_below(double x) const {
  finalize();
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  finalize();
  if (samples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank with linear interpolation between adjacent order statistics.
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  finalize();
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  const double lo = samples_.front();
  const double hi = samples_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        points == 1 ? hi
                    : lo + (hi - lo) * static_cast<double>(i) /
                          static_cast<double>(points - 1);
    out.emplace_back(x, fraction_at_or_below(x));
  }
  return out;
}

double ks_distance(const Cdf& a, const Cdf& b) {
  a.finalize();
  b.finalize();
  if (a.empty() || b.empty()) return 1.0;
  double d = 0.0;
  for (double x : a.samples()) {
    d = std::max(d, std::abs(a.fraction_at_or_below(x) - b.fraction_at_or_below(x)));
  }
  for (double x : b.samples()) {
    d = std::max(d, std::abs(a.fraction_at_or_below(x) - b.fraction_at_or_below(x)));
  }
  return d;
}

}  // namespace spider
