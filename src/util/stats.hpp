#pragma once

#include <cstddef>
#include <vector>

namespace spider {

/// Streaming mean / variance accumulator (Welford). Used for the
/// mean ± stddev rows the paper's tables report.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }
  /// Raw second central moment (sum of squared deviations); together with
  /// count/mean/min/max/sum it fully serialises the accumulator.
  double m2() const { return m2_; }

  /// Combine with another accumulator (parallel Welford / Chan et al.).
  /// Equivalent to having added the other's samples to this one; used to
  /// pool per-client latency stats into one scenario-level accumulator.
  void merge(const OnlineStats& other);

  /// Reconstructs an accumulator from its serialised moments — the inverse
  /// of reading count()/mean()/m2()/min()/max()/sum(). The campaign runner
  /// ships accumulators over the wire as these six numbers; merging the
  /// reconstruction is bit-identical to merging the original.
  static OnlineStats from_moments(std::size_t n, double mean, double m2,
                                  double min, double max, double sum);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Empirical CDF over a collected sample set. The paper presents most
/// results as CDFs (Figs. 5, 6, 11-17); benches build one of these and then
/// print `fraction_at_or_below` over a grid of x values.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double x);
  /// Sorts pending samples; called automatically by the query functions.
  /// Logically const: sorting changes the representation, not the
  /// distribution, so queries work on const (shared, merged) results
  /// without forcing callers to copy.
  void finalize() const;

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// F(x): fraction of samples <= x.
  double fraction_at_or_below(double x) const;
  /// Inverse CDF; q in [0,1]. q=0.5 is the median.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double mean() const;

  /// Evenly spaced (x, F(x)) points across [min, max] for printing a curve.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Two-sample Kolmogorov-Smirnov distance between empirical CDFs; used by
/// tests to check that generated distributions match their targets and by
/// the usability analysis (Figs. 16/17) to quantify shape agreement.
double ks_distance(const Cdf& a, const Cdf& b);

}  // namespace spider
