#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace spider::util {

/// One parse in flight: cursor over the input plus error reporting.
/// Named (not in an anonymous namespace) because it is Json's friend.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse_document(Json& out, std::string* error) {
    skip_ws();
    if (!parse_value(out, 0)) {
      if (error) *error = message_ + " at byte " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error) {
        *error = "trailing characters at byte " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* message) {
    if (message_.empty()) message_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out.type_ = Json::Type::kNull;
        return literal("null") || fail("bad literal");
      case 't':
        out.type_ = Json::Type::kBool;
        out.bool_ = true;
        return literal("true") || fail("bad literal");
      case 'f':
        out.type_ = Json::Type::kBool;
        out.bool_ = false;
        return literal("false") || fail("bad literal");
      case '"':
        out.type_ = Json::Type::kString;
        return parse_string(out.string_);
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Json& out, int depth) {
    out.type_ = Json::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      skip_ws();
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out.object_.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Json& out, int depth) {
    out.type_ = Json::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out.array_.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          append_utf8(out, code);
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_hex4(unsigned& code) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad hex digit in \\u escape");
      }
    }
    return true;
  }

  /// BMP code point to UTF-8. Surrogate pairs are passed through as two
  /// 3-byte sequences — the protocol never emits them, and lossy-but-safe
  /// beats rejecting a request over an exotic SSID string.
  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return fail("malformed number");
    }
    out.type_ = Json::Type::kNumber;
    out.number_ = value;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
};

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  Json out;
  JsonParser parser(text);
  if (!parser.parse_document(out, error)) return std::nullopt;
  return out;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no Inf/NaN
  char buf[32];
  // Integral values inside the exactly-representable range print as plain
  // integers (seeds, counters); everything else gets the shortest-exact
  // %.17g form so a parse returns the identical binary64.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

}  // namespace spider::util
