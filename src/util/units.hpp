#pragma once

#include <cmath>
#include <cstdint>

#include "util/time.hpp"

namespace spider {

/// Link data rate in bits per second. Stored as double so that fractional
/// effective rates (after loss/backoff) compose naturally.
struct BitRate {
  double bps = 0.0;

  constexpr double mbps() const { return bps / 1e6; }
  constexpr double kbps() const { return bps / 1e3; }

  /// Bytes transferred at this rate over `t`.
  constexpr double bytes_in(Time t) const { return bps / 8.0 * to_seconds(t); }

  /// Serialization time for `bytes` at this rate.
  constexpr Time time_for_bytes(double bytes) const {
    return bps <= 0.0 ? Time::max() : sec(bytes * 8.0 / bps);
  }

  constexpr auto operator<=>(const BitRate&) const = default;
};

constexpr BitRate bps(double v) { return BitRate{v}; }
constexpr BitRate kbps(double v) { return BitRate{v * 1e3}; }
constexpr BitRate mbps(double v) { return BitRate{v * 1e6}; }

/// 802.11b application-layer rate used throughout the paper ("Bw = 11Mbps").
inline constexpr BitRate kWirelessRate = mbps(11.0);

/// Kilobytes-per-second helper for reporting (the paper reports KB/s).
constexpr double to_kBps(BitRate r) { return r.bps / 8.0 / 1e3; }

/// Geometric position on a 2-D plane, in meters. The mobility models and
/// the propagation model share this type.
struct Position {
  double x = 0.0;
  double y = 0.0;

  constexpr auto operator<=>(const Position&) const = default;
};

/// Euclidean distance between two positions, in meters. Inline: the
/// medium calls this once per same-channel candidate on every transmit.
inline double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace spider
