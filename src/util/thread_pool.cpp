#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace spider::util {

std::size_t ThreadPool::default_jobs() {
  if (const char* env = std::getenv("SPIDER_JOBS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_jobs();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping, queue drained
    auto job = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    job();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_.notify_all();
  }
}

}  // namespace spider::util
