#include "util/units.hpp"

// distance() lives in the header now (it is on the medium's per-candidate
// hot path); this TU intentionally left empty.
