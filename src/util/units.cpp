#include "util/units.hpp"

#include <cmath>

namespace spider {

double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace spider
