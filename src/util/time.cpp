#include "util/time.hpp"

#include <cstdio>

namespace spider {

std::string format_time(Time t) {
  char buf[32];
  const auto us = t.count();
  if (us % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(us / 1'000'000));
  } else if (us % 1'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(us / 1'000));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(us) / 1e3);
  }
  return buf;
}

}  // namespace spider
