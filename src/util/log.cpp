#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace spider {
namespace {

// Atomic so that pool threads running simulations can consult the level
// while another thread adjusts it (the sweep runner made this concurrent).
std::atomic<LogLevel> g_level{LogLevel::kOff};
Log::Sink g_sink;
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }
void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
void Log::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void Log::write(LogLevel level, Time now, const std::string& component,
                const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, "[" + format_time(now) + "] " + component + ": " + message);
    return;
  }
  std::fprintf(stderr, "%-5s [%10.6f] %-12s %s\n", level_name(level),
               to_seconds(now), component.c_str(), message.c_str());
}

}  // namespace spider
