#pragma once

#include <cstdint>
#include <random>

namespace spider {

/// Deterministic random source used everywhere in the simulator.
///
/// Each component that needs randomness takes an `Rng&`; experiments seed a
/// single root generator so that every run is exactly reproducible. The
/// wrapper exposes only the distributions the codebase needs, keeping call
/// sites short and making it obvious what stochastic inputs exist.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial: true with probability `p` (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential with mean `mean` (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal parameterised by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Pareto with scale `xm` and shape `alpha` (heavy-tailed gaps/durations).
  double pareto(double xm, double alpha) {
    const double u = uniform(0.0, 1.0);
    return xm / std::pow(1.0 - u, 1.0 / alpha);
  }

  /// Derives an independent child generator; used to give each subsystem
  /// its own stream so adding draws in one place does not perturb others.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace spider
