#include "analysis/join_model.hpp"

#include <algorithm>
#include <cmath>

namespace spider::model {

int segments_per_round(const JoinModelParams& p) {
  const double window = p.D * p.fi - p.w;
  if (window <= 0.0) return 0;
  return static_cast<int>(std::ceil(window / p.c));
}

int rounds_in_range(const JoinModelParams& p) {
  return static_cast<int>(std::floor(p.t / p.D));
}

double q_segment(const JoinModelParams& p, int m, int n, int k) {
  const double alpha_min = k * p.c + p.beta_min;
  const double alpha_max = k * p.c + p.beta_max;
  const double delta_min = (n - m) * p.D + p.c - p.w;
  const double delta_max = (n - m + p.fi) * p.D + p.c - p.w;

  if (delta_min > alpha_max) return 0.0;
  if (delta_max < alpha_min) return 0.0;
  const double overlap =
      std::min(alpha_max, delta_max) - std::max(alpha_min, delta_min);
  if (alpha_max <= alpha_min) return 0.0;
  return std::clamp(overlap / (alpha_max - alpha_min), 0.0, 1.0);
}

double q_round(const JoinModelParams& p, int m, int n) {
  const int segments = segments_per_round(p);
  const double survive = (1.0 - p.h) * (1.0 - p.h);
  double prob_none = 1.0;
  for (int k = 1; k <= segments; ++k) {
    prob_none *= 1.0 - q_segment(p, m, n, k) * survive;
  }
  return prob_none;
}

double p_join(const JoinModelParams& p) {
  const int rounds = rounds_in_range(p);
  double prob_all_fail = 1.0;
  for (int m = 1; m <= rounds; ++m) {
    for (int n = m; n <= rounds; ++n) {
      prob_all_fail *= q_round(p, m, n);
    }
  }
  return 1.0 - prob_all_fail;
}

double p_join_at(JoinModelParams p, double fi) {
  p.fi = fi;
  return p_join(p);
}

double simulate_join(const JoinModelParams& p, int trials, Rng& rng) {
  const int rounds = rounds_in_range(p);
  const int segments = segments_per_round(p);
  if (rounds <= 0 || segments <= 0 || trials <= 0) return 0.0;

  int successes = 0;
  for (int trial = 0; trial < trials; ++trial) {
    bool joined = false;
    for (int m = 1; m <= rounds && !joined; ++m) {
      for (int k = 1; k <= segments && !joined; ++k) {
        if (rng.chance(p.h)) continue;  // request lost
        const double beta = rng.uniform(p.beta_min, p.beta_max);
        if (rng.chance(p.h)) continue;  // response lost
        // Offset of the response within the schedule, measured from the
        // start of round m (the same quantity Eq. 1/2 constrain).
        const double x = p.w + (k - 1) * p.c + beta;
        const int j = static_cast<int>(std::floor(x / p.D));  // n - m
        if (m + j > rounds) continue;  // response lands after we left range
        const double within_round = x - j * p.D;
        if (within_round <= p.D * p.fi) joined = true;
      }
    }
    successes += joined ? 1 : 0;
  }
  return static_cast<double>(successes) / static_cast<double>(trials);
}

}  // namespace spider::model
