#include "analysis/selection_opt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace spider::model {

SelectionResult select_exhaustive(const std::vector<ApCandidate>& candidates,
                                  double budget) {
  const std::size_t n = candidates.size();
  SelectionResult best;
  const std::uint64_t subsets = 1ULL << n;
  for (std::uint64_t mask = 0; mask < subsets; ++mask) {
    ++best.nodes_explored;
    double value = 0.0, cost = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) {
        value += candidates[i].value();
        cost += candidates[i].cost();
      }
    }
    if (cost <= budget && value > best.value) {
      best.value = value;
      best.cost = cost;
      best.chosen.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1ULL << i)) best.chosen.push_back(i);
      }
    }
  }
  return best;
}

SelectionResult select_knapsack_dp(const std::vector<ApCandidate>& candidates,
                                   double budget, double resolution) {
  const std::size_t n = candidates.size();
  const auto slots = static_cast<std::size_t>(std::floor(budget / resolution)) + 1;
  // dp[c] = best value with cost index <= c; parent pointers reconstruct.
  std::vector<double> dp(slots, 0.0);
  std::vector<std::vector<bool>> take(n, std::vector<bool>(slots, false));
  SelectionResult result;

  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<std::size_t>(
        std::ceil(candidates[i].cost() / resolution));
    const double v = candidates[i].value();
    if (w >= slots) continue;
    for (std::size_t c = slots; c-- > w;) {
      ++result.nodes_explored;
      if (dp[c - w] + v > dp[c]) {
        dp[c] = dp[c - w] + v;
        take[i][c] = true;
      }
    }
  }

  // Reconstruct the chosen set.
  std::size_t c = slots - 1;
  for (std::size_t i = n; i-- > 0;) {
    if (take[i][c]) {
      result.chosen.push_back(i);
      result.value += candidates[i].value();
      result.cost += candidates[i].cost();
      const auto w = static_cast<std::size_t>(
          std::ceil(candidates[i].cost() / resolution));
      c -= w;
    }
  }
  std::reverse(result.chosen.begin(), result.chosen.end());
  return result;
}

SelectionResult select_greedy(const std::vector<ApCandidate>& candidates,
                              double budget) {
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = candidates[a].cost() <= 0.0
                          ? 0.0
                          : candidates[a].value() / candidates[a].cost();
    const double db = candidates[b].cost() <= 0.0
                          ? 0.0
                          : candidates[b].value() / candidates[b].cost();
    return da > db;
  });

  SelectionResult result;
  double remaining = budget;
  for (std::size_t i : order) {
    ++result.nodes_explored;
    if (candidates[i].cost() <= remaining) {
      remaining -= candidates[i].cost();
      result.chosen.push_back(i);
      result.value += candidates[i].value();
      result.cost += candidates[i].cost();
    }
  }
  std::sort(result.chosen.begin(), result.chosen.end());
  return result;
}

}  // namespace spider::model
