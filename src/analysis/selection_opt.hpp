#pragma once

#include <cstdint>
#include <vector>

namespace spider::model {

/// One AP as seen by the multi-AP selection problem of Appendix A:
/// `time_in_range` (T_i), `bandwidth` (W_i, any consistent unit) and the
/// per-use scheduling/association overhead (D_i). The value of selecting
/// the AP is T_i * W_i; its cost against the road-segment budget T is
/// T_i + D_i.
struct ApCandidate {
  double time_in_range = 0.0;
  double bandwidth = 0.0;
  double overhead = 0.0;

  double value() const { return time_in_range * bandwidth; }
  double cost() const { return time_in_range + overhead; }
};

struct SelectionResult {
  std::vector<std::size_t> chosen;  ///< indices into the candidate list
  double value = 0.0;
  double cost = 0.0;
  std::uint64_t nodes_explored = 0;  ///< work metric for the benches
};

/// Exact optimum by exhaustive subset enumeration — O(2^n), the
/// demonstration that the optimal selection blows up (Appendix A reduces
/// the problem to 0-1 knapsack).
SelectionResult select_exhaustive(const std::vector<ApCandidate>& candidates,
                                  double budget);

/// Exact-within-discretisation optimum via the classic knapsack DP over a
/// cost grid of `resolution` (pseudo-polynomial).
SelectionResult select_knapsack_dp(const std::vector<ApCandidate>& candidates,
                                   double budget, double resolution = 0.1);

/// Spider-like greedy: rank by value density (value/cost), take while the
/// budget lasts. Linearithmic, online-capable — the real-time answer the
/// paper's utility heuristic approximates.
SelectionResult select_greedy(const std::vector<ApCandidate>& candidates,
                              double budget);

}  // namespace spider::model
