#include "analysis/throughput_opt.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace spider::model {

double expected_join_fraction(const JoinModelParams& join, double fi, double T) {
  if (fi <= 0.0) return 1.0;  // never on the channel: never joins
  JoinModelParams p = join;
  p.fi = fi;
  // E[min(T_join, T)] / T via the tail sum, in 1-second steps.
  const int horizon = std::max(1, static_cast<int>(std::floor(T)));
  double waiting = 0.0;
  for (int t = 0; t < horizon; ++t) {
    p.t = static_cast<double>(t);
    waiting += 1.0 - p_join(p);
  }
  return std::clamp(waiting / T, 0.0, 1.0);
}

OptSolution maximize_throughput(const OptProblem& problem) {
  const std::size_t k = problem.channels.size();
  const double step = problem.grid_step;
  const double w_over_d = problem.switch_overhead_s / problem.join.D;

  // Per-channel feasibility cap as a function of its own fraction:
  // fi <= (B_j + (1 - E[X_i]) * B_a) / Bw. E[X_i] only matters where there
  // is "available" (not yet joined) bandwidth, so memoise E on the grid.
  const int grid_n = static_cast<int>(std::round(1.0 / step));
  std::vector<double> join_fraction(grid_n + 1, 0.0);
  bool any_available = false;
  for (const auto& ch : problem.channels) {
    any_available |= ch.available.bps > 0.0;
  }
  if (any_available) {
    for (int g = 0; g <= grid_n; ++g) {
      join_fraction[g] =
          expected_join_fraction(problem.join, g * step, problem.T);
    }
  }

  auto cap = [&](std::size_t i, int g) {
    const auto& ch = problem.channels[i];
    const double connected = 1.0 - join_fraction[g];
    return (ch.joined.bps + connected * ch.available.bps) / problem.wireless.bps;
  };

  OptSolution best;
  best.fractions.assign(k, 0.0);
  best.bandwidth.assign(k, BitRate{});
  best.total = BitRate{};

  std::vector<int> grid(k, 0);
  std::function<void(std::size_t, int)> search = [&](std::size_t i,
                                                     int budget_left) {
    if (i + 1 == k) {
      // Last channel takes the largest feasible remainder.
      int g = budget_left;
      while (g > 0 && g * step > cap(i, g) + 1e-12) --g;
      grid[i] = g;

      // Constraint (10): switching overhead per active channel; a card
      // parked on a single channel never switches.
      int active = 0;
      double sum = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        if (grid[j] > 0) {
          ++active;
          sum += grid[j] * step;
        }
      }
      const double overhead = active > 1 ? active * w_over_d : 0.0;
      if (sum + overhead > 1.0 + 1e-9) return;

      double total_bps = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        total_bps += grid[j] * step * problem.wireless.bps;
      }
      if (total_bps > best.total.bps) {
        best.total = bps(total_bps);
        for (std::size_t j = 0; j < k; ++j) {
          best.fractions[j] = grid[j] * step;
          best.bandwidth[j] = bps(grid[j] * step * problem.wireless.bps);
        }
      }
      return;
    }
    for (int g = 0; g <= budget_left; ++g) {
      if (g * step > cap(i, g) + 1e-12) continue;  // infeasible at this fi
      grid[i] = g;
      search(i + 1, budget_left - g);
    }
    grid[i] = 0;
  };
  if (k > 0) search(0, grid_n);
  return best;
}

std::vector<SpeedPoint> fig4_sweep(double joined_share_ch1,
                                   double available_share_ch2,
                                   const std::vector<double>& speeds,
                                   double range_m) {
  std::vector<SpeedPoint> out;
  for (double v : speeds) {
    OptProblem problem;
    problem.join.beta_min = 0.5;
    problem.join.beta_max = 10.0;
    problem.T = 2.0 * range_m / v;
    problem.channels = {
        ChannelOffer{.joined = bps(joined_share_ch1 * problem.wireless.bps),
                     .available = BitRate{}},
        ChannelOffer{.joined = BitRate{},
                     .available = bps(available_share_ch2 * problem.wireless.bps)},
    };
    const OptSolution sol = maximize_throughput(problem);
    out.push_back(SpeedPoint{v, sol.bandwidth[0], sol.bandwidth[1]});
  }
  return out;
}

}  // namespace spider::model
