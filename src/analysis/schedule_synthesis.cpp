#include "analysis/schedule_synthesis.hpp"

#include <algorithm>

namespace spider::model {

std::vector<std::pair<wire::Channel, double>> suggest_fractions(
    const std::vector<ChannelBandwidth>& offers,
    const SynthesisParams& params) {
  if (offers.empty()) return {};

  OptProblem problem;
  problem.wireless = params.wireless;
  problem.T = 2.0 * params.range_m / std::max(0.1, params.speed_mps);
  problem.join = params.join;
  // Coarser grid for k = 3: the search is exact within the step and the
  // downstream scheduler quantises to milliseconds anyway.
  problem.grid_step = offers.size() >= 3 ? 0.05 : 0.02;
  for (const auto& offer : offers) {
    ChannelOffer ch;
    // Nothing is joined at planning time: all bandwidth must be earned
    // through joins, so it all sits in the "available" term that E[X_i]
    // discounts.
    ch.available = bps(std::min(offer.available_bps, params.wireless.bps));
    problem.channels.push_back(ch);
  }

  const OptSolution solution = maximize_throughput(problem);

  std::vector<std::pair<wire::Channel, double>> fractions;
  for (std::size_t i = 0; i < offers.size(); ++i) {
    if (solution.fractions[i] >= params.min_useful_fraction) {
      fractions.emplace_back(offers[i].channel, solution.fractions[i]);
    }
  }
  if (fractions.empty()) {
    // Degenerate optimum (e.g. vanishing T): park on the fattest channel.
    const auto best = std::max_element(
        offers.begin(), offers.end(), [](const auto& a, const auto& b) {
          return a.available_bps < b.available_bps;
        });
    fractions.emplace_back(best->channel, 1.0);
  }
  // Renormalise after dropping slivers.
  double total = 0.0;
  for (const auto& [ch, f] : fractions) total += f;
  for (auto& [ch, f] : fractions) f /= total;
  return fractions;
}

}  // namespace spider::model
