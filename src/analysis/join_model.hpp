#pragma once

#include "util/random.hpp"

namespace spider::model {

/// Parameters of the analytical join model (§2.1.1), in seconds. Defaults
/// are the values used to produce Fig. 2.
struct JoinModelParams {
  double D = 0.5;          ///< scheduling period (s)
  double fi = 0.5;         ///< fraction of D spent on the AP's channel
  double t = 4.0;          ///< time in range (s); s = t/D rounds
  double beta_min = 0.5;   ///< fastest AP join response (s)
  double beta_max = 10.0;  ///< slowest AP join response (s)
  double w = 0.007;        ///< channel switch overhead (s)
  double c = 0.1;          ///< spacing between join requests (s)
  double h = 0.1;          ///< per-message loss probability
};

/// Eq. 5: probability that the single request sent in segment k of round m
/// is answered within the on-channel window of round n (lossless channel).
double q_segment(const JoinModelParams& p, int m, int n, int k);

/// Eq. 6: probability that *no* request of round m completes in round n,
/// on a lossy channel (each message survives independently with 1-h).
double q_round(const JoinModelParams& p, int m, int n);

/// Eq. 7: probability of obtaining at least one successful join response
/// within t seconds, given the fraction fi.
double p_join(const JoinModelParams& p);

/// Convenience: p_join with an overridden fraction.
double p_join_at(JoinModelParams p, double fi);

/// Monte-Carlo simulation of the same simplified join process, used to
/// validate the closed form (the "Simulation" series of Fig. 2). Returns
/// the success frequency over `trials`.
double simulate_join(const JoinModelParams& p, int trials, Rng& rng);

/// Number of request segments per round: ceil((D*fi - w) / c), >= 0.
int segments_per_round(const JoinModelParams& p);

/// Rounds the node stays in range: floor(t / D).
int rounds_in_range(const JoinModelParams& p);

}  // namespace spider::model
