#pragma once

#include <vector>

#include "analysis/throughput_opt.hpp"
#include "wire/frame.hpp"

namespace spider::model {

/// Model-driven schedule synthesis: turn a snapshot of per-channel offered
/// bandwidth into the channel fractions the Eqs. 8-10 optimiser considers
/// optimal for a client moving at `speed`.
///
/// This closes the loop the paper leaves open between its analytical
/// framework (§2.1.3) and its static operation modes (§3.2.2): instead of
/// hand-picking "single channel" or "equal thirds", derive the fractions
/// from what the scanner (or a deployment survey) reports. The ablation
/// bench executes the suggested schedule in the full system.
struct ChannelBandwidth {
  wire::Channel channel = 0;
  double available_bps = 0.0;  ///< aggregate backhaul reachable on channel
};

struct SynthesisParams {
  double speed_mps = 10.0;
  double range_m = 100.0;
  BitRate wireless = kWirelessRate;
  JoinModelParams join;          ///< D, beta, w, c, h for E[X_i]
  /// Fractions below this are dropped and the schedule renormalised (a
  /// 3% slot is pure switching overhead).
  double min_useful_fraction = 0.05;
};

/// The optimiser's fractions over the given channels (sums to 1; may
/// contain a single entry, meaning: park). Empty input -> empty output.
std::vector<std::pair<wire::Channel, double>> suggest_fractions(
    const std::vector<ChannelBandwidth>& offers, const SynthesisParams& params);

}  // namespace spider::model
