#pragma once

#include <vector>

#include "analysis/join_model.hpp"
#include "util/units.hpp"

namespace spider::model {

/// One channel's bandwidth situation in the optimisation framework
/// (§2.1.3): `joined` is end-to-end bandwidth from APs the node already
/// holds (B^i_j), `available` is bandwidth from APs it is still trying to
/// join (B^i_a).
struct ChannelOffer {
  BitRate joined;
  BitRate available;
};

/// Inputs to the throughput-maximisation problem (Eqs. 8-10).
struct OptProblem {
  std::vector<ChannelOffer> channels;
  BitRate wireless = kWirelessRate;     ///< Bw
  double T = 20.0;                      ///< time in range (s)
  JoinModelParams join;                 ///< model constants (D, beta, w, c, h)
  double switch_overhead_s = 0.007;     ///< w in constraint (10)
  double grid_step = 0.01;              ///< search resolution for fractions
};

/// Solution: the optimal fraction and resulting bandwidth per channel.
struct OptSolution {
  std::vector<double> fractions;
  std::vector<BitRate> bandwidth;  ///< fi * Bw, per channel
  BitRate total;
};

/// Expected fraction of T spent *before* the join completes, for a node
/// spending fraction `fi` on the channel: (1/T) * sum over seconds of
/// (1 - p(fi, t)). The paper writes E[X_i] as a sum over p(fi, t); we use
/// the standard tail-sum form so that (1 - E[X_i]) is the connected
/// fraction of T the constraint needs. This is the one place we deviate
/// from the paper's notation (documented in DESIGN.md).
double expected_join_fraction(const JoinModelParams& join, double fi, double T);

/// Solves Eqs. 8-10 by grid search over the fraction simplex (exact within
/// grid_step; the problem is tiny: k <= 3 in every paper scenario).
OptSolution maximize_throughput(const OptProblem& problem);

/// The paper's Fig. 4 sweep: for a two-channel offer split, the optimal
/// per-channel bandwidth at each speed (T = 2 * range / v).
struct SpeedPoint {
  double speed_mps;
  BitRate ch1;
  BitRate ch2;
};
std::vector<SpeedPoint> fig4_sweep(double joined_share_ch1,
                                   double available_share_ch2,
                                   const std::vector<double>& speeds,
                                   double range_m = 100.0);

}  // namespace spider::model
