#include <gtest/gtest.h>

#include "wire/address.hpp"
#include "wire/frame.hpp"
#include "wire/packet.hpp"

namespace spider::wire {
namespace {

TEST(MacAddress, Formatting) {
  EXPECT_EQ(MacAddress(0x0123456789ABULL).to_string(), "01:23:45:67:89:ab");
  EXPECT_EQ(MacAddress().to_string(), "00:00:00:00:00:00");
}

TEST(MacAddress, Broadcast) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddress(1).is_broadcast());
  EXPECT_TRUE(MacAddress().is_null());
}

TEST(MacAddress, TruncatesTo48Bits) {
  EXPECT_EQ(MacAddress(0xFF'FFFF'FFFF'FFFFULL).raw(), 0xFFFF'FFFF'FFFFULL);
}

TEST(MacAddress, Hashable) {
  std::hash<MacAddress> h;
  EXPECT_EQ(h(MacAddress(5)), h(MacAddress(5)));
}

TEST(Ipv4, Formatting) {
  EXPECT_EQ(Ipv4(10, 1, 2, 3).to_string(), "10.1.2.3");
  EXPECT_EQ(Ipv4().to_string(), "0.0.0.0");
}

TEST(Ipv4, SubnetOperations) {
  const Ipv4 base(10, 0, 5, 0);
  EXPECT_EQ(base.with_host(42).to_string(), "10.0.5.42");
  EXPECT_TRUE(base.same_subnet24(base.with_host(200)));
  EXPECT_FALSE(base.same_subnet24(Ipv4(10, 0, 6, 1)));
}

TEST(Packet, DhcpFactorySizes) {
  DhcpMessage msg;
  msg.type = DhcpMessage::Type::kDiscover;
  auto p = make_dhcp_packet(Ipv4(), Ipv4(255, 255, 255, 255), msg);
  EXPECT_EQ(p->size_bytes, kIpHeaderBytes + kUdpHeaderBytes + kDhcpBodyBytes);
  ASSERT_NE(p->as<DhcpMessage>(), nullptr);
  EXPECT_EQ(p->as<DhcpMessage>()->type, DhcpMessage::Type::kDiscover);
  EXPECT_EQ(p->as<TcpSegment>(), nullptr);
}

TEST(Packet, TcpFactoryIncludesPayload) {
  TcpSegment seg;
  seg.payload_bytes = 1000;
  auto p = make_tcp_packet(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), seg);
  EXPECT_EQ(p->size_bytes, kIpHeaderBytes + kTcpHeaderBytes + 1000);
}

TEST(Packet, IcmpFactory) {
  IcmpEcho echo{.reply = false, .id = 7, .seq = 3};
  auto p = make_icmp_packet(Ipv4(10, 0, 0, 2), Ipv4(10, 0, 0, 1), echo);
  ASSERT_NE(p->as<IcmpEcho>(), nullptr);
  EXPECT_EQ(p->as<IcmpEcho>()->seq, 3u);
  EXPECT_GT(p->size_bytes, kIpHeaderBytes);
}

TEST(Frame, DataFrameWrapsPacket) {
  auto pkt = make_tcp_packet(Ipv4(1, 0, 0, 1), Ipv4(1, 0, 0, 2), TcpSegment{});
  auto f = make_data_frame(MacAddress(1), MacAddress(2), MacAddress(3), pkt);
  EXPECT_EQ(f.type, FrameType::kData);
  EXPECT_EQ(f.size_bytes, kDataHeaderBytes + pkt->size_bytes);
  EXPECT_EQ(f.packet, pkt);
}

TEST(Frame, TypeNames) {
  EXPECT_STREQ(to_string(FrameType::kBeacon), "Beacon");
  EXPECT_STREQ(to_string(FrameType::kPsPoll), "PsPoll");
}

TEST(DhcpMessage, TypeNames) {
  EXPECT_STREQ(to_string(DhcpMessage::Type::kOffer), "OFFER");
  EXPECT_STREQ(to_string(DhcpMessage::Type::kNak), "NAK");
}

}  // namespace
}  // namespace spider::wire
