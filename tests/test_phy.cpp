#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "phy/medium.hpp"
#include "phy/propagation.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"

namespace spider::phy {
namespace {

PropagationConfig lossless_config() {
  PropagationConfig c;
  c.base_loss = 0.0;
  c.good_radius_m = 100.0;  // no gray zone
  c.range_m = 100.0;
  return c;
}

struct World {
  sim::Simulator sim;
  Medium medium;
  explicit World(PropagationConfig pc = lossless_config(), std::uint64_t seed = 1)
      : medium(sim, Propagation(pc), Rng(seed)) {}
};

wire::Frame small_frame(wire::MacAddress dst = wire::MacAddress::broadcast()) {
  wire::Frame f;
  f.type = wire::FrameType::kBeacon;
  f.dst = dst;
  f.size_bytes = 100;
  return f;
}

TEST(Propagation, RangeCutoff) {
  Propagation p(lossless_config());
  EXPECT_TRUE(p.in_range({0, 0}, {100, 0}));
  EXPECT_FALSE(p.in_range({0, 0}, {100.1, 0}));
}

TEST(Propagation, LossFloorInsideGoodRadius) {
  PropagationConfig c;
  c.base_loss = 0.1;
  c.good_radius_m = 80;
  c.range_m = 100;
  Propagation p(c);
  EXPECT_DOUBLE_EQ(p.loss_probability({0, 0}, {0, 0}), 0.1);
  EXPECT_DOUBLE_EQ(p.loss_probability({0, 0}, {80, 0}), 0.1);
}

TEST(Propagation, LossRampsToOneAtEdge) {
  PropagationConfig c;
  c.base_loss = 0.1;
  c.good_radius_m = 80;
  c.range_m = 100;
  Propagation p(c);
  const double mid = p.loss_probability({0, 0}, {90, 0});
  EXPECT_GT(mid, 0.1);
  EXPECT_LT(mid, 1.0);
  EXPECT_DOUBLE_EQ(p.loss_probability({0, 0}, {100.5, 0}), 1.0);
}

TEST(Propagation, RssiDecreasesWithDistance) {
  Propagation p(lossless_config());
  const double near = p.rssi_dbm({0, 0}, {10, 0});
  const double far = p.rssi_dbm({0, 0}, {90, 0});
  EXPECT_GT(near, far);
}

TEST(Medium, AirtimeScalesWithSize) {
  const Time t1 = Medium::airtime(100, kWirelessRate);
  const Time t2 = Medium::airtime(1500, kWirelessRate);
  EXPECT_GT(t2, t1);
  // 1500B at 11Mbps ~ 1.09ms plus 192us preamble.
  EXPECT_NEAR(to_millis(t2), 1.28, 0.05);
}

TEST(Radio, DeliversOnSameChannel) {
  World w;
  Radio tx(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  Radio rx(w.medium, wire::MacAddress(2), [] { return Position{50, 0}; });
  int received = 0;
  rx.set_receiver([&](const wire::Frame&) { ++received; });
  tx.tune(6);
  rx.tune(6);
  w.sim.run_until(msec(50));
  tx.send(small_frame());
  w.sim.run_until(msec(100));
  EXPECT_EQ(received, 1);
}

TEST(Radio, NoCrossChannelDelivery) {
  World w;
  Radio tx(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  Radio rx(w.medium, wire::MacAddress(2), [] { return Position{50, 0}; });
  int received = 0;
  rx.set_receiver([&](const wire::Frame&) { ++received; });
  tx.tune(1);
  rx.tune(11);
  w.sim.run_until(msec(50));
  tx.send(small_frame());
  w.sim.run_until(msec(100));
  EXPECT_EQ(received, 0);
}

TEST(Radio, NoDeliveryOutOfRange) {
  World w;
  Radio tx(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  Radio rx(w.medium, wire::MacAddress(2), [] { return Position{500, 0}; });
  int received = 0;
  rx.set_receiver([&](const wire::Frame&) { ++received; });
  tx.tune(6);
  rx.tune(6);
  w.sim.run_until(msec(50));
  tx.send(small_frame());
  w.sim.run_until(msec(100));
  EXPECT_EQ(received, 0);
}

TEST(Radio, SenderDoesNotHearItself) {
  World w;
  Radio tx(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  int received = 0;
  tx.set_receiver([&](const wire::Frame&) { ++received; });
  tx.tune(6);
  w.sim.run_until(msec(50));
  tx.send(small_frame());
  w.sim.run_until(msec(100));
  EXPECT_EQ(received, 0);
}

TEST(Radio, SwitchCostsLatencyAndDeafness) {
  World w;
  RadioConfig rc;
  rc.switch_latency = msec(4);
  Radio tx(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  Radio rx(w.medium, wire::MacAddress(2), [] { return Position{10, 0}; }, rc);
  int received = 0;
  rx.set_receiver([&](const wire::Frame&) { ++received; });
  tx.tune(6);
  rx.tune(6);
  w.sim.run_until(msec(50));

  // Mid-switch frames are lost: retune rx, transmit while it is deaf.
  rx.tune(6);  // re-tune to same channel still costs the reset
  tx.send(small_frame());
  w.sim.run_until(msec(100));
  EXPECT_EQ(received, 0);

  tx.send(small_frame());
  w.sim.run_until(msec(200));
  EXPECT_EQ(received, 1);
}

TEST(Radio, TuneCompletionCallback) {
  World w;
  Radio r(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  bool done = false;
  Time completed{0};
  r.tune(11, [&] {
    done = true;
    completed = w.sim.now();
  });
  EXPECT_TRUE(r.switching());
  w.sim.run_until(msec(50));
  EXPECT_TRUE(done);
  EXPECT_EQ(r.channel(), 11);
  EXPECT_EQ(completed, r.config().switch_latency);
}

TEST(Radio, QueuedFramesDrainBeforeSwitch) {
  World w;
  Radio tx(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  Radio rx(w.medium, wire::MacAddress(2), [] { return Position{10, 0}; });
  int received = 0;
  rx.set_receiver([&](const wire::Frame&) { ++received; });
  tx.tune(6);
  rx.tune(6);
  w.sim.run_until(msec(50));

  // Queue two frames (PSM announcements) and immediately request a tune:
  // both frames must still go out on channel 6 before the card leaves.
  tx.send(small_frame());
  tx.send(small_frame());
  bool switched = false;
  tx.tune(11, [&] { switched = true; });
  w.sim.run_until(msec(100));
  EXPECT_EQ(received, 2);
  EXPECT_TRUE(switched);
  EXPECT_EQ(tx.channel(), 11);
}

TEST(Radio, SendDuringSwitchIsDropped) {
  World w;
  Radio tx(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  tx.tune(6);
  tx.send(small_frame());
  EXPECT_EQ(tx.frames_dropped_switching(), 1u);
}

TEST(Radio, SupersedingTuneWins) {
  World w;
  Radio r(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  bool first_done = false, second_done = false;
  r.tune(6, [&] { first_done = true; });
  r.tune(11, [&] { second_done = true; });
  w.sim.run_until(msec(100));
  EXPECT_FALSE(first_done);
  EXPECT_TRUE(second_done);
  EXPECT_EQ(r.channel(), 11);
}

TEST(Radio, TxSerialisation) {
  // Two large frames back-to-back: the second arrives roughly one airtime
  // after the first.
  World w;
  Radio tx(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  Radio rx(w.medium, wire::MacAddress(2), [] { return Position{10, 0}; });
  std::vector<Time> arrivals;
  rx.set_receiver([&](const wire::Frame&) { arrivals.push_back(w.sim.now()); });
  tx.tune(6);
  rx.tune(6);
  w.sim.run_until(msec(50));
  wire::Frame f = small_frame();
  f.size_bytes = 1500;
  tx.send(f);
  tx.send(f);
  w.sim.run_until(msec(100));
  ASSERT_EQ(arrivals.size(), 2u);
  const Time gap = arrivals[1] - arrivals[0];
  EXPECT_EQ(gap, Medium::airtime(1500, tx.config().phy_rate));
}

TEST(Radio, LossRateRespected) {
  PropagationConfig pc;
  pc.base_loss = 0.5;
  pc.good_radius_m = 100;
  pc.range_m = 100;
  World w(pc, /*seed=*/7);
  Radio tx(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  Radio rx(w.medium, wire::MacAddress(2), [] { return Position{10, 0}; });
  int received = 0;
  rx.set_receiver([&](const wire::Frame&) { ++received; });
  tx.tune(6);
  rx.tune(6);
  w.sim.run_until(msec(50));
  const int n = 2000;
  for (int i = 0; i < n; ++i) tx.send(small_frame());
  w.sim.run_until(sec(10));
  EXPECT_NEAR(static_cast<double>(received) / n, 0.5, 0.05);
}

TEST(Medium, CountersTrackTraffic) {
  World w;
  Radio tx(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  Radio rx(w.medium, wire::MacAddress(2), [] { return Position{10, 0}; });
  rx.set_receiver([](const wire::Frame&) {});
  tx.tune(6);
  rx.tune(6);
  w.sim.run_until(msec(50));
  tx.send(small_frame());
  w.sim.run_until(msec(100));
  EXPECT_EQ(w.medium.frames_sent(), 1u);
  EXPECT_EQ(w.medium.frames_delivered(), 1u);
  EXPECT_EQ(w.medium.frames_dropped_at_rx(), 0u);
}

TEST(Medium, ReceiverDetachingMidFlightCountsAsDropNotDelivery) {
  World w;
  Radio tx(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  auto rx = std::make_unique<Radio>(w.medium, wire::MacAddress(2),
                                    [] { return Position{10, 0}; });
  int received = 0;
  rx->set_receiver([&](const wire::Frame&) { ++received; });
  tx.tune(6);
  rx->tune(6);
  w.sim.run_until(msec(50));
  tx.send(small_frame());       // in the air for ~265 us
  w.sim.run_until(w.sim.now() + usec(50));
  rx.reset();                   // receiver torn down before arrival
  w.sim.run_until(sec(1));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(w.medium.frames_sent(), 1u);
  EXPECT_EQ(w.medium.frames_delivered(), 0u);
  EXPECT_EQ(w.medium.frames_dropped_at_rx(), 1u);
}

TEST(Medium, ReceiverRetuningMidFlightCountsAsDropNotDelivery) {
  World w;
  Radio tx(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  Radio rx(w.medium, wire::MacAddress(2), [] { return Position{10, 0}; });
  int received = 0;
  rx.set_receiver([&](const wire::Frame&) { ++received; });
  tx.tune(6);
  rx.tune(6);
  w.sim.run_until(msec(50));
  tx.send(small_frame());
  w.sim.run_until(w.sim.now() + usec(50));
  rx.tune(11);                  // goes deaf (reset) before the frame lands
  w.sim.run_until(sec(1));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(w.medium.frames_delivered(), 0u);
  EXPECT_EQ(w.medium.frames_dropped_at_rx(), 1u);
}

TEST(Medium, FanoutCountersTrackScheduledDeliveries) {
  World w;
  Radio tx(w.medium, wire::MacAddress(1), [] { return Position{0, 0}; });
  Radio rx1(w.medium, wire::MacAddress(2), [] { return Position{10, 0}; });
  Radio rx2(w.medium, wire::MacAddress(3), [] { return Position{20, 0}; });
  Radio other(w.medium, wire::MacAddress(4), [] { return Position{5, 0}; });
  tx.tune(6);
  rx1.tune(6);
  rx2.tune(6);
  other.tune(11);  // different channel: never a candidate
  w.sim.run_until(msec(50));
  tx.send(small_frame());
  w.sim.run_until(msec(100));
  // Candidates = same-channel cohort minus the sender; both survive the
  // lossless draw, so both deliveries were scheduled and delivered.
  EXPECT_EQ(w.medium.candidates_examined(), 2u);
  EXPECT_EQ(w.medium.fanout_scheduled(), 2u);
  EXPECT_EQ(w.medium.frames_delivered(), 2u);
}

}  // namespace
}  // namespace spider::phy
