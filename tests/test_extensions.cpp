// Tests for the post-paper extensions: energy accounting, goodput-weighted
// dynamic scheduling, and deployment CSV persistence.

#include <gtest/gtest.h>

#include <sstream>

#include "core/dynamic_schedule.hpp"
#include "core/link_manager.hpp"
#include "core/spider_driver.hpp"
#include "mobility/deployment_io.hpp"
#include "phy/energy.hpp"
#include "trace/testbed.hpp"

namespace spider {
namespace {

trace::TestbedConfig quiet_air(std::uint64_t seed) {
  trace::TestbedConfig tc;
  tc.seed = seed;
  tc.propagation.base_loss = 0.02;
  tc.propagation.good_radius_m = 90;
  return tc;
}

net::DhcpServerConfig quick_dhcp() {
  net::DhcpServerConfig d;
  d.offer_delay_min = msec(50);
  d.offer_delay_median = msec(150);
  d.offer_delay_max = msec(400);
  return d;
}

// ---------------------------------------------------------------------------
// Energy model

TEST(Energy, IdleCardDrawsIdlePower) {
  sim::Simulator sim;
  phy::Medium medium(sim, phy::Propagation(phy::PropagationConfig{}), Rng(1));
  phy::Radio r(medium, wire::MacAddress(1), [] { return Position{}; });
  sim.run_until(sec(10));
  phy::EnergyModel model;
  EXPECT_NEAR(model.joules(r, sim.now()), 10.0 * model.idle_rx_watts, 1e-6);
}

TEST(Energy, TransmissionAndSwitchingCostExtra) {
  sim::Simulator sim;
  phy::Medium medium(sim, phy::Propagation(phy::PropagationConfig{}), Rng(1));
  phy::Radio r(medium, wire::MacAddress(1), [] { return Position{}; });
  r.tune(6);
  sim.run_until(msec(100));
  wire::Frame f;
  f.type = wire::FrameType::kData;
  f.dst = wire::MacAddress(2);
  f.size_bytes = 1500;
  for (int i = 0; i < 100; ++i) r.send(f);
  sim.run_until(sec(10));

  phy::EnergyModel model;
  const double idle_only = 10.0 * model.idle_rx_watts;
  EXPECT_GT(model.joules(r, sim.now()), idle_only);
  EXPECT_GT(to_seconds(r.tx_airtime()), 0.1);
  EXPECT_EQ(r.switch_airtime(), r.config().switch_latency);  // one tune
  EXPECT_EQ(r.tx_bytes(), 150'000u);
}

TEST(Energy, JoulesPerMbFavoursHigherGoodput) {
  sim::Simulator sim;
  phy::Medium medium(sim, phy::Propagation(phy::PropagationConfig{}), Rng(1));
  phy::Radio r(medium, wire::MacAddress(1), [] { return Position{}; });
  sim.run_until(sec(10));
  phy::EnergyModel model;
  EXPECT_GT(model.joules_per_mb(r, sim.now(), 1'000'000),
            model.joules_per_mb(r, sim.now(), 10'000'000));
  EXPECT_DOUBLE_EQ(model.joules_per_mb(r, sim.now(), 0), 0.0);
}

TEST(Energy, SwitchingScheduleBurnsMoreResetTime) {
  // Two identical drivers, one parked and one on a frantic schedule: the
  // switcher accumulates reset time the parked card never pays.
  trace::Testbed bed(quiet_air(61));
  core::SpiderConfig parked_cfg;
  parked_cfg.num_interfaces = 1;
  parked_cfg.mode = core::OperationMode::single(6);
  core::SpiderDriver parked(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; }, parked_cfg);
  core::SpiderConfig hopper_cfg = parked_cfg;
  hopper_cfg.mode = core::OperationMode::equal_split({1, 6, 11}, msec(150));
  core::SpiderDriver hopper(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; }, hopper_cfg);
  parked.start();
  hopper.start();
  bed.sim.run_until(sec(30));

  phy::EnergyModel model;
  EXPECT_GT(to_seconds(hopper.radio().switch_airtime()), 1.0);
  EXPECT_GT(model.joules(hopper.radio(), bed.sim.now()),
            model.joules(parked.radio(), bed.sim.now()));
}

// ---------------------------------------------------------------------------
// Dynamic (goodput-weighted) schedule

TEST(DynamicSchedule, SingleChannelModeUntouched) {
  trace::Testbed bed(quiet_air(62));
  core::SpiderConfig cfg;
  cfg.mode = core::OperationMode::single(6);
  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; }, cfg);
  core::DynamicScheduleController dyn(driver);
  driver.start();
  dyn.start();
  bed.sim.run_until(sec(30));
  EXPECT_EQ(dyn.rebalances(), 0u);
  EXPECT_TRUE(driver.mode().single_channel());
}

TEST(DynamicSchedule, ShiftsTimeTowardProductiveChannel) {
  trace::Testbed bed(quiet_air(63));
  // A fat AP on channel 1, nothing on channel 11.
  trace::Testbed::ApSpec spec;
  spec.channel = 1;
  spec.position = {20, 0};
  spec.backhaul = mbps(5);
  spec.dhcp = quick_dhcp();
  bed.add_ap(spec);

  core::SpiderConfig cfg;
  cfg.num_interfaces = 2;
  cfg.mode = core::OperationMode::equal_split({1, 11}, msec(400));
  cfg.dhcp = {.retx_timeout = msec(500), .max_sends = 4};
  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; }, cfg);
  core::LinkManager manager(driver, bed.server_ip());
  trace::ThroughputRecorder rec;
  trace::DownloadHarness harness(bed.sim, bed.server_ip(), rec);
  harness.attach(manager);
  core::DynamicScheduleController dyn(driver);
  driver.start();
  manager.start();
  dyn.start();
  bed.sim.run_until(sec(60));

  EXPECT_GE(dyn.rebalances(), 1u);
  EXPECT_GT(driver.mode().fraction_of(1), 0.7);
  // The floor keeps channel 11 alive for scans/joins.
  EXPECT_GE(driver.mode().fraction_of(11), 0.08);
}

TEST(DynamicSchedule, NoRebalanceWithoutTrafficImbalance) {
  trace::Testbed bed(quiet_air(64));
  core::SpiderConfig cfg;
  cfg.mode = core::OperationMode::equal_split({1, 11}, msec(400));
  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; }, cfg);
  core::DynamicScheduleController dyn(driver);
  driver.start();
  dyn.start();
  bed.sim.run_until(sec(30));  // nothing joined: zero bytes everywhere
  EXPECT_EQ(dyn.rebalances(), 0u);
}

// ---------------------------------------------------------------------------
// Deployment CSV round trip

TEST(DeploymentIo, RoundTrip) {
  mob::DeploymentConfig cfg;
  cfg.dead_backhaul_fraction = 0.3;
  Rng rng(9);
  const auto sites = mob::generate_deployment(cfg, rng);
  ASSERT_FALSE(sites.empty());

  std::ostringstream os;
  mob::write_sites_csv(os, sites);
  std::istringstream is(os.str());
  const auto parsed = mob::read_sites_csv(is);

  ASSERT_EQ(parsed.size(), sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_NEAR(parsed[i].position.x, sites[i].position.x, 1e-6);
    EXPECT_NEAR(parsed[i].position.y, sites[i].position.y, 1e-6);
    EXPECT_EQ(parsed[i].channel, sites[i].channel);
    EXPECT_NEAR(parsed[i].backhaul.bps, sites[i].backhaul.bps, 1.0);
    EXPECT_EQ(parsed[i].internet_connected, sites[i].internet_connected);
  }
}

TEST(DeploymentIo, HeaderOptional) {
  std::istringstream with_header("x,y,channel,backhaul_bps,connected\n1,2,6,1e6,1\n");
  std::istringstream without("1,2,6,1e6,1\n");
  EXPECT_EQ(mob::read_sites_csv(with_header).size(), 1u);
  EXPECT_EQ(mob::read_sites_csv(without).size(), 1u);
}

TEST(DeploymentIo, MalformedRowsThrow) {
  std::istringstream missing_col("1,2,6,1e6\n");
  EXPECT_THROW(mob::read_sites_csv(missing_col), std::runtime_error);
  std::istringstream junk("a,b,c,d,e\n");
  EXPECT_THROW(mob::read_sites_csv(junk), std::runtime_error);
}

TEST(DeploymentIo, MissingFileThrows) {
  EXPECT_THROW(mob::read_sites_csv_file("/nonexistent/sites.csv"),
               std::runtime_error);
}

TEST(DeploymentIo, FileRoundTrip) {
  std::vector<mob::ApSite> sites(2);
  sites[0].position = {10, -5};
  sites[0].channel = 1;
  sites[0].backhaul = mbps(2);
  sites[1].position = {99, 30};
  sites[1].channel = 11;
  sites[1].backhaul = kbps(768);
  sites[1].internet_connected = false;
  const std::string path = ::testing::TempDir() + "/spider_sites.csv";
  ASSERT_TRUE(mob::write_sites_csv(path, sites));
  const auto parsed = mob::read_sites_csv_file(path);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_FALSE(parsed[1].internet_connected);
}

}  // namespace
}  // namespace spider
