#include <gtest/gtest.h>

#include <cmath>

#include "util/json.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace spider {
namespace {

TEST(Time, ConstructorsAndConversions) {
  EXPECT_EQ(usec(1500).count(), 1500);
  EXPECT_EQ(msec(3).count(), 3000);
  EXPECT_EQ(sec(2.5).count(), 2'500'000);
  EXPECT_DOUBLE_EQ(to_seconds(sec(4.25)), 4.25);
  EXPECT_DOUBLE_EQ(to_millis(msec(400)), 400.0);
}

TEST(Time, Formatting) {
  EXPECT_EQ(format_time(sec(3)), "3s");
  EXPECT_EQ(format_time(msec(250)), "250ms");
  EXPECT_EQ(format_time(usec(1500)), "1.500ms");
}

TEST(BitRate, BytesInDuration) {
  // 11 Mbps for one second = 1.375 MB.
  EXPECT_DOUBLE_EQ(kWirelessRate.bytes_in(sec(1)), 11e6 / 8.0);
  EXPECT_DOUBLE_EQ(mbps(1).bytes_in(msec(400)), 1e6 / 8.0 * 0.4);
}

TEST(BitRate, TimeForBytes) {
  EXPECT_EQ(mbps(8).time_for_bytes(1000), msec(1));
  EXPECT_EQ(bps(0).time_for_bytes(100), Time::max());
}

TEST(BitRate, UnitHelpers) {
  EXPECT_DOUBLE_EQ(mbps(11).mbps(), 11.0);
  EXPECT_DOUBLE_EQ(kbps(250).kbps(), 250.0);
  EXPECT_DOUBLE_EQ(to_kBps(kbps(800)), 100.0);
}

TEST(Position, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({-1, -1}, {-1, -1}), 0.0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= x == 0;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(4);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ParetoTailHeavierThanExponential) {
  Rng rng(5);
  OnlineStats pareto_stats;
  for (int i = 0; i < 5000; ++i) pareto_stats.add(rng.pareto(1.0, 1.5));
  // Pareto(1, 1.5) has mean alpha/(alpha-1) = 3.
  EXPECT_NEAR(pareto_stats.mean(), 3.0, 1.0);
  EXPECT_GE(pareto_stats.min(), 1.0);
}

TEST(Rng, ForkIndependence) {
  Rng root(7);
  Rng child = root.fork();
  // Forked stream differs from parent's continued stream.
  EXPECT_NE(child.uniform(0, 1), root.uniform(0, 1));
}

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, SinglePoint) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Cdf, FractionAtOrBelow) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(100.0), 1.0);
}

TEST(Cdf, Quantiles) {
  Cdf cdf({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(cdf.median(), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 20.0);
}

TEST(Cdf, IncrementalAddRequiresResort) {
  Cdf cdf;
  cdf.add(5.0);
  cdf.add(1.0);
  cdf.add(3.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
  cdf.add(0.0);  // out-of-order insert after a query
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
}

TEST(Cdf, Curve) {
  Cdf cdf({0.0, 1.0, 2.0, 3.0, 4.0});
  auto curve = cdf.curve(5);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 4.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);  // CDF is monotone
  }
}

TEST(Cdf, KsDistanceIdentical) {
  Cdf a({1, 2, 3, 4, 5}), b({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.0);
}

TEST(Cdf, KsDistanceDisjoint) {
  Cdf a({1, 2, 3}), b({10, 11, 12});
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
}

TEST(TextTable, AlignsAndFormats) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::num(1.5, 1)});
  t.add_row({"b", TextTable::percent(0.345)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("34.5%"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Json, ParsesScalarsObjectsAndArrays) {
  const auto doc = util::Json::parse(
      R"({"a":1.5,"b":"x\n","c":[true,false,null],"d":{"e":-2e3}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("a")->number_or(0), 1.5);
  EXPECT_EQ(doc->find("b")->string_value(), "x\n");
  ASSERT_TRUE(doc->find("c")->is_array());
  EXPECT_EQ(doc->find("c")->elements().size(), 3u);
  EXPECT_TRUE(doc->find("c")->elements()[2].is_null());
  EXPECT_EQ(doc->find("d")->find("e")->number_or(0), -2000.0);
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(util::Json::parse("{\"a\":", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(util::Json::parse("[1,2,]").has_value());
  EXPECT_FALSE(util::Json::parse("{} trailing").has_value());
  EXPECT_FALSE(util::Json::parse("nul").has_value());
  EXPECT_FALSE(util::Json::parse("\"unterminated").has_value());
}

TEST(Json, DepthLimitStopsAdversarialNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(util::Json::parse(deep).has_value());
}

TEST(Json, NumberFormattingRoundTripsExactly) {
  for (const double v : {0.0, 1.0, -17.0, 1.0 / 3.0, 3.14159265358979312,
                         1e-300, 9.007199254740991e15, 123456.789}) {
    const std::string text = util::json_number(v);
    const auto parsed = util::Json::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->number_or(-1e308), v) << text;
  }
  EXPECT_EQ(util::json_number(42.0), "42");  // integral => no exponent form
}

TEST(Json, EscapeCoversControlAndQuoteCharacters) {
  EXPECT_EQ(util::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(util::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(OnlineStats, FromMomentsMatchesAccumulation) {
  OnlineStats a;
  for (int i = 1; i <= 50; ++i) a.add(i * 0.75);
  const OnlineStats b = OnlineStats::from_moments(a.count(), a.mean(), a.m2(),
                                                  a.min(), a.max(), a.sum());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.m2(), b.m2());
  EXPECT_EQ(a.stddev(), b.stddev());
  EXPECT_EQ(OnlineStats::from_moments(0, 9, 9, 9, 9, 9).count(), 0u);
}

}  // namespace
}  // namespace spider
