#include <gtest/gtest.h>

#include <memory>

#include "core/adaptive.hpp"
#include "core/ap_selector.hpp"
#include "core/link_manager.hpp"
#include "core/op_mode.hpp"
#include "core/spider_driver.hpp"
#include "trace/testbed.hpp"

namespace spider::core {
namespace {

using trace::Testbed;
using trace::TestbedConfig;

// ---------------------------------------------------------------------------
// OperationMode

TEST(OperationMode, SingleChannel) {
  auto m = OperationMode::single(6);
  EXPECT_TRUE(m.single_channel());
  EXPECT_TRUE(m.includes(6));
  EXPECT_FALSE(m.includes(1));
  EXPECT_DOUBLE_EQ(m.fraction_of(6), 1.0);
}

TEST(OperationMode, EqualSplit) {
  auto m = OperationMode::equal_split({1, 6, 11}, msec(600));
  EXPECT_FALSE(m.single_channel());
  EXPECT_NEAR(m.fraction_of(1), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.fraction_of(11), 1.0 / 3.0, 1e-9);
  EXPECT_EQ(m.period, msec(600));
  EXPECT_EQ(m.channels(), (std::vector<wire::Channel>{1, 6, 11}));
}

TEST(OperationMode, WeightedNormalises) {
  auto m = OperationMode::weighted({{1, 2.0}, {11, 2.0}}, msec(200));
  EXPECT_DOUBLE_EQ(m.fraction_of(1), 0.5);
  EXPECT_DOUBLE_EQ(m.fraction_of(11), 0.5);
}

TEST(OperationMode, NormalizeDropsNonPositive) {
  OperationMode m;
  m.fractions = {{1, 0.5}, {6, 0.0}, {11, -0.3}};
  m.normalize();
  ASSERT_EQ(m.fractions.size(), 1u);
  EXPECT_DOUBLE_EQ(m.fraction_of(1), 1.0);
}

TEST(OperationMode, Describe) {
  auto m = OperationMode::weighted({{1, 0.5}, {11, 0.5}}, msec(200));
  const auto s = m.describe();
  EXPECT_NE(s.find("ch1:50%"), std::string::npos);
  EXPECT_NE(s.find("ch11:50%"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ApSelector

mac::ApObservation obs_of(std::uint64_t bssid, wire::Channel ch, double rssi) {
  mac::ApObservation o;
  o.bssid = wire::Bssid(bssid);
  o.channel = ch;
  o.rssi_dbm = rssi;
  return o;
}

TEST(ApSelector, UnknownApsBootstrapAtMax) {
  ApSelector sel(SelectorConfig{});
  EXPECT_DOUBLE_EQ(sel.utility(wire::Bssid(1)), 1.0);
}

TEST(ApSelector, OutcomesMoveUtility) {
  SelectorConfig cfg;
  cfg.recency_weight = 0.5;
  ApSelector sel(cfg);
  sel.record_outcome(wire::Bssid(1), JoinOutcome::kEndToEnd);
  EXPECT_DOUBLE_EQ(sel.utility(wire::Bssid(1)), 1.0);
  sel.record_outcome(wire::Bssid(1), JoinOutcome::kAssocFailed);
  EXPECT_DOUBLE_EQ(sel.utility(wire::Bssid(1)), 0.5);
  sel.record_outcome(wire::Bssid(1), JoinOutcome::kAssocFailed);
  EXPECT_DOUBLE_EQ(sel.utility(wire::Bssid(1)), 0.25);
}

TEST(ApSelector, RecentOutcomesWeighMore) {
  SelectorConfig cfg;
  cfg.recency_weight = 0.6;
  ApSelector sel(cfg);
  sel.record_outcome(wire::Bssid(1), JoinOutcome::kAssocFailed);  // u = 0
  sel.record_outcome(wire::Bssid(1), JoinOutcome::kEndToEnd);     // recent good
  EXPECT_GT(sel.utility(wire::Bssid(1)), 0.5);
}

TEST(ApSelector, SelectsHighestUtility) {
  SelectorConfig cfg;
  ApSelector sel(cfg);
  sel.record_outcome(wire::Bssid(1), JoinOutcome::kAssocFailed);
  const auto choice = sel.select(
      {obs_of(1, 6, -40), obs_of(2, 6, -70)}, {}, Time{0});
  ASSERT_TRUE(choice.has_value());
  // AP 2 is unknown (bootstrap 1.0) and beats AP 1's degraded utility even
  // though AP 1 is much stronger.
  EXPECT_EQ(choice->bssid, wire::Bssid(2));
}

TEST(ApSelector, RssiBreaksTies) {
  ApSelector sel(SelectorConfig{});
  const auto choice = sel.select(
      {obs_of(1, 6, -70), obs_of(2, 6, -40)}, {}, Time{0});
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->bssid, wire::Bssid(2));
}

TEST(ApSelector, SkipsInUse) {
  ApSelector sel(SelectorConfig{});
  std::unordered_set<wire::Bssid> used{wire::Bssid(2)};
  const auto choice = sel.select(
      {obs_of(1, 6, -70), obs_of(2, 6, -40)}, used, Time{0});
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->bssid, wire::Bssid(1));
}

TEST(ApSelector, BlacklistExpires) {
  SelectorConfig cfg;
  cfg.blacklist_duration = sec(10);
  ApSelector sel(cfg);
  sel.blacklist(wire::Bssid(1), Time{0});
  EXPECT_TRUE(sel.blacklisted(wire::Bssid(1), sec(5)));
  EXPECT_FALSE(sel.blacklisted(wire::Bssid(1), sec(10) + usec(1)));
  EXPECT_FALSE(sel.select({obs_of(1, 6, -40)}, {}, sec(5)).has_value());
  EXPECT_TRUE(sel.select({obs_of(1, 6, -40)}, {}, sec(15)).has_value());
}

// ---------------------------------------------------------------------------
// Full-stack fixtures

phy::PropagationConfig clean_air() {
  phy::PropagationConfig pc;
  pc.base_loss = 0.02;
  pc.good_radius_m = 90;
  pc.range_m = 100;
  return pc;
}

net::DhcpServerConfig fast_dhcp() {
  net::DhcpServerConfig d;
  d.offer_delay_min = msec(50);
  d.offer_delay_median = msec(150);
  d.offer_delay_max = msec(300);
  return d;
}

SpiderConfig small_spider(OperationMode mode, std::size_t ifaces = 3) {
  SpiderConfig c;
  c.num_interfaces = ifaces;
  c.mode = std::move(mode);
  c.dhcp = {.retx_timeout = msec(500), .max_sends = 4};
  return c;
}

struct SpiderStack {
  Testbed bed;
  std::unique_ptr<SpiderDriver> driver;
  std::unique_ptr<LinkManager> manager;

  explicit SpiderStack(SpiderConfig config, Position client_pos = {0, 0},
                       std::uint64_t seed = 3)
      : bed([&] {
          TestbedConfig tc;
          tc.seed = seed;
          tc.propagation = clean_air();
          return tc;
        }()) {
    driver = std::make_unique<SpiderDriver>(
        bed.sim, bed.medium, bed.next_client_mac_block(),
        [client_pos] { return client_pos; }, std::move(config));
    manager = std::make_unique<LinkManager>(*driver, bed.server_ip());
  }

  void start() {
    driver->start();
    manager->start();
  }

  Testbed::ApBundle& add_ap(wire::Channel ch, Position pos) {
    Testbed::ApSpec spec;
    spec.channel = ch;
    spec.position = pos;
    spec.dhcp = fast_dhcp();
    return bed.add_ap(spec);
  }
};

TEST(SpiderStack, JoinsSingleApEndToEnd) {
  SpiderStack s(small_spider(OperationMode::single(6)));
  auto& ap = s.add_ap(6, {20, 0});
  int ups = 0;
  s.manager->set_callbacks(
      {.on_link_up = [&](VirtualInterface&) { ++ups; }});
  s.start();
  s.bed.sim.run_until(sec(10));

  EXPECT_EQ(ups, 1);
  EXPECT_EQ(s.manager->links_up(), 1u);
  ASSERT_FALSE(s.manager->join_log().empty());
  const auto& rec = s.manager->join_log().front();
  EXPECT_EQ(rec.bssid, ap.ap->bssid());
  EXPECT_TRUE(rec.finished);
  EXPECT_EQ(rec.outcome, JoinOutcome::kEndToEnd);
  ASSERT_TRUE(rec.assoc_delay.has_value());
  ASSERT_TRUE(rec.dhcp_delay.has_value());
  ASSERT_TRUE(rec.e2e_delay.has_value());
  EXPECT_LT(*rec.assoc_delay, sec(1));
  EXPECT_GE(*rec.dhcp_delay, *rec.assoc_delay);
  EXPECT_GE(*rec.e2e_delay, *rec.dhcp_delay);

  // The interface got a routable address from the AP's subnet.
  const auto& vif = s.driver->iface(0);
  EXPECT_TRUE(vif.up());
  EXPECT_FALSE(vif.ip().is_null());
  EXPECT_TRUE(ap.network->dhcp().lookup_mac(vif.ip()).has_value());
}

TEST(SpiderStack, ConcurrentApsOnOneChannel) {
  // The paper's core claim: multiple APs on a single channel can be held
  // simultaneously with zero switching overhead.
  SpiderStack s(small_spider(OperationMode::single(6)));
  s.add_ap(6, {20, 0});
  s.add_ap(6, {-20, 0});
  s.add_ap(6, {0, 30});
  s.start();
  s.bed.sim.run_until(sec(15));
  EXPECT_EQ(s.manager->links_up(), 3u);
  EXPECT_EQ(s.driver->switches(), 0u);  // never left channel 6
}

TEST(SpiderStack, NoTwoInterfacesShareAnAp) {
  SpiderStack s(small_spider(OperationMode::single(6), /*ifaces=*/4));
  s.add_ap(6, {20, 0});
  s.add_ap(6, {-20, 0});
  s.start();
  s.bed.sim.run_until(sec(15));
  EXPECT_EQ(s.manager->links_up(), 2u);
  std::unordered_set<wire::Bssid> bound;
  for (std::size_t i = 0; i < s.driver->num_interfaces(); ++i) {
    const auto& vif = s.driver->iface(i);
    if (vif.up()) {
      EXPECT_TRUE(bound.insert(vif.bssid()).second)
          << "two interfaces bound to " << vif.bssid().to_string();
    }
  }
}

TEST(SpiderStack, MultiChannelModeJoinsAcrossChannels) {
  SpiderStack s(small_spider(
      OperationMode::equal_split({1, 6, 11}, msec(600)), /*ifaces=*/3));
  s.add_ap(1, {20, 0});
  s.add_ap(6, {-20, 0});
  s.add_ap(11, {0, 30});
  s.start();
  s.bed.sim.run_until(sec(30));
  EXPECT_EQ(s.manager->links_up(), 3u);
  EXPECT_GT(s.driver->switches(), 10u);
  EXPECT_GT(s.driver->switch_latency_stats().count(), 10u);
  // ~4 ms of reset plus PSM/wake overhead per switch.
  EXPECT_GT(s.driver->switch_latency_stats().mean(), 4.0);
  EXPECT_LT(s.driver->switch_latency_stats().mean(), 12.0);
}

TEST(SpiderStack, SchedulerIgnoresUnscheduledChannels) {
  SpiderStack s(small_spider(OperationMode::single(6)));
  s.add_ap(1, {20, 0});  // AP exists but on an unscheduled channel
  s.start();
  s.bed.sim.run_until(sec(10));
  EXPECT_EQ(s.manager->links_up(), 0u);
  EXPECT_TRUE(s.manager->join_log().empty());
}

TEST(SpiderStack, LeaseCacheSpeedsUpRejoin) {
  // Drive out of range so the link dies, then return: the rejoin must use
  // the cached lease (INIT-REBOOT), making its DHCP phase much faster.
  auto pos = std::make_shared<Position>(Position{20, 0});
  TestbedConfig tc;
  tc.seed = 3;
  tc.propagation = clean_air();
  Testbed bed(tc);
  Testbed::ApSpec spec;
  spec.channel = 6;
  spec.position = {0, 0};
  spec.dhcp = fast_dhcp();
  spec.dhcp.offer_delay_min = sec(1);  // make the slow path clearly slow
  spec.dhcp.offer_delay_median = msec(1500);
  spec.dhcp.offer_delay_max = sec(2);
  bed.add_ap(spec);

  SpiderConfig cfg = small_spider(OperationMode::single(6), 1);
  cfg.dhcp = {.retx_timeout = sec(1), .max_sends = 4};
  cfg.selector.blacklist_duration = msec(500);
  SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                      [pos] { return *pos; }, cfg);
  LinkManager manager(driver, bed.server_ip());
  driver.start();
  manager.start();
  bed.sim.run_until(sec(12));
  ASSERT_EQ(manager.links_up(), 1u);
  ASSERT_GE(manager.join_log().size(), 1u);
  const Time first_dhcp_phase = *manager.join_log()[0].dhcp_delay -
                                *manager.join_log()[0].assoc_delay;

  *pos = Position{5000, 0};
  bed.sim.run_until(sec(25));
  ASSERT_EQ(manager.links_up(), 0u);

  *pos = Position{20, 0};
  bed.sim.run_until(sec(45));
  ASSERT_EQ(manager.links_up(), 1u);

  const core::JoinRecord* rejoin = nullptr;
  for (const auto& rec : manager.join_log()) {
    if (rec.finished && rec.outcome == JoinOutcome::kEndToEnd &&
        rec.started > sec(20)) {
      rejoin = &rec;
    }
  }
  ASSERT_NE(rejoin, nullptr);
  EXPECT_TRUE(rejoin->used_lease_cache);
  const Time rejoin_dhcp_phase = *rejoin->dhcp_delay - *rejoin->assoc_delay;
  EXPECT_LT(rejoin_dhcp_phase, first_dhcp_phase);
}

TEST(SpiderStack, LinkDeathAfterApVanishes) {
  // Client position is mutable: after the join, teleport out of range and
  // verify the prober declares the link dead and the interface resets.
  auto pos = std::make_shared<Position>(Position{20, 0});
  TestbedConfig tc;
  tc.seed = 3;
  tc.propagation = clean_air();
  Testbed bed(tc);
  Testbed::ApSpec spec;
  spec.channel = 6;
  spec.position = {0, 0};
  spec.dhcp = fast_dhcp();
  bed.add_ap(spec);

  SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                      [pos] { return *pos; },
                      small_spider(OperationMode::single(6), 1));
  LinkManager manager(driver, bed.server_ip());
  int downs = 0;
  manager.set_callbacks(
      {.on_link_down = [&](VirtualInterface&) { ++downs; }});
  driver.start();
  manager.start();
  bed.sim.run_until(sec(10));
  ASSERT_EQ(manager.links_up(), 1u);

  *pos = Position{5000, 0};  // drove away
  bed.sim.run_until(sec(20));
  EXPECT_EQ(manager.links_up(), 0u);
  EXPECT_EQ(downs, 1);
  EXPECT_TRUE(driver.iface(0).idle());
}

TEST(SpiderStack, QueuedPacketsSurviveOffChannelPeriods) {
  // Two channels; the DHCP exchange on channel 11 must complete even
  // though the card spends half its time on channel 1.
  SpiderStack s(small_spider(
      OperationMode::weighted({{1, 0.5}, {11, 0.5}}, msec(400)), 2));
  s.add_ap(11, {20, 0});
  s.start();
  s.bed.sim.run_until(sec(20));
  EXPECT_EQ(s.manager->links_up(), 1u);
}

TEST(SpiderStack, SetModeMidRunRetunes) {
  SpiderStack s(small_spider(OperationMode::single(1)));
  s.add_ap(6, {20, 0});
  s.start();
  s.bed.sim.run_until(sec(5));
  EXPECT_EQ(s.manager->links_up(), 0u);

  s.driver->set_mode(OperationMode::single(6));
  s.bed.sim.run_until(sec(15));
  EXPECT_EQ(s.manager->links_up(), 1u);
}

TEST(SpiderStack, OpportunisticScanSeesNeighbours) {
  SpiderStack s(small_spider(OperationMode::single(6)));
  s.add_ap(6, {20, 0});
  s.add_ap(6, {40, 0});
  s.add_ap(1, {10, 0});  // invisible: never tuned to channel 1
  s.start();
  s.bed.sim.run_until(sec(3));
  EXPECT_EQ(s.driver->scanner().current_on(6).size(), 2u);
  EXPECT_EQ(s.driver->scanner().current_on(1).size(), 0u);
}

// ---------------------------------------------------------------------------
// Adaptive mode controller (§4.8 extension)

TEST(Adaptive, SwitchesModesWithSpeed) {
  SpiderStack s(small_spider(OperationMode::equal_split({1, 6, 11}, msec(600))));
  s.add_ap(6, {20, 0});
  double speed = 2.0;
  AdaptiveConfig ac;
  ac.min_mode_hold = sec(1);
  AdaptiveModeController ctl(*s.driver, [&] { return speed; }, ac);
  s.start();
  ctl.start();
  s.bed.sim.run_until(sec(5));
  EXPECT_FALSE(ctl.in_single_channel_mode());

  speed = 15.0;
  s.bed.sim.run_until(sec(10));
  EXPECT_TRUE(ctl.in_single_channel_mode());
  // The single channel chosen is the busiest one seen (channel 6).
  EXPECT_TRUE(s.driver->mode().includes(6));
  EXPECT_TRUE(s.driver->mode().single_channel());

  speed = 3.0;
  s.bed.sim.run_until(sec(20));
  EXPECT_FALSE(ctl.in_single_channel_mode());
  EXPECT_EQ(ctl.mode_switches(), 2u);
}

TEST(Adaptive, HysteresisPreventsFlapping) {
  SpiderStack s(small_spider(OperationMode::equal_split({1, 6, 11}, msec(600))));
  s.add_ap(6, {20, 0});
  double speed = 10.0;  // exactly at the threshold: inside the dead band
  AdaptiveConfig ac;
  ac.min_mode_hold = sec(1);
  AdaptiveModeController ctl(*s.driver, [&] { return speed; }, ac);
  s.start();
  ctl.start();
  s.bed.sim.run_until(sec(20));
  EXPECT_EQ(ctl.mode_switches(), 0u);
}

}  // namespace
}  // namespace spider::core
