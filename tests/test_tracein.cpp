// Tests for the trace-ingest layer (src/tracein) and the unified
// impairment / client-profile API built on it (src/trace). Three claims
// are pinned here:
//
//   1. Ingest is strict and debuggable: every malformed row fails with its
//      1-based line number and a field-level message.
//   2. Ingest -> serialize -> ingest is an exact round trip, and the
//      compiled fault schedule is a pure function of (timeline, options) —
//      the replay determinism contract.
//   3. Trace-driven, mixed-population runs are byte-identical across
//      worker counts (the 200-seed fuzz at the bottom), and a default
//      client profile is the exact identity on every driver config.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "phy/shard_fabric.hpp"
#include "trace/client_profile.hpp"
#include "trace/experiment.hpp"
#include "trace/impairment.hpp"
#include "trace/sweep.hpp"
#include "tracein/occupancy.hpp"
#include "tracein/replay.hpp"

using namespace spider;

namespace {

tracein::OccupancyTimeline ingest(const std::string& text) {
  std::istringstream is(text);
  return tracein::read_occupancy(is);
}

/// The exact what() of the ingest failure for `text` ("" when it parses).
std::string ingest_error(const std::string& text) {
  try {
    ingest(text);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

/// A trace file on disk for the duration of one test, written into the
/// test's working directory (the build tree) like test_serve's sockets.
class TempTrace {
 public:
  TempTrace(const std::string& name, const std::string& content)
      : path_(name) {
    std::ofstream f(path_, std::ios::trunc);
    f << content;
  }
  ~TempTrace() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// Ingest: formats, comments, line endings

TEST(OccupancyIngest, CsvSkipsCommentsHeaderAndCrlf) {
  const auto t = ingest(
      "# recorded by a monitor\r\n"
      "\r\n"
      "t_s,channel,occupancy\r\n"
      "0,1,0.25\r\n"
      "5,1,0.5\n"
      "5,6,0.75\n");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.samples[0].at, Time{0});
  EXPECT_EQ(t.samples[0].channel, 1);
  EXPECT_DOUBLE_EQ(t.samples[0].occupancy, 0.25);
  EXPECT_EQ(t.samples[1].at, sec(5));
  EXPECT_EQ(t.samples[2].channel, 6);
  EXPECT_EQ(t.channels(), (std::vector<wire::Channel>{1, 6}));
  EXPECT_EQ(t.span(), sec(5));
}

TEST(OccupancyIngest, JsonlIsAutoDetectedFromLeadingBrace) {
  const auto t = ingest(
      "# jsonl dump\n"
      "{\"t_s\":0,\"channel\":6,\"occupancy\":0.4}\n"
      "{\"t_s\":2.5,\"channel\":6,\"occupancy\":0.8}\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.samples[0].channel, 6);
  EXPECT_DOUBLE_EQ(t.samples[1].occupancy, 0.8);
  EXPECT_EQ(t.samples[1].at, msec(2500));
}

// ---------------------------------------------------------------------------
// Ingest: every malformed row names its 1-based line

TEST(OccupancyIngest, MalformedCsvRowsReportLineNumbers) {
  EXPECT_EQ(ingest_error("0,1\n"),
            "occupancy trace line 1: expected 3 columns "
            "(t_s,channel,occupancy), got 2");
  // The comment and header lines still count toward the line number.
  EXPECT_EQ(ingest_error("# hi\nt_s,channel,occupancy\n0,1,0.2\nnope,1,0.2\n"),
            "occupancy trace line 4: bad timestamp 'nope'");
  EXPECT_EQ(ingest_error("0,six,0.2\n"),
            "occupancy trace line 1: bad channel 'six'");
  EXPECT_EQ(ingest_error("0,1,busy\n"),
            "occupancy trace line 1: bad occupancy 'busy'");
  EXPECT_EQ(ingest_error("-1,1,0.2\n"),
            "occupancy trace line 1: bad timestamp -1 "
            "(must be finite seconds >= 0)");
  EXPECT_EQ(ingest_error("0,6.5,0.2\n"),
            "occupancy trace line 1: channel must be an integer");
  EXPECT_EQ(ingest_error("0,15,0.2\n"),
            "occupancy trace line 1: unknown channel 15 "
            "(2.4 GHz band is 1..14)");
  EXPECT_EQ(ingest_error("0,1,1.5\n"),
            "occupancy trace line 1: occupancy 1.5 outside [0, 1]");
  EXPECT_EQ(ingest_error("10,6,0.2\n5,6,0.2\n"),
            "occupancy trace line 2: out-of-order sample for channel 6 "
            "(t went backwards)");
  EXPECT_EQ(ingest_error("10,6,0.2\n10,6,0.3\n"),
            "occupancy trace line 2: duplicate timestamp for channel 6");
  // Interleaved channels are fine: monotonicity is per channel.
  EXPECT_EQ(ingest_error("10,6,0.2\n0,11,0.2\n"), "");
}

TEST(OccupancyIngest, MalformedJsonlRowsReportLineNumbers) {
  EXPECT_EQ(ingest_error("{\"channel\":6,\"occupancy\":0.4}\n"),
            "occupancy trace line 1: missing numeric field 't_s'");
  EXPECT_EQ(ingest_error("{\"t_s\":0,\"channel\":6}\n"),
            "occupancy trace line 1: missing numeric field 'occupancy'");
  EXPECT_EQ(
      ingest_error("{\"t_s\":0,\"channel\":6,\"occupancy\":0.4}\n"
                   "{\"t_s\":1,\"channel\":6,\"occupancy\":0.4,\"rssi\":-60}\n"),
      "occupancy trace line 2: unknown field 'rssi'");
  EXPECT_NE(ingest_error("{not json\n").find("occupancy trace line 1: bad JSON"),
            std::string::npos);
}

TEST(OccupancyIngest, MissingFileNamesThePath) {
  std::string error;
  EXPECT_FALSE(tracein::ingest_file("no/such/trace.csv", &error).has_value());
  EXPECT_EQ(error, "cannot open occupancy trace: no/such/trace.csv");
}

// ---------------------------------------------------------------------------
// Round trip: ingest -> serialize -> ingest is exact

TEST(OccupancyRoundTrip, SerializeReingestIsByteIdentical) {
  // Awkward values on purpose: non-representable fractions must survive the
  // %.17g print -> strtod -> llround(µs) path without walking a tick.
  const auto original = ingest(
      "0.1,1,0.3333333333333333\n"
      "1.7,1,0.125\n"
      "0.30000000000000004,6,1\n"
      "2.999999,6,0.05\n");
  const std::string csv = tracein::occupancy_to_csv(original);
  std::istringstream is(csv);
  const auto again = tracein::read_occupancy(is);
  EXPECT_TRUE(again == original);
  EXPECT_EQ(tracein::occupancy_to_csv(again), csv);  // byte-identical
}

TEST(OccupancyRoundTrip, FileWriteAndReingestMatch) {
  tracein::OccupancyTimeline t;
  t.samples.push_back({msec(100), 11, 0.5});
  t.samples.push_back({msec(350), 11, 0.25});
  const TempTrace file("test_tracein_roundtrip.csv",
                       tracein::occupancy_to_csv(t));
  std::string error;
  const auto back = tracein::ingest_file(file.path(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_TRUE(*back == t);
}

TEST(OccupancyTimeline, CheckCatchesHandBuiltMistakes) {
  tracein::OccupancyTimeline t;
  t.samples.push_back({sec(1), 6, 0.5});
  EXPECT_FALSE(t.check().has_value());

  t.samples.push_back({sec(1), 6, 0.5});
  EXPECT_EQ(t.check().value(),
            "sample 1: timestamps not strictly increasing on channel 6");
  t.samples[1] = {sec(2), 36, 0.5};
  EXPECT_EQ(t.check().value(), "sample 1: unknown channel 36");
  t.samples[1] = {sec(2), 6, 1.5};
  EXPECT_EQ(t.check().value(), "sample 1: occupancy outside [0, 1]");
  t.samples[1] = {Time{-1}, 6, 0.5};
  EXPECT_EQ(t.check().value(), "sample 1: negative timestamp");
}

// ---------------------------------------------------------------------------
// Replay compilation: windows, floor, mappings

TEST(ReplayCompile, InterferenceWindowsRunToTheChannelsNextSample) {
  // File order: ch6 @ 0s, ch6 @ 10s, ch1 @ 2s. The interior ch6 window
  // closes at the next ch6 row; tails use tail_window.
  const auto t = ingest("0,6,0.5\n2,1,0.4\n10,6,0.2\n");
  const fault::FaultSchedule schedule = tracein::compile_schedule(t, {});
  ASSERT_EQ(schedule.size(), 3u);
  const auto& specs = schedule.specs();

  EXPECT_EQ(specs[0].kind, fault::FaultKind::kChannelInterference);
  EXPECT_EQ(specs[0].at, Time{0});
  EXPECT_EQ(specs[0].duration, sec(10));  // closed by ch6 @ 10s
  EXPECT_EQ(specs[0].target, 6);
  EXPECT_DOUBLE_EQ(specs[0].intensity, 0.5);

  EXPECT_EQ(specs[1].target, 1);
  EXPECT_EQ(specs[1].duration, sec(1));  // tail: only ch1 sample
  EXPECT_DOUBLE_EQ(specs[1].intensity, 0.4);

  EXPECT_EQ(specs[2].target, 6);
  EXPECT_EQ(specs[2].at, sec(10));
  EXPECT_EQ(specs[2].duration, sec(1));  // tail of channel 6
}

TEST(ReplayCompile, MinOccupancyFloorDropsNoiseRows) {
  const auto t = ingest("0,6,0.04\n5,6,0.05\n10,6,0.2\n");
  const fault::FaultSchedule schedule = tracein::compile_schedule(t, {});
  ASSERT_EQ(schedule.size(), 2u);  // 0.04 < default floor 0.05; 0.05 stays
  EXPECT_EQ(schedule.specs()[0].at, sec(5));
  EXPECT_EQ(schedule.specs()[1].at, sec(10));
}

TEST(ReplayCompile, LossScaleCapsAtFullLoss) {
  tracein::ReplayOptions options;
  options.loss_scale = 3.0;
  const auto schedule =
      tracein::compile_schedule(ingest("0,6,0.5\n"), options);
  ASSERT_EQ(schedule.size(), 1u);
  EXPECT_DOUBLE_EQ(schedule.specs()[0].intensity, 1.0);
}

TEST(ReplayCompile, BurstMappingSizesDwellsToOccupancy) {
  tracein::ReplayOptions options;
  options.mapping = tracein::ReplayMapping::kBurst;
  const auto schedule =
      tracein::compile_schedule(ingest("0,6,0.25\n5,6,1\n"), options);
  ASSERT_EQ(schedule.size(), 2u);
  const auto& specs = schedule.specs();
  // E[busy] == occupancy: 0.25 of the default 200 ms dwell is bad time.
  EXPECT_EQ(specs[0].kind, fault::FaultKind::kChannelBurstLoss);
  EXPECT_EQ(specs[0].burst_mean, msec(50));
  EXPECT_EQ(specs[0].gap_mean, msec(150));
  // A fully busy window degenerates to constant interference: a zero gap
  // dwell would spin the injector's state machine.
  EXPECT_EQ(specs[1].kind, fault::FaultKind::kChannelInterference);
}

TEST(ReplayOptions, CheckNamesTheBadKnob) {
  tracein::ReplayOptions o;
  EXPECT_FALSE(o.check().has_value());
  o.loss_scale = -1.0;
  EXPECT_EQ(o.check().value(), "loss_scale: must be finite and >= 0");
  o = {};
  o.min_occupancy = 2.0;
  EXPECT_EQ(o.check().value(), "min_occupancy: must lie in [0, 1]");
  o = {};
  o.tail_window = Time{0};
  EXPECT_EQ(o.check().value(), "tail_window: must be positive");
  o = {};
  o.burst_dwell = Time{0};
  EXPECT_EQ(o.check().value(), "burst_dwell: must be positive");
}

TEST(ReplayOptions, MappingNamesRoundTrip) {
  tracein::ReplayMapping m;
  ASSERT_TRUE(tracein::replay_mapping_from_string("interference", &m));
  EXPECT_EQ(m, tracein::ReplayMapping::kInterference);
  ASSERT_TRUE(tracein::replay_mapping_from_string("burst", &m));
  EXPECT_EQ(m, tracein::ReplayMapping::kBurst);
  EXPECT_FALSE(tracein::replay_mapping_from_string("random", &m));
  EXPECT_STREQ(tracein::to_string(tracein::ReplayMapping::kBurst), "burst");
}

// ---------------------------------------------------------------------------
// ImpairmentSource: the one declarative impairment input

TEST(ImpairmentSource, DefaultIsSyntheticEmptyAndNone) {
  trace::ImpairmentSource source;
  EXPECT_EQ(source.kind, trace::ImpairmentSource::Kind::kSynthetic);
  EXPECT_TRUE(source.none());
  EXPECT_STREQ(source.field_name(), "impairments.schedule");
  EXPECT_STREQ(source.kind_name(), "synthetic");

  // The builder ergonomics the old `faults` field had still work.
  source.schedule.ap_blackout(sec(20), sec(5), 0);
  EXPECT_FALSE(source.none());
  std::string error;
  const auto resolved = source.resolve(&error);
  ASSERT_TRUE(resolved.has_value()) << error;
  ASSERT_EQ(resolved->size(), 1u);
  EXPECT_EQ(resolved->specs()[0].kind, fault::FaultKind::kApBlackout);
}

TEST(ImpairmentSource, TraceFileResolvesByIngestingAndCompiling) {
  const TempTrace file("test_tracein_source.csv", "0,6,0.5\n5,6,0.2\n");
  const auto source = trace::ImpairmentSource::trace_file(file.path());
  EXPECT_FALSE(source.none());  // a file is never knowably empty
  EXPECT_STREQ(source.field_name(), "impairments.trace_path");
  EXPECT_STREQ(source.kind_name(), "trace-file");

  std::string error;
  const auto resolved = source.resolve(&error);
  ASSERT_TRUE(resolved.has_value()) << error;
  const auto expected =
      tracein::compile_schedule(ingest("0,6,0.5\n5,6,0.2\n"), {});
  ASSERT_EQ(resolved->size(), expected.size());
  for (std::size_t i = 0; i < resolved->size(); ++i) {
    EXPECT_EQ(resolved->specs()[i].at, expected.specs()[i].at);
    EXPECT_EQ(resolved->specs()[i].duration, expected.specs()[i].duration);
    EXPECT_DOUBLE_EQ(resolved->specs()[i].intensity,
                     expected.specs()[i].intensity);
  }
}

TEST(ImpairmentSource, TraceFileFailuresCarryTheIngestMessage) {
  std::string error;
  EXPECT_FALSE(
      trace::ImpairmentSource::trace_file("").resolve(&error).has_value());
  EXPECT_EQ(error, "trace file path is empty");

  const TempTrace bad("test_tracein_bad.csv", "0,6,0.5\n0,6,0.6\n");
  EXPECT_FALSE(trace::ImpairmentSource::trace_file(bad.path())
                   .resolve(&error)
                   .has_value());
  EXPECT_EQ(error, "occupancy trace line 2: duplicate timestamp for channel 6");
}

TEST(ImpairmentSource, InlineTimelineValidatesBeforeCompiling) {
  tracein::OccupancyTimeline t;
  t.samples.push_back({sec(1), 6, 0.5});
  auto source = trace::ImpairmentSource::inline_timeline(t);
  EXPECT_STREQ(source.field_name(), "impairments.timeline");
  EXPECT_STREQ(source.kind_name(), "inline-timeline");
  std::string error;
  ASSERT_TRUE(source.resolve(&error).has_value()) << error;

  source.timeline.samples.push_back({sec(2), 6, 2.0});
  EXPECT_FALSE(source.resolve(&error).has_value());
  EXPECT_EQ(error, "sample 1: occupancy outside [0, 1]");

  source.replay.loss_scale = -1.0;
  EXPECT_FALSE(source.resolve(&error).has_value());
  EXPECT_EQ(error, "loss_scale: must be finite and >= 0");
}

TEST(ImpairmentSource, KindNamesRoundTrip) {
  trace::ImpairmentSource::Kind kind;
  ASSERT_TRUE(trace::impairment_kind_from_string("synthetic", &kind));
  EXPECT_EQ(kind, trace::ImpairmentSource::Kind::kSynthetic);
  ASSERT_TRUE(trace::impairment_kind_from_string("trace-file", &kind));
  EXPECT_EQ(kind, trace::ImpairmentSource::Kind::kTraceFile);
  ASSERT_TRUE(trace::impairment_kind_from_string("inline-timeline", &kind));
  EXPECT_EQ(kind, trace::ImpairmentSource::Kind::kInlineTimeline);
  EXPECT_FALSE(trace::impairment_kind_from_string("trace", &kind));
}

TEST(FaultKindNames, RoundTripThroughWireNames) {
  using fault::FaultKind;
  for (FaultKind kind :
       {FaultKind::kChannelBurstLoss, FaultKind::kChannelInterference,
        FaultKind::kApBlackout, FaultKind::kApReboot,
        FaultKind::kBeaconSilence, FaultKind::kPsmFlush,
        FaultKind::kDhcpStall, FaultKind::kDhcpNakStorm,
        FaultKind::kDhcpPoolReset, FaultKind::kGatewayFlap}) {
    FaultKind back;
    ASSERT_TRUE(fault::fault_kind_from_string(fault::to_string(kind), &back))
        << fault::to_string(kind);
    EXPECT_EQ(back, kind);
  }
  fault::FaultKind kind;
  EXPECT_FALSE(fault::fault_kind_from_string("ap_blackout", &kind));
}

// ---------------------------------------------------------------------------
// ClientProfile: the default is the exact identity; presets move real knobs

TEST(ClientProfile, DefaultApplyIsExactIdentity) {
  const trace::ClientProfile identity;
  EXPECT_TRUE(identity.is_default());

  core::SpiderConfig spider_before;
  core::SpiderConfig spider_after = spider_before;
  identity.apply(spider_after);
  EXPECT_EQ(spider_after.scanner.probe_interval,
            spider_before.scanner.probe_interval);
  EXPECT_EQ(spider_after.scanner.expiry, spider_before.scanner.expiry);
  EXPECT_EQ(spider_after.selector.tie_margin, spider_before.selector.tie_margin);
  EXPECT_EQ(spider_after.evaluate_interval, spider_before.evaluate_interval);
  EXPECT_EQ(spider_after.psm_retrieval, spider_before.psm_retrieval);
  EXPECT_EQ(spider_after.mode.period, spider_before.mode.period);

  base::StockConfig stock_before;
  base::StockConfig stock_after = stock_before;
  identity.apply(stock_after);
  EXPECT_EQ(stock_after.rescan_backoff, stock_before.rescan_backoff);
  EXPECT_EQ(stock_after.stack.ping.fail_threshold,
            stock_before.stack.ping.fail_threshold);
}

TEST(ClientProfile, PresetNamesRoundTrip) {
  using trace::ClientProfileKind;
  for (ClientProfileKind kind :
       {ClientProfileKind::kDefault, ClientProfileKind::kAggressiveScanner,
        ClientProfileKind::kStickyDevice, ClientProfileKind::kPsmPhone}) {
    ClientProfileKind back;
    ASSERT_TRUE(
        trace::client_profile_kind_from_string(trace::to_string(kind), &back));
    EXPECT_EQ(back, kind);
  }
  trace::ClientProfileKind kind;
  EXPECT_FALSE(trace::client_profile_kind_from_string("gamer", &kind));
  EXPECT_TRUE(
      trace::ClientProfile::preset(trace::ClientProfileKind::kDefault)
          .is_default());
}

TEST(ClientProfile, AggressiveScannerProbesFaster) {
  const auto p =
      trace::ClientProfile::preset(trace::ClientProfileKind::kAggressiveScanner);
  EXPECT_DOUBLE_EQ(p.scan_aggressiveness, 4.0);

  core::SpiderConfig spider;
  const Time before = spider.scanner.probe_interval;
  p.apply(spider);
  EXPECT_EQ(spider.scanner.probe_interval, Time{before.count() / 4});

  base::StockConfig stock;
  const Time backoff = stock.rescan_backoff;
  p.apply(stock);
  EXPECT_EQ(stock.rescan_backoff, Time{backoff.count() / 4});
}

TEST(ClientProfile, StickyDeviceClingsToItsAp) {
  const auto p =
      trace::ClientProfile::preset(trace::ClientProfileKind::kStickyDevice);
  core::SpiderConfig spider;
  const Time evaluate = spider.evaluate_interval;
  const double margin = spider.selector.tie_margin;
  p.apply(spider);
  EXPECT_EQ(spider.evaluate_interval, Time{evaluate.count() * 4});
  EXPECT_LE(spider.selector.tie_margin, 1.0);  // widened but clamped
  EXPECT_GE(spider.selector.tie_margin, margin);

  base::StockConfig stock;
  const int threshold = stock.stack.ping.fail_threshold;
  p.apply(stock);
  EXPECT_EQ(stock.stack.ping.fail_threshold, threshold * 4);
}

TEST(ClientProfile, PsmPhoneDutyCyclesTheSchedule) {
  const auto p =
      trace::ClientProfile::preset(trace::ClientProfileKind::kPsmPhone);
  core::SpiderConfig spider;
  const Time period = spider.mode.period;
  p.apply(spider);
  EXPECT_EQ(spider.psm_retrieval, core::PsmRetrieval::kPsPoll);
  EXPECT_EQ(spider.mode.period, Time{period.count() + period.count() / 2});
}

TEST(ClientMix, ExpandsMixOrderMajorWithFallback) {
  trace::ClientMix mix;
  mix.push_back({trace::ClientProfile::preset(
                     trace::ClientProfileKind::kAggressiveScanner),
                 2});
  mix.push_back(
      {trace::ClientProfile::preset(trace::ClientProfileKind::kPsmPhone), 1});
  const auto profiles = trace::expand_client_mix(mix, /*fallback_clients=*/7);
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].kind, trace::ClientProfileKind::kAggressiveScanner);
  EXPECT_EQ(profiles[1].kind, trace::ClientProfileKind::kAggressiveScanner);
  EXPECT_EQ(profiles[2].kind, trace::ClientProfileKind::kPsmPhone);

  const auto fallback = trace::expand_client_mix({}, 3);
  ASSERT_EQ(fallback.size(), 3u);
  EXPECT_TRUE(fallback[0].is_default());

  trace::ScenarioConfig config;
  config.clients = 5;
  EXPECT_EQ(config.resolved_clients(), 5);
  config.client_mix = mix;
  EXPECT_EQ(config.resolved_clients(), 3);
}

// ---------------------------------------------------------------------------
// validate(): every new knob fails against its own field name

TEST(Validate, ClientMixIssuesNameTheSlice) {
  trace::ScenarioConfig config;
  config.client_mix.push_back({{}, 0});
  trace::ClientMixEntry bad;
  bad.count = 1;
  bad.profile.scan_aggressiveness = 0.0;
  bad.profile.psm_duty = 1.5;
  config.client_mix.push_back(bad);

  const auto issues = config.validate();
  auto has = [&](const std::string& field) {
    for (const auto& issue : issues) {
      if (issue.field == field) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("client_mix[0].count"));
  EXPECT_TRUE(has("client_mix[1].scan_aggressiveness"));
  EXPECT_TRUE(has("client_mix[1].psm_duty"));
  EXPECT_FALSE(has("clients"));  // the mix replaces the clients check
}

TEST(Validate, TraceImpairmentFailuresNameTheSourceField) {
  trace::ScenarioConfig config;
  config.impairments =
      trace::ImpairmentSource::trace_file("test_tracein_does_not_exist.csv");
  {
    const auto issues = config.validate();
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].field, "impairments.trace_path");
    EXPECT_NE(issues[0].message.find("cannot open"), std::string::npos);
  }

  const TempTrace bad("test_tracein_validate.csv", "0,6,0.5\nx,6,0.5\n");
  config.impairments = trace::ImpairmentSource::trace_file(bad.path());
  {
    const auto issues = config.validate();
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].field, "impairments.trace_path");
    EXPECT_NE(issues[0].message.find("line 2"), std::string::npos);
  }
}

// Formerly the shards>1 rejection test: schedules now compile into
// per-shard sub-schedules at partition time, so this pins the acceptance
// matrix — every impairment kind is valid at every width — while keeping
// the field-naming contract for the error paths that remain (a broken
// trace is still reported against its own source field, at any width).
TEST(Validate, ShardAcceptanceMatrixAndSourceFieldNaming) {
  const TempTrace file("test_tracein_shards.csv", "0,6,0.5\n");
  tracein::OccupancyTimeline t;
  t.samples.push_back({sec(1), 6, 0.5});

  for (int shards : {0, 1, 2, 4, phy::kMaxShards}) {
    trace::ScenarioConfig config;
    config.shards = shards;

    config.impairments = trace::ImpairmentSource::trace_file(file.path());
    EXPECT_TRUE(config.validate().empty()) << "trace-file, shards " << shards;

    config.impairments = trace::ImpairmentSource::inline_timeline(t);
    EXPECT_TRUE(config.validate().empty())
        << "inline-timeline, shards " << shards;

    config.impairments = trace::ImpairmentSource();
    config.impairments.schedule.ap_blackout(sec(10), sec(1), 0);
    EXPECT_TRUE(config.validate().empty()) << "synthetic, shards " << shards;
  }

  // Error paths still name the offending source field, sharded or not.
  trace::ScenarioConfig config;
  config.shards = 4;
  config.impairments =
      trace::ImpairmentSource::trace_file("test_tracein_does_not_exist.csv");
  {
    const auto issues = config.validate();
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].field, "impairments.trace_path");
    EXPECT_NE(issues[0].message.find("cannot open"), std::string::npos);
  }
}

// Trace-backed impairments run end-to-end under the sharded engine: both
// trace-backed kinds execute at shards > 1, reproduce run-to-run, and
// count exactly the faults the serial engine counts for the same source
// (onset accounting designates one shard per spec, so the sums match).
TEST(TraceReplay, TraceBackedImpairmentsRunSharded) {
  const TempTrace file("test_tracein_shard_e2e.csv",
                       "10,6,0.85\n25,6,0.1\n30,1,0.9\n40,1,0.2\n");
  tracein::OccupancyTimeline t;
  t.samples.push_back({sec(12), 6, 0.95});
  t.samples.push_back({sec(30), 6, 0.05});

  for (int source = 0; source < 2; ++source) {
    trace::ScenarioConfig cfg;
    cfg.seed = 77;
    cfg.duration = sec(50);
    cfg.deployment.road_length_m = 400;
    cfg.deployment.aps_per_km = 10;
    cfg.spider.mode = core::OperationMode::equal_split({1, 6, 11}, msec(600));
    cfg.impairments = source == 0
                          ? trace::ImpairmentSource::trace_file(file.path())
                          : trace::ImpairmentSource::inline_timeline(t);

    cfg.shards = 1;
    const trace::ScenarioResult serial = trace::run_scenario(cfg);
    EXPECT_TRUE(serial.completed);
    EXPECT_GT(serial.faults_injected, 0u);

    cfg.shards = 2;
    const trace::ScenarioResult a = trace::run_scenario(cfg);
    const trace::ScenarioResult b = trace::run_scenario(cfg);
    EXPECT_TRUE(a.completed) << "source " << source;
    EXPECT_EQ(a.faults_injected, serial.faults_injected)
        << "source " << source;
    EXPECT_EQ(a.total_bytes, b.total_bytes) << "source " << source;
    EXPECT_EQ(a.outages, b.outages) << "source " << source;
    EXPECT_EQ(a.recoveries, b.recoveries) << "source " << source;
    EXPECT_EQ(a.recovery_times.samples(), b.recovery_times.samples())
        << "source " << source;
  }
}

// ---------------------------------------------------------------------------
// Determinism fuzz: 200 seeds, trace-driven + mixed populations, jobs {1,8}

// Same exact-digest idea as test_sweep.cpp: everything deterministic in a
// result, wall-clock excluded.
std::string digest(const trace::ScenarioResult& r) {
  std::ostringstream out;
  char buf[64];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g,", v);
    out << buf;
  };
  num(r.avg_throughput_kBps);
  num(r.connectivity);
  out << r.total_bytes << ',' << r.switches << ',' << r.joins_attempted << ','
      << r.e2e_succeeded << ',';
  out << r.faults_injected << ',' << r.outages << ',' << r.recoveries << ',';
  for (double s : r.recovery_times.samples()) num(s);
  out << r.perf.events_popped << ',' << r.perf.events_cancelled;
  return out.str();
}

std::string fuzz_trace_csv() {
  tracein::OccupancyTimeline t;
  for (int w = 0; w < 5; ++w) {
    t.samples.push_back({sec(5 + w * 10), 1, 0.15 + 0.05 * w});
    t.samples.push_back({sec(5 + w * 10), 6, w == 2 ? 0.9 : 0.08});
    t.samples.push_back({sec(5 + w * 10), 11, 0.3});
  }
  return tracein::occupancy_to_csv(t);
}

std::vector<trace::ScenarioConfig> fuzz_configs(const std::string& trace_path) {
  std::vector<trace::ScenarioConfig> configs;
  for (int i = 0; i < 200; ++i) {
    trace::ScenarioConfig cfg;
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    cfg.duration = sec(60);
    cfg.deployment.road_length_m = 400;
    cfg.deployment.aps_per_km = 10;
    cfg.spider.mode = core::OperationMode::equal_split({1, 6, 11}, msec(600));
    cfg.driver = (i % 3 == 0)   ? trace::DriverKind::kStock
                 : (i % 3 == 1) ? trace::DriverKind::kFatVap
                                : trace::DriverKind::kSpider;
    cfg.impairments = trace::ImpairmentSource::trace_file(trace_path);
    if (i % 2 == 1) {
      cfg.client_mix.push_back(
          {trace::ClientProfile::preset(
               trace::ClientProfileKind::kAggressiveScanner),
           1});
      cfg.client_mix.push_back(
          {trace::ClientProfile::preset(trace::ClientProfileKind::kStickyDevice),
           1});
    }
    configs.push_back(cfg);
  }
  return configs;
}

TEST(TraceReplayDeterminism, TwoHundredSeedsMatchAcrossJobsAndReingest) {
  const TempTrace file("test_tracein_fuzz.csv", fuzz_trace_csv());
  const auto configs = fuzz_configs(file.path());

  const auto serial = trace::SweepRunner({.jobs = 1}).run(configs);
  ASSERT_EQ(serial.size(), configs.size());
  std::vector<std::string> digests;
  digests.reserve(serial.size());
  for (const auto& result : serial) digests.push_back(digest(result));

  const auto parallel = trace::SweepRunner({.jobs = 8}).run(configs);
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    ASSERT_EQ(digest(parallel[i]), digests[i]) << "jobs=8 seed " << i;
  }

  // Re-ingest determinism end to end: serialize the ingested timeline to a
  // second file and replay every seed from that copy — every digest must
  // still match byte for byte.
  std::string error;
  const auto ingested = tracein::ingest_file(file.path(), &error);
  ASSERT_TRUE(ingested.has_value()) << error;
  const TempTrace copy("test_tracein_fuzz_reingest.csv",
                       tracein::occupancy_to_csv(*ingested));
  auto reconfigs = configs;
  for (auto& cfg : reconfigs) {
    cfg.impairments = trace::ImpairmentSource::trace_file(copy.path());
  }
  const auto replayed = trace::SweepRunner({.jobs = 8}).run(reconfigs);
  ASSERT_EQ(replayed.size(), configs.size());
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    ASSERT_EQ(digest(replayed[i]), digests[i]) << "re-ingest seed " << i;
  }
}

}  // namespace
