#include <gtest/gtest.h>

#include "analysis/join_model.hpp"
#include "analysis/schedule_synthesis.hpp"
#include "analysis/selection_opt.hpp"
#include "analysis/throughput_opt.hpp"
#include "util/random.hpp"

namespace spider::model {
namespace {

JoinModelParams fig2_params(double beta_max = 5.0) {
  JoinModelParams p;
  p.D = 0.5;
  p.t = 4.0;
  p.beta_min = 0.5;
  p.beta_max = beta_max;
  p.w = 0.007;
  p.c = 0.1;
  p.h = 0.1;
  return p;
}

TEST(JoinModel, ZeroFractionNeverJoins) {
  EXPECT_DOUBLE_EQ(p_join_at(fig2_params(), 0.0), 0.0);
}

TEST(JoinModel, FullTimeNearlyAlwaysJoins) {
  // βmax = 5 s with t = 4 s in range: even at fi = 1, some joins respond
  // too late, but the probability is high.
  EXPECT_GT(p_join_at(fig2_params(5.0), 1.0), 0.8);
}

TEST(JoinModel, MonotoneInFraction) {
  const auto p = fig2_params();
  double prev = -1.0;
  for (double fi = 0.0; fi <= 1.0; fi += 0.1) {
    const double v = p_join_at(p, fi);
    EXPECT_GE(v, prev - 1e-9) << "fi=" << fi;
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

TEST(JoinModel, LargerBetaMaxLowersSuccess) {
  // Fig. 3's message: slow APs are much harder to join on a fraction.
  for (double fi : {0.10, 0.25, 0.40, 0.50}) {
    const double fast = p_join_at(fig2_params(2.0), fi);
    const double slow = p_join_at(fig2_params(10.0), fi);
    EXPECT_GT(fast, slow) << "fi=" << fi;
  }
}

TEST(JoinModel, MoreTimeInRangeHelps) {
  auto p = fig2_params();
  p.fi = 0.3;
  p.t = 2.0;
  const double short_stay = p_join(p);
  p.t = 8.0;
  const double long_stay = p_join(p);
  EXPECT_GT(long_stay, short_stay);
}

TEST(JoinModel, HigherLossLowersSuccess) {
  auto p = fig2_params();
  p.fi = 0.4;
  p.h = 0.0;
  const double lossless = p_join(p);
  p.h = 0.4;
  const double lossy = p_join(p);
  EXPECT_GT(lossless, lossy);
}

TEST(JoinModel, SegmentsPerRound) {
  auto p = fig2_params();
  p.fi = 0.5;  // 250 ms on channel, minus 7 ms switch, over 100 ms spacing
  EXPECT_EQ(segments_per_round(p), 3);
  p.fi = 0.01;  // 5 ms window < switch overhead: no request fits
  EXPECT_EQ(segments_per_round(p), 0);
  EXPECT_DOUBLE_EQ(p_join(p), 0.0);
}

TEST(JoinModel, QSegmentBounds) {
  const auto p = fig2_params();
  for (int m = 1; m <= 4; ++m) {
    for (int n = m; n <= 8; ++n) {
      for (int k = 1; k <= 3; ++k) {
        const double q = q_segment(p, m, n, k);
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 1.0);
      }
    }
  }
}

TEST(JoinModel, SimulationMatchesClosedForm) {
  // The Fig. 2 validation: Monte-Carlo within a few points of Eq. 7.
  Rng rng(1234);
  for (double beta_max : {5.0, 10.0}) {
    for (double fi : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      auto p = fig2_params(beta_max);
      p.fi = fi;
      const double analytic = p_join(p);
      const double simulated = simulate_join(p, 4000, rng);
      EXPECT_NEAR(simulated, analytic, 0.06)
          << "beta_max=" << beta_max << " fi=" << fi;
    }
  }
}

// ---------------------------------------------------------------------------
// Throughput optimisation (Eqs. 8-10)

TEST(ThroughputOpt, ExpectedJoinFractionMonotone) {
  JoinModelParams p = fig2_params(10.0);
  const double slow = expected_join_fraction(p, 0.1, 20.0);
  const double fast = expected_join_fraction(p, 0.9, 20.0);
  EXPECT_GT(slow, fast);
  EXPECT_GE(slow, 0.0);
  EXPECT_LE(slow, 1.0);
}

TEST(ThroughputOpt, SingleJoinedChannelTakesItsCap) {
  OptProblem prob;
  prob.T = 20.0;
  prob.channels = {ChannelOffer{.joined = bps(0.6 * prob.wireless.bps),
                                .available = BitRate{}}};
  const auto sol = maximize_throughput(prob);
  EXPECT_NEAR(sol.fractions[0], 0.6, 0.011);
  EXPECT_NEAR(sol.total.bps, 0.6 * prob.wireless.bps, 0.02 * prob.wireless.bps);
}

TEST(ThroughputOpt, FastNodePrefersJoinedChannel) {
  // At 20 m/s (T = 10 s) the joinable channel is barely worth anything.
  auto points = fig4_sweep(0.75, 0.25, {20.0});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_GT(points[0].ch1.bps, 4.0 * points[0].ch2.bps);
}

TEST(ThroughputOpt, SlowNodeUsesBothChannels) {
  auto points = fig4_sweep(0.25, 0.75, {2.5});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_GT(points[0].ch2.bps, 0.0);
  // With 75% of bandwidth on the joinable channel, a slow node extracts
  // more there than on the joined channel's 25%.
  EXPECT_GT(points[0].ch2.bps, points[0].ch1.bps);
}

TEST(ThroughputOpt, JoinableChannelValueDecaysWithSpeed) {
  // The Fig. 4 shape: as speed rises (time in range shrinks), the optimal
  // share of the joinable channel collapses toward the single-channel
  // regime. (The paper's exact E[X] definition is ambiguous — see
  // DESIGN.md — so we assert the shape, not the absolute crossover.)
  auto points = fig4_sweep(0.50, 0.50, {2.5, 5.0, 10.0, 20.0});
  EXPECT_GT(points.front().ch2.bps, points.back().ch2.bps);
  EXPECT_LT(points.back().ch2.bps, 0.6 * points.front().ch2.bps);
  // The already-joined channel keeps its full cap at every speed.
  for (const auto& p : points) {
    EXPECT_NEAR(p.ch1.bps, 0.50 * 11e6, 0.03 * 11e6);
  }
}

TEST(ThroughputOpt, RespectsPeriodBudget) {
  OptProblem prob;
  prob.T = 40.0;
  prob.channels = {
      ChannelOffer{.joined = bps(11e6), .available = BitRate{}},
      ChannelOffer{.joined = bps(11e6), .available = BitRate{}},
  };
  const auto sol = maximize_throughput(prob);
  const double total_fraction = sol.fractions[0] + sol.fractions[1];
  EXPECT_LE(total_fraction, 1.0);
  EXPECT_GT(total_fraction, 0.9);  // overhead is small but non-zero
}

// ---------------------------------------------------------------------------
// Appendix A: AP-subset selection

std::vector<ApCandidate> random_candidates(std::size_t n, Rng& rng) {
  std::vector<ApCandidate> v;
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(ApCandidate{.time_in_range = rng.uniform(2.0, 20.0),
                            .bandwidth = rng.uniform(0.5, 5.0),
                            .overhead = rng.uniform(0.5, 3.0)});
  }
  return v;
}

TEST(Selection, ExhaustiveFindsKnownOptimum) {
  std::vector<ApCandidate> cands = {
      {.time_in_range = 10, .bandwidth = 1.0, .overhead = 1},   // v=10 c=11
      {.time_in_range = 5, .bandwidth = 3.0, .overhead = 1},    // v=15 c=6
      {.time_in_range = 8, .bandwidth = 2.0, .overhead = 2},    // v=16 c=10
  };
  const auto best = select_exhaustive(cands, 16.0);
  // Best subset within budget 16: {1, 2} value 31, cost 16.
  EXPECT_DOUBLE_EQ(best.value, 31.0);
  EXPECT_EQ(best.chosen, (std::vector<std::size_t>{1, 2}));
}

TEST(Selection, DpMatchesExhaustive) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    auto cands = random_candidates(10, rng);
    const double budget = 25.0;
    const auto exact = select_exhaustive(cands, budget);
    const auto dp = select_knapsack_dp(cands, budget, 0.01);
    EXPECT_NEAR(dp.value, exact.value, exact.value * 0.02 + 1e-9)
        << "trial " << trial;
    EXPECT_LE(dp.cost, budget + 0.1);
  }
}

TEST(Selection, GreedyIsFeasibleAndDecent) {
  Rng rng(78);
  double ratio_sum = 0.0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    auto cands = random_candidates(12, rng);
    const double budget = 30.0;
    const auto exact = select_exhaustive(cands, budget);
    const auto greedy = select_greedy(cands, budget);
    EXPECT_LE(greedy.cost, budget);
    EXPECT_LE(greedy.value, exact.value + 1e-9);
    if (exact.value > 0) ratio_sum += greedy.value / exact.value;
  }
  // Greedy should capture most of the optimum on average.
  EXPECT_GT(ratio_sum / trials, 0.85);
}

TEST(Selection, ExhaustiveWorkGrowsExponentially) {
  Rng rng(79);
  auto c10 = random_candidates(10, rng);
  auto c16 = random_candidates(16, rng);
  const auto r10 = select_exhaustive(c10, 20.0);
  const auto r16 = select_exhaustive(c16, 20.0);
  EXPECT_EQ(r10.nodes_explored, 1024u);
  EXPECT_EQ(r16.nodes_explored, 65536u);
  const auto g16 = select_greedy(c16, 20.0);
  EXPECT_LE(g16.nodes_explored, 16u);
}

TEST(Selection, EmptyCandidates) {
  const auto r = select_exhaustive({}, 10.0);
  EXPECT_TRUE(r.chosen.empty());
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  const auto g = select_greedy({}, 10.0);
  EXPECT_TRUE(g.chosen.empty());
}

TEST(Selection, ZeroBudgetSelectsNothing) {
  Rng rng(80);
  auto cands = random_candidates(5, rng);
  EXPECT_TRUE(select_exhaustive(cands, 0.0).chosen.empty());
  EXPECT_TRUE(select_greedy(cands, 0.0).chosen.empty());
  EXPECT_TRUE(select_knapsack_dp(cands, 0.0).chosen.empty());
}

// ---------------------------------------------------------------------------
// Schedule synthesis (model -> executable fractions)

TEST(Synthesis, EmptyInputEmptyOutput) {
  EXPECT_TRUE(suggest_fractions({}, SynthesisParams{}).empty());
}

TEST(Synthesis, SingleChannelTakesEverything) {
  SynthesisParams params;
  auto fractions = suggest_fractions({{6, 4e6}}, params);
  ASSERT_EQ(fractions.size(), 1u);
  EXPECT_EQ(fractions[0].first, 6);
  EXPECT_DOUBLE_EQ(fractions[0].second, 1.0);
}

TEST(Synthesis, FractionsSumToOne) {
  SynthesisParams params;
  params.speed_mps = 3.0;  // slow: multiple channels can be worth it
  auto fractions = suggest_fractions({{1, 6e6}, {6, 3e6}, {11, 1e6}}, params);
  ASSERT_FALSE(fractions.empty());
  double total = 0;
  for (const auto& [ch, f] : fractions) {
    EXPECT_GE(f, params.min_useful_fraction * 0.99);
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Synthesis, FatChannelGetsTheLargestShare) {
  SynthesisParams params;
  params.speed_mps = 5.0;
  auto fractions = suggest_fractions({{1, 8e6}, {11, 1e6}}, params);
  ASSERT_FALSE(fractions.empty());
  double f1 = 0, f11 = 0;
  for (const auto& [ch, f] : fractions) {
    if (ch == 1) f1 = f;
    if (ch == 11) f11 = f;
  }
  EXPECT_GT(f1, f11);
  EXPECT_GT(f1, 0.5);
}

TEST(Synthesis, HighSpeedCollapsesToFewerChannels) {
  SynthesisParams slow, fast;
  slow.speed_mps = 2.0;
  fast.speed_mps = 25.0;
  const std::vector<ChannelBandwidth> offers = {{1, 5e6}, {6, 4e6}, {11, 3e6}};
  const auto at_slow = suggest_fractions(offers, slow);
  const auto at_fast = suggest_fractions(offers, fast);
  EXPECT_LE(at_fast.size(), at_slow.size());
}

}  // namespace
}  // namespace spider::model
