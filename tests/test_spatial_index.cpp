// Differential tests for the medium's spatial grid index (DESIGN.md §10).
//
// The grid is a pure search-space optimisation: for any deployment, traffic
// pattern, and seed, a grid-indexed medium must produce the byte-identical
// delivered-frame sequence — same receivers, same timestamps, same ARQ
// outcomes — as the brute-force per-channel scan, because candidate visit
// order (and therefore RNG draw order) is preserved. The brute-force path
// is the oracle; these tests replay randomized worlds through both and
// diff everything observable.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "phy/medium.hpp"
#include "phy/propagation.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"

namespace spider::phy {

/// Test-only backdoor: corrupts private medium state to pin the checked
/// fatal-error paths (a release build used to ride an `assert` straight
/// into UB) and the empty-candidate-set counter guard.
struct MediumTestPeer {
  static void corrupt_recorded_cell(Medium& m, Radio& r) {
    auto& s = m.slots_[r.medium_slot_];
    s.cell = Medium::pack_cell(30000, 30000);
    s.qx0 = 1.0;  // empty quick-accept box: force the exact binning path
    s.qx1 = 0.0;
  }
  static void drop_from_cohort(Medium& m, Radio& r) {
    m.cohort_remove(r.channel(), r.medium_slot_);
  }
};

namespace {

constexpr wire::Channel kChannels[3] = {1, 6, 11};

PropagationConfig lossless_config(double range = 100.0) {
  PropagationConfig c;
  c.base_loss = 0.0;
  c.good_radius_m = range;  // no gray zone: in range means delivered
  c.range_m = range;
  return c;
}

MediumConfig indexed(NeighborIndex mode) {
  MediumConfig mc;
  mc.neighbor_index = mode;
  return mc;
}

wire::Frame broadcast_frame(std::size_t bytes = 100) {
  wire::Frame f;
  f.type = wire::FrameType::kBeacon;
  f.dst = wire::MacAddress::broadcast();
  f.size_bytes = bytes;
  return f;
}

/// Everything observable from one world run. `log` is the delivered-frame
/// sequence: receiver, sender, size, and delivery timestamp in microseconds,
/// in upcall order — byte-equality means the simulations were identical.
struct WorldResult {
  std::string log;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_at_rx = 0;
  std::uint64_t fanout = 0;
  std::uint64_t candidates = 0;
  std::uint64_t rebuckets = 0;
  std::uint64_t cells_scanned = 0;
  std::uint64_t auto_grid_tx = 0;
  std::uint64_t auto_brute_tx = 0;
};

/// Knobs for the randomized world generator. The defaults reproduce the
/// historical 200-seed corpus; the denser preset makes per-channel cohorts
/// big and spread enough that kAuto's grid arm actually engages.
struct WorldShape {
  int n_min = 2;
  int n_max = 40;
  double side_min = 100.0;
  double side_max = 600.0;
  double range_min = 30.0;
  double range_max = 150.0;
  /// Declare each mobile's exact speed as RadioConfig::max_speed_mps, so
  /// the medium's motion-bound rebucket amortisation engages. Off by
  /// default: the same world then runs with per-timestamp re-sampling,
  /// giving a differential baseline for the amortised path.
  bool declare_speed = false;
};

/// One randomized deployment driven by `seed`, executed under the given
/// neighbor index. Every stochastic choice — world shape, radio placement,
/// mobility, channels, the event script, and the medium's loss draws — is a
/// pure function of (seed, script), so two calls with different `mode`
/// simulate the same world through different search structures.
WorldResult run_world(NeighborIndex mode, std::uint64_t seed,
                      const WorldShape& shape = {}) {
  Rng setup(seed);
  const int n = static_cast<int>(setup.uniform_int(shape.n_min, shape.n_max));
  const double side = setup.uniform(shape.side_min, shape.side_max);
  PropagationConfig pc;
  pc.range_m = setup.uniform(shape.range_min, shape.range_max);
  pc.good_radius_m = pc.range_m * setup.uniform(0.5, 1.0);
  pc.base_loss = setup.uniform(0.0, 0.3);
  const double mobile_fraction = setup.uniform(0.0, 1.0);

  sim::Simulator sim;
  Medium medium(sim, Propagation(pc), Rng(seed * 31 + 7), indexed(mode));

  WorldResult out;
  std::vector<std::unique_ptr<Radio>> radios;
  radios.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Position start{setup.uniform(0.0, side), setup.uniform(0.0, side)};
    const bool mobile = setup.chance(mobile_fraction);
    const double vx = mobile ? setup.uniform(-25.0, 25.0) : 0.0;
    const double vy = mobile ? setup.uniform(-25.0, 25.0) : 0.0;
    RadioConfig rc;
    rc.mobile = mobile;
    if (shape.declare_speed) {
      rc.max_speed_mps = std::sqrt(vx * vx + vy * vy);
    }
    radios.push_back(std::make_unique<Radio>(
        medium, wire::MacAddress(static_cast<std::uint64_t>(i) + 1),
        [start, vx, vy, &sim] {
          const double t = to_seconds(sim.now());
          return Position{start.x + vx * t, start.y + vy * t};
        },
        rc));
    radios.back()->set_receiver([&out, i, &sim](const wire::Frame& f) {
      out.log += std::to_string(sim.now().count()) + ":" + std::to_string(i) +
                 ":" + std::to_string(f.src.raw()) + ":" +
                 std::to_string(f.size_bytes) + ";";
    });
    radios.back()->tune(kChannels[setup.uniform_int(0, 2)]);
  }

  // Scripted traffic: sends (broadcast and unicast, exercising ARQ),
  // mid-run retunes, and mid-run detaches (radio destruction with frames
  // potentially in flight). All draws happen here, before the clock runs,
  // so the script is identical across modes.
  constexpr int kEvents = 150;
  for (int e = 0; e < kEvents; ++e) {
    const Time at = usec(setup.uniform_int(10'000, 3'000'000));
    const int kind = static_cast<int>(setup.uniform_int(0, 99));
    const auto idx = static_cast<std::size_t>(setup.uniform_int(0, n - 1));
    if (kind < 70) {
      wire::Frame f;
      f.type = wire::FrameType::kData;
      f.src = wire::MacAddress(idx + 1);
      const auto dst = static_cast<std::uint64_t>(setup.uniform_int(1, n));
      f.dst = setup.chance(0.5) ? wire::MacAddress::broadcast()
                                : wire::MacAddress(dst);
      f.size_bytes = static_cast<std::size_t>(setup.uniform_int(60, 1500));
      sim.post(at, [&radios, idx, f] {
        if (radios[idx]) radios[idx]->send(f);
      });
    } else if (kind < 90) {
      const wire::Channel ch = kChannels[setup.uniform_int(0, 2)];
      sim.post(at, [&radios, idx, ch] {
        if (radios[idx]) radios[idx]->tune(ch);
      });
    } else {
      sim.post(at, [&radios, idx] { radios[idx].reset(); });
    }
  }
  sim.run_until(sec(4));

  out.sent = medium.frames_sent();
  out.delivered = medium.frames_delivered();
  out.dropped_at_rx = medium.frames_dropped_at_rx();
  out.fanout = medium.fanout_scheduled();
  out.candidates = medium.candidates_examined();
  out.rebuckets = medium.grid_rebuckets();
  out.cells_scanned = medium.grid_cells_scanned();
  out.auto_grid_tx = medium.neighbor_auto_grid_tx();
  out.auto_brute_tx = medium.neighbor_auto_brute_tx();
  return out;
}

TEST(SpatialIndexDifferential, GridMatchesBruteForceAcross200Deployments) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const WorldResult grid = run_world(NeighborIndex::kGrid, seed);
    const WorldResult brute = run_world(NeighborIndex::kBruteForce, seed);
    ASSERT_EQ(grid.log, brute.log) << "delivered-frame sequence diverged at "
                                   << "seed " << seed;
    ASSERT_EQ(grid.sent, brute.sent) << "seed " << seed;
    ASSERT_EQ(grid.delivered, brute.delivered) << "seed " << seed;
    ASSERT_EQ(grid.dropped_at_rx, brute.dropped_at_rx) << "seed " << seed;
    ASSERT_EQ(grid.fanout, brute.fanout) << "seed " << seed;
    // The search counters are mode-specific by design: the grid may only
    // ever examine a subset of the brute-force cohort.
    ASSERT_LE(grid.candidates, brute.candidates) << "seed " << seed;
    ASSERT_EQ(brute.rebuckets, 0u) << "seed " << seed;
  }
}

// kAuto flips between the two search structures per transmit, so a third
// run of the same corpus must stay byte-identical to both fixed modes —
// the choice of structure can never leak into the simulation.
TEST(SpatialIndexDifferential, AutoMatchesBothModesAcross200Deployments) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const WorldResult grid = run_world(NeighborIndex::kGrid, seed);
    const WorldResult auto_r = run_world(NeighborIndex::kAuto, seed);
    ASSERT_EQ(auto_r.log, grid.log) << "seed " << seed;
    ASSERT_EQ(auto_r.sent, grid.sent) << "seed " << seed;
    ASSERT_EQ(auto_r.delivered, grid.delivered) << "seed " << seed;
    ASSERT_EQ(auto_r.dropped_at_rx, grid.dropped_at_rx) << "seed " << seed;
    ASSERT_EQ(auto_r.fanout, grid.fanout) << "seed " << seed;
    // Every transmit is attributed to exactly one arm, and the fixed modes
    // never tick the auto counters.
    ASSERT_EQ(auto_r.auto_grid_tx + auto_r.auto_brute_tx, auto_r.sent)
        << "seed " << seed;
    ASSERT_EQ(grid.auto_grid_tx + grid.auto_brute_tx, 0u) << "seed " << seed;
  }
}

// The default corpus is sparse (2-40 radios over up to 600 m), so kAuto
// mostly picks brute. A denser preset — bigger cohorts spread over more
// cells — must engage the grid arm somewhere in the corpus, and stay
// byte-identical to both fixed modes while doing so.
TEST(SpatialIndexDifferential, AutoEngagesGridOnDenseDeployments) {
  WorldShape dense;
  dense.n_min = 60;
  dense.n_max = 120;
  dense.side_min = 600.0;
  dense.side_max = 900.0;
  dense.range_min = 30.0;
  dense.range_max = 80.0;
  std::uint64_t grid_arm_tx = 0;
  std::uint64_t brute_arm_tx = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const WorldResult grid = run_world(NeighborIndex::kGrid, seed, dense);
    const WorldResult brute =
        run_world(NeighborIndex::kBruteForce, seed, dense);
    const WorldResult auto_r = run_world(NeighborIndex::kAuto, seed, dense);
    ASSERT_EQ(grid.log, brute.log) << "seed " << seed;
    ASSERT_EQ(auto_r.log, grid.log) << "seed " << seed;
    ASSERT_EQ(auto_r.delivered, grid.delivered) << "seed " << seed;
    ASSERT_EQ(auto_r.fanout, grid.fanout) << "seed " << seed;
    grid_arm_tx += auto_r.auto_grid_tx;
    brute_arm_tx += auto_r.auto_brute_tx;
  }
  EXPECT_GT(grid_arm_tx, 0u)
      << "auto never chose the grid on a corpus dense enough to warrant it";
  EXPECT_GT(brute_arm_tx, 0u)
      << "auto never fell back to brute force (small channels exist here)";
}

// A declared motion bound (RadioConfig::max_speed_mps) lets the mobile
// sweep skip radios that provably cannot have left their cell, and the
// transmit loop re-sample skipped candidates lazily. That amortisation
// must be invisible: the delivered log and *every* counter — including
// rebuckets and cells scanned, which depend on when positions are sampled
// — must match the per-timestamp re-sampling run and brute force exactly.
TEST(SpatialIndexDifferential, DeclaredSpeedBoundIsPureWallClockChange) {
  WorldShape hinted;
  hinted.declare_speed = true;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const WorldResult fast = run_world(NeighborIndex::kGrid, seed, hinted);
    const WorldResult plain = run_world(NeighborIndex::kGrid, seed);
    const WorldResult brute = run_world(NeighborIndex::kBruteForce, seed);
    ASSERT_EQ(fast.log, plain.log) << "seed " << seed;
    ASSERT_EQ(fast.log, brute.log) << "seed " << seed;
    ASSERT_EQ(fast.sent, plain.sent) << "seed " << seed;
    ASSERT_EQ(fast.delivered, plain.delivered) << "seed " << seed;
    ASSERT_EQ(fast.dropped_at_rx, plain.dropped_at_rx) << "seed " << seed;
    ASSERT_EQ(fast.fanout, plain.fanout) << "seed " << seed;
    ASSERT_EQ(fast.candidates, plain.candidates) << "seed " << seed;
    ASSERT_EQ(fast.cells_scanned, plain.cells_scanned) << "seed " << seed;
    ASSERT_EQ(fast.rebuckets, plain.rebuckets) << "seed " << seed;
  }
}

// --- kAuto: per-channel split ----------------------------------------
// One medium, two channels of very different density: a 40-radio line on
// channel 1 (cohort >= kAutoMinCohort, spread across >= kAutoMinOccupiedCells
// cells) and a 4-radio cluster on channel 6. kAuto must pick the grid for
// the dense channel and brute force for the sparse one — in the same run —
// and deliver exactly what both fixed modes deliver.

TEST(SpatialIndexAuto, SplitsPerChannelByDensityWithinOneMedium) {
  std::string logs[3];
  int slot = 0;
  for (const NeighborIndex mode :
       {NeighborIndex::kGrid, NeighborIndex::kBruteForce,
        NeighborIndex::kAuto}) {
    sim::Simulator sim;
    Medium medium(sim, Propagation(lossless_config(100.0)), Rng(17),
                  indexed(mode));
    RadioConfig stationary;
    stationary.mobile = false;
    std::vector<std::unique_ptr<Radio>> radios;
    // Dense channel: 40 radios, 60 m apart — a 2.3 km line over 100 m
    // cells, so ~24 occupied cells.
    constexpr int kDense = 40;
    for (int i = 0; i < kDense; ++i) {
      const Position p{static_cast<double>(i) * 60.0, 0.0};
      radios.push_back(std::make_unique<Radio>(
          medium, wire::MacAddress(static_cast<std::uint64_t>(i) + 1),
          [p] { return p; }, stationary));
      radios.back()->tune(1);
    }
    // Sparse channel: 4 radios in one cell.
    for (int i = 0; i < 4; ++i) {
      const Position p{static_cast<double>(i) * 10.0, 5000.0};
      radios.push_back(std::make_unique<Radio>(
          medium, wire::MacAddress(static_cast<std::uint64_t>(kDense + i) + 1),
          [p] { return p; }, stationary));
      radios.back()->tune(6);
    }
    std::string& log = logs[slot];
    for (std::size_t i = 0; i < radios.size(); ++i) {
      radios[i]->set_receiver([&log, i, &sim](const wire::Frame& f) {
        log += std::to_string(sim.now().count()) + ":" + std::to_string(i) +
               ":" + std::to_string(f.src.raw()) + ";";
      });
    }
    sim.run_until(msec(50));
    for (std::size_t i = 0; i < radios.size(); ++i) {
      sim.post(msec(2) * static_cast<int>(i), [&radios, i] {
        wire::Frame f = broadcast_frame();
        f.src = wire::MacAddress(i + 1);
        radios[i]->send(f);
      });
    }
    sim.run_until(sec(1));
    if (mode == NeighborIndex::kAuto) {
      // 40 dense-channel transmits through the grid, 4 sparse ones through
      // the brute scan.
      EXPECT_EQ(medium.neighbor_auto_grid_tx(), 40u);
      EXPECT_EQ(medium.neighbor_auto_brute_tx(), 4u);
    } else {
      EXPECT_EQ(medium.neighbor_auto_grid_tx(), 0u);
      EXPECT_EQ(medium.neighbor_auto_brute_tx(), 0u);
    }
    ++slot;
  }
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_EQ(logs[0], logs[2]);
  EXPECT_FALSE(logs[0].empty());
}

// --- checked fatal errors --------------------------------------------
// grid_remove and refresh_mobile_buckets used to guard missing-cell
// lookups with `assert` only — release builds (-DNDEBUG) rode straight
// into UB on the end() iterator. They are now checked fatal errors in
// every build; pin the abort and its message.

using SpatialIndexDeathTest = ::testing::Test;

TEST(SpatialIndexDeathTest, GridRemoveWithCorruptCellAbortsCleanly) {
  EXPECT_DEATH(
      {
        sim::Simulator sim;
        Medium medium(sim, Propagation(lossless_config(100.0)), Rng(1),
                      indexed(NeighborIndex::kGrid));
        auto radio = std::make_unique<Radio>(
            medium, wire::MacAddress(1), [] { return Position{0.0, 0.0}; });
        radio->tune(6);
        MediumTestPeer::corrupt_recorded_cell(medium, *radio);
        radio.reset();  // detach -> grid_remove on a cell that is not there
      },
      "grid invariant violated");
}

TEST(SpatialIndexDeathTest, MobileRefreshWithCorruptCellAbortsCleanly) {
  EXPECT_DEATH(
      {
        sim::Simulator sim;
        Medium medium(sim, Propagation(lossless_config(100.0)), Rng(1),
                      indexed(NeighborIndex::kGrid));
        Radio mobile(medium, wire::MacAddress(1), [&sim] {
          return Position{95.0 + 50.0 * to_seconds(sim.now()), 0.0};
        });
        mobile.tune(6);
        MediumTestPeer::corrupt_recorded_cell(medium, mobile);
        // The transmit-side sweep finds the mobile's recorded cell missing.
        sim.run_until(msec(10));
        mobile.send(broadcast_frame());
      },
      "grid invariant violated");
}

// --- counter guard: empty candidate set ------------------------------
// candidates_examined_ += size - 1 assumed the sender is always a member
// of its own candidate set; an empty cohort would wrap the counter to
// ~2^64. Pin the guard through the test-only cohort backdoor.

TEST(SpatialIndexCounter, EmptyCandidateSetDoesNotUnderflowCounter) {
  sim::Simulator sim;
  Medium medium(sim, Propagation(lossless_config(100.0)), Rng(1),
                indexed(NeighborIndex::kBruteForce));
  Radio tx(medium, wire::MacAddress(1), [] { return Position{0.0, 0.0}; });
  tx.tune(6);
  sim.run_until(msec(10));
  MediumTestPeer::drop_from_cohort(medium, tx);
  tx.send(broadcast_frame());
  sim.run_until(msec(50));
  EXPECT_EQ(medium.candidates_examined(), 0u);
  EXPECT_EQ(medium.frames_sent(), 1u);
}

TEST(SpatialIndexCounter, LoneSenderExaminesNobody) {
  for (const NeighborIndex mode :
       {NeighborIndex::kGrid, NeighborIndex::kBruteForce,
        NeighborIndex::kAuto}) {
    sim::Simulator sim;
    Medium medium(sim, Propagation(lossless_config(100.0)), Rng(1),
                  indexed(mode));
    Radio tx(medium, wire::MacAddress(1), [] { return Position{0.0, 0.0}; });
    tx.tune(6);
    sim.run_until(msec(10));
    tx.send(broadcast_frame());
    sim.run_until(msec(50));
    EXPECT_EQ(medium.candidates_examined(), 0u)
        << "mode " << static_cast<int>(mode);
  }
}

// --- reentrancy: deliver() that transmits ----------------------------
// A deliver() upcall may itself send (an AP relaying, an ACK, a probe
// response). The inner transmit reuses the medium's shared scratch lanes,
// so it must never run while an outer transmit is still iterating them —
// deliveries are posted events, never synchronous calls from the candidate
// loop, and this test pins that: if an inner transmit ever clobbered the
// outer iteration, the delivered sets would diverge between grid (scratch
// lanes) and brute force (cohort vector, clobber-immune).

TEST(SpatialIndexProperty, ReentrantTransmitFromDeliverIsClobberSafe) {
  std::string logs[3];
  int slot = 0;
  for (const NeighborIndex mode :
       {NeighborIndex::kGrid, NeighborIndex::kBruteForce,
        NeighborIndex::kAuto}) {
    sim::Simulator sim;
    Medium medium(sim, Propagation(lossless_config(100.0)), Rng(23),
                  indexed(mode));
    RadioConfig rc;
    rc.mobile = false;
    // A ring of radios all in range of each other: every broadcast fans
    // out to everyone, and every delivery triggers another broadcast
    // (depth-limited), so inner transmits pile onto outer ones.
    constexpr std::size_t kRadios = 6;
    std::vector<std::unique_ptr<Radio>> radios;
    std::string& log = logs[slot];
    int budget = 30;  // echo depth limit so the chain terminates
    for (std::size_t i = 0; i < kRadios; ++i) {
      const Position p{static_cast<double>(i) * 10.0, 0.0};
      radios.push_back(std::make_unique<Radio>(
          medium, wire::MacAddress(i + 1), [p] { return p; }, rc));
    }
    for (std::size_t i = 0; i < kRadios; ++i) {
      radios[i]->set_receiver(
          [&log, &radios, &budget, i, &sim](const wire::Frame& f) {
            log += std::to_string(sim.now().count()) + ":" +
                   std::to_string(i) + ":" + std::to_string(f.src.raw()) + ";";
            if (budget > 0) {
              --budget;
              wire::Frame echo = broadcast_frame(200);
              echo.src = wire::MacAddress(i + 1);
              radios[i]->send(echo);  // reentrant: called under deliver()
            }
          });
      radios[i]->tune(11);
    }
    sim.run_until(msec(10));
    wire::Frame f = broadcast_frame(200);
    f.src = wire::MacAddress(1);
    radios[0]->send(f);
    sim.run_until(sec(2));
    EXPECT_GT(medium.frames_delivered(), 30u)
        << "mode " << static_cast<int>(mode);
    ++slot;
  }
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_EQ(logs[0], logs[2]);
  EXPECT_FALSE(logs[0].empty());
}

// --- property: boundary coverage -------------------------------------
// With cell == range, a radio at exactly range_m from the transmitter sits
// at most one cell away on each axis, so the 3x3 neighborhood must contain
// every in-range radio — including radios exactly on cell boundaries and
// exactly at range_m (in_range_at uses <=, and with good_radius == range
// the loss there is still base_loss = 0, so "visited" is observable as
// "delivered").

TEST(SpatialIndexProperty, BoundaryRadiosAtExactRangeAreDelivered) {
  const double range = 100.0;
  // Transmitter exactly on a cell corner; receivers on cell boundaries and
  // at exactly range_m in the axis and diagonal directions, plus a ring of
  // interior positions. One receiver sits just outside range as a control.
  const std::vector<Position> receivers = {
      {range, 0.0},           // cell boundary, exactly at range
      {0.0, range},           // cell boundary, exactly at range
      {-range, 0.0},          // negative-coordinate cell, exactly at range
      {0.0, -range},          // negative-coordinate cell, exactly at range
      {range / std::sqrt(2.0), range / std::sqrt(2.0)},  // diagonal at range
      {range, range},         // corner cell, out of range (distance ~141)
      {50.0, 0.0},  {0.0, 50.0},   {-30.0, -30.0}, {99.0, 0.0},
      {100.1, 0.0},           // just out of range
  };
  std::size_t expected = 0;
  for (const Position& p : receivers) {
    if (distance({0.0, 0.0}, p) <= range) ++expected;
  }

  for (const NeighborIndex mode :
       {NeighborIndex::kGrid, NeighborIndex::kBruteForce}) {
    sim::Simulator sim;
    Medium medium(sim, Propagation(lossless_config(range)), Rng(7),
                  indexed(mode));
    RadioConfig rc;
    rc.mobile = false;
    Radio tx(medium, wire::MacAddress(1), [] { return Position{0.0, 0.0}; },
             rc);
    std::vector<std::unique_ptr<Radio>> rxs;
    std::size_t received = 0;
    for (std::size_t i = 0; i < receivers.size(); ++i) {
      const Position p = receivers[i];
      rxs.push_back(std::make_unique<Radio>(medium, wire::MacAddress(i + 2),
                                            [p] { return p; }, rc));
      rxs.back()->set_receiver([&received](const wire::Frame&) { ++received; });
      rxs.back()->tune(6);
    }
    tx.tune(6);
    sim.run_until(msec(50));
    tx.send(broadcast_frame());
    sim.run_until(msec(100));
    EXPECT_EQ(received, expected) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(medium.frames_delivered(), expected)
        << "mode " << static_cast<int>(mode);
  }
}

// --- property: rebucketing is delivery-neutral -----------------------
// A mobile receiver crossing a cell boundary while frames are in the air
// must neither lose a frame (its new bucket is found by later transmits;
// in-flight deliveries validate by (slot, generation), not by cell) nor
// receive one twice (it leaves its old bucket in the same sweep).

TEST(SpatialIndexProperty, RebucketingNeverDoublesOrDropsDeliveries) {
  for (const NeighborIndex mode :
       {NeighborIndex::kGrid, NeighborIndex::kBruteForce}) {
    sim::Simulator sim;
    Medium medium(sim, Propagation(lossless_config(100.0)), Rng(11),
                  indexed(mode));
    RadioConfig stationary;
    stationary.mobile = false;
    Radio tx(medium, wire::MacAddress(1),
             [] { return Position{150.0, 50.0}; }, stationary);
    // Crosses the x = 100 cell boundary at t = 0.1 s while staying well
    // inside the transmitter's range throughout.
    Radio rx(medium, wire::MacAddress(2), [&sim] {
      return Position{95.0 + 50.0 * to_seconds(sim.now()), 50.0};
    });
    int received = 0;
    rx.set_receiver([&received](const wire::Frame&) { ++received; });
    tx.tune(6);
    rx.tune(6);
    sim.run_until(msec(90));
    // 40 frames straddling the crossing, half an airtime apart: several are
    // in flight at the moment the sweep rebuckets the receiver.
    constexpr int kFrames = 40;
    for (int i = 0; i < kFrames; ++i) {
      sim.post(usec(500) * i, [&tx] { tx.send(broadcast_frame(1500)); });
    }
    sim.run_until(msec(200));
    EXPECT_EQ(received, kFrames) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(medium.frames_dropped_at_rx(), 0u)
        << "mode " << static_cast<int>(mode);
    EXPECT_EQ(medium.frames_delivered(), static_cast<std::uint64_t>(kFrames))
        << "mode " << static_cast<int>(mode);
    if (mode == NeighborIndex::kGrid) {
      EXPECT_GT(medium.grid_rebuckets(), 0u);
    }
  }
}

TEST(SpatialIndexProperty, StationaryWorldNeverRebuckets) {
  sim::Simulator sim;
  Medium medium(sim, Propagation(lossless_config(100.0)), Rng(3),
                indexed(NeighborIndex::kGrid));
  RadioConfig stationary;
  stationary.mobile = false;
  std::vector<std::unique_ptr<Radio>> radios;
  for (int i = 0; i < 10; ++i) {
    const Position p{static_cast<double>(i) * 40.0, 0.0};
    radios.push_back(std::make_unique<Radio>(
        medium, wire::MacAddress(static_cast<std::uint64_t>(i) + 1),
        [p] { return p; }, stationary));
    radios.back()->tune(6);
  }
  sim.run_until(msec(50));
  for (int i = 0; i < 20; ++i) {
    sim.post(msec(10) * i, [&radios, i] {
      radios[static_cast<std::size_t>(i) % radios.size()]->send(
          broadcast_frame());
    });
  }
  sim.run_until(sec(1));
  EXPECT_GT(medium.frames_delivered(), 0u);
  EXPECT_EQ(medium.grid_rebuckets(), 0u);
}

// --- property: the grid actually prunes ------------------------------
// On a spread-out deployment most of the cohort is out of range; the grid
// must examine strictly fewer candidates while delivering exactly the same
// frames.

TEST(SpatialIndexProperty, GridExaminesFewerCandidatesOnSpreadDeployment) {
  WorldResult results[2];
  int slot = 0;
  for (const NeighborIndex mode :
       {NeighborIndex::kGrid, NeighborIndex::kBruteForce}) {
    sim::Simulator sim;
    Medium medium(sim, Propagation(lossless_config(100.0)), Rng(5),
                  indexed(mode));
    RadioConfig stationary;
    stationary.mobile = false;
    std::vector<std::unique_ptr<Radio>> radios;
    constexpr int kRadios = 60;
    for (int i = 0; i < kRadios; ++i) {
      const Position p{static_cast<double>(i) * 80.0, 0.0};
      radios.push_back(std::make_unique<Radio>(
          medium, wire::MacAddress(static_cast<std::uint64_t>(i) + 1),
          [p] { return p; }, stationary));
      radios.back()->tune(6);
    }
    sim.run_until(msec(50));
    for (int i = 0; i < kRadios; ++i) {
      sim.post(msec(2) * i, [&radios, i] {
        radios[static_cast<std::size_t>(i)]->send(broadcast_frame());
      });
    }
    sim.run_until(sec(1));
    results[slot].delivered = medium.frames_delivered();
    results[slot].candidates = medium.candidates_examined();
    ++slot;
  }
  EXPECT_EQ(results[0].delivered, results[1].delivered);
  EXPECT_GT(results[1].candidates, 4 * results[0].candidates)
      << "grid pruned too little on a 4.7 km line of 100 m cells";
}

// --- configuration ---------------------------------------------------

TEST(SpatialIndexConfig, CellSizeClampsUpToPropagationRange) {
  sim::Simulator sim;
  MediumConfig mc;
  mc.grid_cell_m = 10.0;  // below range: unsound, must clamp up
  Medium clamped(sim, Propagation(lossless_config(100.0)), Rng(1), mc);
  EXPECT_DOUBLE_EQ(clamped.grid_cell_m(), 100.0);

  mc.grid_cell_m = 250.0;  // above range: honored (coarser is always sound)
  Medium coarse(sim, Propagation(lossless_config(100.0)), Rng(1), mc);
  EXPECT_DOUBLE_EQ(coarse.grid_cell_m(), 250.0);

  Medium derived(sim, Propagation(lossless_config(100.0)), Rng(1));
  EXPECT_DOUBLE_EQ(derived.grid_cell_m(), 100.0);
  EXPECT_EQ(derived.config().neighbor_index, NeighborIndex::kGrid);
}

TEST(SpatialIndexConfig, BruteForceScansNoCells) {
  sim::Simulator sim;
  Medium medium(sim, Propagation(lossless_config(100.0)), Rng(1),
                indexed(NeighborIndex::kBruteForce));
  Radio tx(medium, wire::MacAddress(1), [] { return Position{0.0, 0.0}; });
  Radio rx(medium, wire::MacAddress(2), [] { return Position{50.0, 0.0}; });
  tx.tune(6);
  rx.tune(6);
  sim.run_until(msec(50));
  tx.send(broadcast_frame());
  sim.run_until(msec(100));
  EXPECT_EQ(medium.frames_delivered(), 1u);
  EXPECT_EQ(medium.grid_cells_scanned(), 0u);
  EXPECT_EQ(medium.grid_rebuckets(), 0u);
}

}  // namespace
}  // namespace spider::phy
