// Robustness layer tests (DESIGN.md §11): config validation, bounded runs,
// the wire protocol, the resident scenario server, and the fault-tolerant
// campaign runner. Server tests talk to a real ScenarioServer over a Unix
// socket created in the test's working directory.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "serve/campaign.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "trace/runner.hpp"
#include "util/json.hpp"

namespace spider::serve {
namespace {

trace::ScenarioConfig quick_scenario(std::uint64_t seed,
                                     double duration_s = 10.0) {
  trace::ScenarioConfig config;
  config.seed = seed;
  config.duration = sec(duration_s);
  config.clients = 2;
  return config;
}

std::string stats_json(const RunStats& stats) {
  std::ostringstream os;
  stats.write_json(os);
  return os.str();
}

/// Short unique socket path (sun_path is 108 bytes; ctest runs tests from
/// the build tree, so a relative name is safest).
std::string unique_socket() {
  static int counter = 0;
  return "ts" + std::to_string(::getpid()) + "_" + std::to_string(++counter) +
         ".sock";
}

struct TestServer {
  explicit TestServer(ServerConfig config) : server(std::move(config)) {
    std::string error;
    started = server.start(&error);
    EXPECT_TRUE(started) << error;
  }
  ~TestServer() { server.shutdown(/*cancel_inflight=*/true); }

  LineClient connect() {
    LineClient client;
    std::string error;
    EXPECT_TRUE(client.connect_to(server.config().socket_path, &error))
        << error;
    return client;
  }

  ScenarioServer server;
  bool started = false;
};

ServerConfig basic_config() {
  ServerConfig config;
  config.socket_path = unique_socket();
  config.workers = 2;
  config.queue_depth = 8;
  return config;
}

util::Json rpc(LineClient& client, const std::string& request,
               double timeout_ms = 30000.0) {
  EXPECT_TRUE(client.send_line(request));
  const std::optional<std::string> line = client.recv_line(timeout_ms);
  EXPECT_TRUE(line.has_value()) << "no response to: " << request;
  if (!line.has_value()) return util::Json();
  std::string error;
  const std::optional<util::Json> json = util::Json::parse(*line, &error);
  EXPECT_TRUE(json.has_value()) << error << " in: " << *line;
  return json.value_or(util::Json());
}

std::string error_kind(const util::Json& response) {
  const util::Json* error = response.find("error");
  if (error == nullptr) return "";
  const util::Json* kind = error->find("kind");
  return kind == nullptr ? "" : kind->string_or("");
}

// ---------------------------------------------------------------------------
// ScenarioConfig::validate
// ---------------------------------------------------------------------------

TEST(Validate, DefaultConfigIsValid) {
  EXPECT_TRUE(trace::ScenarioConfig{}.validate().empty());
}

TEST(Validate, RejectsNonPositiveDuration) {
  trace::ScenarioConfig config;
  config.duration = sec(0);
  const auto issues = config.validate();
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues.front().field, "duration");
}

TEST(Validate, RejectsBadClientCountAndSpeed) {
  trace::ScenarioConfig config;
  config.clients = 0;
  config.speed_mps = -3.0;
  const auto issues = config.validate();
  EXPECT_GE(issues.size(), 2u);
}

TEST(Validate, RejectsGridCellBelowPropagationRange) {
  trace::ScenarioConfig config;
  config.grid_cell_m = config.propagation.range_m * 0.5;
  const auto issues = config.validate();
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues.front().field, "grid_cell_m");
}

TEST(Validate, RejectsZeroInterfacesForSpider) {
  trace::ScenarioConfig config;
  config.spider.num_interfaces = 0;
  EXPECT_FALSE(config.validate().empty());
  config.driver = trace::DriverKind::kStock;
  EXPECT_TRUE(config.validate().empty());  // stock ignores the fleet size
}

TEST(Validate, JoinIssuesMentionsEveryField) {
  trace::ScenarioConfig config;
  config.duration = sec(0);
  config.clients = 0;
  const std::string joined = trace::join_issues(config.validate());
  EXPECT_NE(joined.find("duration"), std::string::npos);
  EXPECT_NE(joined.find("clients"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ScenarioRunner::run_bounded
// ---------------------------------------------------------------------------

TEST(RunBounded, InvalidConfigYieldsStructuredError) {
  trace::ScenarioConfig config;
  config.duration = sec(0);
  const trace::RunOutcome outcome =
      trace::ScenarioRunner().run_bounded(config);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind, trace::RunErrorKind::kInvalidConfig);
  EXPECT_FALSE(outcome.result.has_value());
}

TEST(RunBounded, CompletedRunMatchesUnboundedByteForByte) {
  const trace::ScenarioConfig config = quick_scenario(11, 20.0);
  const trace::ScenarioRunner runner;
  const trace::ScenarioResult plain = runner.run_one(config);

  sim::CancelToken token;
  token.arm_deadline_after(std::chrono::minutes(10));  // generous
  const trace::RunOutcome bounded = runner.run_bounded(config, &token);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(stats_json(RunStats::from_result(plain)),
            stats_json(RunStats::from_result(*bounded.result)));
}

TEST(RunBounded, ExpiredDeadlineReturnsPartialResult) {
  const trace::ScenarioConfig config = quick_scenario(12, 100000.0);
  sim::CancelToken token;
  token.arm_deadline_after(std::chrono::milliseconds(30));
  const trace::RunOutcome outcome =
      trace::ScenarioRunner().run_bounded(config, &token);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind, trace::RunErrorKind::kDeadlineExceeded);
  ASSERT_TRUE(outcome.result.has_value());
  EXPECT_FALSE(outcome.result->completed);
  EXPECT_LT(outcome.result->perf.sim_seconds, 100000.0);
}

TEST(RunBounded, PreCancelledTokenReportsCancelled) {
  sim::CancelToken token;
  token.request_cancel();
  const trace::RunOutcome outcome =
      trace::ScenarioRunner().run_bounded(quick_scenario(13), &token);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind, trace::RunErrorKind::kCancelled);
}

// ---------------------------------------------------------------------------
// Wire protocol serde
// ---------------------------------------------------------------------------

TEST(Protocol, RunStatsRoundTripsExactly) {
  RunStats stats;
  stats.avg_throughput_kBps = 123.456789012345678;
  stats.connectivity = 1.0 / 3.0;
  stats.total_bytes = 987654321;
  stats.switches = 42;
  stats.switch_latency_ms.add(3.25);
  stats.switch_latency_ms.add(7.75);
  stats.sim_seconds = 1800.0;
  stats.events_popped = 123456789;

  const std::string once = stats_json(stats);
  const std::optional<util::Json> parsed = util::Json::parse(once);
  ASSERT_TRUE(parsed.has_value());
  const std::optional<RunStats> back = RunStats::from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(once, stats_json(*back));  // byte-identical re-serialization
}

TEST(Protocol, ScenarioRoundTripsThroughWireForm) {
  trace::ScenarioConfig config = quick_scenario(99, 42.5);
  config.driver = trace::DriverKind::kFatVap;
  config.spider.num_interfaces = 3;
  const std::string wire = scenario_to_json(config);
  const std::optional<util::Json> parsed = util::Json::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  trace::ScenarioConfig back;
  std::string error;
  ASSERT_TRUE(parse_scenario(*parsed, &back, &error)) << error;
  EXPECT_EQ(wire, scenario_to_json(back));
}

TEST(Protocol, ShardsRoundTripsAndBadValuesFailValidation) {
  trace::ScenarioConfig config = quick_scenario(7);
  config.shards = 4;
  const std::string wire = scenario_to_json(config);
  EXPECT_NE(wire.find("\"shards\":4"), std::string::npos);
  const std::optional<util::Json> parsed = util::Json::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  trace::ScenarioConfig back;
  std::string error;
  ASSERT_TRUE(parse_scenario(*parsed, &back, &error)) << error;
  EXPECT_EQ(back.shards, 4);

  // A non-numeric shards value must surface as an invalid config, not
  // silently run some other formation.
  const std::optional<util::Json> bad =
      util::Json::parse(R"({"seed":1,"shards":"wide"})");
  ASSERT_TRUE(bad.has_value());
  trace::ScenarioConfig mangled;
  ASSERT_TRUE(parse_scenario(*bad, &mangled, &error)) << error;
  EXPECT_FALSE(mangled.validate().empty());
}

TEST(Protocol, UnknownScenarioKeyIsAnError) {
  const std::optional<util::Json> json =
      util::Json::parse(R"({"seed":1,"durationn_s":30})");
  ASSERT_TRUE(json.has_value());
  trace::ScenarioConfig config;
  std::string error;
  EXPECT_FALSE(parse_scenario(*json, &config, &error));
  EXPECT_NE(error.find("durationn_s"), std::string::npos);
}

TEST(Protocol, ExtensionFreeConfigKeepsPreExtensionWireBytes) {
  // The declarative extensions must travel only when non-default: a
  // mix-free, impairment-free scenario serializes to the exact wire bytes
  // every pre-extension client and journal expects.
  const std::string wire = scenario_to_json(quick_scenario(3));
  EXPECT_EQ(wire.find("client_mix"), std::string::npos);
  EXPECT_EQ(wire.find("impairments"), std::string::npos);
}

TEST(Protocol, ClientMixRoundTripsThroughWireForm) {
  trace::ScenarioConfig config = quick_scenario(21);
  trace::ClientMixEntry laptops;
  laptops.profile = trace::ClientProfile::preset(
      trace::ClientProfileKind::kAggressiveScanner);
  laptops.count = 2;
  trace::ClientMixEntry handsets;
  handsets.profile =
      trace::ClientProfile::preset(trace::ClientProfileKind::kPsmPhone);
  handsets.profile.psm_duty = 0.25;  // a customized preset
  config.client_mix = {laptops, handsets};

  const std::string wire = scenario_to_json(config);
  const std::optional<util::Json> parsed = util::Json::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  trace::ScenarioConfig back;
  std::string error;
  ASSERT_TRUE(parse_scenario(*parsed, &back, &error)) << error;
  EXPECT_EQ(wire, scenario_to_json(back));
  ASSERT_EQ(back.client_mix.size(), 2u);
  EXPECT_EQ(back.client_mix[0].count, 2);
  EXPECT_EQ(back.client_mix[0].profile.kind,
            trace::ClientProfileKind::kAggressiveScanner);
  EXPECT_DOUBLE_EQ(back.client_mix[1].profile.psm_duty, 0.25);
}

TEST(Protocol, SyntheticScheduleRoundTripsFaultSpecsExactly) {
  trace::ScenarioConfig config = quick_scenario(22);
  config.impairments.schedule.ap_blackout(sec(20), sec(5), 1);
  config.impairments.schedule.burst_loss(msec(2500), sec(3), 6, 0.7, msec(40),
                                         msec(160));

  const std::string wire = scenario_to_json(config);
  const std::optional<util::Json> parsed = util::Json::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  trace::ScenarioConfig back;
  std::string error;
  ASSERT_TRUE(parse_scenario(*parsed, &back, &error)) << error;
  EXPECT_EQ(wire, scenario_to_json(back));
  ASSERT_EQ(back.impairments.schedule.size(), 2u);
  const fault::FaultSpec& burst = back.impairments.schedule.specs()[1];
  EXPECT_EQ(burst.kind, fault::FaultKind::kChannelBurstLoss);
  EXPECT_EQ(burst.at, msec(2500));
  EXPECT_EQ(burst.duration, sec(3));
  EXPECT_EQ(burst.target, 6);
  EXPECT_DOUBLE_EQ(burst.intensity, 0.7);
  EXPECT_EQ(burst.burst_mean, msec(40));
  EXPECT_EQ(burst.gap_mean, msec(160));
}

TEST(Protocol, TraceBackedImpairmentsRoundTripThroughWireForm) {
  trace::ScenarioConfig config = quick_scenario(23);
  tracein::ReplayOptions replay;
  replay.mapping = tracein::ReplayMapping::kBurst;
  replay.loss_scale = 0.8;
  replay.min_occupancy = 0.1;
  config.impairments =
      trace::ImpairmentSource::trace_file("traces/walk.csv", replay);
  {
    const std::string wire = scenario_to_json(config);
    const std::optional<util::Json> parsed = util::Json::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    trace::ScenarioConfig back;
    std::string error;
    ASSERT_TRUE(parse_scenario(*parsed, &back, &error)) << error;
    EXPECT_EQ(wire, scenario_to_json(back));
    EXPECT_EQ(back.impairments.kind, trace::ImpairmentSource::Kind::kTraceFile);
    EXPECT_EQ(back.impairments.trace_path, "traces/walk.csv");
    EXPECT_EQ(back.impairments.replay.mapping, tracein::ReplayMapping::kBurst);
    EXPECT_DOUBLE_EQ(back.impairments.replay.loss_scale, 0.8);
  }

  // Inline timelines carry non-representable timestamps through the
  // %.17g + rounding parse without walking a tick.
  tracein::OccupancyTimeline timeline;
  timeline.samples.push_back({msec(100), 6, 1.0 / 3.0});
  timeline.samples.push_back({Time{300000}, 11, 0.125});
  config.impairments = trace::ImpairmentSource::inline_timeline(timeline);
  {
    const std::string wire = scenario_to_json(config);
    const std::optional<util::Json> parsed = util::Json::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    trace::ScenarioConfig back;
    std::string error;
    ASSERT_TRUE(parse_scenario(*parsed, &back, &error)) << error;
    EXPECT_EQ(wire, scenario_to_json(back));
    EXPECT_TRUE(back.impairments.timeline == timeline);
  }
}

/// The parse error for `text`, or "" when it parses (extension error tests
/// assert the message names the offending field).
std::string scenario_parse_failure(const std::string& text) {
  const std::optional<util::Json> json = util::Json::parse(text);
  EXPECT_TRUE(json.has_value()) << text;
  if (!json.has_value()) return "";
  trace::ScenarioConfig config;
  std::string error;
  if (parse_scenario(*json, &config, &error)) return "";
  return error;
}

TEST(Protocol, ExtensionErrorsNameTheOffendingField) {
  EXPECT_EQ(scenario_parse_failure(R"({"client_mix":[{"count":"two"}]})"),
            "client_mix[0].count must be a number");
  EXPECT_EQ(scenario_parse_failure(R"({"client_mix":[{"profile":"gamer"}]})"),
            "client_mix[0].profile must be default|aggressive-scanner|"
            "sticky-device|psm-phone");
  EXPECT_EQ(scenario_parse_failure(R"({"client_mix":[{"color":1}]})"),
            "unknown client_mix[0] key 'color'");
  EXPECT_EQ(scenario_parse_failure(R"({"impairments":{"kind":"weird"}})"),
            "impairments.kind must be synthetic|trace-file|inline-timeline");
  EXPECT_EQ(
      scenario_parse_failure(R"({"impairments":{"kind":"synthetic","path":"x"}})"),
      "impairments.path only applies to kind 'trace-file'");
  EXPECT_EQ(
      scenario_parse_failure(
          R"({"impairments":{"kind":"synthetic","replay":{}}})"),
      "impairments.replay only applies to trace-backed kinds");
  EXPECT_EQ(
      scenario_parse_failure(
          R"({"impairments":{"kind":"trace-file","path":"x","replay":{"mapping":"maybe"}}})"),
      "impairments.replay.mapping must be interference|burst");
  EXPECT_EQ(
      scenario_parse_failure(
          R"({"impairments":{"kind":"synthetic","schedule":[{"kind":"meteor-strike"}]}})"),
      "impairments.schedule[0].kind is not a known fault kind");
  EXPECT_EQ(
      scenario_parse_failure(
          R"({"impairments":{"kind":"inline-timeline","samples":[[1,6]]}})"),
      "impairments.samples[0] must be [t_s, channel, occupancy] numbers");
  EXPECT_EQ(scenario_parse_failure(R"({"impairments":{"kind":"synthetic","x":1}})"),
            "unknown impairments key 'x'");
}

TEST(Protocol, OnlineStatsMomentsReconstructExactly) {
  OnlineStats a;
  for (int i = 0; i < 100; ++i) a.add(0.1 * i * (i % 7 ? 1.0 : -1.0));
  const OnlineStats b = OnlineStats::from_moments(
      a.count(), a.mean(), a.m2(), a.min(), a.max(), a.sum());
  OnlineStats merged_a = a;
  merged_a.merge(a);
  OnlineStats merged_b = b;
  merged_b.merge(a);
  EXPECT_EQ(merged_a.mean(), merged_b.mean());
  EXPECT_EQ(merged_a.m2(), merged_b.m2());
  EXPECT_EQ(merged_a.sum(), merged_b.sum());
}

// ---------------------------------------------------------------------------
// Server protocol behaviour
// ---------------------------------------------------------------------------

TEST(Server, PingPongAndMetrics) {
  TestServer ts(basic_config());
  LineClient client = ts.connect();
  const util::Json pong = rpc(client, R"({"op":"ping","id":"p1"})");
  EXPECT_TRUE(pong.find("pong") != nullptr);
  const util::Json* id = pong.find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->string_or(""), "p1");

  const util::Json metrics = rpc(client, R"({"op":"metrics","id":"m"})");
  const util::Json* registry = metrics.find("metrics");
  ASSERT_NE(registry, nullptr);
  const util::Json* requests = registry->find("serve.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->number_or(0.0), 1.0);
}

TEST(Server, MalformedAndUnknownRequestsGetStructuredErrors) {
  TestServer ts(basic_config());
  LineClient client = ts.connect();
  EXPECT_EQ(error_kind(rpc(client, "this is not json")), "invalid-request");
  EXPECT_EQ(error_kind(rpc(client, R"({"op":"frobnicate","id":"x"})")),
            "invalid-request");
  EXPECT_EQ(error_kind(rpc(client, R"({"op":"run","id":"y"})")),
            "invalid-request");  // missing scenario
  EXPECT_EQ(
      error_kind(rpc(
          client, R"({"op":"run","id":"z","scenario":{"warp_factor":9}})")),
      "invalid-request");  // unknown scenario key
  // The connection survives every rejection.
  EXPECT_TRUE(rpc(client, R"({"op":"ping","id":"still-alive"})")
                  .find("pong") != nullptr);
}

TEST(Server, InvalidConfigSurfacesOverTheWire) {
  TestServer ts(basic_config());
  LineClient client = ts.connect();
  const util::Json response = rpc(
      client, R"({"op":"run","id":"bad","scenario":{"seed":1,"clients":0}})");
  EXPECT_EQ(error_kind(response), "invalid-config");
}

TEST(Server, RunMatchesInProcessRunnerByteForByte) {
  TestServer ts(basic_config());
  LineClient client = ts.connect();
  const trace::ScenarioConfig config = quick_scenario(21, 30.0);
  const util::Json response =
      rpc(client, R"({"op":"run","id":"r","deadline_ms":600000,"scenario":)" +
                      scenario_to_json(config) + "}");
  const util::Json* ok = response.find("ok");
  ASSERT_NE(ok, nullptr);
  ASSERT_TRUE(ok->bool_or(false));
  const util::Json* result = response.find("result");
  ASSERT_NE(result, nullptr);
  const std::optional<RunStats> wire_stats = RunStats::from_json(*result);
  ASSERT_TRUE(wire_stats.has_value());

  const trace::ScenarioResult local = trace::ScenarioRunner().run_one(config);
  EXPECT_EQ(stats_json(RunStats::from_result(local)),
            stats_json(*wire_stats));
}

TEST(Server, FaultedShardedRunAcceptedOverTheWire) {
  // shards > 1 plus impairments used to be rejected at validation; the
  // partition-time schedule compiler made the combination first-class, and
  // the wire path must agree with the in-process runner byte for byte.
  TestServer ts(basic_config());
  LineClient client = ts.connect();
  trace::ScenarioConfig config = quick_scenario(33, 20.0);
  config.shards = 2;
  config.deployment.road_length_m = 800.0;
  config.deployment.aps_per_km = 10.0;
  config.impairments.schedule.ap_blackout(sec(4), sec(2), 0)
      .burst_loss(sec(8), sec(3), 6, 0.8);
  const util::Json response =
      rpc(client, R"({"op":"run","id":"fs","deadline_ms":600000,"scenario":)" +
                      scenario_to_json(config) + "}");
  const util::Json* ok = response.find("ok");
  ASSERT_NE(ok, nullptr);
  ASSERT_TRUE(ok->bool_or(false)) << error_kind(response);
  const util::Json* result = response.find("result");
  ASSERT_NE(result, nullptr);
  const std::optional<RunStats> wire_stats = RunStats::from_json(*result);
  ASSERT_TRUE(wire_stats.has_value());

  const trace::ScenarioResult local = trace::ScenarioRunner().run_one(config);
  EXPECT_TRUE(local.completed);
  EXPECT_GT(local.faults_injected, 0u);
  EXPECT_EQ(stats_json(RunStats::from_result(local)),
            stats_json(*wire_stats));
}

TEST(Server, WatchdogReapsStalledRun) {
  ServerConfig config = basic_config();
  config.workers = 1;
  config.stall_seed = 777;
  config.stall_ms = 30000.0;  // would hold the worker 30 s without a reap
  TestServer ts(config);
  LineClient client = ts.connect();
  trace::ScenarioConfig scenario = quick_scenario(777);
  const auto t0 = std::chrono::steady_clock::now();
  const util::Json response =
      rpc(client, R"({"op":"run","id":"s","deadline_ms":100,"scenario":)" +
                      scenario_to_json(scenario) + "}");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(error_kind(response), "deadline-exceeded");
  EXPECT_LT(elapsed.count(), 10000);  // reaped by the deadline, not the stall
  const obs::MetricsRegistry metrics = ts.server.metrics_snapshot();
  EXPECT_EQ(metrics.value("serve.watchdog_reaps"), 1.0);
  EXPECT_EQ(metrics.value("serve.stalls_injected"), 1.0);
}

TEST(Server, OverloadRejectionCarriesRetryAfter) {
  ServerConfig config = basic_config();
  config.workers = 1;
  config.queue_depth = 1;
  config.retry_after_ms = 25.0;
  config.stall_seed = 555;
  config.stall_ms = 30000.0;
  TestServer ts(config);
  LineClient client = ts.connect();

  // Occupy the only worker with the stalled seed, fill the queue, then
  // watch the next admission bounce.
  const std::string stalled =
      R"({"op":"run","id":"w0","deadline_ms":2000,"scenario":)" +
      scenario_to_json(quick_scenario(555)) + "}";
  ASSERT_TRUE(client.send_line(stalled));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // in worker
  ASSERT_TRUE(client.send_line(
      R"({"op":"run","id":"w1","scenario":)" +
      scenario_to_json(quick_scenario(1, 5.0)) + "}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // queued

  const util::Json rejected = rpc(
      client, R"({"op":"run","id":"w2","scenario":)" +
                  scenario_to_json(quick_scenario(2, 5.0)) + "}");
  EXPECT_EQ(error_kind(rejected), "overloaded");
  const util::Json* retry_after = rejected.find("retry_after_ms");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_EQ(retry_after->number_or(0.0), 25.0);
  EXPECT_GE(ts.server.metrics_snapshot().value("serve.rejected_overload"),
            1.0);

  // Both admitted runs still resolve: the stalled one via the watchdog,
  // the queued one normally.
  int deadline_exceeded = 0, completed = 0;
  for (int i = 0; i < 2; ++i) {
    const std::optional<std::string> line = client.recv_line(30000.0);
    ASSERT_TRUE(line.has_value());
    const std::optional<util::Json> json = util::Json::parse(*line);
    ASSERT_TRUE(json.has_value());
    const util::Json* ok = json->find("ok");
    if (ok != nullptr && ok->bool_or(false)) {
      ++completed;
    } else if (error_kind(*json) == "deadline-exceeded") {
      ++deadline_exceeded;
    }
  }
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(deadline_exceeded, 1);
}

TEST(Server, GracefulShutdownDrainsAndRejectsNewWork) {
  ServerConfig config = basic_config();
  config.workers = 1;
  config.stall_seed = 333;
  config.stall_ms = 30000.0;
  TestServer ts(config);
  LineClient client = ts.connect();

  // A stalled run (bounded by its deadline) holds the drain open.
  ASSERT_TRUE(client.send_line(
      R"({"op":"run","id":"d0","deadline_ms":500,"scenario":)" +
      scenario_to_json(quick_scenario(333)) + "}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::thread stopper([&] { ts.server.shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // draining

  LineClient late = ts.connect();
  const util::Json rejected = rpc(
      late, R"({"op":"run","id":"d1","scenario":)" +
                scenario_to_json(quick_scenario(3, 5.0)) + "}");
  EXPECT_EQ(error_kind(rejected), "shutting-down");

  // The in-flight response is still flushed before the server exits.
  const std::optional<std::string> line = client.recv_line(30000.0);
  ASSERT_TRUE(line.has_value());
  const std::optional<util::Json> json = util::Json::parse(*line);
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ(error_kind(*json), "deadline-exceeded");

  stopper.join();
  EXPECT_FALSE(ts.server.running());
}

TEST(Server, DisconnectCancelsThatClientsRuns) {
  ServerConfig config = basic_config();
  config.workers = 1;
  TestServer ts(config);
  {
    LineClient doomed = ts.connect();
    ASSERT_TRUE(doomed.send_line(
        R"({"op":"run","id":"gone","scenario":)" +
        scenario_to_json(quick_scenario(5, 1000000.0)) + "}"));
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }  // disconnect while the (very long) run is in flight

  // The worker frees up well before the million-second run could finish.
  bool cancelled = false;
  for (int i = 0; i < 100 && !cancelled; ++i) {
    cancelled =
        ts.server.metrics_snapshot().value("serve.cancelled_disconnect") >=
        1.0;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(cancelled);
}

// ---------------------------------------------------------------------------
// Campaign runner
// ---------------------------------------------------------------------------

TEST(Campaign, MergedStatsMatchSerialSweepByteForByte) {
  TestServer ts(basic_config());
  CampaignConfig campaign;
  campaign.servers = {ts.server.config().socket_path};
  campaign.clients_per_server = 3;
  campaign.base = quick_scenario(0, 15.0);
  campaign.first_seed = 1;
  campaign.num_seeds = 10;
  const CampaignReport report = run_campaign(campaign);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.completed, 10u);
  const CampaignStats oracle =
      serial_campaign_stats(campaign.base, 1, 10, /*jobs=*/2);
  EXPECT_EQ(report.merged.digest(), oracle.digest());
}

TEST(Campaign, ShardedFaultedCampaignMatchesSerialSweep) {
  // A campaign whose base scenario runs sharded *and* impaired: every seed
  // executes the formation engine end-to-end, and the merged stats still
  // equal the serial sweep's byte for byte.
  TestServer ts(basic_config());
  CampaignConfig campaign;
  campaign.servers = {ts.server.config().socket_path};
  campaign.clients_per_server = 2;
  campaign.base = quick_scenario(0, 15.0);
  campaign.base.shards = 2;
  campaign.base.deployment.road_length_m = 800.0;
  campaign.base.deployment.aps_per_km = 10.0;
  campaign.base.impairments.schedule.ap_blackout(sec(4), sec(2), 0)
      .gateway_flap(sec(8), sec(2), fault::kAllAps);
  campaign.first_seed = 1;
  campaign.num_seeds = 4;
  const CampaignReport report = run_campaign(campaign);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.merged.digest(),
            serial_campaign_stats(campaign.base, 1, 4, /*jobs=*/2).digest());
}

TEST(Campaign, RetriesSeedReapedByWatchdog) {
  ServerConfig config = basic_config();
  config.stall_seed = 4;  // one campaign seed stalls on its first attempt
  config.stall_ms = 30000.0;
  TestServer ts(config);
  CampaignConfig campaign;
  campaign.servers = {ts.server.config().socket_path};
  campaign.clients_per_server = 2;
  campaign.base = quick_scenario(0, 15.0);
  campaign.first_seed = 1;
  campaign.num_seeds = 6;
  campaign.deadline_ms = 200.0;
  const CampaignReport report = run_campaign(campaign);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.completed, 6u);
  EXPECT_GE(report.retries, 1u);
  EXPECT_EQ(ts.server.metrics_snapshot().value("serve.watchdog_reaps"), 1.0);
  EXPECT_EQ(report.merged.digest(),
            serial_campaign_stats(campaign.base, 1, 6).digest());
}

TEST(Campaign, JournalResumeSkipsCompletedSeeds) {
  const std::string journal = "tj" + std::to_string(::getpid()) + ".jsonl";
  std::remove(journal.c_str());
  TestServer ts(basic_config());

  CampaignConfig first;
  first.servers = {ts.server.config().socket_path};
  first.base = quick_scenario(0, 15.0);
  first.first_seed = 1;
  first.num_seeds = 4;
  first.journal_path = journal;
  EXPECT_TRUE(run_campaign(first).ok());

  // Same journal, wider seed range: the four finished seeds come from the
  // journal, only the new ones hit the server.
  CampaignConfig second = first;
  second.num_seeds = 8;
  const CampaignReport report = run_campaign(second);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.resumed, 4u);
  EXPECT_EQ(report.completed, 8u);
  EXPECT_EQ(report.merged.digest(),
            serial_campaign_stats(first.base, 1, 8).digest());
  std::remove(journal.c_str());
}

TEST(Campaign, FailsOverFromDeadServer) {
  TestServer ts(basic_config());
  CampaignConfig campaign;
  campaign.servers = {"no-such-server.sock",
                      ts.server.config().socket_path};
  campaign.base = quick_scenario(0, 15.0);
  campaign.first_seed = 1;
  campaign.num_seeds = 6;
  const CampaignReport report = run_campaign(campaign);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.completed, 6u);
  EXPECT_EQ(report.merged.digest(),
            serial_campaign_stats(campaign.base, 1, 6).digest());
}

TEST(Campaign, NoServersMarksEverySeedFailed) {
  CampaignConfig campaign;
  campaign.base = quick_scenario(0, 15.0);
  campaign.num_seeds = 3;
  const CampaignReport report = run_campaign(campaign);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failures.size(), 3u);
  EXPECT_EQ(report.failures.front().kind, "unreachable");
}

}  // namespace
}  // namespace spider::serve
