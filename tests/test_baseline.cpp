#include <gtest/gtest.h>

#include <memory>

#include "baseline/fatvap.hpp"
#include "baseline/stock_wifi.hpp"
#include "core/link_manager.hpp"
#include "trace/testbed.hpp"

namespace spider::base {
namespace {

using trace::Testbed;
using trace::TestbedConfig;

phy::PropagationConfig clean_air() {
  phy::PropagationConfig pc;
  pc.base_loss = 0.02;
  pc.good_radius_m = 90;
  pc.range_m = 100;
  return pc;
}

net::DhcpServerConfig fast_dhcp() {
  net::DhcpServerConfig d;
  d.offer_delay_min = msec(50);
  d.offer_delay_median = msec(150);
  d.offer_delay_max = msec(300);
  return d;
}

struct BaselineWorld : ::testing::Test {
  TestbedConfig tc;
  std::unique_ptr<Testbed> bed;

  void SetUp() override {
    tc.seed = 5;
    tc.propagation = clean_air();
    bed = std::make_unique<Testbed>(tc);
  }

  Testbed::ApBundle& add_ap(wire::Channel ch, Position pos) {
    Testbed::ApSpec spec;
    spec.channel = ch;
    spec.position = pos;
    spec.dhcp = fast_dhcp();
    return bed->add_ap(spec);
  }
};

TEST_F(BaselineWorld, StockScansJoinsStrongestAp) {
  add_ap(1, {60, 0});
  auto& near_ap = add_ap(6, {10, 0});
  StockWifiDriver stock(bed->sim, bed->medium, bed->next_client_mac_block(),
                        [] { return Position{0, 0}; }, StockConfig{},
                        bed->server_ip());
  int ups = 0;
  stock.set_callbacks({.on_link_up = [&](core::VirtualInterface&) { ++ups; }});
  stock.start();
  bed->sim.run_until(sec(15));
  EXPECT_EQ(ups, 1);
  EXPECT_TRUE(stock.link_up());
  ASSERT_FALSE(stock.join_log().empty());
  EXPECT_EQ(stock.join_log().front().bssid, near_ap.ap->bssid());
  EXPECT_EQ(stock.scans_performed(), 1u);
}

TEST_F(BaselineWorld, StockRescansWhenNothingFound) {
  StockWifiDriver stock(bed->sim, bed->medium, bed->next_client_mac_block(),
                        [] { return Position{0, 0}; }, StockConfig{},
                        bed->server_ip());
  stock.start();
  bed->sim.run_until(sec(20));
  EXPECT_FALSE(stock.link_up());
  EXPECT_GT(stock.scans_performed(), 3u);
}

TEST_F(BaselineWorld, StockLockChannelOnlySeesThatChannel) {
  add_ap(1, {10, 0});
  StockConfig cfg;
  cfg.lock_channel = 6;
  StockWifiDriver stock(bed->sim, bed->medium, bed->next_client_mac_block(),
                        [] { return Position{0, 0}; }, cfg, bed->server_ip());
  stock.start();
  bed->sim.run_until(sec(10));
  EXPECT_FALSE(stock.link_up());  // the only AP is on channel 1
}

TEST_F(BaselineWorld, StockRecoversAfterLinkDeath) {
  auto pos = std::make_shared<Position>(Position{10, 0});
  add_ap(6, {0, 0});
  StockWifiDriver stock(bed->sim, bed->medium, bed->next_client_mac_block(),
                        [pos] { return *pos; }, StockConfig{},
                        bed->server_ip());
  int ups = 0, downs = 0;
  stock.set_callbacks({
      .on_link_up = [&](core::VirtualInterface&) { ++ups; },
      .on_link_down = [&](core::VirtualInterface&) { ++downs; },
  });
  stock.start();
  bed->sim.run_until(sec(10));
  ASSERT_EQ(ups, 1);

  *pos = Position{5000, 0};
  bed->sim.run_until(sec(25));
  EXPECT_EQ(downs, 1);

  *pos = Position{10, 0};
  bed->sim.run_until(sec(60));
  EXPECT_EQ(ups, 2);  // rescanned and rejoined
}

TEST_F(BaselineWorld, StockSingleInterfaceOnly) {
  add_ap(6, {10, 0});
  add_ap(6, {-10, 0});
  StockWifiDriver stock(bed->sim, bed->medium, bed->next_client_mac_block(),
                        [] { return Position{0, 0}; }, StockConfig{},
                        bed->server_ip());
  stock.start();
  bed->sim.run_until(sec(15));
  EXPECT_EQ(stock.num_interfaces(), 1u);
  EXPECT_TRUE(stock.link_up());  // exactly one AP held, by construction
}

core::SpiderConfig fat_stack(std::size_t ifaces = 3) {
  core::SpiderConfig c;
  c.num_interfaces = ifaces;
  c.dhcp = {.retx_timeout = msec(500), .max_sends = 6};
  c.e2e_timeout = sec(6);
  c.join_deadline = sec(20);
  return c;
}

TEST_F(BaselineWorld, FatVapJoinsMultipleAps) {
  add_ap(6, {10, 0});
  add_ap(6, {-10, 0});
  FatVapDriver fat(bed->sim, bed->medium, bed->next_client_mac_block(),
                   [] { return Position{0, 0}; }, fat_stack(), FatVapConfig{});
  core::LinkManager manager(fat, bed->server_ip());
  fat.start();
  manager.start();
  bed->sim.run_until(sec(40));
  EXPECT_EQ(manager.links_up(), 2u);
  EXPECT_GT(fat.slot_cycles(), 10u);
}

TEST_F(BaselineWorld, FatVapSlotReservationBlocksSiblings) {
  // Two APs on the SAME channel: FatVAP still time-slices between them
  // (that is the pathology Spider's Design Choice 1 removes). While one
  // interface owns the slot, the other one's mgmt traffic is gated.
  add_ap(6, {10, 0});
  add_ap(6, {-10, 0});
  FatVapDriver fat(bed->sim, bed->medium, bed->next_client_mac_block(),
                   [] { return Position{0, 0}; }, fat_stack(2), FatVapConfig{});
  core::LinkManager manager(fat, bed->server_ip());
  fat.start();
  manager.start();
  bed->sim.run_until(sec(40));
  // Joins complete eventually, but the per-AP slotting forces real slot
  // cycling even though zero channel switches would be needed.
  EXPECT_EQ(manager.links_up(), 2u);
  EXPECT_GT(fat.slot_cycles(), 20u);
}

TEST_F(BaselineWorld, FatVapScansWhenIdle) {
  FatVapDriver fat(bed->sim, bed->medium, bed->next_client_mac_block(),
                   [] { return Position{0, 0}; }, fat_stack(), FatVapConfig{});
  fat.start();
  bed->sim.run_until(sec(5));
  // No APs: the driver rotates channels; the radio has switched plenty.
  EXPECT_GT(fat.radio().switches_performed(), 10u);
}

}  // namespace
}  // namespace spider::base
