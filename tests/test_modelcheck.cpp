// Randomised model checks: run a component against a trivially-correct
// reference implementation over many random operation sequences. Plus
// tests for the hand-off tracker.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/event_queue.hpp"
#include "trace/handoff.hpp"
#include "transport/tcp.hpp"
#include "util/random.hpp"

namespace spider {
namespace {

// ---------------------------------------------------------------------------
// EventQueue vs a reference (multimap-based) priority queue.

class EventQueueModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueModel, MatchesReferenceUnderRandomOps) {
  Rng rng(GetParam());
  sim::EventQueue queue;
  // Reference: ordered (time, seq) -> id; fired ids in order.
  std::multimap<std::pair<std::int64_t, int>, int> reference;
  std::vector<std::pair<int, sim::EventHandle>> live;
  std::vector<int> fired, expected;
  int next_id = 0, next_seq = 0;

  for (int op = 0; op < 2000; ++op) {
    const double dice = rng.uniform(0, 1);
    if (dice < 0.5) {
      // Push at a random time.
      const std::int64_t when = rng.uniform_int(0, 5000);
      const int id = next_id++;
      auto handle = queue.push(Time{when}, [&fired, id] { fired.push_back(id); });
      reference.emplace(std::make_pair(when, next_seq++), id);
      live.emplace_back(id, handle);
    } else if (dice < 0.65 && !live.empty()) {
      // Cancel a random live event.
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      live[idx].second.cancel();
      for (auto it = reference.begin(); it != reference.end(); ++it) {
        if (it->second == live[idx].first) {
          reference.erase(it);
          break;
        }
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (!queue.empty()) {
      // Pop one.
      queue.pop_and_run();
      ASSERT_FALSE(reference.empty());
      const int id = reference.begin()->second;
      expected.push_back(id);
      reference.erase(reference.begin());
      std::erase_if(live, [id](const auto& e) { return e.first == id; });
    }
  }
  while (!queue.empty()) {
    queue.pop_and_run();
    ASSERT_FALSE(reference.empty());
    expected.push_back(reference.begin()->second);
    reference.erase(reference.begin());
  }
  EXPECT_EQ(fired, expected);
  EXPECT_TRUE(reference.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModel,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// TcpReceiver vs a reference reassembly buffer under random segment
// delivery (loss, duplication, reordering).

class TcpReceiverModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpReceiverModel, ReassemblyMatchesReference) {
  Rng rng(GetParam());
  std::uint64_t delivered = 0;
  std::uint32_t last_ack = 0;
  tcp::TcpReceiver rx(
      1, wire::Ipv4(2, 2, 2, 2), wire::Ipv4(1, 1, 1, 1),
      [&](wire::PacketPtr p) { last_ack = p->as<wire::TcpSegment>()->ack; },
      [&](std::size_t b) { delivered += b; });

  constexpr std::uint32_t kSeg = 100;
  constexpr int kTotal = 200;
  // Reference: the set of segment indices delivered at least once.
  std::vector<bool> arrived(kTotal, false);

  // Random delivery order with duplicates and losses, then a cleanup pass.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kTotal; ++i) {
      if (rng.chance(0.4)) continue;  // lost this round
      const int idx = static_cast<int>(rng.uniform_int(0, kTotal - 1));
      wire::TcpSegment seg;
      seg.conn_id = 1;
      seg.seq = static_cast<std::uint32_t>(idx) * kSeg;
      seg.payload_bytes = kSeg;
      rx.on_segment(seg);
      arrived[static_cast<std::size_t>(idx)] = true;
    }
  }
  // Reference prefix: first gap among arrived segments.
  std::uint32_t ref_prefix = 0;
  while (ref_prefix < kTotal && arrived[ref_prefix]) ++ref_prefix;

  EXPECT_EQ(rx.bytes_delivered(), ref_prefix * kSeg);
  EXPECT_EQ(delivered, ref_prefix * kSeg);
  EXPECT_EQ(last_ack, ref_prefix * kSeg);

  // Fill every hole: everything must flush, exactly once.
  for (int i = 0; i < kTotal; ++i) {
    wire::TcpSegment seg;
    seg.conn_id = 1;
    seg.seq = static_cast<std::uint32_t>(i) * kSeg;
    seg.payload_bytes = kSeg;
    rx.on_segment(seg);
  }
  EXPECT_EQ(rx.bytes_delivered(), static_cast<std::uint64_t>(kTotal) * kSeg);
  EXPECT_EQ(delivered, static_cast<std::uint64_t>(kTotal) * kSeg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpReceiverModel,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// HandoffTracker

TEST(Handoff, SoftWhenLinksOverlap) {
  sim::Simulator sim;
  trace::HandoffTracker t(sim);
  // A up, B up, A down while B lives (soft), B down, C up 5 s later (hard).
  t.record_link_up();                                  // A @0
  sim.run_until(sec(10));
  t.record_link_up();                                  // B @10
  sim.run_until(sec(12));
  t.record_link_down();                                // A @12: soft
  sim.run_until(sec(20));
  t.record_link_down();                                // B @20
  sim.run_until(sec(25));
  t.record_link_up();                                  // C @25: 5 s gap
  auto s = t.summarize();
  EXPECT_EQ(s.handoffs, 2u);
  EXPECT_EQ(s.soft, 1u);
  EXPECT_DOUBLE_EQ(s.soft_fraction, 0.5);
  ASSERT_EQ(s.gap_seconds.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gap_seconds.quantile(0.5), 5.0);
}

TEST(Handoff, TrailingOutageNotCounted) {
  sim::Simulator sim;
  trace::HandoffTracker t(sim);
  t.record_link_up();
  sim.run_until(sec(10));
  t.record_link_down();  // never comes back
  auto s = t.summarize();
  EXPECT_EQ(s.handoffs, 0u);
  EXPECT_TRUE(s.gap_seconds.empty());
}

TEST(Handoff, EmptySummary) {
  sim::Simulator sim;
  trace::HandoffTracker t(sim);
  const auto s = t.summarize();
  EXPECT_EQ(s.handoffs, 0u);
  EXPECT_EQ(s.soft, 0u);
  EXPECT_DOUBLE_EQ(s.soft_fraction, 0.0);
  EXPECT_TRUE(s.gap_seconds.empty());
}

TEST(Handoff, ConsecutiveHardHandoffs) {
  sim::Simulator sim;
  trace::HandoffTracker t(sim);
  for (int i = 0; i < 5; ++i) {
    t.record_link_up();
    sim.run_until(sim.now() + sec(10));
    t.record_link_down();
    sim.run_until(sim.now() + sec(2));
  }
  t.record_link_up();  // close the last gap
  auto s = t.summarize();
  EXPECT_EQ(s.handoffs, 5u);
  EXPECT_EQ(s.soft, 0u);
  EXPECT_DOUBLE_EQ(s.gap_seconds.quantile(0.5), 2.0);
}

}  // namespace
}  // namespace spider
