// Failure-injection tests: broken infrastructure the stack must survive —
// captive portals, exhausted DHCP pools, full APs, vanishing coverage.

#include <gtest/gtest.h>

#include "core/link_manager.hpp"
#include "core/spider_driver.hpp"
#include "trace/experiment.hpp"
#include "trace/testbed.hpp"

namespace spider {
namespace {

trace::TestbedConfig quiet_air(std::uint64_t seed) {
  trace::TestbedConfig tc;
  tc.seed = seed;
  tc.propagation.base_loss = 0.02;
  tc.propagation.good_radius_m = 90;
  return tc;
}

net::DhcpServerConfig quick_dhcp() {
  net::DhcpServerConfig d;
  d.offer_delay_min = msec(50);
  d.offer_delay_median = msec(150);
  d.offer_delay_max = msec(400);
  return d;
}

core::SpiderConfig one_iface() {
  core::SpiderConfig c;
  c.num_interfaces = 1;
  c.mode = core::OperationMode::single(6);
  c.dhcp = {.retx_timeout = msec(500), .max_sends = 4};
  return c;
}

TEST(Failure, CaptivePortalDetectedByE2eTest) {
  trace::Testbed bed(quiet_air(31));
  trace::Testbed::ApSpec spec;
  spec.channel = 6;
  spec.position = {20, 0};
  spec.dhcp = quick_dhcp();
  spec.internet_connected = false;  // the captive portal
  bed.add_ap(spec);

  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; }, one_iface());
  core::LinkManager manager(driver, bed.server_ip());
  driver.start();
  manager.start();
  bed.sim.run_until(sec(20));

  // Association and DHCP succeed — only the connectivity test catches it.
  EXPECT_EQ(manager.links_up(), 0u);
  ASSERT_FALSE(manager.join_log().empty());
  const auto& rec = manager.join_log().front();
  EXPECT_TRUE(rec.assoc_delay.has_value());
  EXPECT_TRUE(rec.dhcp_delay.has_value());
  EXPECT_FALSE(rec.e2e_delay.has_value());
  EXPECT_EQ(rec.outcome, core::JoinOutcome::kDhcpBound);
  // The failure degrades the AP's utility below the bootstrap value.
  EXPECT_LT(manager.selector().utility(rec.bssid), 1.0);
}

TEST(Failure, CaptivePortalGatewayStillPings) {
  // With a null ping target the prober falls back to the gateway, which a
  // captive portal does answer — the link then *looks* up. This is why
  // end-to-end probing is the default.
  trace::Testbed bed(quiet_air(32));
  trace::Testbed::ApSpec spec;
  spec.channel = 6;
  spec.position = {20, 0};
  spec.dhcp = quick_dhcp();
  spec.internet_connected = false;
  bed.add_ap(spec);

  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; }, one_iface());
  core::LinkManager manager(driver, wire::Ipv4());  // gateway probing
  driver.start();
  manager.start();
  bed.sim.run_until(sec(20));
  EXPECT_EQ(manager.links_up(), 1u);  // fooled, as a gateway-pinging stack is
  ASSERT_FALSE(manager.join_log().empty());
  const auto& rec = manager.join_log().front();
  EXPECT_TRUE(rec.finished);
  EXPECT_EQ(rec.outcome, core::JoinOutcome::kEndToEnd);  // believes its probe
}

TEST(Failure, DhcpPoolExhaustionFailsJoin) {
  trace::Testbed bed(quiet_air(33));
  trace::Testbed::ApSpec spec;
  spec.channel = 6;
  spec.position = {20, 0};
  spec.dhcp = quick_dhcp();
  spec.dhcp.first_host = 10;
  spec.dhcp.last_host = 10;  // one address
  auto& ap = bed.add_ap(spec);

  // Fill the single slot with a competing client.
  core::SpiderDriver first(bed.sim, bed.medium, bed.next_client_mac_block(),
                           [] { return Position{0, 5}; }, one_iface());
  core::LinkManager first_mgr(first, bed.server_ip());
  first.start();
  first_mgr.start();
  bed.sim.run_until(sec(10));
  ASSERT_EQ(first_mgr.links_up(), 1u);
  ASSERT_FALSE(first_mgr.join_log().empty());
  EXPECT_EQ(first_mgr.join_log().front().outcome, core::JoinOutcome::kEndToEnd);

  core::SpiderDriver second(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, -5}; }, one_iface());
  core::LinkManager second_mgr(second, bed.server_ip());
  second.start();
  second_mgr.start();
  bed.sim.run_until(sec(30));
  EXPECT_EQ(second_mgr.links_up(), 0u);
  bool saw_dhcp_failure = false;
  for (const auto& rec : second_mgr.join_log()) {
    saw_dhcp_failure |= rec.finished &&
                        rec.outcome == core::JoinOutcome::kAssocOnly;
    EXPECT_NE(rec.outcome, core::JoinOutcome::kEndToEnd);  // never got online
  }
  EXPECT_TRUE(saw_dhcp_failure);
  EXPECT_EQ(ap.network->dhcp().leases_outstanding(), 1u);
}

TEST(Failure, FullApDeniesAndSpiderMovesOn) {
  trace::Testbed bed(quiet_air(34));
  trace::Testbed::ApSpec full;
  full.channel = 6;
  full.position = {20, 0};
  full.dhcp = quick_dhcp();
  full.mac.max_clients = 1;
  auto& ap_full = bed.add_ap(full);

  trace::Testbed::ApSpec open = full;
  open.position = {-20, 0};
  open.mac.max_clients = 32;
  bed.add_ap(open);

  // Occupy the small AP.
  core::SpiderDriver squatter(bed.sim, bed.medium, bed.next_client_mac_block(),
                              [] { return Position{15, 5}; }, one_iface());
  core::LinkManager squatter_mgr(squatter, bed.server_ip());
  squatter.start();
  squatter_mgr.start();
  bed.sim.run_until(sec(10));
  ASSERT_EQ(squatter_mgr.links_up(), 1u);
  ASSERT_EQ(squatter_mgr.join_log().front().bssid, ap_full.ap->bssid());
  EXPECT_EQ(squatter_mgr.join_log().front().outcome,
            core::JoinOutcome::kEndToEnd);

  // The newcomer gets denied there but lands on the other AP.
  core::SpiderConfig cfg = one_iface();
  cfg.num_interfaces = 2;
  core::SpiderDriver newcomer(bed.sim, bed.medium, bed.next_client_mac_block(),
                              [] { return Position{0, 0}; }, cfg);
  core::LinkManager newcomer_mgr(newcomer, bed.server_ip());
  newcomer.start();
  newcomer_mgr.start();
  bed.sim.run_until(sec(40));
  EXPECT_GE(newcomer_mgr.links_up(), 1u);
  EXPECT_GE(ap_full.ap->assoc_denials(), 1u);
  bool newcomer_online = false;
  for (const auto& rec : newcomer_mgr.join_log()) {
    newcomer_online |= rec.outcome == core::JoinOutcome::kEndToEnd;
  }
  EXPECT_TRUE(newcomer_online);
}

TEST(Failure, AllDeadTownTransfersNothing) {
  trace::ScenarioConfig cfg;
  cfg.seed = 35;
  cfg.duration = sec(180);
  cfg.deployment.road_length_m = 1200;
  cfg.deployment.aps_per_km = 10;
  cfg.deployment.dead_backhaul_fraction = 1.0;
  cfg.spider.mode = core::OperationMode::single(6);
  cfg.spider.dhcp = {.retx_timeout = msec(400), .max_sends = 4};
  const auto result = trace::run_scenario(cfg);
  EXPECT_EQ(result.total_bytes, 0u);
  EXPECT_EQ(result.e2e_succeeded, 0u);
  EXPECT_GT(result.dhcp_succeeded, 0u);  // portals do hand out leases
}

TEST(Failure, HalfDeadTownStillTransfers) {
  trace::ScenarioConfig cfg;
  cfg.seed = 36;
  cfg.duration = sec(240);
  cfg.deployment.road_length_m = 1200;
  cfg.deployment.aps_per_km = 12;
  cfg.deployment.dead_backhaul_fraction = 0.5;
  cfg.spider.mode = core::OperationMode::single(6);
  cfg.spider.dhcp = {.retx_timeout = msec(400), .max_sends = 4};
  const auto result = trace::run_scenario(cfg);
  EXPECT_GT(result.total_bytes, 0u);
  EXPECT_GT(result.e2e_succeeded, 0u);
  EXPECT_LT(result.e2e_succeeded, result.dhcp_succeeded);
}

TEST(Failure, LeaseRenewalKeepsLongLinkAlive) {
  trace::Testbed bed(quiet_air(37));
  trace::Testbed::ApSpec spec;
  spec.channel = 6;
  spec.position = {20, 0};
  spec.dhcp = quick_dhcp();
  spec.dhcp.lease_duration = sec(30);  // short lease: forces renewals
  auto& ap = bed.add_ap(spec);

  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; }, one_iface());
  core::LinkManager manager(driver, bed.server_ip());
  driver.start();
  manager.start();
  bed.sim.run_until(sec(10));
  ASSERT_EQ(manager.links_up(), 1u);
  const auto acks_before = ap.network->dhcp().acks_sent();

  // Three lease lifetimes later the link is still up, renewed in place.
  bed.sim.run_until(sec(100));
  EXPECT_EQ(manager.links_up(), 1u);
  EXPECT_GT(ap.network->dhcp().acks_sent(), acks_before + 1);
  EXPECT_EQ(manager.joins_attempted(), 1u);  // no re-join happened
  ASSERT_FALSE(manager.join_log().empty());
  EXPECT_TRUE(manager.join_log().front().finished);
  EXPECT_EQ(manager.join_log().front().outcome, core::JoinOutcome::kEndToEnd);
}

TEST(Failure, ReleasedAddressIsReusable) {
  trace::Testbed bed(quiet_air(38));
  trace::Testbed::ApSpec spec;
  spec.channel = 6;
  spec.position = {20, 0};
  spec.dhcp = quick_dhcp();
  spec.dhcp.first_host = 10;
  spec.dhcp.last_host = 10;
  auto& ap = bed.add_ap(spec);

  // A captive-portal-free AP, but we make the first client's join fail at
  // the e2e stage by pointing it at an unroutable ping target — its
  // teardown must RELEASE the single address for the second client.
  core::SpiderDriver first(bed.sim, bed.medium, bed.next_client_mac_block(),
                           [] { return Position{0, 5}; }, one_iface());
  core::LinkManager first_mgr(first, wire::Ipv4(9, 9, 9, 9));
  first.start();
  first_mgr.start();
  bed.sim.run_until(sec(10));
  ASSERT_EQ(first_mgr.links_up(), 0u);
  EXPECT_GE(ap.network->dhcp().releases_received(), 1u);
  EXPECT_EQ(ap.network->dhcp().leases_outstanding(), 0u);
  ASSERT_FALSE(first_mgr.join_log().empty());
  EXPECT_EQ(first_mgr.join_log().front().outcome,
            core::JoinOutcome::kDhcpBound);  // bound, then e2e test failed

  core::SpiderDriver second(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, -5}; }, one_iface());
  core::LinkManager second_mgr(second, bed.server_ip());
  second.start();
  second_mgr.start();
  bed.sim.run_until(sec(30));
  EXPECT_EQ(second_mgr.links_up(), 1u);
  bool second_online = false;
  for (const auto& rec : second_mgr.join_log()) {
    second_online |= rec.outcome == core::JoinOutcome::kEndToEnd;
  }
  EXPECT_TRUE(second_online);
}

}  // namespace
}  // namespace spider
