// White-box tests of the drivers' scheduling internals: per-channel queue
// bookkeeping, management gating, mode changes, adaptive channel tracking,
// and the FatVAP slot machinery.

#include <gtest/gtest.h>

#include "baseline/fatvap.hpp"
#include "core/adaptive.hpp"
#include "core/link_manager.hpp"
#include "core/spider_driver.hpp"
#include "trace/testbed.hpp"

namespace spider {
namespace {

trace::TestbedConfig quiet_air(std::uint64_t seed = 41) {
  trace::TestbedConfig tc;
  tc.seed = seed;
  tc.propagation.base_loss = 0.02;
  tc.propagation.good_radius_m = 90;
  return tc;
}

net::DhcpServerConfig quick_dhcp() {
  net::DhcpServerConfig d;
  d.offer_delay_min = msec(50);
  d.offer_delay_median = msec(150);
  d.offer_delay_max = msec(400);
  return d;
}

core::SpiderConfig spider_cfg(core::OperationMode mode, std::size_t ifaces = 2) {
  core::SpiderConfig c;
  c.num_interfaces = ifaces;
  c.mode = std::move(mode);
  c.dhcp = {.retx_timeout = msec(500), .max_sends = 4};
  return c;
}

TEST(DriverInternals, SendDataWithoutBssidCountsAsDrop) {
  trace::Testbed bed(quiet_air());
  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; },
                            spider_cfg(core::OperationMode::single(6)));
  auto pkt = wire::make_icmp_packet(wire::Ipv4(10, 0, 0, 2),
                                    wire::Ipv4(1, 1, 1, 1), wire::IcmpEcho{});
  driver.iface(0).send_packet(pkt);  // never associated: no BSSID
  EXPECT_EQ(driver.queue_drops(), 1u);
}

TEST(DriverInternals, UnscheduledChannelTrafficDropped) {
  trace::Testbed bed(quiet_air());
  trace::Testbed::ApSpec spec;
  spec.channel = 6;
  spec.position = {20, 0};
  spec.dhcp = quick_dhcp();
  bed.add_ap(spec);
  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; },
                            spider_cfg(core::OperationMode::single(6)));
  core::LinkManager manager(driver, bed.server_ip());
  driver.start();
  manager.start();
  bed.sim.run_until(sec(10));
  ASSERT_TRUE(driver.iface(0).up());

  // The mode abandons channel 6: in-flight traffic for it must be dropped,
  // not silently queued forever.
  driver.set_mode(core::OperationMode::single(1));
  const auto drops_before = driver.queue_drops();
  auto pkt = wire::make_icmp_packet(driver.iface(0).ip(), bed.server_ip(),
                                    wire::IcmpEcho{});
  driver.iface(0).send_packet(pkt);
  EXPECT_GT(driver.queue_drops(), drops_before);
}

TEST(DriverInternals, ChannelQueueBounded) {
  trace::Testbed bed(quiet_air());
  trace::Testbed::ApSpec spec;
  spec.channel = 6;
  spec.position = {20, 0};
  spec.dhcp = quick_dhcp();
  bed.add_ap(spec);
  auto cfg = spider_cfg(core::OperationMode::weighted({{6, 0.5}, {1, 0.5}},
                                                      msec(400)));
  cfg.channel_queue_limit = 10;
  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; }, cfg);
  core::LinkManager manager(driver, bed.server_ip());
  driver.start();
  manager.start();
  bed.sim.run_until(sec(10));
  ASSERT_TRUE(driver.iface(0).up());

  // Stuff the channel-6 queue while the card sits on channel 1.
  while (driver.channel_active(6)) bed.sim.run_until(bed.sim.now() + msec(10));
  const auto drops_before = driver.queue_drops();
  auto pkt = wire::make_icmp_packet(driver.iface(0).ip(), bed.server_ip(),
                                    wire::IcmpEcho{});
  for (int i = 0; i < 40; ++i) driver.iface(0).send_packet(pkt);
  EXPECT_GE(driver.queue_drops(), drops_before + 25);
}

TEST(DriverInternals, SendMgmtGatedOnActiveChannel) {
  trace::Testbed bed(quiet_air());
  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; },
                            spider_cfg(core::OperationMode::single(6)));
  driver.start();
  bed.sim.run_until(msec(100));
  wire::Frame f;
  f.type = wire::FrameType::kAuthRequest;
  f.src = driver.iface(0).mac();
  f.size_bytes = wire::kMgmtFrameBytes;
  EXPECT_TRUE(driver.send_mgmt(f, 6));
  EXPECT_FALSE(driver.send_mgmt(f, 11));  // card is on 6
}

TEST(DriverInternals, ProbeRequestsGoOutPeriodically) {
  trace::Testbed bed(quiet_air());
  trace::Testbed::ApSpec spec;
  spec.channel = 6;
  spec.position = {20, 0};
  spec.dhcp = quick_dhcp();
  auto& ap = bed.add_ap(spec);
  (void)ap;

  // A probe-sniffing radio on the same channel.
  phy::Radio sniffer(bed.medium, wire::MacAddress(0xEE),
                     [] { return Position{5, 0}; });
  int probes = 0;
  sniffer.set_receiver([&](const wire::Frame& f) {
    if (f.type == wire::FrameType::kProbeRequest) ++probes;
  });
  sniffer.tune(6);

  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; },
                            spider_cfg(core::OperationMode::single(6)));
  driver.start();
  bed.sim.run_until(sec(5));
  // Default probe interval 500 ms: ~10 probes in 5 s.
  EXPECT_NEAR(probes, 10, 3);
}

TEST(DriverInternals, SlotTimeSharesFollowFractions) {
  trace::Testbed bed(quiet_air());
  auto cfg = spider_cfg(core::OperationMode::weighted(
      {{1, 0.75}, {11, 0.25}}, msec(400)));
  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; }, cfg);
  driver.start();

  // Sample the active channel at 1 ms resolution over 20 s.
  int on1 = 0, on11 = 0, switching = 0;
  for (int ms = 1000; ms < 21000; ++ms) {
    bed.sim.run_until(msec(ms));
    if (driver.radio().switching()) {
      ++switching;
    } else if (driver.radio().channel() == 1) {
      ++on1;
    } else if (driver.radio().channel() == 11) {
      ++on11;
    }
  }
  const double f1 = static_cast<double>(on1) / (on1 + on11 + switching);
  const double f11 = static_cast<double>(on11) / (on1 + on11 + switching);
  EXPECT_NEAR(f1, 0.73, 0.04);   // 0.75 minus its share of switch overhead
  EXPECT_NEAR(f11, 0.23, 0.04);
  EXPECT_GT(switching, 0);
}

TEST(DriverInternals, AdaptiveFollowsApPopulationAcrossChannels) {
  trace::Testbed bed(quiet_air(42));
  trace::Testbed::ApSpec spec;
  spec.dhcp = quick_dhcp();
  spec.channel = 1;
  spec.position = {20, 0};
  bed.add_ap(spec);

  auto cfg = spider_cfg(core::OperationMode::equal_split({1, 6, 11}, msec(600)));
  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; }, cfg);
  core::AdaptiveConfig ac;
  ac.min_mode_hold = sec(1);
  core::AdaptiveModeController ctl(driver, [] { return 15.0; }, ac);
  driver.start();
  ctl.start();
  bed.sim.run_until(sec(10));
  ASSERT_TRUE(ctl.in_single_channel_mode());
  EXPECT_TRUE(driver.mode().includes(1));

  // The channel-1 AP "disappears" and a channel-11 one appears: the
  // controller retunes the single-channel mode to follow.
  bed.aps()[0].ap.reset();
  bed.aps()[0].network.reset();
  trace::Testbed::ApSpec spec11 = spec;
  spec11.channel = 11;
  spec11.position = {25, 0};
  bed.add_ap(spec11);
  bed.sim.run_until(sec(40));
  EXPECT_TRUE(driver.mode().includes(11));
  EXPECT_TRUE(driver.mode().single_channel());
}

TEST(DriverInternals, FatVapEqualSlotsWithoutRateWeighting) {
  trace::Testbed bed(quiet_air(43));
  trace::Testbed::ApSpec spec;
  spec.dhcp = quick_dhcp();
  spec.channel = 1;
  spec.position = {20, 0};
  bed.add_ap(spec);
  spec.channel = 11;
  spec.position = {-20, 0};
  bed.add_ap(spec);

  base::FatVapConfig fc;
  fc.rate_weighted = false;
  auto cfg = spider_cfg(core::OperationMode::single(1), 2);
  base::FatVapDriver fat(bed.sim, bed.medium, bed.next_client_mac_block(),
                         [] { return Position{0, 0}; }, cfg, fc);
  core::LinkManager manager(fat, bed.server_ip());
  fat.start();
  manager.start();
  bed.sim.run_until(sec(40));
  ASSERT_EQ(manager.links_up(), 2u);

  // With equal slots across two channels, the card splits residency.
  int on1 = 0, on11 = 0;
  for (int ms = 40000; ms < 50000; ms += 1) {
    bed.sim.run_until(msec(ms));
    if (fat.radio().switching()) continue;
    if (fat.radio().channel() == 1) ++on1;
    if (fat.radio().channel() == 11) ++on11;
  }
  const double ratio = static_cast<double>(on1) / std::max(1, on1 + on11);
  EXPECT_NEAR(ratio, 0.5, 0.1);
}

TEST(DriverInternals, FatVapQueuesPerInterfaceWhileNotSlotOwner) {
  trace::Testbed bed(quiet_air(44));
  trace::Testbed::ApSpec spec;
  spec.dhcp = quick_dhcp();
  spec.channel = 6;
  spec.position = {20, 0};
  bed.add_ap(spec);
  spec.position = {-20, 0};
  bed.add_ap(spec);

  auto cfg = spider_cfg(core::OperationMode::single(6), 2);
  base::FatVapDriver fat(bed.sim, bed.medium, bed.next_client_mac_block(),
                         [] { return Position{0, 0}; }, cfg,
                         base::FatVapConfig{});
  core::LinkManager manager(fat, bed.server_ip());
  fat.start();
  manager.start();
  bed.sim.run_until(sec(40));
  ASSERT_EQ(manager.links_up(), 2u);
  // Both interfaces completed joins under slotting; the per-AP queues
  // never overflowed with just liveness traffic.
  EXPECT_EQ(fat.queue_drops(), 0u);
  EXPECT_GT(fat.slot_cycles(), 50u);
}

TEST(DriverInternals, RadioDropCounterDuringSwitch) {
  trace::Testbed bed(quiet_air(45));
  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; },
                            spider_cfg(core::OperationMode::equal_split(
                                {1, 6, 11}, msec(60))));
  driver.start();
  bed.sim.run_until(sec(10));
  // A frantic schedule (15 ms dwells after overhead) switches constantly;
  // the scanner's probes sometimes land mid-reset and are counted.
  EXPECT_GT(driver.radio().switches_performed(), 300u);
}

TEST(DriverInternals, BeaconTimAdvertisesBufferedTraffic) {
  trace::Testbed bed(quiet_air(46));
  trace::Testbed::ApSpec spec;
  spec.channel = 6;
  spec.position = {20, 0};
  spec.dhcp = quick_dhcp();
  auto& ap = bed.add_ap(spec);

  // Sniffer records beacon TIMs.
  std::vector<std::size_t> tim_sizes;
  phy::Radio sniffer(bed.medium, wire::MacAddress(0xEF),
                     [] { return Position{5, 0}; });
  sniffer.set_receiver([&](const wire::Frame& f) {
    if (f.type == wire::FrameType::kBeacon) tim_sizes.push_back(f.tim_aids.size());
  });
  sniffer.tune(6);

  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; },
                            spider_cfg(core::OperationMode::single(6), 1));
  core::LinkManager manager(driver, bed.server_ip());
  driver.start();
  manager.start();
  bed.sim.run_until(sec(10));
  ASSERT_TRUE(driver.iface(0).up());

  // Put the client in power-save and buffer a downlink packet: the next
  // beacons must advertise its AID.
  wire::Frame psm;
  psm.type = wire::FrameType::kNullData;
  psm.src = driver.iface(0).mac();
  psm.dst = ap.ap->bssid();
  psm.bssid = ap.ap->bssid();
  psm.power_mgmt = true;
  psm.size_bytes = wire::kNullFrameBytes;
  driver.radio().send(psm);
  bed.sim.run_until(sec(10) + msec(50));
  tim_sizes.clear();
  ap.ap->deliver_to_client(
      driver.iface(0).mac(),
      wire::make_icmp_packet(wire::Ipv4(10, 0, 0, 1), driver.iface(0).ip(),
                             wire::IcmpEcho{}));
  bed.sim.run_until(sec(11));
  ASSERT_FALSE(tim_sizes.empty());
  bool advertised = false;
  for (auto n : tim_sizes) advertised |= n > 0;
  EXPECT_TRUE(advertised);
}

TEST(DriverInternals, PsPollModeStillDownloads) {
  trace::Testbed bed(quiet_air(47));
  trace::Testbed::ApSpec spec;
  spec.channel = 6;
  spec.position = {20, 0};
  spec.backhaul = mbps(2);
  spec.dhcp = quick_dhcp();
  bed.add_ap(spec);

  auto cfg = spider_cfg(core::OperationMode::weighted({{6, 0.5}, {1, 0.5}},
                                                      msec(400)), 1);
  cfg.psm_retrieval = core::PsmRetrieval::kPsPoll;
  core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                            [] { return Position{0, 0}; }, cfg);
  core::LinkManager manager(driver, bed.server_ip());
  trace::ThroughputRecorder rec;
  trace::DownloadHarness harness(bed.sim, bed.server_ip(), rec);
  harness.attach(manager);
  driver.start();
  manager.start();
  bed.sim.run_until(sec(40));
  ASSERT_TRUE(driver.iface(0).up());
  EXPECT_GT(rec.total_bytes(), 10'000u);  // trickles, but flows
}

TEST(DriverInternals, WakeModeOutpacesPsPoll) {
  // Fast link + short dwells: the regime where per-frame polling hurts
  // most (the ablation bench shows ~14x here, ~2x at long dwells).
  auto run = [](core::PsmRetrieval retrieval) {
    trace::Testbed bed(quiet_air(48));
    trace::Testbed::ApSpec spec;
    spec.channel = 6;
    spec.position = {20, 0};
    spec.backhaul = mbps(4);
    spec.dhcp = quick_dhcp();
    bed.add_ap(spec);
    auto cfg = spider_cfg(core::OperationMode::weighted({{6, 0.5}, {1, 0.5}},
                                                        msec(100)), 1);
    cfg.psm_retrieval = retrieval;
    core::SpiderDriver driver(bed.sim, bed.medium, bed.next_client_mac_block(),
                              [] { return Position{0, 0}; }, cfg);
    core::LinkManager manager(driver, bed.server_ip());
    trace::ThroughputRecorder rec;
    trace::DownloadHarness harness(bed.sim, bed.server_ip(), rec);
    harness.attach(manager);
    driver.start();
    manager.start();
    bed.sim.run_until(sec(40));
    return rec.total_bytes();
  };
  // The wake path clearly outpaces per-frame polling (the ablation bench
  // shows 1.8-14x depending on dwell; assert a conservative margin).
  EXPECT_GT(static_cast<double>(run(core::PsmRetrieval::kWakeNull)),
            1.3 * static_cast<double>(run(core::PsmRetrieval::kPsPoll)));
}

}  // namespace
}  // namespace spider
