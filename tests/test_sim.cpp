#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace spider::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(msec(30), [&] { order.push_back(3); });
  q.push(msec(10), [&] { order.push_back(1); });
  q.push(msec(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(msec(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelledEventsSkipped) {
  EventQueue q;
  int ran = 0;
  auto h = q.push(msec(1), [&] { ++ran; });
  q.push(msec(2), [&] { ++ran; });
  h.cancel();
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, CancelAllMakesEmpty) {
  EventQueue q;
  auto a = q.push(msec(1), [] {});
  auto b = q.push(msec(2), [] {});
  a.cancel();
  b.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), Time::max());
}

TEST(EventQueue, HandleDefaultInvalid) {
  EventHandle h;
  EXPECT_FALSE(h.valid());
  h.cancel();  // must be a safe no-op
}

TEST(EventQueue, CallbackMayScheduleMore) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.push(msec(depth), recurse);
  };
  q.push(msec(0), recurse);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(depth, 5);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator s;
  Time seen{0};
  s.schedule(msec(250), [&] { seen = s.now(); });
  s.run_until(sec(1));
  EXPECT_EQ(seen, msec(250));
  EXPECT_EQ(s.now(), sec(1));  // clock lands on the deadline
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int ran = 0;
  s.schedule(msec(100), [&] { ++ran; });
  s.schedule(sec(2), [&] { ++ran; });
  s.run_until(sec(1));
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(s.pending());
  s.run_until(sec(3));
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, ScheduleAtAbsolute) {
  Simulator s;
  Time seen{-1};
  s.schedule_at(msec(700), [&] { seen = s.now(); });
  s.run_until(sec(1));
  EXPECT_EQ(seen, msec(700));
}

TEST(Simulator, StopInterruptsRun) {
  Simulator s;
  int ran = 0;
  s.schedule(msec(1), [&] {
    ++ran;
    s.stop();
  });
  s.schedule(msec(2), [&] { ++ran; });
  s.run_until(sec(1));
  EXPECT_EQ(ran, 1);
  s.run_until(sec(1));
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, EventCountTracksExecutions) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(msec(i), [] {});
  s.run_all();
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator s;
  s.schedule(msec(10), [&] {
    s.schedule(Time{0}, [&] { EXPECT_EQ(s.now(), msec(10)); });
  });
  s.run_all();
  EXPECT_EQ(s.now(), msec(10));
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulator s;
  int ticks = 0;
  PeriodicTimer t(s, msec(100), [&] { ++ticks; });
  t.start();
  s.run_until(msec(1001));
  EXPECT_EQ(ticks, 10);
}

TEST(PeriodicTimer, StopHalts) {
  Simulator s;
  int ticks = 0;
  PeriodicTimer t(s, msec(100), [&] {
    if (++ticks == 3) t.stop();
  });
  t.start();
  s.run_until(sec(5));
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTimer, RestartAfterStop) {
  Simulator s;
  int ticks = 0;
  PeriodicTimer t(s, msec(50), [&] { ++ticks; });
  t.start();
  s.run_until(msec(120));
  t.stop();
  s.run_until(msec(500));
  const int at_stop = ticks;
  t.start();
  s.run_until(msec(700));
  EXPECT_GT(ticks, at_stop);
}

TEST(PeriodicTimer, DestructionCancels) {
  Simulator s;
  int ticks = 0;
  {
    PeriodicTimer t(s, msec(10), [&] { ++ticks; });
    t.start();
    s.run_until(msec(35));
  }
  s.run_until(sec(1));
  EXPECT_EQ(ticks, 3);
}

TEST(CancelToken, FirstReasonWins) {
  CancelToken t;
  EXPECT_FALSE(t.cancel_requested());
  EXPECT_EQ(t.reason(), CancelReason::kNone);
  EXPECT_TRUE(t.request_cancel(CancelReason::kCancelled));
  EXPECT_FALSE(t.request_cancel(CancelReason::kDeadlineExceeded));
  EXPECT_EQ(t.reason(), CancelReason::kCancelled);
  EXPECT_TRUE(t.cancel_requested());
}

TEST(CancelToken, ExpiredDeadlineTripsExactlyOnce) {
  CancelToken t;
  t.arm_deadline_after(std::chrono::nanoseconds(-1));
  // cancel_requested() never polls the clock: the token reads untripped
  // until someone calls trip_if_expired()/should_stop().
  EXPECT_FALSE(t.cancel_requested());
  EXPECT_TRUE(t.trip_if_expired());   // this call reaps...
  EXPECT_FALSE(t.trip_if_expired());  // ...and only this call
  EXPECT_EQ(t.reason(), CancelReason::kDeadlineExceeded);
}

TEST(CancelToken, DisarmAndReset) {
  CancelToken t;
  t.arm_deadline_after(std::chrono::nanoseconds(-1));
  t.disarm_deadline();
  EXPECT_FALSE(t.should_stop());
  t.request_cancel();
  t.reset();
  EXPECT_FALSE(t.cancel_requested());
  EXPECT_FALSE(t.deadline_armed());
}

TEST(Simulator, PreTrippedTokenStopsOnEntry) {
  Simulator s;
  CancelToken t;
  t.request_cancel();
  s.set_cancel_token(&t);
  int ran = 0;
  s.schedule(msec(1), [&] { ++ran; });
  s.run_until(sec(1));
  EXPECT_TRUE(s.interrupted());
  EXPECT_EQ(ran, 0);
}

TEST(Simulator, TokenTrippedMidRunInterruptsWithinInterval) {
  Simulator s;
  CancelToken t;
  s.set_cancel_token(&t);
  std::uint64_t ran = 0;
  // A self-rescheduling chain that would run 1M events; trip after 10k.
  std::function<void()> step = [&] {
    ++ran;
    if (ran == 10000) t.request_cancel();
    if (ran < 1000000) s.post(msec(1), std::function<void()>(step));
  };
  s.post(msec(1), std::function<void()>(step));
  s.run_all();
  EXPECT_TRUE(s.interrupted());
  EXPECT_GE(ran, 10000u);
  // The poll cadence bounds the overshoot to one check interval.
  EXPECT_LT(ran, 10000u + 2048u);
}

TEST(Simulator, CompletedRunClearsInterrupted) {
  Simulator s;
  CancelToken t;
  s.set_cancel_token(&t);
  t.request_cancel();
  s.schedule(msec(1), [] {});
  s.run_until(sec(1));
  EXPECT_TRUE(s.interrupted());
  t.reset();
  s.run_until(sec(2));
  EXPECT_FALSE(s.interrupted());
  EXPECT_EQ(s.now(), sec(2));
}

TEST(Simulator, CancelFromAnotherThread) {
  Simulator s;
  CancelToken t;
  s.set_cancel_token(&t);
  std::atomic<bool> started{false};
  std::function<void()> step = [&] {
    started = true;
    s.post(msec(1), std::function<void()>(step));  // endless unless tripped
  };
  s.post(msec(1), std::function<void()>(step));
  std::thread canceller([&] {
    while (!started) std::this_thread::yield();
    t.request_cancel(CancelReason::kCancelled);
  });
  s.run_all();  // would never return without the token
  canceller.join();
  EXPECT_TRUE(s.interrupted());
  EXPECT_EQ(t.reason(), CancelReason::kCancelled);
}

}  // namespace
}  // namespace spider::sim
